# Convenience targets for the MLTCP reproduction.

PYTHON ?= python

.PHONY: install verify lint typecheck test test-fast bench bench-smoke bench-faults-smoke figures examples clean

# The default verify path: repo-specific static analysis, type checking,
# then the fast test tier. CI and the verify skill run this.
.DEFAULT_GOAL := verify
verify: lint typecheck test-fast

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

# Layered linting: `repro lint` (the custom AST analyzer, always available —
# stdlib only) enforces the repo-specific determinism/unit rules; ruff
# carries the generic style layer and is skipped when not installed.
lint:
	PYTHONPATH=src $(PYTHON) -m repro lint src
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping style layer (pip install -e .[dev])"; \
	fi

# mypy --strict on repro.core/simulator/tcp/fluid (config in pyproject.toml);
# skipped gracefully when mypy is not installed.
typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping typecheck (pip install -e .[dev])"; \
	fi

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# One fluid benchmark through the parallel runner with a throwaway cache,
# then validate its JSON run-report against the schema in docs/.
bench-smoke:
	@tmp=$$(mktemp -d) && \
	REPRO_CACHE_DIR=$$tmp REPRO_WORKERS=2 \
		$(PYTHON) -m pytest benchmarks/bench_ablation_noise.py --benchmark-only -q && \
	$(PYTHON) -m repro validate-report bench_reports/ablation_noise.run.json \
		--schema docs/run_report.schema.json; \
	status=$$?; rm -rf $$tmp; exit $$status

# The fault-recovery bench with a deliberately crashing point injected:
# the sweep must survive the crash (isolate_failures), record it in the
# run-report's degradations section, and the report must still validate.
bench-faults-smoke:
	@tmp=$$(mktemp -d) && \
	REPRO_CACHE_DIR=$$tmp REPRO_WORKERS=2 REPRO_FAULTS_INJECT_CRASH=1 \
		$(PYTHON) -m pytest benchmarks/bench_fault_recovery.py --benchmark-only -q && \
	$(PYTHON) -m repro validate-report bench_reports/fault_recovery.run.json \
		--schema docs/run_report.schema.json; \
	status=$$?; rm -rf $$tmp; exit $$status

# Regenerate every paper figure via the CLI (text reports to stdout).
figures:
	$(PYTHON) -m repro run all

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf bench_reports .pytest_cache .benchmarks .repro_cache
	find . -name __pycache__ -type d -exec rm -rf {} +

# Convenience targets for the MLTCP reproduction.

PYTHON ?= python

# Canonical pytest-benchmark settings (5.x takes CLI flags, not ini
# options): GC off and a short warmup cut run-to-run noise, name-sorted
# output matches the bench-compare tables. The committed baselines in
# bench_reports/ were measured under these flags — keep them in sync
# (docs/PERFORMANCE.md, "Refreshing the baseline").
BENCH_FLAGS = --benchmark-sort=name --benchmark-columns=min,mean,stddev,rounds \
	--benchmark-warmup=on --benchmark-warmup-iterations=2 --benchmark-disable-gc

.PHONY: install verify lint typecheck test test-fast docs-check bench bench-smoke bench-faults-smoke bench-perf bench-perf-smoke bench-scale-smoke guards-smoke chaos-smoke serve-smoke verify-smoke figures examples clean

# The default verify path: repo-specific static analysis, type checking,
# the fast test tier, executable-docs check, a guarded fault-recovery
# smoke, a seeded chaos-campaign smoke, a crash-recovery service smoke,
# a bounded-model-checking smoke, then one-round perf- and
# scale-regression smokes. CI and the verify skill run this.
.DEFAULT_GOAL := verify
verify: lint typecheck test-fast docs-check guards-smoke chaos-smoke serve-smoke verify-smoke bench-perf-smoke bench-scale-smoke

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

# Layered linting: `repro lint` (the custom AST analyzer, always available —
# stdlib only) enforces the repo-specific determinism/unit rules; ruff
# carries the generic style layer and is skipped when not installed.
lint:
	PYTHONPATH=src $(PYTHON) -m repro lint src
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping style layer (pip install -e .[dev])"; \
	fi

# mypy --strict on repro.core/simulator/tcp/fluid (config in pyproject.toml);
# skipped gracefully when mypy is not installed.
typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping typecheck (pip install -e .[dev])"; \
	fi

test:
	PYTHONPATH=src $(PYTHON) -m pytest tests/

test-fast:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -m "not slow"

# Execute every ```python fence in docs/*.md so documented examples can't
# rot; fragments keep highlighting with ```python no-check (docs/TOPOLOGIES.md).
docs-check:
	PYTHONPATH=src $(PYTHON) -m repro docs-check docs

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only $(BENCH_FLAGS)

# The simulator microbenchmarks (plus the armed-guardrail overhead suite),
# gated against the committed optimized-tree baseline (>15% slower on any
# benchmark fails). See docs/PERFORMANCE.md and docs/ROBUSTNESS.md.
bench-perf:
	@tmp=$$(mktemp) && \
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_simulator_performance.py \
		benchmarks/bench_guard_overhead.py \
		benchmarks/bench_chaos_recovery.py \
		benchmarks/bench_service_churn.py \
		benchmarks/bench_scale_fluid.py \
		--benchmark-only --benchmark-json $$tmp $(BENCH_FLAGS) -q && \
	PYTHONPATH=src $(PYTHON) -m repro bench-compare $$tmp \
		--baseline bench_reports/perf_baseline.json; \
	status=$$?; rm -f $$tmp; exit $$status

# Cheap single-round variant wired into `verify`: one round per benchmark,
# compared with a generous threshold so machine noise doesn't flake CI.
# Real regression hunting should use `make bench-perf`.
bench-perf-smoke:
	@tmp=$$(mktemp) && \
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_simulator_performance.py \
		benchmarks/bench_guard_overhead.py \
		benchmarks/bench_chaos_recovery.py \
		benchmarks/bench_service_churn.py \
		benchmarks/bench_scale_fluid.py \
		--benchmark-only --benchmark-json $$tmp --benchmark-disable-gc \
		--benchmark-min-rounds=1 --benchmark-warmup=off -q && \
	PYTHONPATH=src $(PYTHON) -m repro bench-compare $$tmp \
		--baseline bench_reports/perf_baseline.json --threshold 1.0; \
	status=$$?; rm -f $$tmp; exit $$status

# The 10k-flow / 1000-job x 64-rack scale benchmarks of the vectorized
# fluid core, single round against the committed baseline with a generous
# threshold (docs/PERFORMANCE.md, "Vectorized core & scale benchmarks").
# --select restricts the gate to the scale entries so the focused target
# doesn't report the rest of the baseline as missing; the
# pre-vectorization scalar numbers live in
# bench_reports/perf_scale_seed.json for historical comparison.
bench-scale-smoke:
	@tmp=$$(mktemp) && \
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_scale_fluid.py \
		--benchmark-only --benchmark-json $$tmp --benchmark-disable-gc \
		--benchmark-min-rounds=1 --benchmark-warmup=off -q && \
	PYTHONPATH=src $(PYTHON) -m repro bench-compare $$tmp \
		--baseline bench_reports/perf_baseline.json --threshold 1.0 \
		--select 'test_scale_*'; \
	status=$$?; rm -f $$tmp; exit $$status

# Both substrates through the guarded fault-recovery experiment with every
# invariant monitor armed in `raise` mode: one genuine violation aborts the
# run and fails the target (docs/ROBUSTNESS.md).
guards-smoke:
	PYTHONPATH=src $(PYTHON) -m repro guards --run --policy raise \
		--substrate both --iterations 24

# One tiny seeded chaos campaign on the default fabric, with monitors
# recording and the recovery-SLO report validated against the v4 schema
# (docs/FAULTS.md "Fabric faults & chaos campaigns").
chaos-smoke:
	@tmp=$$(mktemp) && \
	PYTHONPATH=src $(PYTHON) -m repro chaos --fast --campaigns 1 --no-cache \
		--report $$tmp && \
	PYTHONPATH=src $(PYTHON) -m repro validate-report $$tmp \
		--schema docs/run_report.schema.json; \
	status=$$?; rm -f $$tmp; exit $$status

# A short seeded churn run of the service daemon with one injected
# stepper crash: the supervisor must recover from the write-ahead
# journal and the v6 run-report (with its service snapshot stream) must
# validate against the schema (docs/SERVICE.md).
serve-smoke:
	@tmp=$$(mktemp -d) && \
	PYTHONPATH=src $(PYTHON) -m repro serve --epochs 10 --rate 0.8 --seed 3 \
		--flash 4:3 --journal $$tmp/svc.journal --crash-at-epoch 5 \
		--report $$tmp/svc.run.json && \
	PYTHONPATH=src $(PYTHON) -m repro validate-report $$tmp/svc.run.json \
		--schema docs/run_report.schema.json; \
	status=$$?; rm -rf $$tmp; exit $$status

# Bounded model checking of Algorithm 1 on each property's reduced smoke
# grid, with a short per-query solver budget: every property must reach
# its expected verdict and every committed certificate/counterexample must
# exist and be fresh; the run-report's verification section must validate
# against the schema (docs/VERIFICATION.md).
verify-smoke:
	@tmp=$$(mktemp) && \
	PYTHONPATH=src $(PYTHON) -m repro verify --fast --check --timeout 10 \
		--report $$tmp && \
	PYTHONPATH=src $(PYTHON) -m repro validate-report $$tmp \
		--schema docs/run_report.schema.json; \
	status=$$?; rm -f $$tmp; exit $$status

# One fluid benchmark through the parallel runner with a throwaway cache,
# then validate its JSON run-report against the schema in docs/.
bench-smoke:
	@tmp=$$(mktemp -d) && \
	REPRO_CACHE_DIR=$$tmp REPRO_WORKERS=2 \
		PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_ablation_noise.py --benchmark-only -q && \
	PYTHONPATH=src $(PYTHON) -m repro validate-report bench_reports/ablation_noise.run.json \
		--schema docs/run_report.schema.json; \
	status=$$?; rm -rf $$tmp; exit $$status

# The fault-recovery bench with a deliberately crashing point injected:
# the sweep must survive the crash (isolate_failures), record it in the
# run-report's degradations section, and the report must still validate.
bench-faults-smoke:
	@tmp=$$(mktemp -d) && \
	REPRO_CACHE_DIR=$$tmp REPRO_WORKERS=2 REPRO_FAULTS_INJECT_CRASH=1 \
		PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_fault_recovery.py --benchmark-only -q && \
	PYTHONPATH=src $(PYTHON) -m repro validate-report bench_reports/fault_recovery.run.json \
		--schema docs/run_report.schema.json; \
	status=$$?; rm -rf $$tmp; exit $$status

# Regenerate every paper figure via the CLI (text reports to stdout).
figures:
	PYTHONPATH=src $(PYTHON) -m repro run all

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf bench_reports .pytest_cache .benchmarks .repro_cache
	find . -name __pycache__ -type d -exec rm -rf {} +

# Convenience targets for the MLTCP reproduction.

PYTHON ?= python

.PHONY: install test test-fast bench figures examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper figure via the CLI (text reports to stdout).
figures:
	$(PYTHON) -m repro run all

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf bench_reports .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +

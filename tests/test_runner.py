"""Tests for the parallel/cached/instrumented experiment runner.

Covers the three runner features (process-pool execution, the
content-addressed result cache, run-report telemetry) plus the contracts
the rest of the repo relies on: parallel results bit-identical to
sequential, cache corruption never fatal, and the JSON run-report matching
the schema checked into docs/.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.harness.cache import ResultCache, default_cache_dir, point_key
from repro.harness import runner as runner_module
from repro.harness.runner import ExperimentRunner
from repro.harness.sweep import sweep
from repro.harness.telemetry import (
    RUN_REPORT_SCHEMA,
    RunTelemetry,
    validate_run_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


# Experiments live at module top level so they pickle by reference into
# process-pool workers.

def _noisy_metric(seed: int, scale: float = 1.0) -> float:
    return float(np.random.default_rng(seed).normal(10.0, 1.0)) * scale


def _fluid_final_time(seed: int, jobs: int = 2) -> float:
    from repro.fluid.allocation import MLTCPWeighted
    from repro.fluid.flowsim import run_fluid
    from repro.workloads.presets import gpt2_heavy_job, identical_jobs

    result = run_fluid(
        identical_jobs(gpt2_heavy_job(), jobs),
        50.0,
        policy=MLTCPWeighted(),
        max_iterations=20,
        seed=seed,
    )
    return float(result.mean_iteration_by_round()[-5:].mean())


def _marking_square(value: int, marker_dir: str) -> int:
    """Square ``value``, leaving a file behind so tests can detect reruns."""
    Path(marker_dir, f"ran_{value}").write_text("x")
    return value * value


class TestRunner:
    def test_results_positional_and_ordered(self):
        runner = ExperimentRunner(name="order")
        results = runner.run_points(
            _noisy_metric, [{"seed": s} for s in (5, 1, 3)]
        )
        assert results == [_noisy_metric(5), _noisy_metric(1), _noisy_metric(3)]

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ExperimentRunner(workers=0)

    def test_parallel_identical_to_sequential(self):
        points = [{"seed": s, "scale": sc} for s in range(4) for sc in (1.0, 2.0)]
        sequential = ExperimentRunner(name="seq").run_points(_noisy_metric, points)
        runner = ExperimentRunner(name="par", workers=3)
        parallel = runner.run_points(_noisy_metric, points)
        assert parallel == sequential
        assert all(r.mode == "worker" for r in runner.telemetry.records)

    def test_experiment_errors_propagate(self):
        def boom(seed):
            raise RuntimeError("experiment failed")

        with pytest.raises(RuntimeError, match="experiment failed"):
            ExperimentRunner(name="boom").run_points(boom, [{"seed": 1}])

    def test_unpicklable_experiment_falls_back_to_sequential(self):
        runner = ExperimentRunner(name="lambda", workers=4)
        results = runner.run_points(
            lambda seed: seed * 2.0, [{"seed": s} for s in range(3)]
        )
        assert results == [0.0, 2.0, 4.0]
        assert any("not picklable" in note for note in runner.telemetry.notes)
        assert all(r.mode == "sequential" for r in runner.telemetry.records)


class TestSharedPool:
    """Worker pools are cached per worker count and reused across runs."""

    def test_pool_reused_across_run_points_calls(self):
        runner = ExperimentRunner(name="reuse", workers=2)
        runner.run_points(_noisy_metric, [{"seed": s} for s in range(3)])
        first = runner_module._SHARED_POOLS.get(2)
        assert first is not None
        runner.run_points(_noisy_metric, [{"seed": s} for s in range(3)])
        assert runner_module._SHARED_POOLS.get(2) is first

    def test_pool_shared_between_runner_instances(self):
        a = ExperimentRunner(name="first", workers=2)
        b = ExperimentRunner(name="second", workers=2)
        a.run_points(_noisy_metric, [{"seed": 0}])
        pool = runner_module._SHARED_POOLS.get(2)
        b.run_points(_noisy_metric, [{"seed": 1}])
        assert runner_module._SHARED_POOLS.get(2) is pool

    def test_retire_drops_pool_from_cache(self):
        pool = runner_module._shared_pool(2)
        assert runner_module._SHARED_POOLS.get(2) is pool
        runner_module._retire_shared_pool(pool)
        assert 2 not in runner_module._SHARED_POOLS
        # The next request transparently starts a fresh pool.
        fresh = runner_module._shared_pool(2)
        assert fresh is not pool
        assert fresh.submit(int, 3).result() == 3

    def test_reused_pool_results_match_sequential(self):
        sequential = ExperimentRunner(name="seq").run_points(
            _noisy_metric, [{"seed": s} for s in range(4)]
        )
        runner = ExperimentRunner(name="par", workers=2)
        runner.run_points(_noisy_metric, [{"seed": 9}])  # warm the pool
        parallel = runner.run_points(
            _noisy_metric, [{"seed": s} for s in range(4)]
        )
        assert [v.hex() for v in parallel] == [v.hex() for v in sequential]


class TestSweepParallel:
    def test_sweep_workers4_identical_to_sequential(self):
        """Acceptance: seeded sweep with workers=4 == sequential, bit for bit."""
        grid = {"scale": [1.0, 2.0, 3.0]}
        seeds = [1, 2, 3, 4]
        sequential = sweep(_noisy_metric, grid=grid, seeds=seeds)
        parallel = sweep(_noisy_metric, grid=grid, seeds=seeds, workers=4)
        assert len(parallel) == len(sequential) == 3
        for row_s, row_p in zip(sequential, parallel):
            assert row_p["scale"] == row_s["scale"]
            assert row_p["summary"].values == row_s["summary"].values
            assert row_p["summary"].mean == row_s["summary"].mean

    @pytest.mark.slow
    def test_fluid_experiment_parallel_identical(self):
        seeds = [1, 2, 3]
        sequential = sweep(_fluid_final_time, grid={"jobs": [2]}, seeds=seeds)
        parallel = sweep(
            _fluid_final_time, grid={"jobs": [2]}, seeds=seeds, workers=4
        )
        assert parallel[0]["summary"].values == sequential[0]["summary"].values
        assert sequential[0]["summary"].mean == pytest.approx(1.8, rel=0.05)

    def test_sweep_rejects_empty_seeds(self):
        with pytest.raises(ValueError, match="seed"):
            sweep(_noisy_metric, grid={"scale": [1.0]}, seeds=[])

    def test_sweep_rejects_empty_value_list(self):
        with pytest.raises(ValueError, match="scale.*empty|empty.*scale"):
            sweep(_noisy_metric, grid={"scale": []}, seeds=[1])

    def test_sweep_rejects_string_grid_values(self):
        with pytest.raises(ValueError, match="wrap the values in"):
            sweep(_noisy_metric, grid={"scale": "abc"}, seeds=[1])

    def test_sweep_rejects_non_sequence_grid_values(self):
        with pytest.raises(ValueError, match="sequence"):
            sweep(_noisy_metric, grid={"scale": 1.0}, seeds=[1])


class TestCache:
    def test_point_key_is_order_insensitive_and_distinct(self):
        base = point_key("exp", {"a": 1, "b": 2}, seed=3, version="1.0")
        assert base == point_key("exp", {"b": 2, "a": 1}, seed=3, version="1.0")
        assert base != point_key("other", {"a": 1, "b": 2}, seed=3, version="1.0")
        assert base != point_key("exp", {"a": 1, "b": 9}, seed=3, version="1.0")
        assert base != point_key("exp", {"a": 1, "b": 2}, seed=4, version="1.0")
        assert base != point_key("exp", {"a": 1, "b": 2}, seed=3, version="2.0")

    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key("exp", {"x": 1}, seed=0, version="1.0")
        assert cache.get(key) == (False, None)
        assert cache.put(key, {"answer": 42})
        assert cache.get(key) == (True, {"answer": 42})
        assert len(cache) == 1
        assert cache.clear() == 1
        assert cache.get(key) == (False, None)

    def test_hit_skips_recomputation(self, tmp_path):
        cache_dir = tmp_path / "cache"
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        points = [
            {"value": v, "marker_dir": str(marker_dir)} for v in (2, 3, 4)
        ]

        first = ExperimentRunner(name="sq", cache=ResultCache(cache_dir))
        assert first.run_points(_marking_square, points) == [4, 9, 16]
        assert first.telemetry.cache_misses == 3
        assert first.telemetry.cache_hits == 0
        assert len(list(marker_dir.iterdir())) == 3

        for marker in marker_dir.iterdir():
            marker.unlink()
        second = ExperimentRunner(name="sq", cache=ResultCache(cache_dir))
        assert second.run_points(_marking_square, points) == [4, 9, 16]
        assert second.telemetry.cache_hits == 3
        assert second.telemetry.cache_hit_rate >= 0.9
        assert list(marker_dir.iterdir()) == []  # nothing recomputed

    def test_corrupted_entry_discarded_not_fatal(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key("exp", {"x": 1}, seed=0, version="1.0")
        assert cache.put(key, 123)
        entry = tmp_path / key[:2] / f"{key}.pkl"
        entry.write_bytes(b"garbage that is not a cache entry")
        hit, value = cache.get(key)
        assert not hit and value is None
        assert not entry.exists()  # self-healed

        runner = ExperimentRunner(name="exp2", cache=ResultCache(tmp_path))
        runner.run_points(_noisy_metric, [{"seed": 1}])
        key2 = point_key("exp2", {}, seed=1)
        entry2 = tmp_path / key2[:2] / f"{key2}.pkl"
        entry2.write_bytes(entry2.read_bytes()[:10])  # truncate mid-header
        rerun = ExperimentRunner(name="exp2", cache=ResultCache(tmp_path))
        assert rerun.run_points(_noisy_metric, [{"seed": 1}]) == [
            _noisy_metric(1)
        ]
        assert rerun.telemetry.cache_misses == 1

    def test_unpicklable_result_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key("exp", {}, seed=0, version="1.0")
        assert not cache.put(key, lambda: None)
        assert len(cache) == 0

    def test_default_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert default_cache_dir() == tmp_path / "env"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro"


class TestTelemetry:
    def test_run_report_validates_against_schema(self, tmp_path):
        telemetry = RunTelemetry("demo")
        runner = ExperimentRunner(
            name="demo",
            workers=2,
            cache=ResultCache(tmp_path),
            telemetry=telemetry,
        )
        points = [{"seed": s} for s in range(3)]
        runner.run_points(_noisy_metric, points)
        report = telemetry.as_report()
        assert validate_run_report(report) == []
        assert report["workers"] == 2
        assert report["totals"]["points"] == 3
        assert {p["mode"] for p in report["points"]} <= {"worker", "sequential"}

    def test_second_run_reports_hits_in_report(self, tmp_path):
        cache = ResultCache(tmp_path)
        points = [{"seed": s} for s in range(5)]
        ExperimentRunner(name="d", cache=cache).run_points(_noisy_metric, points)

        telemetry = RunTelemetry("d")
        rerun = ExperimentRunner(name="d", cache=cache, telemetry=telemetry)
        rerun.run_points(_noisy_metric, points)
        report = telemetry.as_report()
        assert report["totals"]["cache_hit_rate"] >= 0.9
        assert all(p["mode"] == "cached" for p in report["points"])
        assert all(p["events_processed"] == 0 for p in report["points"])

    def test_write_produces_valid_json(self, tmp_path):
        telemetry = RunTelemetry("w")
        ExperimentRunner(name="w", telemetry=telemetry).run_points(
            _noisy_metric, [{"seed": 0}]
        )
        path = telemetry.write(tmp_path / "sub" / "w.run.json")
        report = json.loads(path.read_text())
        assert validate_run_report(report) == []
        assert report["experiment"] == "w"

    def test_checked_in_schema_matches_builtin(self):
        on_disk = json.loads(
            (REPO_ROOT / "docs" / "run_report.schema.json").read_text()
        )
        assert on_disk == RUN_REPORT_SCHEMA

    def test_validator_flags_violations(self):
        telemetry = RunTelemetry("v")
        ExperimentRunner(name="v", telemetry=telemetry).run_points(
            _noisy_metric, [{"seed": 0}]
        )
        report = telemetry.as_report()

        missing = dict(report)
        del missing["totals"]
        assert any("totals" in e for e in validate_run_report(missing))

        wrong_type = json.loads(json.dumps(report, default=repr))
        wrong_type["experiment"] = 7
        assert any("experiment" in e for e in validate_run_report(wrong_type))

        bad_mode = json.loads(json.dumps(report, default=repr))
        bad_mode["points"][0]["mode"] = "telepathy"
        assert any("mode" in e for e in validate_run_report(bad_mode))

        negative = json.loads(json.dumps(report, default=repr))
        negative["totals"]["points"] = -1
        assert any("minimum" in e for e in validate_run_report(negative))

    def test_events_counted_for_packet_points(self):
        from repro.simulator.engine import Simulator

        def tiny_sim(seed: int) -> int:
            sim = Simulator()
            fired = []
            for t in range(5):
                sim.schedule(0.1 * (t + 1), lambda: fired.append(1))
            sim.run()
            return len(fired)

        telemetry = RunTelemetry("events")
        runner = ExperimentRunner(name="events", telemetry=telemetry)
        assert runner.run_points(tiny_sim, [{"seed": 0}]) == [5]
        assert telemetry.records[0].events_processed == 5

"""Tests for the fabric spec, deterministic ECMP, and placement policies."""

import pytest

from repro.workloads import cross_rack_scenario, identical_jobs
from repro.workloads.job import JobSpec
from repro.workloads.placement import (
    PLACEMENT_POLICIES,
    FabricSpec,
    JobPlacement,
    ecmp_index,
    host_rack,
    place_jobs,
)


class TestEcmpIndex:
    def test_deterministic(self):
        assert ecmp_index(3, "rack0", "h1_1", 4) == ecmp_index(3, "rack0", "h1_1", 4)

    def test_in_range(self):
        for n in (1, 2, 3, 7):
            for dst in ("h0_0", "h1_0", "h5_3"):
                assert 0 <= ecmp_index(0, "rack0", dst, n) < n

    def test_avalanche_spreads_similar_destinations(self):
        """Host names differing only in the trailing index must not all hash
        to one spine — the raw-CRC32 failure mode the finalizer exists for."""
        for seed in range(8):
            choices = {
                ecmp_index(seed, "rack0", f"h1_{i}", 2) for i in range(16)
            }
            assert choices == {0, 1}, f"seed {seed} used one spine for a whole rack"

    def test_seed_changes_assignment(self):
        assignments = {
            tuple(ecmp_index(seed, "rack0", f"h1_{i}", 2) for i in range(8))
            for seed in range(16)
        }
        assert len(assignments) > 1

    def test_rejects_no_choices(self):
        with pytest.raises(ValueError, match="n_choices"):
            ecmp_index(0, "rack0", "h1_0", 0)


class TestHostRack:
    def test_parses(self):
        assert host_rack("h0_0") == 0
        assert host_rack("h12_3") == 12

    def test_rejects_non_fabric_names(self):
        for bad in ("s0", "rack1", "spine0", "host"):
            with pytest.raises(ValueError, match="fabric host"):
                host_rack(bad)


class TestFabricSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="n_racks"):
            FabricSpec(n_racks=1)
        with pytest.raises(ValueError, match="hosts_per_rack"):
            FabricSpec(hosts_per_rack=0)
        with pytest.raises(ValueError, match="n_spines"):
            FabricSpec(n_spines=0)
        with pytest.raises(ValueError, match="oversubscription"):
            FabricSpec(oversubscription=0.0)
        with pytest.raises(ValueError, match="host_gbps"):
            FabricSpec(host_gbps=-1.0)

    def test_oversubscription_capacity_math(self):
        spec = FabricSpec(
            n_racks=4, hosts_per_rack=4, n_spines=2, oversubscription=2.0
        )
        assert spec.n_hosts == 16
        assert spec.rack_capacity_gbps == pytest.approx(2.0)   # 4 Gbps / 2:1
        assert spec.uplink_gbps == pytest.approx(1.0)          # split over spines

    def test_nonblocking_fabric(self):
        spec = FabricSpec(n_racks=2, hosts_per_rack=2, n_spines=2)
        assert spec.rack_capacity_gbps == pytest.approx(2.0)
        assert spec.uplink_gbps == pytest.approx(1.0)

    def test_host_names_rack_major(self):
        spec = FabricSpec(n_racks=2, hosts_per_rack=2)
        assert spec.host_names() == ("h0_0", "h0_1", "h1_0", "h1_1")

    def test_intra_rack_path_skips_spine(self):
        spec = FabricSpec(n_racks=2, hosts_per_rack=2)
        assert spec.path_nodes("h0_0", "h0_1") == ("h0_0", "rack0", "h0_1")

    def test_inter_rack_path_crosses_one_spine(self):
        spec = FabricSpec(n_racks=3, hosts_per_rack=2, n_spines=2)
        nodes = spec.path_nodes("h0_0", "h2_1")
        assert nodes[0] == "h0_0" and nodes[-1] == "h2_1"
        assert nodes[1] == "rack0" and nodes[3] == "rack2"
        assert nodes[2] in ("spine0", "spine1")
        # ECMP is a pure function of (seed, ingress rack, dst).
        assert spec.path_nodes("h0_0", "h2_1") == nodes
        assert spec.path_nodes("h0_1", "h2_1")[2] == nodes[2]

    def test_path_links_match_nodes(self):
        spec = FabricSpec(n_racks=2, hosts_per_rack=1, n_spines=1)
        assert spec.path_links("h0_0", "h1_0") == (
            "h0_0->rack0", "rack0->spine0", "spine0->rack1", "rack1->h1_0"
        )

    def test_path_rejects_bad_endpoints(self):
        spec = FabricSpec(n_racks=2, hosts_per_rack=1)
        with pytest.raises(ValueError, match="differ"):
            spec.path_nodes("h0_0", "h0_0")
        with pytest.raises(ValueError, match="fabric"):
            spec.path_nodes("h0_0", "h9_0")

    def test_capacities_cover_every_path_link(self):
        spec = FabricSpec(n_racks=3, hosts_per_rack=2, n_spines=2,
                          oversubscription=1.5)
        capacities = spec.capacities_gbps()
        hosts = spec.host_names()
        for src in hosts:
            for dst in hosts:
                if src == dst:
                    continue
                for link in spec.path_links(src, dst):
                    assert link in capacities
        for link in spec.fabric_links():
            assert capacities[link] == pytest.approx(spec.uplink_gbps)

    def test_fabric_links_count(self):
        spec = FabricSpec(n_racks=3, n_spines=2)
        assert len(spec.fabric_links()) == 3 * 2 * 2   # racks x spines x directions


class TestJobPlacement:
    def test_rejects_self_loop(self):
        job = JobSpec(name="J", comm_bits=1e6, demand_gbps=1.0, compute_time=0.01)
        with pytest.raises(ValueError, match="differ"):
            JobPlacement(job=job, src="h0_0", dst="h0_0")

    def test_cross_rack_flag(self):
        job = JobSpec(name="J", comm_bits=1e6, demand_gbps=1.0, compute_time=0.01)
        assert JobPlacement(job=job, src="h0_0", dst="h1_0").cross_rack
        assert not JobPlacement(job=job, src="h0_0", dst="h0_1").cross_rack


class TestPlaceJobs:
    spec = FabricSpec(n_racks=4, hosts_per_rack=2, n_spines=2)

    def test_policy_catalog(self):
        assert PLACEMENT_POLICIES == ("packed", "spread", "random")

    def test_packed_stays_in_rack(self):
        jobs = cross_rack_scenario(4)
        placements = place_jobs(jobs, self.spec, policy="packed")
        assert [p.cross_rack for p in placements] == [False] * 4
        assert placements[0].src == "h0_0" and placements[0].dst == "h0_1"

    def test_spread_crosses_racks(self):
        jobs = cross_rack_scenario(4)
        placements = place_jobs(jobs, self.spec, policy="spread")
        assert all(p.cross_rack for p in placements)

    def test_hosts_never_shared(self):
        for policy in PLACEMENT_POLICIES:
            placements = place_jobs(cross_rack_scenario(4), self.spec, policy=policy)
            endpoints = [h for p in placements for h in (p.src, p.dst)]
            assert len(set(endpoints)) == len(endpoints)

    def test_random_is_seed_deterministic(self):
        jobs = cross_rack_scenario(3)
        first = place_jobs(jobs, self.spec, policy="random", seed=7)
        again = place_jobs(jobs, self.spec, policy="random", seed=7)
        other = place_jobs(jobs, self.spec, policy="random", seed=8)
        assert first == again
        assert first != other

    def test_rejects_overfull_fabric(self):
        with pytest.raises(ValueError, match="hosts"):
            place_jobs(cross_rack_scenario(5), self.spec)

    def test_rejects_duplicate_names(self):
        job = cross_rack_scenario(1)[0]
        with pytest.raises(ValueError, match="unique"):
            place_jobs([job, job], self.spec)

    def test_rejects_empty_and_unknown_policy(self):
        with pytest.raises(ValueError, match="at least one"):
            place_jobs([], self.spec)
        with pytest.raises(ValueError, match="policy"):
            place_jobs(cross_rack_scenario(2), self.spec, policy="zigzag")

    def test_works_with_generic_jobs(self):
        template = JobSpec(
            name="G", comm_bits=4e6, demand_gbps=0.5, compute_time=0.02
        )
        placements = place_jobs(identical_jobs(template, 2), self.spec)
        assert len(placements) == 2

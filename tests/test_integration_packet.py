"""Integration tests over the packet-level simulator (Figure 6, CC family)."""

import numpy as np
import pytest

from repro.core.config import MLTCPConfig
from repro.harness.experiments import fig6_packet_two_jobs
from repro.harness.packetlab import mltcp_config_for, run_packet_jobs
from repro.tcp.mltcp import MLTCPCubic, MLTCPReno
from repro.tcp.reno import RenoCC
from repro.workloads.job import JobSpec


class TestFig6TwoJobs:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_packet_two_jobs(iterations=40)

    def test_starts_congested(self, result):
        """Synchronized start: the first iterations exceed the ideal."""
        first = np.mean(
            [times[:3].mean() for times in result.iteration_times.values()]
        )
        assert first > 1.25 * result.ideal_iteration_time

    def test_converges_to_interleaved_state(self, result):
        """Figure 6: MLTCP-Reno slides the two jobs apart within tens of
        iterations; iteration times return to the ideal."""
        assert result.converged_at is not None
        assert result.converged_at <= 35
        assert result.final_mean == pytest.approx(
            result.ideal_iteration_time, rel=0.08
        )

    def test_throughput_timelines_cover_run(self, result):
        for _job, (times, rates) in result.throughput.items():
            assert len(times) == len(rates)
            assert rates.max() > 0.5  # near line rate once interleaved


class TestCcFamilyOnPeriodicJobs:
    """§6: 'Other congestion control schemes are augmented in a similar
    way' — MLTCP-CUBIC also interleaves the two-job scenario."""

    def _jobs(self):
        template = JobSpec(
            name="Job",
            comm_bits=8e6,
            demand_gbps=1.0,
            compute_time=0.010,
            jitter_sigma=0.0005,
        )
        return [template.with_name("Job1"), template.with_name("Job2")]

    def _run(self, factory, iterations=35):
        return run_packet_jobs(self._jobs(), factory, max_iterations=iterations, seed=2)

    def test_mltcp_cubic_interleaves(self):
        lab = self._run(lambda j: MLTCPCubic(mltcp_config_for(j)))
        rounds = lab.mean_iteration_by_round()
        overhead = 1500 / 1460
        ideal = 8e6 / 1e9 * overhead + 0.010
        assert rounds[-5:].mean() == pytest.approx(ideal, rel=0.1)

    def test_mltcp_reno_vs_plain_reno_same_substrate(self):
        """Both complete; MLTCP reaches the ideal at least as fast."""
        mltcp = self._run(lambda j: MLTCPReno(mltcp_config_for(j)))
        reno = self._run(lambda j: RenoCC())
        assert mltcp.mean_iteration_by_round()[-5:].mean() <= (
            1.05 * reno.mean_iteration_by_round()[-5:].mean()
        )


class TestOnlineLearningConvergence:
    def test_learning_mode_still_interleaves(self):
        """With TOTAL_BYTES/COMP_TIME learned online (§3.2), the two-job
        scenario still converges — a few extra iterations at most."""
        template = JobSpec(
            name="Job",
            comm_bits=8e6,
            demand_gbps=1.0,
            compute_time=0.010,
            jitter_sigma=0.0005,
        )
        jobs = [template.with_name("Job1"), template.with_name("Job2")]
        lab = run_packet_jobs(
            jobs,
            lambda j: MLTCPReno(MLTCPConfig()),  # learn everything online
            max_iterations=45,
            seed=2,
        )
        overhead = 1500 / 1460
        ideal = 8e6 / 1e9 * overhead + 0.010
        tail = lab.mean_iteration_by_round()[-5:].mean()
        assert tail == pytest.approx(ideal, rel=0.12)


class TestLargeIterationScale:
    """Reduced time compression: 160 ms communication phases (10x the other
    packet tests), where slow-start transients are a small fraction of the
    phase.  The early-window contrast of the paper emerges — MLTCP descends
    toward the ideal measurably faster than plain Reno — although with two
    jobs the intrinsic drift still interleaves Reno eventually (see
    EXPERIMENTS.md "Known fidelity limits")."""

    @pytest.mark.slow
    def test_mltcp_converges_faster_than_reno_at_scale(self):
        from repro.core.config import MLTCPConfig
        from repro.tcp.reno import RenoCC

        template = JobSpec(
            name="Job", comm_bits=160e6, demand_gbps=1.0, compute_time=0.160,
            jitter_sigma=0.004,
        )
        jobs = [template.with_name("Job1"), template.with_name("Job2")]

        def run(mltcp):
            factory = (
                (lambda j: MLTCPReno(mltcp_config_for(j)))
                if mltcp
                else (lambda j: RenoCC())
            )
            lab = run_packet_jobs(
                jobs, factory, max_iterations=18, seed=3, until=12.0
            )
            return lab.mean_iteration_by_round()

        reno = run(False)
        mltcp = run(True)
        ideal = 160e6 / 1e9 * (1500 / 1460) + 0.160
        # Both reach the ideal in the end ...
        assert mltcp[-4:].mean() == pytest.approx(ideal, rel=0.05)
        assert reno[-4:].mean() == pytest.approx(ideal, rel=0.08)
        # ... but MLTCP's mid-run window is strictly closer to it.
        assert mltcp[6:12].mean() < reno[6:12].mean()

"""Tests for the paper-calibrated scenarios (workloads.presets)."""

import pytest

from repro.workloads.job import feasible_on_link
from repro.workloads.presets import (
    BOTTLENECK_GBPS,
    four_job_scenario,
    gpt2_fast_job,
    gpt2_heavy_job,
    gpt2_job,
    gpt3_job,
    identical_jobs,
    six_job_scenario,
    three_job_scenario,
    two_job_scenario,
)


class TestCalibration:
    """Ideal iteration times must match the values the paper reports."""

    def test_gpt3_iteration_time(self):
        assert gpt3_job().ideal_iteration_time == pytest.approx(1.2)

    def test_gpt2_iteration_time(self):
        assert gpt2_job().ideal_iteration_time == pytest.approx(1.8)

    def test_gpt2_fast_iteration_time(self):
        """Figure 3 variant: ideal ~1.05 s (paper y-axis 1000–1600 ms)."""
        assert gpt2_fast_job().ideal_iteration_time == pytest.approx(1.05)

    def test_gpt2_heavy_alpha_half(self):
        """Figure 6 / §4 running example needs alpha = 1/2."""
        assert gpt2_heavy_job().alpha == pytest.approx(0.5)
        assert gpt3_job().alpha == pytest.approx(0.5)

    def test_srpt_size_ordering(self):
        """GPT-3's collective must be the largest so SRPT defers it (§2)."""
        assert gpt3_job().comm_bits > gpt2_job().comm_bits


class TestScenarios:
    def test_four_job_names(self):
        names = [j.name for j in four_job_scenario()]
        assert names == ["J1", "J2", "J3", "J4"]

    def test_four_job_mix(self):
        jobs = four_job_scenario()
        assert jobs[0].comm_bits != jobs[1].comm_bits
        assert jobs[1].comm_bits == jobs[2].comm_bits == jobs[3].comm_bits

    def test_four_job_synchronized_start(self):
        assert all(j.start_offset == 0.0 for j in four_job_scenario())

    def test_four_job_staggered_variant(self):
        offsets = [j.start_offset for j in four_job_scenario(synchronized_start=False)]
        assert len(set(offsets)) == 4

    def test_three_job_identical(self):
        jobs = three_job_scenario()
        assert len(jobs) == 3
        assert len({j.comm_bits for j in jobs}) == 1

    def test_six_job_identical(self):
        jobs = six_job_scenario()
        assert len(jobs) == 6
        assert len({j.name for j in jobs}) == 6

    def test_two_job_contention_exists(self):
        """Figure 6 needs overlap to congest: 2x demand > capacity."""
        jobs = two_job_scenario()
        assert sum(j.demand_gbps for j in jobs) > BOTTLENECK_GBPS

    @pytest.mark.parametrize(
        "scenario",
        [four_job_scenario, three_job_scenario, six_job_scenario, two_job_scenario],
    )
    def test_average_load_feasible(self, scenario):
        """Paper's compatibility assumption: an interleave must exist, so
        at minimum the average load must fit the link."""
        assert feasible_on_link(scenario(), BOTTLENECK_GBPS)

    def test_jitter_override(self):
        assert all(j.jitter_sigma == 0.0 for j in four_job_scenario(jitter_sigma=0.0))


class TestIdenticalJobs:
    def test_names_are_numbered(self):
        jobs = identical_jobs(gpt2_job(), 3)
        assert [j.name for j in jobs] == ["Job1", "Job2", "Job3"]

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError, match="count"):
            identical_jobs(gpt2_job(), 0)

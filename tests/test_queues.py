"""Tests for queue disciplines (drop-tail, ECN marking, priority)."""

import pytest

from repro.simulator.packet import Packet
from repro.simulator.queues import DropTailQueue, EcnQueue, PriorityQueue


def data_packet(seq=0, priority=0.0, ecn_capable=False):
    return Packet(
        flow_id="f",
        src="s",
        dst="r",
        is_ack=False,
        seq=seq,
        payload_bytes=1460,
        priority=priority,
        ecn_capable=ecn_capable,
    )


class TestDropTail:
    def test_fifo_order(self):
        queue = DropTailQueue(4)
        for i in range(3):
            assert queue.push(data_packet(seq=i))
        assert [queue.pop().seq for _ in range(3)] == [0, 1, 2]

    def test_drops_when_full(self):
        queue = DropTailQueue(2)
        assert queue.push(data_packet(0))
        assert queue.push(data_packet(1))
        assert not queue.push(data_packet(2))
        assert queue.drops == 1

    def test_pop_empty_returns_none(self):
        assert DropTailQueue(2).pop() is None

    def test_drop_rate(self):
        queue = DropTailQueue(1)
        queue.push(data_packet(0))
        queue.push(data_packet(1))
        assert queue.drop_rate == pytest.approx(0.5)

    def test_len_tracks_occupancy(self):
        queue = DropTailQueue(4)
        queue.push(data_packet(0))
        queue.push(data_packet(1))
        queue.pop()
        assert len(queue) == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            DropTailQueue(0)


class TestEcn:
    def test_marks_above_threshold(self):
        queue = EcnQueue(capacity_packets=10, mark_threshold=2)
        for i in range(2):
            queue.push(data_packet(i, ecn_capable=True))
        marked = data_packet(2, ecn_capable=True)
        queue.push(marked)
        assert marked.ecn_ce
        assert queue.marks == 1

    def test_no_mark_below_threshold(self):
        queue = EcnQueue(capacity_packets=10, mark_threshold=5)
        packet = data_packet(0, ecn_capable=True)
        queue.push(packet)
        assert not packet.ecn_ce

    def test_non_capable_packets_never_marked(self):
        queue = EcnQueue(capacity_packets=10, mark_threshold=1)
        queue.push(data_packet(0))
        packet = data_packet(1, ecn_capable=False)
        queue.push(packet)
        assert not packet.ecn_ce

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="mark_threshold"):
            EcnQueue(capacity_packets=4, mark_threshold=5)


class TestPriority:
    def test_lowest_priority_value_first(self):
        """pFabric semantics: priority = remaining bytes, lowest first."""
        queue = PriorityQueue(8)
        queue.push(data_packet(0, priority=300.0))
        queue.push(data_packet(1, priority=100.0))
        queue.push(data_packet(2, priority=200.0))
        assert queue.pop().seq == 1
        assert queue.pop().seq == 2
        assert queue.pop().seq == 0

    def test_fifo_within_priority(self):
        queue = PriorityQueue(8)
        queue.push(data_packet(0, priority=1.0))
        queue.push(data_packet(1, priority=1.0))
        assert queue.pop().seq == 0

    def test_full_queue_evicts_worst_for_better(self):
        queue = PriorityQueue(2)
        queue.push(data_packet(0, priority=500.0))
        queue.push(data_packet(1, priority=400.0))
        assert queue.push(data_packet(2, priority=100.0))
        assert queue.drops == 1
        seqs = {queue.pop().seq, queue.pop().seq}
        assert seqs == {1, 2}

    def test_full_queue_rejects_worse_arrival(self):
        queue = PriorityQueue(2)
        queue.push(data_packet(0, priority=100.0))
        queue.push(data_packet(1, priority=200.0))
        assert not queue.push(data_packet(2, priority=900.0))
        assert len(queue) == 2

    def test_pop_empty_returns_none(self):
        assert PriorityQueue(2).pop() is None

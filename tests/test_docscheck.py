"""Tests for the executable-docs gate (``repro docs-check``)."""

import pytest

from repro.docscheck import check_file, extract_python_fences, run_docs_check


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestFenceExtraction:
    def test_only_python_fences_are_executable(self, tmp_path):
        path = _write(tmp_path, "doc.md", "\n".join([
            "```python",
            "a = 1",
            "```",
            "```py",
            "b = 2",
            "```",
            "```python no-check",
            "broken(",
            "```",
            "```bash",
            "echo hi",
            "```",
            "```",
            "plain block",
            "```",
        ]))
        fences = extract_python_fences(path)
        assert [fence.source for fence in fences] == ["a = 1\n", "b = 2\n"]

    def test_line_numbers_point_into_the_markdown(self, tmp_path):
        path = _write(tmp_path, "doc.md", "\n".join([
            "# title",
            "",
            "```python",
            "x = 1",
            "```",
        ]))
        (fence,) = extract_python_fences(path)
        assert fence.line == 4

    def test_info_string_is_case_insensitive(self, tmp_path):
        path = _write(tmp_path, "doc.md", "```Python\nx = 1\n```\n")
        assert len(extract_python_fences(path)) == 1


class TestCheckFile:
    def test_fences_share_one_namespace(self, tmp_path):
        path = _write(tmp_path, "doc.md", "\n".join([
            "```python",
            "value = 21",
            "```",
            "prose in between",
            "```python",
            "assert value * 2 == 42",
            "```",
        ]))
        assert check_file(path) == []

    def test_error_reports_markdown_line(self, tmp_path):
        path = _write(tmp_path, "doc.md", "\n".join([
            "# heading",
            "```python",
            "ok = True",
            "raise RuntimeError('boom')",
            "```",
        ]))
        (error,) = check_file(path)
        assert error.startswith(f"{path}:4:")
        assert "RuntimeError" in error and "boom" in error

    def test_failing_fence_does_not_stop_later_fences(self, tmp_path):
        path = _write(tmp_path, "doc.md", "\n".join([
            "```python",
            "undefined_name",
            "```",
            "```python",
            "later = 'still runs'",
            "```",
        ]))
        errors = check_file(path)
        assert len(errors) == 1
        assert "NameError" in errors[0]


class TestRunDocsCheck:
    def test_passing_tree(self, tmp_path, capsys):
        _write(tmp_path, "a.md", "```python\nx = 1\n```\n")
        _write(tmp_path, "b.md", "no fences here\n")
        assert run_docs_check([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 fence(s)" in out and "all pass" in out

    def test_failing_fence_sets_exit_code(self, tmp_path, capsys):
        _write(tmp_path, "bad.md", "```python\n1 / 0\n```\n")
        assert run_docs_check([str(tmp_path)]) == 1
        assert "ZeroDivisionError" in capsys.readouterr().err

    def test_missing_path_fails(self, tmp_path, capsys):
        assert run_docs_check([str(tmp_path / "nope.md")]) == 2

    def test_repo_docs_pass(self):
        """The checked-in docs/ tree itself must stay executable."""
        assert run_docs_check(["docs"]) == 0

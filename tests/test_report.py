"""Tests for the plain-text report renderers."""

import pytest

from repro.harness.report import format_seconds, render_series, render_table, sparkline


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["job", "time"], [["J1", 1.2], ["J2", 1.8]])
        lines = out.splitlines()
        assert lines[0].startswith("job")
        assert "----" in lines[1]
        assert "J1" in lines[2]
        assert "1.200" in lines[2]

    def test_title(self):
        out = render_table(["a"], [[1]], title="Figure 2")
        assert out.splitlines()[0] == "Figure 2"

    def test_column_width_accommodates_data(self):
        out = render_table(["x"], [["a-very-long-cell"]])
        header, sep, row = out.splitlines()
        assert len(sep) >= len("a-very-long-cell")

    def test_scientific_for_extremes(self):
        out = render_table(["v"], [[1e-9]])
        assert "e-09" in out

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [["only-one"]])

    def test_rejects_empty_headers(self):
        with pytest.raises(ValueError, match="header"):
            render_table([], [])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_resamples_long_series(self):
        assert len(sparkline(list(range(1000)), width=40)) <= 40

    def test_empty(self):
        assert sparkline([]) == ""


class TestRenderSeries:
    def test_includes_name_and_range(self):
        out = render_series("iters", [1.0, 2.0, 3.0], unit="s")
        assert out.startswith("iters:")
        assert "min 1.000" in out
        assert "max 3.000 s" in out

    def test_empty_series(self):
        assert "(empty)" in render_series("x", [])


class TestFormatSeconds:
    def test_milliseconds(self):
        assert format_seconds(0.0123) == "12.3 ms"

    def test_seconds(self):
        assert format_seconds(1.8) == "1.800 s"

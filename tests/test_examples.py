"""Smoke tests: every example script runs end to end.

Examples are part of the public deliverable; these tests execute the fast
ones as subprocesses (the same way a user would) and check their headline
output.  The slowest examples are exercised indirectly by the benchmarks
that share their code paths.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "mltcp" in out
        assert "ideal iteration time" in out

    def test_four_jobs_vs_baselines(self):
        out = run_example("four_jobs_vs_baselines.py")
        assert "optimal (Cassini-like)" in out
        assert "srpt" in out
        assert "mltcp" in out

    def test_aggressiveness_playground(self):
        out = run_example("aggressiveness_playground.py")
        assert "interleaved" in out
        assert "congested" in out
        assert "custom-sqrt" in out

    def test_multi_resource_scheduling(self):
        out = run_example("multi_resource_scheduling.py")
        assert "progress-weighted" in out
        assert "equal" in out

    def test_cluster_scale(self):
        out = run_example("cluster_scale.py")
        assert "tcp-fair" in out
        assert "mltcp" in out

    @pytest.mark.slow
    def test_packet_level_dumbbell(self):
        out = run_example("packet_level_dumbbell.py")
        assert "interleaved" in out

    @pytest.mark.slow
    def test_theory_and_fairness(self):
        out = run_example("theory_and_fairness.py")
        assert "gradient descent" in out
        assert "share ratio" in out

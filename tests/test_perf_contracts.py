"""The fast-path equivalence and regression-gate contracts.

Two halves:

* **Equivalence** — the optimized tree must reproduce, bit for bit, the
  fingerprints captured on the pre-optimization tree
  (``tests/fixtures/perf_contracts_seed.json``; see
  ``tests/perf_fixtures.py`` for what is fingerprinted and why event
  counts are excluded).  Every float is compared via its ``hex()``
  rendering, so a single-ulp drift anywhere in a run fails loudly.
* **The gate itself** — ``repro.harness.perfbench`` and the
  ``repro bench-compare`` CLI: report parsing in both formats, baseline
  round-trips, regression/missing semantics, and the shared
  ``repro.cliutil`` exit codes.

Plus the allocation-cache protocol the fluid fast path leans on:
``AllocationPolicy.cache_key`` must be stable exactly when reusing the
previous rates is sound.
"""

import json

import pytest

from repro.cli import main
from repro.fluid.allocation import FairShare, FlowView, MLTCPWeighted
from repro.harness.perfbench import (
    DEFAULT_REGRESSION_THRESHOLD,
    BenchStat,
    compare,
    load_report,
    write_baseline,
)

from .perf_fixtures import (
    FIXTURE_PATH,
    fluid_fingerprint,
    network_fluid_fingerprint,
    packet_fingerprint,
    water_fill_fingerprint,
)


@pytest.fixture(scope="module")
def seed_fixture():
    return json.loads(FIXTURE_PATH.read_text())


class TestSeedEquivalence:
    """The optimized tree reproduces the seed tree's floats exactly."""

    def test_fluid_run_is_bit_identical(self, seed_fixture):
        assert fluid_fingerprint() == seed_fixture["fluid"]

    def test_network_fluid_run_is_bit_identical(self, seed_fixture):
        assert network_fluid_fingerprint() == seed_fixture["network_fluid"]

    def test_packet_run_is_bit_identical(self, seed_fixture):
        assert packet_fingerprint() == seed_fixture["packet"]

    def test_water_fill_vectors_are_bit_identical(self, seed_fixture):
        assert water_fill_fingerprint() == seed_fixture["water_fill"]


def _stat(name, min_s, mean_s=None, rounds=10):
    return BenchStat(
        name=name,
        min_seconds=min_s,
        mean_seconds=min_s * 1.1 if mean_s is None else mean_s,
        rounds=rounds,
    )


class TestPerfbench:
    def test_benchstat_rejects_nonpositive_values(self):
        with pytest.raises(ValueError):
            _stat("t", 0.0)
        with pytest.raises(ValueError):
            _stat("t", 1.0, rounds=0)

    def test_load_raw_pytest_benchmark_report(self, tmp_path):
        raw = {
            "benchmarks": [
                {"name": "bench_a", "stats": {"min": 0.01, "mean": 0.012, "rounds": 30}},
                {"name": "bench_b", "stats": {"min": 0.5, "mean": 0.55, "rounds": 5}},
            ]
        }
        path = tmp_path / "raw.json"
        path.write_text(json.dumps(raw))
        stats = load_report(path)
        assert set(stats) == {"bench_a", "bench_b"}
        assert stats["bench_a"].min_seconds == pytest.approx(0.01)
        assert stats["bench_b"].rounds == 5

    def test_baseline_roundtrip(self, tmp_path):
        stats = {"bench_a": _stat("bench_a", 0.01), "bench_b": _stat("bench_b", 0.5)}
        path = write_baseline(tmp_path / "base.json", stats, note="test baseline")
        loaded = load_report(path)
        assert loaded == stats
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-perf-baseline/1"
        assert payload["note"] == "test baseline"
        assert list(payload["benchmarks"]) == ["bench_a", "bench_b"]  # sorted

    def test_write_baseline_refuses_empty(self, tmp_path):
        with pytest.raises(ValueError):
            write_baseline(tmp_path / "empty.json", {})

    def test_load_report_rejects_unknown_shape(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"results": []}')
        with pytest.raises(ValueError):
            load_report(path)

    def test_compare_flags_regressions_beyond_threshold(self):
        baseline = {"b": _stat("b", 0.100)}
        within = compare({"b": _stat("b", 0.114)}, baseline)
        assert within.ok and not within.rows[0].regressed
        beyond = compare({"b": _stat("b", 0.116)}, baseline)
        assert not beyond.ok
        assert [row.name for row in beyond.regressions] == ["b"]

    def test_compare_speedup_direction(self):
        cmp = compare({"b": _stat("b", 0.05)}, {"b": _stat("b", 0.10)})
        assert cmp.rows[0].speedup == pytest.approx(2.0)

    def test_missing_benchmark_is_a_violation(self):
        cmp = compare({}, {"gone": _stat("gone", 0.1)})
        assert cmp.missing == ("gone",)
        assert not cmp.ok

    def test_extra_current_benchmarks_are_ignored(self):
        cmp = compare(
            {"a": _stat("a", 0.1), "new": _stat("new", 9.0)},
            {"a": _stat("a", 0.1)},
        )
        assert cmp.ok and len(cmp.rows) == 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare({}, {}, threshold=-0.1)

    def test_default_threshold_matches_the_issue_gate(self):
        assert DEFAULT_REGRESSION_THRESHOLD == pytest.approx(0.15)


class TestBenchCompareCli:
    def _write_baseline(self, tmp_path, name, min_map):
        stats = {n: _stat(n, m) for n, m in min_map.items()}
        return write_baseline(tmp_path / name, stats)

    def test_clean_comparison_exits_zero(self, tmp_path, capsys):
        base = self._write_baseline(tmp_path, "base.json", {"b": 0.1})
        cur = self._write_baseline(tmp_path, "cur.json", {"b": 0.05})
        assert main(["bench-compare", str(cur), "--baseline", str(base)]) == 0
        out = capsys.readouterr().out
        assert "2.00x" in out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = self._write_baseline(tmp_path, "base.json", {"b": 0.1})
        cur = self._write_baseline(tmp_path, "cur.json", {"b": 0.2})
        assert main(["bench-compare", str(cur), "--baseline", str(base)]) == 1
        assert "violation" in capsys.readouterr().err

    def test_missing_benchmark_exits_one(self, tmp_path, capsys):
        base = self._write_baseline(tmp_path, "base.json", {"b": 0.1, "gone": 0.1})
        cur = self._write_baseline(tmp_path, "cur.json", {"b": 0.1})
        assert main(["bench-compare", str(cur), "--baseline", str(base)]) == 1
        assert "gone" in capsys.readouterr().err

    def test_threshold_flag_loosens_the_gate(self, tmp_path, capsys):
        base = self._write_baseline(tmp_path, "base.json", {"b": 0.1})
        cur = self._write_baseline(tmp_path, "cur.json", {"b": 0.18})
        argv = ["bench-compare", str(cur), "--baseline", str(base)]
        assert main(argv + ["--threshold", "1.0"]) == 0
        capsys.readouterr()
        assert main(argv) == 1
        capsys.readouterr()

    def test_unreadable_report_exits_two(self, tmp_path, capsys):
        base = self._write_baseline(tmp_path, "base.json", {"b": 0.1})
        missing = tmp_path / "nope.json"
        assert main(["bench-compare", str(missing), "--baseline", str(base)]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_save_writes_compact_baseline(self, tmp_path, capsys):
        base = self._write_baseline(tmp_path, "base.json", {"b": 0.1})
        cur = self._write_baseline(tmp_path, "cur.json", {"b": 0.05})
        saved = tmp_path / "saved.json"
        assert main([
            "bench-compare", str(cur), "--baseline", str(base),
            "--save", str(saved), "--note", "from test",
        ]) == 0
        capsys.readouterr()
        assert load_report(saved) == load_report(cur)
        assert json.loads(saved.read_text())["note"] == "from test"

    def test_select_restricts_the_gate_to_matching_baseline_entries(
        self, tmp_path, capsys
    ):
        """`--select` lets a partial report gate only its own benchmarks."""
        base = self._write_baseline(
            tmp_path, "base.json", {"test_scale_a": 0.1, "test_other": 0.1}
        )
        cur = self._write_baseline(tmp_path, "cur.json", {"test_scale_a": 0.1})
        argv = ["bench-compare", str(cur), "--baseline", str(base)]
        # Without --select the absent test_other is a violation...
        assert main(argv) == 1
        capsys.readouterr()
        # ...with it, only the matching subset is compared.
        assert main(argv + ["--select", "test_scale_*"]) == 0
        out = capsys.readouterr().out
        assert "test_scale_a" in out and "test_other" not in out

    def test_select_matching_nothing_is_a_usage_error(self, tmp_path, capsys):
        base = self._write_baseline(tmp_path, "base.json", {"b": 0.1})
        cur = self._write_baseline(tmp_path, "cur.json", {"b": 0.1})
        argv = [
            "bench-compare", str(cur), "--baseline", str(base),
            "--select", "nope_*",
        ]
        assert main(argv) == 2
        assert "matches no benchmark" in capsys.readouterr().err

    def test_committed_scale_baseline_meets_the_3x_criterion(self, capsys):
        """The PR-9 acceptance command: vectorized tree vs the scalar seed."""
        argv = [
            "bench-compare", "bench_reports/perf_baseline.json",
            "--baseline", "bench_reports/perf_scale_seed.json",
            "--select", "test_scale_*", "--threshold", "1000",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        rows = {
            line.split()[0]: float(line.split()[-1].rstrip("x"))
            for line in out.splitlines()
            if line.startswith("test_scale_")
        }
        assert rows["test_scale_network_fluid_1000x64"] >= 3.0
        assert rows["test_scale_single_link_10k_flows"] >= 3.0

    def test_committed_baseline_shows_the_claimed_speedups(self, capsys):
        """The PR's acceptance command: optimized baseline vs the seed."""
        assert main(["bench-compare", "bench_reports/perf_baseline.json"]) == 0
        out = capsys.readouterr().out
        rows = {
            line.split()[0]: float(line.split()[-1].rstrip("x"))
            for line in out.splitlines()
            if line.startswith("test_")
        }
        assert rows["test_event_engine_throughput"] >= 2.0
        assert rows["test_fluid_four_jobs_benchmark"] >= 1.5


def _views():
    return [
        FlowView(flow_id="a", demand_bps=1e9, remaining_bits=5e8, sent_bits=5e8,
                 total_bits=1e9),
        FlowView(flow_id="b", demand_bps=2e9, remaining_bits=1e9, sent_bits=0.0,
                 total_bits=1e9),
    ]


class TestAllocationCacheKeys:
    def test_fair_share_key_stable_across_progress(self):
        policy = FairShare()
        views = _views()
        key1 = policy.cache_key(views, 1e9)
        views[0].sent_bits += 1e6  # progress alone must not invalidate
        assert policy.cache_key(views, 1e9) == key1

    def test_fair_share_key_changes_with_population_and_capacity(self):
        policy = FairShare()
        views = _views()
        key = policy.cache_key(views, 1e9)
        assert policy.cache_key(views[:1], 1e9) != key
        assert policy.cache_key(views, 2e9) != key

    def test_mltcp_default_is_exact_so_never_cached(self):
        assert MLTCPWeighted().cache_key(_views(), 1e9) is None

    def test_mltcp_granularity_buckets_progress(self):
        policy = MLTCPWeighted(ratio_granularity=0.1)
        views = _views()
        key = policy.cache_key(views, 1e9)
        views[0].sent_bits = 5.4e8  # 0.50 -> 0.54: same 0.1-wide bucket
        assert policy.cache_key(views, 1e9) == key
        views[0].sent_bits = 6.5e8  # 0.65: next bucket
        assert policy.cache_key(views, 1e9) != key

    def test_mltcp_granularity_validation(self):
        with pytest.raises(ValueError):
            MLTCPWeighted(ratio_granularity=0.0)
        with pytest.raises(ValueError):
            MLTCPWeighted(ratio_granularity=-0.5)

    def test_cached_policy_matches_exact_policy_end_to_end(self):
        """Granularity-cached allocation must not change *which* rates are
        produced for identical inputs — only how often allocate() runs."""
        exact = MLTCPWeighted()
        cached = MLTCPWeighted(ratio_granularity=0.05)
        views = _views()
        assert exact.allocate(views, 1e9) == cached.allocate(views, 1e9)

"""Seed-fixture fingerprints for the fast-path equivalence contract.

The perf overhaul (engine heap entries, packet pool, batched link
serialization, cached fluid allocations) must be *behaviour preserving*:
the optimized tree has to reproduce the exact floats the seed tree
produced.  This module computes JSON-serializable fingerprints of a
fluid run, a network-fluid run, a packet-level run, and a handful of
``water_fill`` vectors, with every float rendered via ``float.hex()`` so
the comparison in ``tests/test_perf_contracts.py`` is bit-exact.

The checked-in fixture (``tests/fixtures/perf_contracts_seed.json``) was
generated on the pre-optimization tree.  Regenerate it only when a PR
*intentionally* changes simulation numerics:

    PYTHONPATH=src python -m tests.perf_fixtures

Event *counts* are deliberately excluded: batched serialization changes
how many events a transfer schedules (that is the point) while leaving
every externally visible timestamp identical.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

FIXTURE_PATH = Path(__file__).resolve().parent / "fixtures" / "perf_contracts_seed.json"


def _hex(value: float) -> str:
    return float(value).hex()


def fluid_fingerprint() -> dict[str, Any]:
    """Four MLTCP-weighted jobs on one 50 Gbps link, segments included."""
    from repro.fluid import run_fluid
    from repro.fluid.allocation import MLTCPWeighted
    from repro.workloads import four_job_scenario

    result = run_fluid(
        four_job_scenario(),
        capacity_gbps=50.0,
        policy=MLTCPWeighted(),
        max_iterations=8,
        seed=7,
    )
    return {
        "iterations": [
            [
                it.job,
                it.index,
                _hex(it.comm_start),
                _hex(it.comm_end),
                _hex(it.iteration_end),
            ]
            for it in result.iterations
        ],
        "end_time": _hex(result.end_time),
        "segments": [
            {
                "start": _hex(seg.start),
                "end": _hex(seg.end),
                "rates": {job: _hex(rate) for job, rate in sorted(seg.rates_bps.items())},
            }
            for seg in result.segments
        ],
    }


def network_fluid_fingerprint() -> dict[str, Any]:
    """Two jobs sharing a core link across a three-link path set."""
    from repro.fluid.network import PlacedJob, run_network_fluid
    from repro.workloads import two_job_scenario

    jobs = two_job_scenario(jitter_sigma=0.001)
    placements = [
        PlacedJob(job=jobs[0], links=("up", "core")),
        PlacedJob(job=jobs[1], links=("core", "down")),
    ]
    result = run_network_fluid(
        placements,
        {"up": 50.0, "core": 40.0, "down": 50.0},
        max_iterations=6,
        seed=11,
    )
    return {
        "iterations": [
            [
                it.job,
                it.index,
                _hex(it.comm_start),
                _hex(it.comm_end),
                _hex(it.iteration_end),
            ]
            for it in result.iterations
        ],
        "end_time": _hex(result.end_time),
    }


def packet_fingerprint() -> dict[str, Any]:
    """Two small MLTCP-Reno jobs through the packet simulator.

    Only app-level timestamps are captured: the batched link scheduler
    changes the event *count* by design, while delivery times (and hence
    every iteration boundary) must stay bit-identical.
    """
    from repro.harness.packetlab import mltcp_config_for, run_packet_jobs
    from repro.tcp.mltcp import MLTCPReno
    from repro.workloads.job import JobSpec

    template = JobSpec(
        name="Job",
        comm_bits=8e6,
        demand_gbps=1.0,
        compute_time=0.010,
        jitter_sigma=0.0005,
    )
    jobs = [template.with_name("Job1"), template.with_name("Job2")]
    lab = run_packet_jobs(
        jobs,
        lambda job: MLTCPReno(mltcp_config_for(job)),
        bottleneck_bps=1e9,
        max_iterations=6,
        seed=3,
    )
    return {
        "apps": {
            name: [
                [
                    it.index,
                    _hex(it.comm_start),
                    _hex(it.comm_end),
                    _hex(it.iteration_end),
                ]
                for it in app.iterations
            ]
            for name, app in sorted(lab.apps.items())
        },
    }


def water_fill_fingerprint() -> dict[str, Any]:
    """Fixed demand/weight vectors through ``water_fill``, rates in hex."""
    from repro.fluid.allocation import water_fill

    cases = {
        "undersubscribed": (
            {f"f{i}": 1e8 * (i + 1) for i in range(6)},
            {f"f{i}": 1.0 for i in range(6)},
            5e9,
        ),
        "oversubscribed_weighted": (
            {f"flow{i:02d}": 1e9 / (i + 2) for i in range(12)},
            {f"flow{i:02d}": 1.0 / (3 + i) for i in range(12)},
            2.5e9,
        ),
        "mixed_caps": (
            {"a": 4e9, "b": 1e9, "c": 2e9, "d": 5e8},
            {"a": 3.0, "b": 1.0, "c": 1.0, "d": 0.5},
            5e9,
        ),
        "zero_weights": (
            {"a": 2e9, "b": 2e9, "c": 1e9},
            {"a": 0.0, "b": 0.0, "c": 0.0},
            3e9,
        ),
    }
    out: dict[str, Any] = {}
    for name, (demands, weights, capacity) in cases.items():
        rates = water_fill(demands, weights, capacity)
        out[name] = {fid: _hex(rates[fid]) for fid in sorted(rates)}
    return out


def capture_all() -> dict[str, Any]:
    return {
        "fluid": fluid_fingerprint(),
        "network_fluid": network_fluid_fingerprint(),
        "packet": packet_fingerprint(),
        "water_fill": water_fill_fingerprint(),
    }


def main() -> None:
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps(capture_all(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE_PATH}")


if __name__ == "__main__":
    main()

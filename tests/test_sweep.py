"""Tests for the multi-seed repetition/sweep harness."""

import numpy as np
import pytest

from repro.fluid.allocation import MLTCPWeighted
from repro.fluid.flowsim import run_fluid
from repro.harness.sweep import SeedSummary, repeat_with_seeds, sweep
from repro.workloads.presets import gpt2_heavy_job, identical_jobs


class TestRepeatWithSeeds:
    def test_deterministic_experiment(self):
        summary = repeat_with_seeds(lambda seed: 4.2, seeds=[1, 2, 3])
        assert summary.mean == pytest.approx(4.2)
        assert summary.std == 0.0
        assert summary.ci95 == (pytest.approx(4.2), pytest.approx(4.2))

    def test_seed_dependent_experiment(self):
        summary = repeat_with_seeds(
            lambda seed: float(np.random.default_rng(seed).normal(10.0, 1.0)),
            seeds=range(30),
        )
        assert summary.mean == pytest.approx(10.0, abs=0.7)
        assert summary.n == 30
        lo, hi = summary.ci95
        assert lo < summary.mean < hi

    def test_single_seed_has_zero_ci(self):
        summary = repeat_with_seeds(lambda seed: float(seed), seeds=[7])
        assert summary.ci95_halfwidth == 0.0

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError, match="seed"):
            repeat_with_seeds(lambda seed: 1.0, seeds=[])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            repeat_with_seeds(lambda seed: float("nan"), seeds=[1])


class TestSweep:
    def test_grid_crossing(self):
        rows = sweep(
            lambda seed, a, b: a * 10 + b + 0.0 * seed,
            grid={"a": [1, 2], "b": [3, 4]},
            seeds=[0, 1],
        )
        assert len(rows) == 4
        points = {(r["a"], r["b"]) for r in rows}
        assert points == {(1, 3), (1, 4), (2, 3), (2, 4)}
        assert all(isinstance(r["summary"], SeedSummary) for r in rows)

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError, match="grid"):
            sweep(lambda seed: 1.0, grid={}, seeds=[1])

    def test_real_experiment_convergence_is_seed_stable(self):
        """The headline result holds across seeds, not just seed 1."""

        def final_iteration_time(seed: int) -> float:
            jobs = identical_jobs(gpt2_heavy_job(), 2)
            result = run_fluid(
                jobs, 50.0, policy=MLTCPWeighted(), max_iterations=30, seed=seed
            )
            return float(result.mean_iteration_by_round()[-5:].mean())

        summary = repeat_with_seeds(final_iteration_time, seeds=[1, 2, 3, 4, 5])
        assert summary.mean == pytest.approx(1.8, rel=0.02)
        assert summary.std < 0.02

"""Tests for the fault-injection subsystem (repro.faults, docs/FAULTS.md).

Covers the three layers: the declarative schedule (eager validation, JSON
round-trip), the per-substrate injectors (fluid capacity/compute mapping,
packet link/app hooks), and the recovery experiment built on top — MLTCP
re-converges after a link flap and after a job restart in *both*
simulators, and a seeded schedule replays bit-identically.
"""

import numpy as np
import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    FluidFaultState,
    install_packet_faults,
)
from repro.faults.fluid import ECN_STORM_CAPACITY_FACTOR
from repro.fluid.allocation import FairShare, MLTCPWeighted
from repro.fluid.flowsim import run_fluid
from repro.harness.experiments import fault_recovery
from repro.harness.packetlab import mltcp_config_for, run_packet_jobs
from repro.tcp.dctcp import DctcpCC
from repro.tcp.mltcp import MLTCPReno
from repro.workloads.job import JobSpec
from repro.workloads.presets import three_job_scenario


def _flap(time=2.0, duration=0.5, **kw):
    return FaultSchedule(
        events=(FaultEvent(kind="link_down", time=time, duration=duration),),
        **kw,
    )


class TestScheduleValidation:
    def test_unknown_kind_lists_valid_ones(self):
        with pytest.raises(ValueError, match="unknown kind.*link_down"):
            FaultSchedule(events=(FaultEvent(kind="gremlin", time=1.0),))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time must be non-negative"):
            FaultSchedule(
                events=(FaultEvent(kind="link_down", time=-1.0, duration=1.0),)
            )

    def test_bandwidth_factor_range(self):
        for factor in (0.0, 1.0, 1.5, -0.1):
            with pytest.raises(ValueError, match=r"factor must be in \(0, 1\)"):
                FaultSchedule(
                    events=(
                        FaultEvent(
                            kind="bandwidth", time=0.0, duration=1.0, factor=factor
                        ),
                    )
                )

    def test_loss_range(self):
        with pytest.raises(ValueError, match=r"loss must be in \(0, 1\)"):
            FaultSchedule(
                events=(
                    FaultEvent(kind="loss_burst", time=0.0, duration=1.0, loss=1.0),
                )
            )

    def test_straggler_needs_slowdown_factor(self):
        with pytest.raises(ValueError, match="factor must exceed 1"):
            FaultSchedule(
                events=(
                    FaultEvent(
                        kind="straggler", time=0.0, duration=1.0,
                        job="J", factor=0.5,
                    ),
                )
            )

    def test_instant_link_faults_need_duration(self):
        with pytest.raises(ValueError, match="positive duration"):
            FaultSchedule(events=(FaultEvent(kind="link_down", time=1.0),))

    def test_link_and_job_targets_cannot_cross(self):
        with pytest.raises(ValueError, match="link fault cannot name a job"):
            FaultSchedule(
                events=(
                    FaultEvent(kind="link_down", time=0.0, duration=1.0, job="J"),
                )
            )
        with pytest.raises(ValueError, match="job fault cannot name a link"):
            FaultSchedule(
                events=(
                    FaultEvent(
                        kind="job_restart", time=0.0, job="J", link="a->b"
                    ),
                )
            )
        with pytest.raises(ValueError, match="must name its target job"):
            FaultSchedule(events=(FaultEvent(kind="job_restart", time=0.0),))

    def test_target_existence_checked_when_names_known(self):
        flap = FaultSchedule(
            events=(
                FaultEvent(
                    kind="link_down", time=0.0, duration=1.0, link="sw_l->sw_r"
                ),
            )
        )
        flap.validate(link_names=["sw_l->sw_r"])  # fine
        with pytest.raises(ValueError, match="does not exist.*bottleneck"):
            flap.validate(link_names=["bottleneck"])

        restart = FaultSchedule(
            events=(FaultEvent(kind="job_restart", time=0.0, job="Ghost"),)
        )
        with pytest.raises(ValueError, match="'Ghost' is not in the scenario"):
            restart.validate(job_names=["Job1", "Job2"])

    def test_error_names_the_offending_event(self):
        with pytest.raises(ValueError, match=r"event #1 \('bandwidth'\)"):
            FaultSchedule(
                events=(
                    FaultEvent(kind="link_down", time=0.0, duration=1.0),
                    FaultEvent(kind="bandwidth", time=1.0, duration=1.0, factor=2.0),
                )
            )

    def test_transition_times_include_restart_rejoin(self):
        schedule = FaultSchedule(
            events=(
                FaultEvent(kind="link_down", time=2.0, duration=0.5),
                FaultEvent(
                    kind="job_restart", time=4.0, job="J", restart_delay=1.0
                ),
            )
        )
        assert schedule.transition_times() == (2.0, 2.5, 4.0, 5.0)

    def test_describe_mentions_kind_target_and_time(self):
        text = FaultEvent(
            kind="bandwidth", time=2.0, duration=1.0, factor=0.5
        ).describe()
        assert "bandwidth" in text and "t=2s" in text and "factor=0.5" in text


class TestScheduleJson:
    def test_roundtrip_through_file(self, tmp_path):
        schedule = FaultSchedule(
            events=(
                FaultEvent(kind="link_down", time=2.0, duration=0.5),
                FaultEvent(
                    kind="job_restart", time=4.0, job="Job2", restart_delay=1.0
                ),
            ),
            seed=7,
        )
        path = tmp_path / "faults.json"
        schedule.to_json(path)
        assert FaultSchedule.from_json(path) == schedule

    def test_roundtrip_through_string(self):
        schedule = _flap(seed=3)
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys.*'when'"):
            FaultSchedule.from_json(
                '{"events": [{"kind": "link_down", "when": 1.0}]}'
            )

    def test_invalid_json_and_shape_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultSchedule.from_json("{nope")
        with pytest.raises(ValueError, match="'events' list"):
            FaultSchedule.from_json('{"seed": 1}')

    def test_loaded_schedules_are_validated(self):
        with pytest.raises(ValueError, match="unknown kind"):
            FaultSchedule.from_json(
                '{"events": [{"kind": "gremlin", "time": 1.0}]}'
            )


class TestFluidMapping:
    JOBS = ("Job1", "Job2")

    def _state(self, *events, seed=0):
        return FluidFaultState(
            FaultSchedule(events=tuple(events), seed=seed), job_names=self.JOBS
        )

    def test_capacity_factor_per_kind(self):
        down = self._state(FaultEvent(kind="link_down", time=1.0, duration=1.0))
        assert down.capacity_factor(0.5) == 1.0
        assert down.capacity_factor(1.5) == 0.0
        assert down.capacity_factor(2.5) == 1.0

        degraded = self._state(
            FaultEvent(kind="bandwidth", time=0.0, duration=1.0, factor=0.25)
        )
        assert degraded.capacity_factor(0.5) == 0.25

        lossy = self._state(
            FaultEvent(kind="loss_burst", time=0.0, duration=1.0, loss=0.1)
        )
        assert lossy.capacity_factor(0.5) == pytest.approx(0.9)

        storm = self._state(FaultEvent(kind="ecn_storm", time=0.0, duration=1.0))
        assert storm.capacity_factor(0.5) == ECN_STORM_CAPACITY_FACTOR

    def test_concurrent_capacity_faults_compose_multiplicatively(self):
        state = self._state(
            FaultEvent(kind="bandwidth", time=0.0, duration=2.0, factor=0.5),
            FaultEvent(kind="loss_burst", time=1.0, duration=2.0, loss=0.2),
        )
        assert state.capacity_factor(1.5) == pytest.approx(0.5 * 0.8)

    def test_compute_scale_targets_one_job(self):
        state = self._state(
            FaultEvent(
                kind="straggler", time=0.0, duration=1.0, job="Job1", factor=3.0
            )
        )
        assert state.compute_scale("Job1", 0.5) == 3.0
        assert state.compute_scale("Job2", 0.5) == 1.0
        assert state.compute_scale("Job1", 1.5) == 1.0

    def test_due_restarts_fire_exactly_once(self):
        state = self._state(
            FaultEvent(kind="job_restart", time=1.0, job="Job1", restart_delay=0.5)
        )
        assert state.due_restarts(0.5) == []
        due = state.due_restarts(1.0)
        assert [e.job for e in due] == ["Job1"]
        assert state.due_restarts(2.0) == []  # not re-delivered

    def test_next_transition_after(self):
        state = self._state(FaultEvent(kind="link_down", time=2.0, duration=0.5))
        assert state.next_transition_after(0.0) == 2.0
        assert state.next_transition_after(2.0) == 2.5
        assert state.next_transition_after(2.5) is None
        assert state.last_transition == 2.5

    def test_unknown_job_rejected_at_construction(self):
        with pytest.raises(ValueError, match="not in the scenario"):
            self._state(
                FaultEvent(kind="job_restart", time=1.0, job="Nope")
            )


class TestFluidReplay:
    def test_identical_schedule_and_seed_replays_bit_identically(self):
        def run():
            return run_fluid(
                three_job_scenario(),
                capacity_gbps=50.0,
                policy=MLTCPWeighted(),
                max_iterations=30,
                seed=11,
                faults=_flap(time=20.0, duration=3.0, seed=11),
            )

        first, second = run(), run()
        np.testing.assert_array_equal(
            first.mean_iteration_by_round(), second.mean_iteration_by_round()
        )
        assert first.fault_log == second.fault_log

    def test_fault_log_records_strike_and_reversion(self):
        result = run_fluid(
            three_job_scenario(),
            capacity_gbps=50.0,
            policy=MLTCPWeighted(),
            max_iterations=30,
            seed=1,
            faults=_flap(time=20.0, duration=3.0),
        )
        assert any("t=20s" in line for line in result.fault_log)
        assert any("t=23s" in line for line in result.fault_log)

    def test_link_down_actually_perturbs(self):
        kwargs = dict(
            capacity_gbps=50.0, policy=FairShare(), max_iterations=30, seed=1
        )
        clean = run_fluid(three_job_scenario(), **kwargs)
        faulted = run_fluid(
            three_job_scenario(), faults=_flap(time=20.0, duration=3.0), **kwargs
        )
        assert faulted.mean_iteration_by_round().max() > (
            clean.mean_iteration_by_round().max() + 1.0
        )


class TestRecoveryFluid:
    @pytest.mark.parametrize("fault", ["link_down", "job_restart"])
    def test_mltcp_reconverges(self, fault):
        result = fault_recovery(
            fault=fault, policy="mltcp", substrate="fluid", iterations=60, seed=5
        )
        assert result.recovered, result
        assert result.disturbed_rounds <= 10, result

    def test_job_restart_barely_disturbs_mltcp_but_derails_fair_share(self):
        mltcp = fault_recovery(
            fault="job_restart", policy="mltcp", substrate="fluid",
            iterations=60, seed=5,
        )
        reno = fault_recovery(
            fault="job_restart", policy="reno", substrate="fluid",
            iterations=60, seed=5,
        )
        assert mltcp.disturbed_rounds <= 2
        assert reno.disturbed_rounds > mltcp.disturbed_rounds

    def test_custom_schedule_json_is_replayed(self):
        schedule = FaultSchedule(
            events=(FaultEvent(kind="ecn_storm", time=30.0, duration=5.0),),
            seed=5,
        )
        result = fault_recovery(
            fault="custom", policy="mltcp", substrate="fluid",
            iterations=60, seed=5, schedule_json=schedule.to_json(),
        )
        assert result.fault == "custom"  # with a schedule, fault is a label
        assert any("t=30s" in line for line in result.fault_log)

    def test_unknown_fault_and_policy_rejected(self):
        with pytest.raises(ValueError, match="link_down"):
            fault_recovery(fault="gremlin", substrate="fluid")
        with pytest.raises(ValueError, match="policy"):
            fault_recovery(policy="carrier-pigeon", substrate="fluid")
        with pytest.raises(ValueError, match="substrate"):
            fault_recovery(substrate="abacus")


def _packet_jobs(n=2, comm_bits=2e6, compute=0.005):
    return [
        JobSpec(
            f"Job{i + 1}", comm_bits=comm_bits, demand_gbps=1.0,
            compute_time=compute,
        )
        for i in range(n)
    ]


class TestPacketInjector:
    def test_bad_link_name_fails_before_the_clock_starts(self):
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    kind="link_down", time=0.1, duration=0.1, link="no->where"
                ),
            )
        )
        with pytest.raises(ValueError, match="does not exist"):
            run_packet_jobs(
                _packet_jobs(), lambda job: MLTCPReno(mltcp_config_for(job)),
                max_iterations=2, faults=schedule,
            )

    def test_link_down_drops_and_recovers(self):
        schedule = _flap(time=0.03, duration=0.01)
        result = run_packet_jobs(
            _packet_jobs(),
            lambda job: MLTCPReno(mltcp_config_for(job)),
            max_iterations=20,
            until=0.5,
            faults=schedule,
        )
        bottleneck = result.network.links[("sw_l", "sw_r")]
        assert bottleneck.fault_drops > 0
        assert bottleneck.up  # reverted
        # Both jobs keep completing iterations after the flap.
        for job in result.jobs:
            assert len(result.iteration_times(job.name)) >= 10

    def test_ecn_storm_marks_dctcp_traffic(self):
        schedule = FaultSchedule(
            events=(FaultEvent(kind="ecn_storm", time=0.02, duration=0.02),)
        )
        result = run_packet_jobs(
            _packet_jobs(),
            lambda job: DctcpCC(),
            max_iterations=12,
            until=0.3,
            faults=schedule,
        )
        bottleneck = result.network.links[("sw_l", "sw_r")]
        assert bottleneck.storm_marks > 0
        assert not bottleneck.ecn_storm  # reverted

    def test_straggler_stretches_then_reverts_compute(self):
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    kind="straggler", time=0.02, duration=0.05,
                    job="Job1", factor=4.0,
                ),
            )
        )
        result = run_packet_jobs(
            _packet_jobs(),
            lambda job: MLTCPReno(mltcp_config_for(job)),
            max_iterations=20,
            until=0.4,
            faults=schedule,
        )
        app = result.apps["Job1"]
        assert app.compute_scale == 1.0  # reverted by end of run
        # The straggler window must contain visibly stretched iterations.
        times = result.iteration_times("Job1")
        assert times.max() > 2.0 * np.median(times)

    def test_job_restart_aborts_transfer_and_resets_mltcp_progress(self):
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    kind="job_restart", time=0.03, job="Job1",
                    restart_delay=0.01,
                ),
            )
        )
        result = run_packet_jobs(
            _packet_jobs(),
            lambda job: MLTCPReno(mltcp_config_for(job)),
            max_iterations=20,
            until=0.4,
            faults=schedule,
        )
        app = result.apps["Job1"]
        sender = result.senders["Job1"]
        assert app.restarts == 1
        assert sender.transfers_aborted == 1
        # The fresh iteration restarted Algorithm 1's progress: by the end
        # of the run bytes_sent reflects post-restart iterations only, never
        # a stale carry-over above one iteration's volume (ACKs are counted
        # in whole segments, so allow one MSS of rounding).
        tracker = sender.cc.mltcp.tracker
        assert tracker.bytes_sent <= result.jobs[0].comm_bytes + sender.mss_bytes
        assert len(result.iteration_times("Job1")) >= 8

    def test_job_restart_fully_resets_learned_tracker_state(self):
        # Regression (docs/ROBUSTNESS.md): restart used to reset only
        # bytes_sent, keeping the learned TOTAL_BYTES/COMP_TIME and the
        # completed-iteration history — so a pre-fault estimate poisoned
        # the max-window of the first post-restart iterations.  The
        # tracker must re-learn from post-restart traffic only.
        from repro.core.config import MLTCPConfig

        restart_time = 0.06
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    kind="job_restart", time=restart_time, job="Job1",
                    restart_delay=0.01,
                ),
            )
        )
        result = run_packet_jobs(
            _packet_jobs(),
            # Learning mode: TOTAL_BYTES unset, boundaries from comp_time.
            lambda job: MLTCPReno(
                MLTCPConfig(comp_time=max(1e-4, 0.3 * job.compute_time))
            ),
            max_iterations=40,
            until=0.4,
            faults=schedule,
        )
        assert result.apps["Job1"].restarts == 1
        tracker = result.senders["Job1"].cc.mltcp.tracker
        # Every surviving iteration record post-dates the restart: the
        # pre-fault history (and anything learned from it) was discarded.
        assert tracker.completed_iterations
        assert all(
            record.start_time >= restart_time
            for record in tracker.completed_iterations
        )
        # And re-learning completed from fresh traffic: the new estimate
        # matches the job's real per-iteration volume.
        comm_bytes = result.jobs[0].comm_bytes
        mss = result.senders["Job1"].mss_bytes
        assert tracker.total_bytes is not None
        assert 0.5 * comm_bytes <= tracker.total_bytes <= comm_bytes + 2 * mss

    def test_burst_loss_replays_deterministically(self):
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    kind="loss_burst", time=0.02, duration=0.05, loss=0.05
                ),
            ),
            seed=9,
        )

        def run():
            return run_packet_jobs(
                _packet_jobs(),
                lambda job: MLTCPReno(mltcp_config_for(job)),
                max_iterations=15,
                until=0.3,
                seed=3,
                faults=schedule,
            )

        first, second = run(), run()
        for job in ("Job1", "Job2"):
            np.testing.assert_array_equal(
                first.iteration_times(job), second.iteration_times(job)
            )
        assert (
            first.network.links[("sw_l", "sw_r")].fault_drops
            == second.network.links[("sw_l", "sw_r")].fault_drops
            > 0
        )


@pytest.mark.slow
class TestRecoveryPacket:
    @pytest.mark.parametrize("fault", ["link_down", "job_restart"])
    def test_mltcp_reconverges(self, fault):
        result = fault_recovery(
            fault=fault, policy="mltcp", substrate="packet",
            iterations=40, seed=5,
        )
        assert result.recovered, result
        assert result.disturbed_rounds <= 12, result
        assert result.fault_log  # the schedule actually armed something

"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.aggressiveness import LinearAggressiveness, paper_functions
from repro.core.analysis import loss, shift, signed_shift
from repro.core.config import MLTCPConfig
from repro.core.iteration import IterationTracker
from repro.fluid.allocation import FairShare, FlowView, MLTCPWeighted, SRPT, water_fill
from repro.harness.report import sparkline
from repro.metrics.stats import empirical_cdf, summarize
from repro.simulator.engine import Simulator

ratios = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
positive = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)


class TestAggressivenessProperties:
    @given(ratio=ratios)
    def test_paper_functions_stay_in_declared_range(self, ratio):
        for f in paper_functions().values():
            assert 0.25 - 1e-9 <= f(ratio) <= 2.0 + 1e-9

    @given(a=ratios, b=ratios)
    def test_linear_is_monotone(self, a, b):
        f = LinearAggressiveness()
        lo, hi = min(a, b), max(a, b)
        assert f(lo) <= f(hi) + 1e-12

    @given(
        ratio=st.floats(min_value=-10, max_value=10, allow_nan=False),
        slope=st.floats(min_value=0.0, max_value=10.0),
        intercept=st.floats(min_value=1e-6, max_value=10.0),
    )
    def test_linear_always_positive(self, ratio, slope, intercept):
        f = LinearAggressiveness(slope=slope, intercept=intercept)
        assert f(ratio) > 0


class TestShiftProperties:
    @given(
        delta=st.floats(min_value=0.0, max_value=1.0),
        alpha=st.floats(min_value=0.05, max_value=0.5),
        period=st.floats(min_value=0.5, max_value=10.0),
    )
    def test_shift_non_negative_and_bounded(self, delta, alpha, period):
        d = delta * alpha * period  # map into the overlap region
        value = shift(d, alpha, period)
        assert value >= 0.0
        # The shift never moves a pair past the disjoint point in one step.
        assert d + value <= alpha * period + 1e-9

    @given(
        delta=st.floats(min_value=0.0, max_value=10.0),
        alpha=st.floats(min_value=0.05, max_value=0.5),
    )
    def test_signed_shift_antisymmetry(self, delta, alpha):
        period = 2.0
        d = delta % period
        forward = signed_shift(d, alpha, period)
        backward = signed_shift((period - d) % period, alpha, period)
        assert forward == pytest.approx(-backward, abs=1e-9)

    @given(alpha=st.floats(min_value=0.1, max_value=0.5))
    @settings(max_examples=20, deadline=None)
    def test_loss_maximal_at_full_overlap(self, alpha):
        period = 2.0
        l0 = loss(1e-6, alpha, period)
        lmid = loss(period / 2, alpha, period)
        assert lmid <= l0 + 1e-9


class TestWaterFillProperties:
    flows = st.lists(
        st.tuples(positive, positive),  # (demand, weight)
        min_size=1,
        max_size=8,
    )

    @given(flows=flows, capacity=positive)
    def test_capacity_and_caps_respected(self, flows, capacity):
        demands = {f"f{i}": d for i, (d, _w) in enumerate(flows)}
        weights = {f"f{i}": w for i, (_d, w) in enumerate(flows)}
        rates = water_fill(demands, weights, capacity)
        assert sum(rates.values()) <= capacity * (1 + 1e-6) + 1e-9
        for fid, rate in rates.items():
            assert -1e-9 <= rate <= demands[fid] * (1 + 1e-6)

    @given(flows=flows, capacity=positive)
    def test_work_conserving(self, flows, capacity):
        """Either capacity is exhausted or every flow reached its demand."""
        demands = {f"f{i}": d for i, (d, _w) in enumerate(flows)}
        weights = {f"f{i}": w for i, (_d, w) in enumerate(flows)}
        rates = water_fill(demands, weights, capacity)
        total = sum(rates.values())
        all_capped = all(
            rates[fid] >= demands[fid] * (1 - 1e-6) for fid in demands
        )
        assert total >= min(capacity, sum(demands.values())) * (1 - 1e-6) or all_capped

    @given(
        weight_hi=st.floats(min_value=1.0, max_value=10.0),
        weight_lo=st.floats(min_value=0.01, max_value=1.0),
        capacity=positive,
    )
    def test_weight_monotonicity(self, weight_hi, weight_lo, capacity):
        assume(weight_hi > weight_lo)
        demands = {"hi": 1e6, "lo": 1e6}
        rates = water_fill(demands, {"hi": weight_hi, "lo": weight_lo}, capacity)
        assert rates["hi"] >= rates["lo"] - 1e-9


def _water_fill_reference(demands, weights, capacity):
    """The pre-optimization ``water_fill`` (sorted-set version), verbatim.

    The optimized implementation in :mod:`repro.fluid.allocation` keeps one
    incrementally-filtered sorted list instead of re-sorting a set every
    round; :class:`TestWaterFillEquivalence` pins the two to the same bits.
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity!r}")
    rates = {}
    unsaturated = {fid for fid in demands}
    remaining = capacity
    for fid, weight in weights.items():
        if weight < 0:
            raise ValueError(f"{fid}: weight must be non-negative, got {weight!r}")
    while unsaturated and remaining > 1e-12:
        total_weight = sum(weights[fid] for fid in sorted(unsaturated))
        if total_weight <= 0:
            equal = remaining / len(unsaturated)
            newly_capped = {
                fid for fid in unsaturated if demands[fid] <= equal + 1e-12
            }
            if not newly_capped:
                for fid in sorted(unsaturated):
                    rates[fid] = rates.get(fid, 0.0) + equal
                return rates
            for fid in sorted(newly_capped):
                rates[fid] = demands[fid]
                remaining -= demands[fid] - rates.get(fid, 0.0)
            remaining = capacity - sum(
                rates.get(fid, 0.0) for fid in demands if fid not in unsaturated
            )
            unsaturated -= newly_capped
            continue
        progressed = False
        shares = {
            fid: remaining * weights[fid] / total_weight
            for fid in sorted(unsaturated)
        }
        capped = {
            fid
            for fid in unsaturated
            if weights[fid] > 0 and shares[fid] >= demands[fid] - 1e-12
        }
        if capped:
            for fid in sorted(capped):
                rates[fid] = demands[fid]
                remaining -= demands[fid]
            unsaturated -= capped
            progressed = True
        if not progressed:
            for fid in sorted(unsaturated):
                rates[fid] = shares[fid]
            return {fid: max(0.0, rate) for fid, rate in rates.items()}
    for fid in sorted(unsaturated):
        rates.setdefault(fid, 0.0)
    return {fid: max(0.0, rate) for fid, rate in rates.items()}


class TestWaterFillEquivalence:
    """Optimized ``water_fill`` is bit-identical to the seed algorithm."""

    flows = st.lists(
        st.tuples(
            st.floats(min_value=1e3, max_value=1e12, allow_nan=False),  # demand
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),  # weight
        ),
        min_size=1,
        max_size=12,
    )

    @given(flows=flows, capacity=st.floats(min_value=1e3, max_value=1e12))
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_bit_for_bit(self, flows, capacity):
        demands = {f"f{i}": d for i, (d, _w) in enumerate(flows)}
        weights = {f"f{i}": w for i, (_d, w) in enumerate(flows)}
        got = water_fill(demands, weights, capacity)
        want = _water_fill_reference(demands, weights, capacity)
        assert set(got) == set(want)
        for fid in want:
            assert got[fid].hex() == want[fid].hex(), fid

    @given(flows=flows, capacity=st.floats(min_value=1e3, max_value=1e12))
    @settings(max_examples=100, deadline=None)
    def test_matches_reference_with_all_zero_weights(self, flows, capacity):
        demands = {f"f{i}": d for i, (d, _w) in enumerate(flows)}
        weights = {fid: 0.0 for fid in demands}
        got = water_fill(demands, weights, capacity)
        want = _water_fill_reference(demands, weights, capacity)
        assert {fid: r.hex() for fid, r in got.items()} == {
            fid: r.hex() for fid, r in want.items()
        }

    def test_validation_matches_reference(self):
        with pytest.raises(ValueError):
            water_fill({"a": 1.0}, {"a": 1.0}, 0.0)
        with pytest.raises(ValueError):
            water_fill({"a": 1.0}, {"a": -1.0}, 1.0)


class TestPolicyProperties:
    flow_lists = st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=1.0),  # remaining fraction
            st.floats(min_value=0.0, max_value=1.0),  # sent fraction
        ),
        min_size=1,
        max_size=6,
    )

    def _views(self, specs):
        return [
            FlowView(
                flow_id=f"f{i}",
                demand_bps=25e9,
                remaining_bits=r * 2e9,
                sent_bits=s * 2e9,
                total_bits=2e9,
            )
            for i, (r, s) in enumerate(specs)
        ]

    @given(specs=flow_lists)
    @settings(max_examples=50, deadline=None)
    def test_all_policies_respect_capacity(self, specs):
        flows = self._views(specs)
        for policy in (FairShare(), MLTCPWeighted(), SRPT()):
            rates = policy.allocate(flows, 50e9)
            assert sum(rates.values()) <= 50e9 * (1 + 1e-6)
            assert set(rates) == {f.flow_id for f in flows}

    @given(specs=flow_lists)
    @settings(max_examples=50, deadline=None)
    def test_mltcp_never_starves(self, specs):
        flows = self._views(specs)
        rates = MLTCPWeighted().allocate(flows, 50e9)
        for rate in rates.values():
            assert rate > 0.0


class TestIterationTrackerProperties:
    @given(
        acks=st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=60)
    )
    def test_ratio_always_valid_and_monotone_within_iteration(self, acks):
        tracker = IterationTracker(
            MLTCPConfig(total_bytes=15000, comp_time=1e9)
        )
        now, previous = 0.0, 0.0
        for acked in acks:
            now += 0.001
            ratio = tracker.on_ack(now, acked)
            assert 0.0 <= ratio <= 1.0
            assert ratio >= previous - 1e-12  # no resets: monotone
            previous = ratio

    @given(
        total=st.integers(min_value=1, max_value=10**9),
        acked=st.integers(min_value=0, max_value=10**9),
    )
    def test_single_ack_ratio_formula(self, total, acked):
        tracker = IterationTracker(MLTCPConfig(total_bytes=total, comp_time=1e9))
        ratio = tracker.on_ack(0.0, acked)
        assert ratio == pytest.approx(min(1.0, acked / total))


class TestEngineProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=40))
    def test_events_always_fire_in_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestStatsProperties:
    samples = st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=200,
    )

    @given(values=samples)
    def test_cdf_is_monotone_and_complete(self, values):
        xs, ps = empirical_cdf(values)
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(ps) > 0)
        assert ps[-1] == pytest.approx(1.0)

    @given(values=samples)
    def test_summary_ordering(self, values):
        s = summarize(values)
        # np.mean of identical floats can drift by one ulp; allow it.
        ulp = 1e-9 * max(1.0, abs(s.maximum), abs(s.minimum))
        assert s.minimum - ulp <= s.p50 <= s.p99 <= s.maximum + ulp
        assert s.minimum - ulp <= s.mean <= s.maximum + ulp


class TestSparklineProperties:
    @given(
        values=st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=500,
        ),
        width=st.integers(min_value=1, max_value=120),
    )
    def test_never_exceeds_width(self, values, width):
        line = sparkline(values, width=width)
        assert 1 <= len(line) <= max(width, len(values) if len(values) <= width else width)


class TestMultiResourceProperties:
    from hypothesis import strategies as _st

    task_specs = _st.lists(
        _st.tuples(
            _st.floats(min_value=1.0, max_value=32.0),   # work
            _st.floats(min_value=1.0, max_value=16.0),   # demand
            _st.floats(min_value=0.1, max_value=3.0),    # think time
        ),
        min_size=1,
        max_size=4,
    )

    @given(specs=task_specs)
    @settings(max_examples=20, deadline=None)
    def test_progress_weighted_never_beats_ideal(self, specs):
        """No schedule can finish a cycle faster than its ideal time."""
        from repro.multiresource import ProgressWeighted, run_multiresource, two_phase_task

        tasks = [
            two_phase_task(f"T{i}", "cpu", work=w, demand=d, think_time=t)
            for i, (w, d, t) in enumerate(specs)
        ]
        result = run_multiresource(
            tasks, {"cpu": 16.0}, policy=ProgressWeighted(), max_iterations=3, seed=0
        )
        for task in tasks:
            times = result.iteration_times(task.name)
            # Tasks keep cycling until *all* reach max_iterations, so faster
            # tasks may record extras.
            assert len(times) >= 3
            assert np.all(times >= task.ideal_iteration_time * (1 - 1e-6))

    @given(specs=task_specs)
    @settings(max_examples=20, deadline=None)
    def test_equal_share_also_completes(self, specs):
        from repro.multiresource import EqualShare, run_multiresource, two_phase_task

        tasks = [
            two_phase_task(f"T{i}", "cpu", work=w, demand=d, think_time=t)
            for i, (w, d, t) in enumerate(specs)
        ]
        result = run_multiresource(
            tasks, {"cpu": 16.0}, policy=EqualShare(), max_iterations=2, seed=0
        )
        for task in tasks:
            assert len(result.iteration_times(task.name)) >= 2


class TestNetworkMaxMinProperties:
    from hypothesis import strategies as _st

    flow_specs = _st.lists(
        _st.tuples(
            _st.floats(min_value=0.0, max_value=5.0),     # weight
            _st.floats(min_value=1e6, max_value=100e9),   # demand
            _st.integers(min_value=0, max_value=2),       # link subset id
        ),
        min_size=1,
        max_size=8,
    )

    @given(specs=flow_specs)
    @settings(max_examples=50, deadline=None)
    def test_capacity_and_caps_hold_network_wide(self, specs):
        from repro.fluid.network import weighted_max_min

        link_sets = [("a",), ("b",), ("a", "b")]
        flows = {
            f"f{i}": (w, d, link_sets[k]) for i, (w, d, k) in enumerate(specs)
        }
        capacities = {"a": 40e9, "b": 25e9}
        rates = weighted_max_min(flows, capacities)
        for fid, (_w, demand, _links) in flows.items():
            assert -1e-6 <= rates[fid] <= demand * (1 + 1e-6)
        for link, cap in capacities.items():
            usage = sum(
                rates[fid]
                for fid, (_w, _d, links) in flows.items()
                if link in links
            )
            assert usage <= cap * (1 + 1e-6)

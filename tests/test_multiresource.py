"""Tests for the §5 multi-resource generalization."""

import numpy as np
import pytest

from repro.core.aggressiveness import DecreasingLinearAggressiveness
from repro.multiresource import (
    EqualShare,
    MultiResourceSimulator,
    MultiResourceTask,
    ProgressWeighted,
    ResourcePhase,
    run_multiresource,
    two_phase_task,
)


def cpu_task(name, work=16.0, demand=16.0, think=1.0, jitter=0.01):
    return two_phase_task(
        name, "cpu", work=work, demand=demand, think_time=think, jitter_sigma=jitter
    )


class TestTaskModel:
    def test_ideal_iteration_time(self):
        task = cpu_task("T", work=16.0, demand=16.0, think=1.0)
        assert task.ideal_iteration_time == pytest.approx(2.0)

    def test_phase_fraction(self):
        task = cpu_task("T", work=16.0, demand=16.0, think=1.0)
        assert task.phase_fraction("cpu") == pytest.approx(0.5)

    def test_resources(self):
        task = cpu_task("T")
        assert task.resources() == {"cpu", "T-think"}

    def test_validation(self):
        with pytest.raises(ValueError, match="work"):
            ResourcePhase("cpu", work=0.0, demand=1.0)
        with pytest.raises(ValueError, match="demand"):
            ResourcePhase("cpu", work=1.0, demand=0.0)
        with pytest.raises(ValueError, match="non-empty"):
            ResourcePhase("", work=1.0, demand=1.0)
        with pytest.raises(ValueError, match="phase"):
            MultiResourceTask("T", phases=())

    def test_jitter_sampling(self):
        task = cpu_task("T", jitter=0.1)
        rng = np.random.default_rng(0)
        samples = [task.sample_jitter(rng) for _ in range(500)]
        assert all(s >= 0 for s in samples)
        assert max(samples) > 0

    def test_no_jitter_without_rng(self):
        assert cpu_task("T", jitter=0.5).sample_jitter(None) == 0.0


class TestSimulatorBasics:
    def test_isolated_task_at_ideal(self):
        task = cpu_task("T", jitter=0.0)
        result = run_multiresource([task], {"cpu": 16.0}, max_iterations=4, seed=None)
        assert result.iteration_times("T") == pytest.approx(
            np.full(4, 2.0), rel=1e-6
        )

    def test_contention_stretches(self):
        tasks = [cpu_task("A", jitter=0.0), cpu_task("B", jitter=0.0)]
        result = run_multiresource(tasks, {"cpu": 16.0}, max_iterations=3, seed=None)
        # Two tasks want all 16 cores simultaneously: phases take 2x.
        assert result.iteration_times("A")[0] == pytest.approx(3.0, rel=0.02)

    def test_unknown_resource_rejected(self):
        task = cpu_task("T")
        with pytest.raises(ValueError, match="no capacity"):
            MultiResourceSimulator([task], {"gpu": 8.0})

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            MultiResourceSimulator([cpu_task("T"), cpu_task("T")], {"cpu": 16.0})

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            MultiResourceSimulator([cpu_task("T")], {"cpu": 0.0})

    def test_start_offsets_respected(self):
        task = cpu_task("T", jitter=0.0)
        from dataclasses import replace

        offset_task = replace(task, start_offset=1.5)
        result = run_multiresource(
            [offset_task], {"cpu": 16.0}, max_iterations=2, seed=None
        )
        first = [it for it in result.iterations if it.index == 0][0]
        assert first.start == pytest.approx(1.5)


class TestSection5Generalization:
    """The paper's §5 claims, reproduced for CPU-core scheduling."""

    def test_progress_weighting_interleaves_cpu_tasks(self):
        tasks = [cpu_task("A"), cpu_task("B")]
        result = run_multiresource(
            tasks, {"cpu": 16.0}, policy=ProgressWeighted(), max_iterations=40, seed=1
        )
        rounds = result.mean_iteration_by_round()
        assert rounds[0] > 2.8  # starts contended
        assert rounds[-5:].mean() == pytest.approx(2.0, rel=0.03)

    def test_equal_share_stays_contended(self):
        tasks = [cpu_task("A"), cpu_task("B")]
        result = run_multiresource(
            tasks, {"cpu": 16.0}, policy=EqualShare(), max_iterations=40, seed=1
        )
        assert result.mean_iteration_by_round()[-5:].mean() > 2.8

    def test_cross_resource_pipelining(self):
        """Two tasks cycling cpu -> net interleave into a pipeline where
        one computes while the other communicates (the Muri/Cassini picture
        the paper generalizes to)."""
        from dataclasses import replace

        def task(name):
            t = MultiResourceTask(
                name,
                (
                    ResourcePhase("cpu", 16.0, 16.0),
                    ResourcePhase("net", 10.0, 10.0),
                ),
            )
            return replace(t, jitter_sigma=0.01)

        tasks = [task("A"), task("B")]
        capacities = {"cpu": 16.0, "net": 10.0}
        weighted = run_multiresource(
            tasks, capacities, policy=ProgressWeighted(), max_iterations=50, seed=2
        )
        equal = run_multiresource(
            tasks, capacities, policy=EqualShare(), max_iterations=50, seed=2
        )
        assert weighted.mean_iteration_by_round()[-5:].mean() == pytest.approx(
            2.0, rel=0.05
        )
        assert equal.mean_iteration_by_round()[-5:].mean() > 3.5

    def test_decreasing_function_does_not_interleave(self):
        """Requirement (ii) carries over to the multi-resource setting."""
        tasks = [cpu_task("A"), cpu_task("B")]
        result = run_multiresource(
            tasks,
            {"cpu": 16.0},
            policy=ProgressWeighted(DecreasingLinearAggressiveness()),
            max_iterations=40,
            seed=1,
        )
        assert result.mean_iteration_by_round()[-5:].mean() > 2.8

    def test_three_tasks_converge(self):
        tasks = [cpu_task(f"T{i}", work=8.0, think=2.0) for i in range(3)]
        # Each needs 16 cores for 0.5 s every 2.5 s: 3 x 0.5 = 1.5 < 2.5.
        result = run_multiresource(
            tasks, {"cpu": 16.0}, policy=ProgressWeighted(), max_iterations=60, seed=3
        )
        ideal = tasks[0].ideal_iteration_time
        assert result.mean_iteration_by_round()[-5:].mean() == pytest.approx(
            ideal, rel=0.05
        )

"""Tests for the Cassini-style compatibility metric."""

import pytest

from repro.schedulers.compatibility import (
    are_compatible,
    best_compatibility,
    compatibility_score,
)
from repro.workloads.job import JobSpec, gbit
from repro.workloads.presets import four_job_scenario


def heavy_job(name, offset=0.0):
    # Full-link demand, 50% duty cycle.
    return JobSpec(
        name=name,
        comm_bits=gbit(50.0),
        demand_gbps=50.0,
        compute_time=1.0,
        start_offset=offset,
    )


class TestScore:
    def test_synchronized_heavy_pair_half_compatible(self):
        jobs = [heavy_job("A"), heavy_job("B")]
        score = compatibility_score(jobs, 50.0)
        assert score == pytest.approx(0.5, abs=0.02)

    def test_offset_pair_fully_compatible(self):
        jobs = [heavy_job("A"), heavy_job("B", offset=1.0)]
        score = compatibility_score(jobs, 50.0)
        assert score == pytest.approx(1.0)

    def test_explicit_offsets_override_specs(self):
        jobs = [heavy_job("A"), heavy_job("B")]
        score = compatibility_score(jobs, 50.0, offsets={"A": 0.0, "B": 1.0})
        assert score == pytest.approx(1.0)

    def test_single_light_job_always_compatible(self):
        job = JobSpec("A", gbit(5.0), 10.0, 1.0)
        assert compatibility_score([job], 50.0) == 1.0


class TestBestCompatibility:
    def test_finds_the_interleave(self):
        jobs = [heavy_job("A"), heavy_job("B")]
        score, schedule = best_compatibility(jobs, 50.0)
        assert score == pytest.approx(1.0)
        assert schedule.is_interleaved

    def test_overloaded_mix_below_one(self):
        jobs = [
            JobSpec("A", gbit(50.0), 50.0, 0.0),
            JobSpec("B", gbit(50.0), 50.0, 0.0),
        ]
        score, _schedule = best_compatibility(jobs, 50.0)
        assert score < 0.2


class TestAreCompatible:
    def test_paper_scenario_is_compatible(self):
        """The §4 precondition holds for the paper's four-job mix."""
        jobs = [j.with_jitter(0.0) for j in four_job_scenario()]
        assert are_compatible(jobs, 50.0)

    def test_overload_is_incompatible(self):
        jobs = [
            JobSpec("A", gbit(50.0), 50.0, 0.1),
            JobSpec("B", gbit(50.0), 50.0, 0.1),
        ]
        assert not are_compatible(jobs, 50.0)

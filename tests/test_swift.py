"""Tests for the Swift-like delay-based CC and MLTCP-Swift."""

import pytest

from repro.core.config import MLTCPConfig
from repro.harness.packetlab import mltcp_config_for, run_packet_jobs
from repro.simulator.engine import Simulator
from repro.simulator.queues import DropTailQueue
from repro.simulator.topology import build_dumbbell
from repro.tcp.base import TcpReceiver, TcpSender
from repro.tcp.swift import MLTCPSwift, SwiftCC
from repro.workloads.job import JobSpec


def run_transfer(cc, nbytes=2_000_000, queue=256, until=1.0, **sender_kwargs):
    sim = Simulator()
    net = build_dumbbell(
        sim, 1, bottleneck_bps=1e9, bottleneck_queue=DropTailQueue(queue)
    )
    sender = TcpSender(sim, net.hosts["s0"], "f", "r0", cc, **sender_kwargs)
    TcpReceiver(sim, net.hosts["r0"], "f", "s0")
    done = {}
    sender.on_all_acked = lambda: done.setdefault("t", sim.now)
    sender.send_bytes(nbytes)
    sim.run(until=until)
    return sender, done.get("t")


class TestSwiftUnit:
    def test_validation(self):
        with pytest.raises(ValueError, match="target_delay"):
            SwiftCC(target_delay=0.0)
        with pytest.raises(ValueError, match="ai"):
            SwiftCC(ai=0.0)
        with pytest.raises(ValueError, match="beta"):
            SwiftCC(beta=1.5)
        with pytest.raises(ValueError, match="max_mdf"):
            SwiftCC(max_mdf=0.0)

    def test_grows_below_target(self):
        cc = SwiftCC(target_delay=1e-3)
        cc.ssthresh = 5.0
        cc.cwnd = 10.0

        class Conn:
            smoothed_rtt = 5e-4

            class sim:
                now = 0.0

        cc.on_ack(2, Conn())
        assert cc.cwnd > 10.0

    def test_backs_off_above_target(self):
        cc = SwiftCC(target_delay=1e-4)
        cc.cwnd = 10.0

        class Conn:
            smoothed_rtt = 1e-3  # 10x the target

            class sim:
                now = 1.0

        cc.on_ack(1, Conn())
        assert cc.cwnd < 10.0

    def test_decrease_rate_limited_per_rtt(self):
        cc = SwiftCC(target_delay=1e-4)
        cc.cwnd = 10.0

        class Conn:
            smoothed_rtt = 1e-3

            class sim:
                now = 1.0

        cc.on_ack(1, Conn())
        after_first = cc.cwnd
        Conn.sim.now = 1.0 + 1e-5  # far less than one RTT later
        cc.on_ack(1, Conn())
        assert cc.cwnd == after_first


class TestSwiftEndToEnd:
    def test_transfer_completes_with_good_throughput(self):
        sender, t = run_transfer(SwiftCC(target_delay=400e-6))
        assert t is not None
        assert 2_000_000 * 8 / t > 0.7e9

    def test_swift_keeps_queue_near_target(self):
        """The point of delay-based CC: far fewer drops than loss-based."""
        queue = DropTailQueue(256)
        sim = Simulator()
        net = build_dumbbell(sim, 1, bottleneck_bps=1e9, bottleneck_queue=queue)
        sender = TcpSender(sim, net.hosts["s0"], "f", "r0", SwiftCC(target_delay=300e-6))
        TcpReceiver(sim, net.hosts["r0"], "f", "s0")
        sender.send_bytes(4_000_000)
        sim.run(until=1.0)
        assert queue.drops == 0
        assert sender.all_acked()


class TestMltcpSwift:
    def test_ai_scale_follows_ratio(self):
        cc = MLTCPSwift(MLTCPConfig(total_bytes=3000, comp_time=1.0))
        cc.ssthresh = 1.0
        cc.cwnd = 10.0

        class Conn:
            smoothed_rtt = 1e-4
            mss_bytes = 1500

            class sim:
                now = 0.0

        cc.on_ack(1, Conn())  # 1500/3000 -> ratio 0.5
        assert cc.mltcp.tracker.bytes_ratio == pytest.approx(0.5)
        assert cc._ai_scale(Conn()) == pytest.approx(1.75 * 0.5 + 0.25)

    def test_two_jobs_interleave_under_mltcp_swift(self):
        """§6 again: the delay-based family also interleaves once augmented."""
        template = JobSpec(
            name="Job", comm_bits=8e6, demand_gbps=1.0, compute_time=0.010,
            jitter_sigma=0.0005,
        )
        jobs = [template.with_name("Job1"), template.with_name("Job2")]
        lab = run_packet_jobs(
            jobs,
            lambda j: MLTCPSwift(mltcp_config_for(j), target_delay=400e-6),
            max_iterations=35,
            seed=2,
        )
        overhead = 1500 / 1460
        ideal = 8e6 / 1e9 * overhead + 0.010
        rounds = lab.mean_iteration_by_round()
        assert rounds[:3].mean() > 1.15 * ideal
        assert rounds[-5:].mean() == pytest.approx(ideal, rel=0.1)


class TestCwndTelemetry:
    def test_cwnd_log_records_when_enabled(self):
        # record_cwnd is a post-construction switch:
        sim = Simulator()
        net = build_dumbbell(sim, 1, bottleneck_bps=1e9)
        from repro.tcp.reno import RenoCC

        sender = TcpSender(sim, net.hosts["s0"], "f", "r0", RenoCC())
        sender.record_cwnd = True
        TcpReceiver(sim, net.hosts["r0"], "f", "s0")
        sender.send_bytes(500_000)
        sim.run(until=0.5)
        assert len(sender.cwnd_log) > 10
        times = [t for t, _w in sender.cwnd_log]
        assert times == sorted(times)

    def test_cwnd_log_off_by_default(self):
        sender, _t = run_transfer(SwiftCC(), nbytes=200_000)
        assert sender.cwnd_log == []

"""Bit-identity tests for the vectorized allocation core (PR 9).

The scalar implementations — ``water_fill`` and ``weighted_max_min`` —
are the oracles: every float the array twins return must equal the
scalar result *exactly* (``float.hex()`` comparison, no tolerance).
Hypothesis drives random demands/weights/capacities through both paths,
including zero demands, zero weights, exact ties and shuffled insertion
order; fixed vectors re-check the checked-in ``perf_contracts_seed.json``
fixture so the vectorized path is pinned to the pre-PR floats.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluid.allocation import (
    water_fill,
    water_fill_array,
    water_fill_batch,
)
from repro.fluid.arrays import (
    PHASE_COMM,
    PHASE_WAITING,
    FlowArrays,
    link_index_matrix,
)
from repro.fluid.network import weighted_max_min, weighted_max_min_array
from repro.workloads import JobSpec

FIXTURE = Path(__file__).resolve().parent / "fixtures" / "perf_contracts_seed.json"


def _rank_for(ids):
    """Sort position of each id, in candidate (insertion) order."""
    order = sorted(range(len(ids)), key=lambda i: ids[i])
    rank = np.empty(len(ids), dtype=np.int64)
    rank[order] = np.arange(len(ids))
    return rank


def _hex_rates(rates):
    return {fid: float(rate).hex() for fid, rate in rates.items()}


def _array_as_mapping(ids, rates):
    return {fid: float(rate) for fid, rate in zip(ids, rates)}


#: Values that exercise ties, caps and the 1e-12 tolerance boundaries.
demand_values = st.one_of(
    st.just(0.0),
    st.just(1e9),
    st.just(2e9),
    st.floats(min_value=1e6, max_value=1e10, allow_nan=False),
)
weight_values = st.one_of(
    st.just(0.0),
    st.just(1.0),
    st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
)


@st.composite
def water_fill_cases(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    # Shuffled ids decouple insertion order from sorted order, covering
    # the zero-weight refill's insertion-order ``spent`` accumulation.
    ids = draw(st.permutations([f"f{i:02d}" for i in range(n)]))
    demands = {fid: draw(demand_values) for fid in ids}
    weights = {fid: draw(weight_values) for fid in ids}
    capacity = draw(st.floats(min_value=1e6, max_value=2e10, allow_nan=False))
    return demands, weights, capacity


class TestWaterFillArrayProperty:
    @settings(max_examples=200, deadline=None)
    @given(case=water_fill_cases())
    def test_bit_identical_to_scalar_oracle(self, case):
        demands, weights, capacity = case
        ids = list(demands)
        expected = water_fill(demands, weights, capacity)
        got = water_fill_array(
            np.array([demands[fid] for fid in ids]),
            np.array([weights[fid] for fid in ids]),
            capacity,
            ids=ids,
            rank=_rank_for(ids),
        )
        assert _hex_rates(expected) == _hex_rates(_array_as_mapping(ids, got))

    @settings(max_examples=50, deadline=None)
    @given(case=water_fill_cases())
    def test_sorted_axis_needs_no_rank(self, case):
        demands, weights, capacity = case
        ids = sorted(demands)
        expected = water_fill(
            {fid: demands[fid] for fid in ids},
            {fid: weights[fid] for fid in ids},
            capacity,
        )
        got = water_fill_array(
            np.array([demands[fid] for fid in ids]),
            np.array([weights[fid] for fid in ids]),
            capacity,
        )
        assert _hex_rates(expected) == _hex_rates(_array_as_mapping(ids, got))


class TestWaterFillArrayEdges:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            water_fill_array(np.array([1.0]), np.array([1.0]), 0.0)

    def test_rejects_negative_weight_naming_flow(self):
        with pytest.raises(ValueError, match="b: weight"):
            water_fill_array(
                np.array([1e9, 1e9]),
                np.array([1.0, -1.0]),
                1e9,
                ids=["a", "b"],
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="matching 1-D"):
            water_fill_array(np.array([1e9]), np.array([1.0, 2.0]), 1e9)

    def test_all_zero_weights_split_evenly(self):
        demands = {"a": 2e9, "b": 2e9, "c": 1e9}
        weights = {"a": 0.0, "b": 0.0, "c": 0.0}
        expected = water_fill(demands, weights, 3e9)
        got = water_fill_array(
            np.array([2e9, 2e9, 1e9]),
            np.zeros(3),
            3e9,
            rank=np.array([0, 1, 2]),
        )
        assert _hex_rates(expected) == _hex_rates(
            _array_as_mapping(["a", "b", "c"], got)
        )


class TestWaterFillFixtureVectors:
    """The checked-in pre-PR hex vectors must come out of the array path."""

    CASES = {
        "undersubscribed": (
            {f"f{i}": 1e8 * (i + 1) for i in range(6)},
            {f"f{i}": 1.0 for i in range(6)},
            5e9,
        ),
        "oversubscribed_weighted": (
            {f"flow{i:02d}": 1e9 / (i + 2) for i in range(12)},
            {f"flow{i:02d}": 1.0 / (3 + i) for i in range(12)},
            2.5e9,
        ),
        "mixed_caps": (
            {"a": 4e9, "b": 1e9, "c": 2e9, "d": 5e8},
            {"a": 3.0, "b": 1.0, "c": 1.0, "d": 0.5},
            5e9,
        ),
        "zero_weights": (
            {"a": 2e9, "b": 2e9, "c": 1e9},
            {"a": 0.0, "b": 0.0, "c": 0.0},
            3e9,
        ),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_fixture_vector_unchanged(self, name):
        demands, weights, capacity = self.CASES[name]
        fixture = json.loads(FIXTURE.read_text())["water_fill"][name]
        ids = list(demands)
        got = water_fill_array(
            np.array([demands[fid] for fid in ids]),
            np.array([weights[fid] for fid in ids]),
            capacity,
            rank=_rank_for(ids),
        )
        assert _hex_rates(_array_as_mapping(ids, got)) == fixture


class TestWaterFillBatch:
    @settings(max_examples=60, deadline=None)
    @given(
        case=water_fill_cases(),
        n_seeds=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    def test_each_lane_matches_single_scenario_path(self, case, n_seeds, data):
        demands, weights, capacity = case
        ids = list(demands)
        n = len(ids)
        d = np.array([demands[fid] for fid in ids])
        rank = _rank_for(ids)
        w = np.empty((n_seeds, n))
        active = np.empty((n_seeds, n), dtype=bool)
        for s in range(n_seeds):
            w[s] = [data.draw(weight_values) for _ in range(n)]
            active[s] = [data.draw(st.booleans()) for _ in range(n)]
        got = water_fill_batch(d, w, capacity, active, rank=rank)
        for s in range(n_seeds):
            lanes = np.nonzero(active[s])[0]
            expected = np.zeros(n)
            if lanes.size:
                expected[lanes] = water_fill_array(
                    d[lanes], w[s, lanes], capacity, rank=rank[lanes]
                )
            assert [v.hex() for v in got[s].tolist()] == [
                v.hex() for v in expected.tolist()
            ]

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            water_fill_batch(
                np.array([1e9]),
                np.ones((2, 1)),
                1e9,
                np.ones((3, 1), dtype=bool),
            )

    def test_rejects_negative_active_weight(self):
        with pytest.raises(ValueError, match="non-negative"):
            water_fill_batch(
                np.array([1e9]),
                np.array([[-1.0]]),
                1e9,
                np.array([[True]]),
            )


@st.composite
def network_cases(draw):
    n_links = draw(st.integers(min_value=1, max_value=4))
    links = [f"L{i}" for i in range(n_links)]
    n_flows = draw(st.integers(min_value=1, max_value=8))
    ids = draw(st.permutations([f"f{i:02d}" for i in range(n_flows)]))
    flows = {}
    for fid in ids:
        weight = draw(weight_values)
        demand = draw(st.floats(min_value=1e6, max_value=1e10, allow_nan=False))
        path = tuple(
            sorted(
                draw(
                    st.sets(
                        st.sampled_from(links), min_size=0, max_size=n_links
                    )
                )
            )
        )
        flows[fid] = (weight, demand, path)
    capacities = {
        link: draw(st.floats(min_value=1e6, max_value=2e10, allow_nan=False))
        for link in links
    }
    return flows, capacities


class TestWeightedMaxMinArray:
    @settings(max_examples=120, deadline=None)
    @given(case=network_cases())
    def test_bit_identical_to_scalar_oracle(self, case):
        flows, capacities = case
        expected = weighted_max_min(flows, capacities)
        ids = list(flows)
        matrix = link_index_matrix(
            list(capacities), {fid: flows[fid][2] for fid in ids}, ids
        )
        got = weighted_max_min_array(
            np.array([flows[fid][0] for fid in ids]),
            np.array([flows[fid][1] for fid in ids]),
            matrix,
            np.array([capacities[link] for link in capacities]),
            _rank_for(ids),
        )
        assert _hex_rates(expected) == _hex_rates(_array_as_mapping(ids, got))


class TestFlowArrays:
    def _specs(self):
        # Names sort differently from insertion order on purpose.
        return [
            JobSpec(name="b", comm_bits=1e9, demand_gbps=10.0, compute_time=0.1),
            JobSpec(name="a", comm_bits=2e9, demand_gbps=20.0, compute_time=0.2),
            JobSpec(
                name="c",
                comm_bits=3e9,
                demand_gbps=30.0,
                compute_time=0.3,
                start_offset=0.5,
            ),
        ]

    def test_from_specs_static_fields_and_rank(self):
        fa = FlowArrays.from_specs(self._specs())
        assert fa.names == ("b", "a", "c")
        assert fa.index == {"b": 0, "a": 1, "c": 2}
        # "b" sorts after "a": ranks replay sorted-name iteration order.
        assert fa.rank.tolist() == [1, 0, 2]
        assert fa.demand_bps.tolist() == [10e9, 20e9, 30e9]
        assert fa.total_bits.tolist() == [1e9, 2e9, 3e9]
        assert fa.start_offset.tolist() == [0.0, 0.0, 0.5]
        assert len(fa) == 3

    def test_reset_restores_initial_state(self):
        fa = FlowArrays.from_specs(self._specs())
        fa.phase[:] = PHASE_COMM
        fa.remaining_bits[:] = 5.0
        fa.sent_bits[:] = 7.0
        fa.iteration_index[:] = 3
        fa.rates[:] = 1e9
        fa.reset()
        assert (fa.phase == PHASE_WAITING).all()
        assert not fa.remaining_bits.any()
        assert not fa.sent_bits.any()
        assert not fa.iteration_index.any()
        assert not fa.rates.any()
        assert fa.deadline.tolist() == fa.start_offset.tolist()
        assert np.isnan(fa.comm_start).all()
        assert np.isnan(fa.comm_end).all()

    def test_reset_deadline_is_a_copy(self):
        fa = FlowArrays.from_specs(self._specs())
        fa.deadline += 1.0
        assert fa.start_offset.tolist() == [0.0, 0.0, 0.5]


class TestLinkIndexMatrix:
    def test_rows_follow_names_padded_with_minus_one(self):
        matrix = link_index_matrix(
            ["up", "down", "spine"],
            {"j1": ("up", "spine", "down"), "j2": ("down",)},
            ["j2", "j1"],
        )
        assert matrix.tolist() == [[1, -1, -1], [0, 2, 1]]

    def test_flow_without_links_gets_empty_row(self):
        matrix = link_index_matrix(["up"], {"j1": ("up",)}, ["j1", "j2"])
        assert matrix.tolist() == [[0], [-1]]

    def test_unknown_link_raises_keyerror(self):
        with pytest.raises(KeyError):
            link_index_matrix(["up"], {"j1": ("sideways",)}, ["j1"])

"""Tests for delayed ACKs (cumulative num_acks) and aggressiveness linting."""

import numpy as np
import pytest

from repro.core.aggressiveness import (
    AggressivenessFunction,
    ConstantAggressiveness,
    DecreasingLinearAggressiveness,
    LinearAggressiveness,
)
from repro.core.config import MLTCPConfig
from repro.core.validation import is_valid_aggressiveness, validate_aggressiveness
from repro.simulator.app import TrainingApp
from repro.simulator.engine import Simulator
from repro.simulator.queues import DropTailQueue
from repro.simulator.topology import build_dumbbell
from repro.tcp.base import TcpReceiver, TcpSender
from repro.tcp.mltcp import MLTCPReno
from repro.tcp.reno import RenoCC
from repro.workloads.job import JobSpec


class TestDelayedAcks:
    def _transfer(self, delayed_ack, nbytes=1_000_000):
        sim = Simulator()
        net = build_dumbbell(
            sim, 1, bottleneck_bps=1e9, bottleneck_queue=DropTailQueue(64)
        )
        sender = TcpSender(sim, net.hosts["s0"], "f", "r0", RenoCC())
        receiver = TcpReceiver(
            sim, net.hosts["r0"], "f", "s0", delayed_ack=delayed_ack
        )
        done = {}
        sender.on_all_acked = lambda: done.setdefault("t", sim.now)
        sender.send_bytes(nbytes)
        sim.run(until=1.0)
        return sender, receiver, done.get("t")

    def test_transfer_completes_with_delack(self):
        sender, _receiver, t = self._transfer(delayed_ack=2)
        assert t is not None
        assert sender.all_acked()

    def test_acks_roughly_halved(self):
        _s1, immediate, _t1 = self._transfer(delayed_ack=1)
        _s2, delayed, _t2 = self._transfer(delayed_ack=2)
        assert delayed.acks_sent < 0.7 * immediate.acks_sent

    def test_throughput_not_destroyed(self):
        _s1, _r1, t1 = self._transfer(delayed_ack=1)
        _s2, _r2, t2 = self._transfer(delayed_ack=2)
        assert t2 < 1.5 * t1

    def test_validation(self):
        sim = Simulator()
        net = build_dumbbell(sim, 1, bottleneck_bps=1e9)
        with pytest.raises(ValueError, match="delayed_ack"):
            TcpReceiver(sim, net.hosts["r0"], "f", "s0", delayed_ack=0)
        with pytest.raises(ValueError, match="delack_timeout"):
            TcpReceiver(
                sim, net.hosts["r0"], "g", "s0", delayed_ack=2, delack_timeout=0.0
            )

    def test_mltcp_tracker_sees_cumulative_bytes(self):
        """Algorithm 1's num_acks path: a coalesced ACK advances bytes_sent
        by several segments at once, and the ratio stays correct."""
        sim = Simulator()
        net = build_dumbbell(sim, 1, bottleneck_bps=1e9)
        job = JobSpec(name="J", comm_bits=2e6, demand_gbps=1.0, compute_time=0.02)
        cc = MLTCPReno(MLTCPConfig(total_bytes=job.comm_bytes, comp_time=0.005))
        sender = TcpSender(sim, net.hosts["s0"], "J", "r0", cc)
        TcpReceiver(sim, net.hosts["r0"], "J", "s0", delayed_ack=2)
        app = TrainingApp(sim, sender, job, max_iterations=4)
        app.start()
        sim.run(until=1.0)
        assert app.completed == 4
        for record in cc.mltcp.tracker.completed_iterations:
            assert record.bytes_sent >= job.comm_bytes * 0.95

    def test_two_jobs_still_interleave_with_delack(self):
        sim = Simulator()
        net = build_dumbbell(
            sim, 2, bottleneck_bps=1e9, bottleneck_queue=DropTailQueue(64)
        )
        rng = np.random.default_rng(2)
        template = JobSpec(
            name="Job", comm_bits=8e6, demand_gbps=1.0, compute_time=0.010,
            jitter_sigma=0.0005,
        )
        apps = []
        for i, job in enumerate(
            (template.with_name("Job1"), template.with_name("Job2"))
        ):
            cc = MLTCPReno(MLTCPConfig(total_bytes=job.comm_bytes, comp_time=0.003))
            sender = TcpSender(sim, net.hosts[f"s{i}"], job.name, f"r{i}", cc)
            TcpReceiver(sim, net.hosts[f"r{i}"], job.name, f"s{i}", delayed_ack=2)
            app = TrainingApp(sim, sender, job, max_iterations=35, rng=rng)
            app.start()
            apps.append(app)
        sim.run(until=2.0)
        overhead = 1500 / 1460
        ideal = 8e6 / 1e9 * overhead + 0.010
        final = np.mean([a.iteration_times()[-5:].mean() for a in apps])
        assert final == pytest.approx(ideal, rel=0.1)


class _ExplodingFunction(AggressivenessFunction):
    name = "exploding"

    def _evaluate(self, bytes_ratio):
        if bytes_ratio > 0.5:
            raise RuntimeError("boom")
        return 1.0


class _TinyRangeFunction(AggressivenessFunction):
    name = "tiny"

    def _evaluate(self, bytes_ratio):
        return 1.0 + 0.01 * bytes_ratio


class TestAggressivenessValidation:
    def test_paper_function_is_valid(self):
        assert is_valid_aggressiveness(LinearAggressiveness())
        assert validate_aggressiveness(LinearAggressiveness()) == []

    def test_decreasing_function_flagged(self):
        issues = validate_aggressiveness(DecreasingLinearAggressiveness())
        assert any("monotonicity" in i.requirement for i in issues)

    def test_tiny_range_flagged(self):
        issues = validate_aggressiveness(_TinyRangeFunction())
        assert any("range" in i.requirement for i in issues)

    def test_constant_passes_monotonicity_but_fails_range(self):
        issues = validate_aggressiveness(ConstantAggressiveness(1.0))
        assert all("monotonicity" not in i.requirement for i in issues)
        assert any("range" in i.requirement for i in issues)

    def test_raising_function_reported_not_raised(self):
        issues = validate_aggressiveness(_ExplodingFunction())
        assert any(i.requirement == "totality" for i in issues)

    def test_min_range_configurable(self):
        assert is_valid_aggressiveness(_TinyRangeFunction(), min_range=0.001)

    def test_sample_count_validated(self):
        with pytest.raises(ValueError, match="samples"):
            validate_aggressiveness(LinearAggressiveness(), samples=1)

"""Unit tests for the §4 theory: shift (Eq. 3), loss (Eq. 4), descent."""

import numpy as np
import pytest

from repro.core.analysis import (
    MultiJobDescent,
    TwoJobModel,
    convergence_error_std,
    gradient_descent,
    iterations_to_converge,
    loss,
    loss_curve,
    shift,
    signed_shift,
)

ALPHA, PERIOD = 0.5, 1.8


class TestShift:
    def test_formula_matches_eq3(self):
        """Spot-check Eq. 3 against a hand computation."""
        delta, slope, intercept = 0.3, 1.75, 0.25
        comm = ALPHA * PERIOD
        expected = slope * delta * (comm - delta) / (comm * intercept + delta * slope)
        assert shift(delta, ALPHA, PERIOD, slope, intercept) == pytest.approx(expected)

    def test_zero_at_full_overlap(self):
        """delta = 0 is the (unstable) equilibrium: no shift."""
        assert shift(0.0, ALPHA, PERIOD) == 0.0

    def test_zero_once_disjoint(self):
        assert shift(ALPHA * PERIOD, ALPHA, PERIOD) == 0.0
        assert shift(ALPHA * PERIOD + 0.1, ALPHA, PERIOD) == 0.0

    def test_positive_in_overlap_region(self):
        for delta in (0.01, 0.2, 0.5, 0.85):
            assert shift(delta * ALPHA * PERIOD, ALPHA, PERIOD) > 0.0

    def test_shift_bounded_by_overlap(self):
        """One iteration's shift can never exceed the remaining overlap."""
        comm = ALPHA * PERIOD
        for delta in np.linspace(0.01, comm - 0.01, 37):
            assert shift(delta, ALPHA, PERIOD) <= comm - delta + 1e-12

    def test_rejects_negative_delta(self):
        with pytest.raises(ValueError, match="delta"):
            shift(-0.1, ALPHA, PERIOD)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            shift(0.1, 0.9, PERIOD)
        with pytest.raises(ValueError, match="alpha"):
            shift(0.1, 0.0, PERIOD)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="period"):
            shift(0.1, ALPHA, -1.0)
        with pytest.raises(ValueError, match="slope"):
            shift(0.1, ALPHA, PERIOD, slope=0.0)
        with pytest.raises(ValueError, match="intercept"):
            shift(0.1, ALPHA, PERIOD, intercept=0.0)

    def test_larger_slope_larger_shift(self):
        """Aggressiveness slope controls the descent step size."""
        small = shift(0.3, ALPHA, PERIOD, slope=1.0)
        large = shift(0.3, ALPHA, PERIOD, slope=3.0)
        assert large > small


class TestSignedShift:
    def test_matches_shift_in_first_half(self):
        assert signed_shift(0.3, ALPHA, PERIOD) == pytest.approx(
            shift(0.3, ALPHA, PERIOD)
        )

    def test_antisymmetric_near_period(self):
        """delta near T pushes back down: signed_shift(T-d) = -shift(d)."""
        d = 0.3
        assert signed_shift(PERIOD - d, ALPHA, PERIOD) == pytest.approx(
            -shift(d, ALPHA, PERIOD)
        )

    def test_wraps_modulo_period(self):
        assert signed_shift(0.3 + PERIOD, ALPHA, PERIOD) == pytest.approx(
            signed_shift(0.3, ALPHA, PERIOD)
        )

    def test_zero_in_disjoint_plateau(self):
        """With alpha < 0.5 there is a flat valley of interleaved states."""
        alpha = 0.25
        comm = alpha * PERIOD
        mid = (comm + (PERIOD - comm)) / 2
        assert signed_shift(mid, alpha, PERIOD) == 0.0


class TestLoss:
    def test_loss_zero_at_origin(self):
        assert loss(0.0, ALPHA, PERIOD) == pytest.approx(0.0, abs=1e-9)

    def test_minimum_at_half_period_for_alpha_half(self):
        """Figure 5(c): for alpha = 1/2 the loss is minimal at T/2."""
        deltas, losses = loss_curve(ALPHA, PERIOD, samples=181)
        min_delta = deltas[np.argmin(losses)]
        assert min_delta == pytest.approx(PERIOD / 2, abs=PERIOD / 90)

    def test_monotone_decreasing_to_minimum(self):
        deltas, losses = loss_curve(ALPHA, PERIOD, samples=181)
        first_half = losses[deltas <= PERIOD / 2]
        assert np.all(np.diff(first_half) <= 1e-9)

    def test_symmetric_about_half_period(self):
        deltas, losses = loss_curve(ALPHA, PERIOD, samples=181)
        assert losses[0] == pytest.approx(losses[-1], abs=1e-6)

    def test_loss_curve_matches_quadrature(self):
        """Trapezoidal curve agrees with scipy.quad pointwise."""
        deltas, losses = loss_curve(ALPHA, PERIOD, samples=721)
        for probe in (0.3, 0.9, 1.5):
            idx = np.argmin(np.abs(deltas - probe))
            assert losses[idx] == pytest.approx(
                loss(probe, ALPHA, PERIOD), abs=5e-4
            )

    def test_loss_curve_needs_samples(self):
        with pytest.raises(ValueError, match="samples"):
            loss_curve(ALPHA, PERIOD, samples=2)


class TestGradientDescent:
    def test_converges_to_interleave(self):
        trajectory = gradient_descent(0.05, ALPHA, PERIOD, 60)
        assert trajectory.final_delta == pytest.approx(PERIOD / 2, abs=0.02)

    def test_converges_within_about_twenty_iterations(self):
        """§2: 'MLTCP converges to an interleaved state within 20 iterations'."""
        trajectory = gradient_descent(0.05, ALPHA, PERIOD, 60)
        assert trajectory.converged_iteration is not None
        assert trajectory.converged_iteration <= 25

    def test_stuck_at_unstable_equilibrium_without_noise(self):
        trajectory = gradient_descent(0.0, ALPHA, PERIOD, 30)
        assert trajectory.final_delta == 0.0

    def test_noise_escapes_equilibrium(self):
        rng = np.random.default_rng(1)
        trajectory = gradient_descent(
            0.0, ALPHA, PERIOD, 400, noise_sigma=0.01, rng=rng
        )
        assert abs(trajectory.final_delta - PERIOD / 2) < 0.25

    def test_descends_from_above(self):
        """Starting past T/2 the wrapped dynamics still reach the valley."""
        trajectory = gradient_descent(PERIOD - 0.05, ALPHA, PERIOD, 80)
        assert trajectory.final_delta == pytest.approx(PERIOD / 2, abs=0.02)

    def test_trajectory_length(self):
        trajectory = gradient_descent(0.1, ALPHA, PERIOD, 10)
        assert len(trajectory.deltas) == 11

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError, match="iterations"):
            gradient_descent(0.1, ALPHA, PERIOD, 0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError, match="noise_sigma"):
            gradient_descent(0.1, ALPHA, PERIOD, 10, noise_sigma=-1.0)

    def test_steady_state_error_zero_without_noise(self):
        trajectory = gradient_descent(0.3, ALPHA, PERIOD, 100)
        errors = trajectory.steady_state_error()
        assert np.abs(errors).max() < 0.02


class TestErrorBound:
    def test_formula(self):
        """§4: std = 2*sigma*(1 + Intercept/Slope)."""
        assert convergence_error_std(0.01, slope=1.75, intercept=0.25) == (
            pytest.approx(2 * 0.01 * (1 + 0.25 / 1.75))
        )

    def test_zero_noise_zero_error(self):
        assert convergence_error_std(0.0) == 0.0

    def test_measured_error_within_bound(self):
        """Monte-Carlo check: steady-state error std stays under the bound."""
        sigma = 0.004
        rng = np.random.default_rng(0)
        trajectory = gradient_descent(
            0.2, ALPHA, PERIOD, 5000, noise_sigma=sigma, rng=rng
        )
        measured = trajectory.steady_state_error(settle_fraction=0.3).std()
        assert measured <= 1.5 * convergence_error_std(sigma)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="noise_sigma"):
            convergence_error_std(-0.1)
        with pytest.raises(ValueError, match="slope"):
            convergence_error_std(0.1, slope=0.0)


class TestIterationsToConverge:
    def test_returns_reasonable_count(self):
        """Eq. 3's escape rate is ~Slope/Intercept per iteration: fast."""
        count = iterations_to_converge(0.05, ALPHA, PERIOD)
        assert count is not None
        assert 1 <= count <= 30

    def test_none_from_unstable_equilibrium(self):
        assert iterations_to_converge(0.0, ALPHA, PERIOD) is None

    def test_already_converged_is_zero(self):
        assert iterations_to_converge(PERIOD / 2, ALPHA, PERIOD) == 0

    def test_closer_start_converges_sooner_or_equal(self):
        near = iterations_to_converge(0.4, ALPHA, PERIOD)
        far = iterations_to_converge(0.05, ALPHA, PERIOD)
        assert near is not None and far is not None
        assert near <= far


class TestMultiJobDescent:
    def test_overlap_decreases(self):
        descent = MultiJobDescent(alpha=0.25, period=1.8)
        history = descent.run([0.0, 0.05, 0.1], iterations=80)
        initial = descent.total_overlap(history[0])
        final = descent.total_overlap(history[-1])
        assert final < 0.1 * initial

    def test_two_jobs_matches_pairwise_model(self):
        descent = MultiJobDescent(alpha=ALPHA, period=PERIOD)
        history = descent.run([0.0, 0.1], iterations=80)
        gap = abs(history[-1][1] - history[-1][0]) % PERIOD
        gap = min(gap, PERIOD - gap)
        assert gap == pytest.approx(PERIOD / 2, abs=0.05)

    def test_history_shape(self):
        descent = MultiJobDescent(alpha=0.25, period=1.0)
        history = descent.run([0.0, 0.2, 0.4, 0.6], iterations=10)
        assert history.shape == (11, 4)

    def test_needs_two_jobs(self):
        descent = MultiJobDescent(alpha=0.25, period=1.0)
        with pytest.raises(ValueError, match="two job"):
            descent.run([0.0], iterations=5)

    def test_total_overlap_of_disjoint_jobs_is_zero(self):
        descent = MultiJobDescent(alpha=0.25, period=1.0)
        assert descent.total_overlap([0.0, 0.5]) == 0.0

    def test_rejects_bad_damping(self):
        with pytest.raises(ValueError, match="damping"):
            MultiJobDescent(alpha=0.25, period=1.0, damping=0.0)


class TestTwoJobModel:
    def test_bundles_parameters(self):
        model = TwoJobModel(alpha=ALPHA, period=PERIOD)
        assert model.comm_duration == pytest.approx(0.9)
        assert model.shift(0.3) == pytest.approx(signed_shift(0.3, ALPHA, PERIOD))
        assert model.loss(0.3) == pytest.approx(loss(0.3, ALPHA, PERIOD))

    def test_descend_delegates(self):
        model = TwoJobModel(alpha=ALPHA, period=PERIOD)
        trajectory = model.descend(0.05, 40)
        assert trajectory.alpha == ALPHA
        assert trajectory.period == PERIOD

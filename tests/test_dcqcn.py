"""Tests for the rate-based DCQCN controller and MLTCP-DCQCN."""

import pytest

from repro.core.config import MLTCPConfig
from repro.simulator.engine import Simulator
from repro.simulator.queues import EcnQueue
from repro.simulator.topology import build_dumbbell
from repro.tcp.base import TcpReceiver
from repro.tcp.dcqcn import DcqcnController, MltcpDcqcnController, RateSender


class TestController:
    def test_starts_at_line_rate(self):
        controller = DcqcnController(line_rate_bps=1e9)
        assert controller.current_rate_bps == 1e9

    def test_congestion_cuts_rate(self):
        controller = DcqcnController(line_rate_bps=1e9)
        controller.on_congestion()
        assert controller.current_rate_bps < 1e9
        assert controller.congestion_events == 1

    def test_repeated_congestion_cuts_deeper(self):
        controller = DcqcnController(line_rate_bps=1e9)
        controller.on_congestion()
        first = controller.current_rate_bps
        controller.on_congestion()
        assert controller.current_rate_bps < first

    def test_rate_floor(self):
        controller = DcqcnController(line_rate_bps=1e9)
        for _ in range(200):
            controller.on_congestion()
        assert controller.current_rate_bps >= controller.min_rate_bps

    def test_fast_recovery_approaches_target(self):
        controller = DcqcnController(line_rate_bps=1e9, fast_recovery_stages=3)
        controller.on_congestion()
        cut = controller.current_rate_bps
        target = controller.target_rate_bps
        controller.on_rate_timer()
        assert controller.current_rate_bps == pytest.approx(0.5 * (cut + target))

    def test_additive_increase_after_recovery(self):
        controller = DcqcnController(
            line_rate_bps=1e9, rate_ai_bps=10e6, fast_recovery_stages=1
        )
        controller.on_congestion()
        controller.on_congestion()  # target now well below line rate
        controller.on_rate_timer()  # stage 1: fast recovery
        target_before = controller.target_rate_bps
        controller.on_rate_timer()  # stage 2: additive increase
        assert controller.target_rate_bps == pytest.approx(target_before + 10e6)

    def test_rate_never_exceeds_line_rate(self):
        controller = DcqcnController(line_rate_bps=1e9, rate_ai_bps=1e9)
        for _ in range(50):
            controller.on_rate_timer()
        assert controller.current_rate_bps <= 1e9
        assert controller.target_rate_bps <= 1e9

    def test_alpha_decays(self):
        controller = DcqcnController(line_rate_bps=1e9)
        controller.on_congestion()
        alpha = controller.alpha
        controller.on_alpha_timer()
        assert controller.alpha < alpha

    def test_validation(self):
        with pytest.raises(ValueError, match="line_rate"):
            DcqcnController(line_rate_bps=0.0)
        with pytest.raises(ValueError, match="g must"):
            DcqcnController(line_rate_bps=1e9, g=0.0)


class TestMltcpDcqcn:
    def test_ai_step_scaled_by_f(self):
        """The rate-based analogue of Eq. 1: R_AI * F(bytes_ratio)."""
        config = MLTCPConfig(total_bytes=1000, comp_time=1.0)
        controller = MltcpDcqcnController(
            line_rate_bps=1e9, config=config, rate_ai_bps=10e6
        )
        # No deliveries yet: ratio 0 -> F = 0.25.
        assert controller._ai_step() == pytest.approx(0.25 * 10e6)
        controller.observe_delivery(0.0, acked_bytes=1000, rtt=0.001)
        # Ratio 1 -> F = 2.
        assert controller._ai_step() == pytest.approx(2.0 * 10e6)

    def test_tracker_resets_at_boundary(self):
        config = MLTCPConfig(total_bytes=1000, comp_time=0.01)
        controller = MltcpDcqcnController(line_rate_bps=1e9, config=config)
        controller.observe_delivery(0.0, 1000, 0.001)
        assert controller.tracker.bytes_ratio == 1.0
        controller.observe_delivery(1.0, 500, 0.001)  # gap > comp_time
        assert controller.tracker.bytes_ratio == pytest.approx(0.5)


class TestRateSender:
    def _run(self, nbytes=500_000, mark_threshold=20, until=1.0):
        sim = Simulator()
        net = build_dumbbell(
            sim,
            1,
            bottleneck_bps=1e9,
            bottleneck_queue=EcnQueue(capacity_packets=4096, mark_threshold=mark_threshold),
        )
        controller = DcqcnController(line_rate_bps=4e9)
        finished = {}
        sender = RateSender(
            sim,
            net.hosts["s0"],
            "q",
            "r0",
            controller,
            on_all_acked=lambda: finished.setdefault("t", sim.now),
        )
        TcpReceiver(sim, net.hosts["r0"], "q", "s0")
        sender.send_bytes(nbytes)
        sim.run(until=until)
        return sender, controller, finished.get("t")

    def test_transfer_completes(self):
        sender, _controller, t = self._run()
        assert t is not None
        assert sender.all_acked()

    def test_ecn_feedback_reduces_rate(self):
        """Pacing above the bottleneck triggers marks, then rate cuts."""
        _sender, controller, _t = self._run(nbytes=2_000_000, mark_threshold=10)
        assert controller.congestion_events > 0
        assert controller.alpha > 0.0

    def test_rtt_estimated(self):
        sender, _controller, _t = self._run()
        assert sender.smoothed_rtt is not None
        assert sender.smoothed_rtt > 0

    def test_rejects_non_positive_send(self):
        sim = Simulator()
        net = build_dumbbell(sim, 1, bottleneck_bps=1e9)
        sender = RateSender(
            sim, net.hosts["s0"], "q", "r0", DcqcnController(line_rate_bps=1e9)
        )
        with pytest.raises(ValueError, match="nbytes"):
            sender.send_bytes(0)


class TestRateBasedPeriodicJobs:
    """End to end: the paper's "(or sending rate)" clause — two periodic
    jobs driven by paced MLTCP-DCQCN senders interleave over an ECN fabric.

    Note (see EXPERIMENTS.md "Known fidelity limits"): at this compressed
    time scale plain DCQCN's transients also produce interleaving drift, so
    this test asserts MLTCP-DCQCN's convergence rather than a contrast
    against the unaugmented baseline.
    """

    def test_mltcp_dcqcn_jobs_interleave(self):
        import numpy as np

        from repro.simulator.app import TrainingApp
        from repro.simulator.topology import build_dumbbell
        from repro.workloads.job import JobSpec

        sim = Simulator()
        net = build_dumbbell(
            sim,
            2,
            bottleneck_bps=1e9,
            bottleneck_queue=EcnQueue(capacity_packets=4096, mark_threshold=32),
        )
        rng = np.random.default_rng(2)
        template = JobSpec(
            name="Job", comm_bits=8e6, demand_gbps=1.0, compute_time=0.010,
            jitter_sigma=0.0005,
        )
        apps = []
        for i, job in enumerate(
            (template.with_name("Job1"), template.with_name("Job2"))
        ):
            controller = MltcpDcqcnController(
                1e9,
                config=MLTCPConfig(total_bytes=job.comm_bytes, comp_time=0.003),
                rate_ai_bps=50e6,
            )
            sender = RateSender(
                sim, net.hosts[f"s{i}"], job.name, f"r{i}", controller,
                rate_timer=200e-6, alpha_timer=100e-6,
            )
            TcpReceiver(sim, net.hosts[f"r{i}"], job.name, f"s{i}")
            app = TrainingApp(sim, sender, job, max_iterations=40, rng=rng)
            app.start()
            apps.append(app)
        sim.run(until=3.0)

        per_job = [a.iteration_times() for a in apps]
        n = min(len(t) for t in per_job)
        assert n == 40
        rounds = np.array([np.mean([t[i] for t in per_job]) for i in range(n)])
        ideal = 8e6 / 1e9 * (1500 / 1460) + 0.010
        assert rounds[:3].mean() > 1.5 * ideal   # heavily congested start
        assert rounds[-5:].mean() < 1.1 * ideal  # interleaved steady state

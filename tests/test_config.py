"""Unit tests for MLTCPConfig."""

import pytest

from repro.core.aggressiveness import ConstantAggressiveness, QuadraticAggressiveness
from repro.core.config import DEFAULT_MTU_BYTES, MLTCPConfig


class TestDefaults:
    def test_default_function_is_paper_linear(self):
        config = MLTCPConfig()
        assert config.slope == 1.75
        assert config.intercept == 0.25

    def test_default_mtu(self):
        assert MLTCPConfig().mtu_bytes == DEFAULT_MTU_BYTES == 1500

    def test_learning_mode_by_default(self):
        config = MLTCPConfig()
        assert config.total_bytes is None
        assert config.comp_time is None
        assert not config.knows_iteration_shape


class TestValidation:
    def test_rejects_non_positive_total_bytes(self):
        with pytest.raises(ValueError, match="total_bytes"):
            MLTCPConfig(total_bytes=0)

    def test_rejects_non_positive_comp_time(self):
        with pytest.raises(ValueError, match="comp_time"):
            MLTCPConfig(comp_time=-1.0)

    def test_rejects_non_positive_mtu(self):
        with pytest.raises(ValueError, match="mtu"):
            MLTCPConfig(mtu_bytes=0)

    def test_rejects_zero_learn_iterations(self):
        with pytest.raises(ValueError, match="learn_iterations"):
            MLTCPConfig(learn_iterations=0)

    def test_rejects_small_gap_multiplier(self):
        with pytest.raises(ValueError, match="gap_rtt_multiplier"):
            MLTCPConfig(gap_rtt_multiplier=1.0)


class TestProperties:
    def test_knows_iteration_shape(self):
        config = MLTCPConfig(total_bytes=1_000_000, comp_time=0.5)
        assert config.knows_iteration_shape

    def test_slope_requires_linear_function(self):
        config = MLTCPConfig(function=QuadraticAggressiveness())
        with pytest.raises(TypeError, match="LinearAggressiveness"):
            _ = config.slope

    def test_intercept_requires_linear_function(self):
        config = MLTCPConfig(function=ConstantAggressiveness(1.0))
        with pytest.raises(TypeError, match="LinearAggressiveness"):
            _ = config.intercept

    def test_with_function_preserves_other_fields(self):
        config = MLTCPConfig(total_bytes=123, comp_time=0.25)
        swapped = config.with_function(ConstantAggressiveness(1.0))
        assert swapped.total_bytes == 123
        assert swapped.comp_time == 0.25
        assert isinstance(swapped.function, ConstantAggressiveness)

    def test_frozen(self):
        with pytest.raises(Exception):
            MLTCPConfig().mtu_bytes = 9000  # type: ignore[misc]

"""Batched Monte-Carlo fluid runs (PR 9): per-lane bit-identity and the
harness routing that feeds them.

``run_fluid_batch`` stacks N seeds on one array axis; every lane must
reproduce its solo ``run_fluid`` counterpart *exactly* — same iteration
records, same end time, compared via ``float.hex()``.  The sweep-side
entry points (``run_batched_seeds`` / ``repeat_with_seeds(batch=True)``)
must fold those per-seed values into the same ``SeedSummary`` the
process-pool route produces.
"""

import pytest

from repro.fluid import (
    BatchedFluidExperiment,
    FairShare,
    MLTCPWeighted,
    SRPT,
    run_fluid,
    run_fluid_batch,
)
from repro.harness.sweep import repeat_with_seeds, run_batched_seeds
from repro.workloads import JobSpec


def _jobs(jitter_sigma=0.0, volume_jitter_fraction=0.0):
    return [
        JobSpec(
            name="gpt3",
            comm_bits=8e9,
            demand_gbps=40.0,
            compute_time=0.12,
            jitter_sigma=jitter_sigma,
            volume_jitter_fraction=volume_jitter_fraction,
        ),
        JobSpec(
            name="gpt2a",
            comm_bits=2e9,
            demand_gbps=40.0,
            compute_time=0.05,
            jitter_sigma=jitter_sigma,
            volume_jitter_fraction=volume_jitter_fraction,
        ),
        JobSpec(
            name="gpt2b",
            comm_bits=2e9,
            demand_gbps=40.0,
            compute_time=0.05,
            start_offset=0.01,
            jitter_sigma=jitter_sigma,
            iteration_limit=3,
            volume_jitter_fraction=volume_jitter_fraction,
        ),
    ]


def _fingerprint(result):
    """Hex-exact record of everything a batched lane must reproduce."""
    return (
        [
            (
                it.job,
                it.index,
                it.comm_start.hex(),
                it.comm_end.hex(),
                it.iteration_end.hex(),
            )
            for it in result.iterations
        ],
        result.end_time.hex(),
    )


class TestRunFluidBatchBitIdentity:
    @pytest.mark.parametrize("policy_factory", [FairShare, MLTCPWeighted])
    @pytest.mark.parametrize(
        "jitter_sigma,volume_jitter_fraction",
        [(0.0, 0.0), (0.002, 0.0), (0.0, 0.05), (0.002, 0.05)],
    )
    def test_lanes_match_solo_runs(
        self, policy_factory, jitter_sigma, volume_jitter_fraction
    ):
        jobs = _jobs(jitter_sigma, volume_jitter_fraction)
        seeds = [0, 1, 7, None]
        batched = run_fluid_batch(
            jobs, 50.0, seeds, policy=policy_factory(), max_iterations=4
        )
        for seed, result in zip(seeds, batched):
            solo = run_fluid(
                jobs,
                50.0,
                policy=policy_factory(),
                max_iterations=4,
                seed=seed,
                record_segments=False,
            )
            assert _fingerprint(result) == _fingerprint(solo)

    def test_single_seed_batch(self):
        jobs = _jobs(jitter_sigma=0.004)
        (result,) = run_fluid_batch(jobs, 50.0, [3], max_iterations=2)
        solo = run_fluid(
            jobs, 50.0, max_iterations=2, seed=3, record_segments=False
        )
        assert _fingerprint(result) == _fingerprint(solo)

    def test_iteration_fields_are_python_floats(self):
        (result,) = run_fluid_batch(_jobs(), 50.0, [0], max_iterations=1)
        first = result.iterations[0]
        for value in (first.comm_start, first.comm_end, first.iteration_end):
            assert type(value) is float


class TestRunFluidBatchValidation:
    def test_rejects_empty_jobs(self):
        with pytest.raises(ValueError, match="at least one job"):
            run_fluid_batch([], 50.0, [0], max_iterations=1)

    def test_rejects_duplicate_names(self):
        jobs = _jobs()
        jobs[1] = JobSpec(
            name="gpt3", comm_bits=1e9, demand_gbps=10.0, compute_time=0.1
        )
        with pytest.raises(ValueError, match="unique"):
            run_fluid_batch(jobs, 50.0, [0], max_iterations=1)

    def test_rejects_missing_max_iterations(self):
        with pytest.raises(ValueError, match="max_iterations"):
            run_fluid_batch(_jobs(), 50.0, [0])

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError, match="seeds"):
            run_fluid_batch(_jobs(), 50.0, [], max_iterations=1)

    def test_rejects_nonpositive_capacity_and_quantum(self):
        with pytest.raises(ValueError, match="capacity_gbps"):
            run_fluid_batch(_jobs(), 0.0, [0], max_iterations=1)
        with pytest.raises(ValueError, match="quantum"):
            run_fluid_batch(_jobs(), 50.0, [0], max_iterations=1, quantum=0.0)

    @pytest.mark.parametrize(
        "policy",
        [SRPT(), MLTCPWeighted(ratio_granularity=0.05)],
        ids=["srpt", "granular-mltcp"],
    )
    def test_rejects_unbatchable_policies(self, policy):
        with pytest.raises(ValueError, match="no batched fast path"):
            run_fluid_batch(_jobs(), 50.0, [0], policy=policy, max_iterations=1)


class TestBatchedFluidExperiment:
    def _experiment(self, metric="mean_iteration_time"):
        return BatchedFluidExperiment(
            jobs=tuple(_jobs(jitter_sigma=0.003)),
            capacity_gbps=50.0,
            policy=MLTCPWeighted(),
            max_iterations=3,
            metric=metric,
        )

    @pytest.mark.parametrize("metric", ["mean_iteration_time", "end_time"])
    def test_run_batch_matches_per_seed_calls(self, metric):
        experiment = self._experiment(metric)
        seeds = [0, 1, 2]
        batched = experiment.run_batch(seeds)
        solo = [experiment(seed) for seed in seeds]
        assert [v.hex() for v in batched] == [v.hex() for v in solo]

    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown metric"):
            self._experiment(metric="p99_latency")


class TestSweepBatchRouting:
    def test_run_batched_seeds_summary_matches_pool_route(self):
        experiment = BatchedFluidExperiment(
            jobs=tuple(_jobs(jitter_sigma=0.003)),
            capacity_gbps=50.0,
            max_iterations=3,
        )
        seeds = [0, 1, 2, 3]
        batched = run_batched_seeds(experiment, seeds)
        sequential = repeat_with_seeds(experiment, seeds)
        assert batched == sequential

    def test_repeat_with_seeds_batch_flag_routes_to_run_batch(self):
        calls = []

        class Recorder:
            def __call__(self, seed):
                raise AssertionError("batch=True must not run per-seed")

            def run_batch(self, seeds):
                calls.append(list(seeds))
                return [float(seed) for seed in seeds]

        summary = repeat_with_seeds(Recorder(), [4, 5], batch=True)
        assert calls == [[4, 5]]
        assert summary.values == (4.0, 5.0)

    def test_batch_without_run_batch_is_typeerror(self):
        with pytest.raises(TypeError, match="run_batch"):
            repeat_with_seeds(lambda seed: float(seed), [0, 1], batch=True)

    def test_run_batch_length_mismatch_is_valueerror(self):
        class Short:
            def run_batch(self, seeds):
                return [1.0]

        with pytest.raises(ValueError, match="1 values for 2 seeds"):
            run_batched_seeds(Short(), [0, 1])

    def test_empty_seeds_rejected_before_dispatch(self):
        class Never:
            def run_batch(self, seeds):  # pragma: no cover - must not run
                raise AssertionError

        with pytest.raises(ValueError, match="at least one seed"):
            run_batched_seeds(Never(), [])


class TestEngineDispatch:
    """The scalar and array engines behind the size dispatch are twins.

    ``FluidSimulator``/``NetworkFluidSimulator`` route populations under
    ``_VECTORIZED_MIN_FLOWS`` to the original scalar engine (numpy's
    per-op cost dominates small runs) and everything else to the array
    engine.  Forcing the threshold down must not change a single bit of
    any output — iterations, segments, end time.
    """

    @pytest.mark.parametrize("policy_factory", [FairShare, MLTCPWeighted, SRPT])
    def test_single_link_engines_bit_identical(self, monkeypatch, policy_factory):
        jobs = _jobs(jitter_sigma=0.002, volume_jitter_fraction=0.05)
        scalar = run_fluid(
            jobs, 50.0, policy=policy_factory(), max_iterations=4, seed=3
        )
        monkeypatch.setattr("repro.fluid.flowsim._VECTORIZED_MIN_FLOWS", 1)
        array = run_fluid(
            jobs, 50.0, policy=policy_factory(), max_iterations=4, seed=3
        )
        assert _fingerprint(scalar) == _fingerprint(array)
        assert [
            (seg.start.hex(), seg.end.hex(),
             {k: v.hex() for k, v in seg.rates_bps.items()})
            for seg in scalar.segments
        ] == [
            (seg.start.hex(), seg.end.hex(),
             {k: v.hex() for k, v in seg.rates_bps.items()})
            for seg in array.segments
        ]

    @pytest.mark.parametrize("mltcp", [True, False])
    def test_network_engines_bit_identical(self, monkeypatch, mltcp):
        from repro.fluid import PlacedJob, run_network_fluid

        placements = [
            PlacedJob(job=job, links=("up", "spine") if i % 2 else ("up",))
            for i, job in enumerate(_jobs(jitter_sigma=0.002))
        ]
        caps = {"up": 50.0, "spine": 30.0}
        scalar = run_network_fluid(
            placements, caps, mltcp=mltcp, max_iterations=4, seed=3
        )
        monkeypatch.setattr("repro.fluid.network._VECTORIZED_MIN_FLOWS", 1)
        array = run_network_fluid(
            placements, caps, mltcp=mltcp, max_iterations=4, seed=3
        )
        assert _fingerprint(scalar) == _fingerprint(array)

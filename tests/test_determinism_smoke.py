"""Determinism smoke tests: the same seeded scenario run twice in-process
must be *identical* — event counts, finish times, every telemetry-relevant
output — on both simulation substrates.

This is the dynamic complement of the static rules in `repro lint`
(docs/LINTING.md): DET001–DET004 forbid the code shapes that break
replay; these tests catch whatever the heuristics miss.  The
hash-randomization tests pin the PR 3 fix for `water_fill` /
`weighted_max_min`, whose float summation order used to follow set
iteration order (and therefore PYTHONHASHSEED).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.fluid import run_fluid
from repro.fluid.allocation import MLTCPWeighted, water_fill
from repro.fluid.network import PlacedJob, run_network_fluid, weighted_max_min
from repro.harness.packetlab import mltcp_config_for, run_packet_jobs
from repro.tcp.mltcp import MLTCPReno
from repro.workloads import four_job_scenario, two_job_scenario
from repro.workloads.job import JobSpec

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _packet_scale_jobs() -> list[JobSpec]:
    """Two fig6-scale jobs: small enough for the packet simulator (8 Mbit
    at 1 Gbps, not the fluid presets' 36 Gbit collectives)."""
    template = JobSpec(
        name="Job",
        comm_bits=8e6,
        demand_gbps=1.0,
        compute_time=0.010,
        jitter_sigma=0.0005,
    )
    return [template.with_name("Job1"), template.with_name("Job2")]


def _fluid_fingerprint(seed: int = 7):
    result = run_fluid(
        four_job_scenario(),
        capacity_gbps=50.0,
        policy=MLTCPWeighted(),
        max_iterations=8,
        seed=seed,
    )
    return (
        [
            (it.job, it.index, it.comm_start, it.comm_end, it.iteration_end)
            for it in result.iterations
        ],
        result.end_time,
        len(result.segments),
        [seg.rates_bps for seg in result.segments[:50]],
    )


def _packet_fingerprint(seed: int = 3):
    lab = run_packet_jobs(
        _packet_scale_jobs(),
        lambda job: MLTCPReno(mltcp_config_for(job)),
        bottleneck_bps=1e9,
        max_iterations=6,
        seed=seed,
    )
    return (
        lab.sim.events_processed,
        lab.sim.now,
        {
            name: [
                (it.index, it.comm_start, it.comm_end, it.iteration_end)
                for it in app.iterations
            ]
            for name, app in lab.apps.items()
        },
    )


def _network_fingerprint(seed: int = 11):
    jobs = two_job_scenario(jitter_sigma=0.001)
    placements = [
        PlacedJob(job=jobs[0], links=("up", "core")),
        PlacedJob(job=jobs[1], links=("core", "down")),
    ]
    result = run_network_fluid(
        placements,
        {"up": 50.0, "core": 40.0, "down": 50.0},
        max_iterations=6,
        seed=seed,
    )
    return (
        [
            (it.job, it.index, it.comm_start, it.comm_end, it.iteration_end)
            for it in result.iterations
        ],
        result.end_time,
    )


class TestSameProcessReplay:
    def test_fluid_substrate_replays_bit_for_bit(self):
        first, second = _fluid_fingerprint(), _fluid_fingerprint()
        assert first == second  # exact equality, floats included

    def test_packet_substrate_replays_bit_for_bit(self):
        first, second = _packet_fingerprint(), _packet_fingerprint()
        assert first == second

    def test_network_fluid_replays_bit_for_bit(self):
        first, second = _network_fingerprint(), _network_fingerprint()
        assert first == second

    def test_different_seeds_actually_differ(self):
        # Guard against the fingerprints being trivially constant.
        assert _fluid_fingerprint(seed=7) != _fluid_fingerprint(seed=8)


def _run_hashseed(code: str, hashseed: str) -> str:
    """Run ``code`` in a subprocess with a pinned PYTHONHASHSEED."""
    env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, env=env, check=True,
    )
    return proc.stdout


#: Weights chosen so the per-step float sums genuinely depend on addition
#: order (1/3, 1/7, ... have no exact binary representation).
_WATER_FILL_CODE = """
import json
from repro.fluid.allocation import water_fill
demands = {f"flow{i:02d}": 1e9 / (i + 2) for i in range(12)}
weights = {f"flow{i:02d}": 1.0 / (3 + i) for i in range(12)}
rates = water_fill(demands, weights, 2.5e9)
print(json.dumps({k: rates[k].hex() for k in sorted(rates)}))
"""

_MAX_MIN_CODE = """
import json
from repro.fluid.network import weighted_max_min
flows = {
    f"flow{i:02d}": (1.0 / (3 + i), 1e9 / (i + 2), ("up", "core"))
    for i in range(12)
}
rates = weighted_max_min(flows, {"up": 1.7e9, "core": 1.3e9})
print(json.dumps({k: rates[k].hex() for k in sorted(rates)}))
"""


class TestHashSeedIndependence:
    """Regression for the PR 3 fix: allocation results used to vary with
    PYTHONHASHSEED because float sums followed set iteration order."""

    def test_water_fill_is_hashseed_independent(self):
        outputs = {_run_hashseed(_WATER_FILL_CODE, hs) for hs in ("1", "2", "31337")}
        assert len(outputs) == 1, "water_fill rates vary with PYTHONHASHSEED"

    def test_weighted_max_min_is_hashseed_independent(self):
        outputs = {_run_hashseed(_MAX_MIN_CODE, hs) for hs in ("1", "2", "31337")}
        assert len(outputs) == 1, (
            "weighted_max_min rates vary with PYTHONHASHSEED"
        )

    def test_water_fill_still_allocates_correctly(self):
        # Behavior guard for the sorted() rewrite: conservation and caps.
        demands = {"a": 4e9, "b": 1e9, "c": 2e9}
        weights = {"a": 3.0, "b": 1.0, "c": 1.0}
        rates = water_fill(demands, weights, 5e9)
        assert sum(rates.values()) <= 5e9 + 1e-3
        assert all(rates[f] <= demands[f] + 1e-3 for f in demands)
        # b's proportional share (1 Gbps) equals its demand cap.
        assert np.isclose(rates["b"], 1e9)


class TestToleranceFixes:
    """Behavioral regressions for the FLT001 fixes in the fluid simulator."""

    def test_rate_timeline_skips_near_zero_rates(self):
        # The old `rate == 0.0` skipped only exact zeros; is_zero() must
        # treat denormal-scale residue the same way without changing real
        # rates.
        result = run_fluid(
            four_job_scenario(), capacity_gbps=50.0, max_iterations=4, seed=0
        )
        job = result.jobs[0].name
        times, rates = result.rate_timeline(job, dt=0.01)
        assert len(times) == len(rates)
        assert rates.max() > 0.0  # the job did communicate

    def test_capacity_factor_log_dedupes_equal_factors(self):
        from repro.faults.schedule import FaultEvent, FaultSchedule

        schedule = FaultSchedule(
            events=(
                FaultEvent(kind="bandwidth", time=0.05, duration=0.1, factor=0.5),
            ),
            seed=0,
        )
        result = run_fluid(
            two_job_scenario(jitter_sigma=0.0),
            capacity_gbps=50.0,
            max_iterations=6,
            seed=0,
            faults=schedule,
        )
        transitions = [
            line for line in result.fault_log if "capacity factor" in line
        ]
        # One drop to 0.5 and one recovery to 1.0 — equal consecutive
        # factors (within tolerance) must not re-log.
        assert len(transitions) == 2


class TestUnitConverters:
    def test_converters_roundtrip(self):
        from repro.core.units import (
            bits_from_bytes, bps_from_gbps, bytes_from_bits, gbps_from_bps,
            mbps_from_bps, bps_from_mbps, s_from_us, us_from_s,
        )

        assert bits_from_bytes(1460) == 11680
        assert bytes_from_bits(11680) == 1460
        assert bps_from_gbps(50.0) == 50e9
        assert gbps_from_bps(50e9) == 50.0
        assert bps_from_mbps(1.0) == 1e6
        assert mbps_from_bps(1e6) == 1.0
        assert s_from_us(5.0) == 5e-6
        assert us_from_s(5e-6) == 5.0

    def test_capacity_bps_uses_converter(self):
        from repro.fluid.flowsim import FluidSimulator

        sim = FluidSimulator(two_job_scenario(), capacity_gbps=50.0)
        assert sim.capacity_bps == 50e9

    def test_tolerance_helpers(self):
        from repro.core.tolerances import close, is_zero

        assert close(0.1 + 0.2, 0.3)
        assert not close(0.3, 0.300001)
        assert is_zero(0.0) and is_zero(1e-12)
        assert not is_zero(1e-3)

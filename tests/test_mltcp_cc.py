"""Tests for the MLTCP congestion-control variants (Algorithm 1 end to end)."""

import pytest

from repro.core.aggressiveness import ConstantAggressiveness
from repro.core.config import MLTCPConfig
from repro.simulator.engine import Simulator
from repro.simulator.queues import DropTailQueue
from repro.simulator.topology import build_dumbbell
from repro.tcp.base import TcpReceiver, TcpSender
from repro.tcp.mltcp import MLTCPCubic, MLTCPDctcp, MLTCPReno, MltcpState
from repro.tcp.reno import RenoCC


class FakeSim:
    def __init__(self, now=0.0):
        self.now = now


class FakeConn:
    def __init__(self, now=0.0, mss=1500, srtt=0.001):
        self.sim = FakeSim(now)
        self.mss_bytes = mss
        self._srtt = srtt

    @property
    def smoothed_rtt(self):
        return self._srtt


class TestMltcpState:
    def test_eq1_window_update(self):
        """cwnd += F(bytes_ratio) * num_acks / cwnd (paper Eq. 1)."""
        config = MLTCPConfig(total_bytes=15000, comp_time=0.5)
        cc = MLTCPReno(config)
        cc.ssthresh = 10.0  # force congestion avoidance
        cc.cwnd = 10.0
        conn = FakeConn(now=0.0)
        cc.on_ack(2, conn)  # 3000 of 15000 bytes -> ratio 0.2
        expected_f = 1.75 * 0.2 + 0.25
        assert cc.cwnd == pytest.approx(10.0 + expected_f * 2 / 10.0)

    def test_ratio_accumulates_across_acks(self):
        config = MLTCPConfig(total_bytes=15000, comp_time=0.5)
        cc = MLTCPReno(config)
        cc.ssthresh = 1.0
        cc.cwnd = 10.0
        conn = FakeConn()
        cc.on_ack(5, conn)
        conn.sim.now = 0.001
        cc.on_ack(5, conn)
        assert cc.mltcp.tracker.bytes_ratio == pytest.approx(1.0)
        assert cc.mltcp.aggressiveness() == pytest.approx(2.0)

    def test_iteration_boundary_resets_aggressiveness(self):
        config = MLTCPConfig(total_bytes=3000, comp_time=0.01)
        cc = MLTCPReno(config)
        cc.ssthresh = 1.0
        cc.cwnd = 10.0
        conn = FakeConn()
        cc.on_ack(2, conn)  # ratio 1.0
        assert cc.mltcp.aggressiveness() == pytest.approx(2.0)
        conn.sim.now = 1.0  # gap >> comp_time: new iteration
        cc.on_ack(1, conn)  # ratio 0.5
        assert cc.mltcp.tracker.bytes_ratio == pytest.approx(0.5)

    def test_constant_function_equals_plain_reno(self):
        """F == 1 reduces MLTCP-Reno exactly to Reno."""
        config = MLTCPConfig(
            function=ConstantAggressiveness(1.0), total_bytes=15000, comp_time=0.5
        )
        mltcp = MLTCPReno(config)
        reno = RenoCC()
        for cc in (mltcp, reno):
            cc.ssthresh = 10.0
            cc.cwnd = 10.0
        conn = FakeConn()
        mltcp.on_ack(3, conn)
        reno.on_ack(3, conn)
        assert mltcp.cwnd == pytest.approx(reno.cwnd)

    def test_default_config(self):
        state = MltcpState()
        assert state.config.total_bytes is None
        assert state.aggressiveness() == pytest.approx(0.25)


class TestVariants:
    def test_names(self):
        assert MLTCPReno().name == "mltcp-reno"
        assert MLTCPCubic().name == "mltcp-cubic"
        assert MLTCPDctcp().name == "mltcp-dctcp"

    def test_dctcp_variant_keeps_ecn(self):
        assert MLTCPDctcp().ecn_enabled

    def test_cubic_scales_increment(self):
        config = MLTCPConfig(total_bytes=1500, comp_time=0.5)
        low = MLTCPCubic(config)
        high = MLTCPCubic(config)
        for cc in (low, high):
            cc.ssthresh = 10.0
            cc.cwnd = 10.0
            cc._w_max = 50.0
        conn_low = FakeConn()
        low.on_ack(0, conn_low)  # ratio stays 0 -> F = 0.25
        conn_high = FakeConn()
        high.on_ack(1, conn_high)  # ratio 1 -> F = 2
        # Same cubic target; the high-ratio variant must have grown more.
        assert high.cwnd - 10.0 > 0
        assert high.cwnd >= low.cwnd


def run_competition(cc_a, cc_b, nbytes=30_000_000, until=0.25, queue_packets=64):
    """Two long flows share the bottleneck; returns (bytes_a, bytes_b) acked."""
    sim = Simulator()
    net = build_dumbbell(
        sim, 2, bottleneck_bps=1e9, bottleneck_queue=DropTailQueue(queue_packets)
    )
    senders = []
    for i, cc in enumerate((cc_a, cc_b)):
        sender = TcpSender(sim, net.hosts[f"s{i}"], f"f{i}", f"r{i}", cc)
        TcpReceiver(sim, net.hosts[f"r{i}"], f"f{i}", f"s{i}")
        sender.send_bytes(nbytes)
        senders.append(sender)
    sim.run(until=until)
    return tuple(s.snd_una * s.mss_bytes for s in senders)


class TestBandwidthCompetition:
    def test_saturated_mltcp_beats_reno(self):
        """§5: at equal loss, an MLTCP flow deep in its iteration (F -> 2)
        claims more bandwidth than a plain Reno flow."""
        # total_bytes=1 pins bytes_ratio at 1 for the whole run — an
        # intentionally absurd estimate, so the missed-boundary guard must
        # be disabled or the flow would (correctly) degrade to vanilla CC.
        mltcp = MLTCPReno(
            MLTCPConfig(total_bytes=1, comp_time=1e9, degrade_on_unreliable=False)
        )
        reno = RenoCC()
        got_mltcp, got_reno = run_competition(mltcp, reno)
        assert got_mltcp > 1.2 * got_reno

    def test_fresh_mltcp_yields_to_reno(self):
        """A flow early in its iteration (F -> 0.25) is less aggressive."""
        mltcp = MLTCPReno(MLTCPConfig(total_bytes=10**12, comp_time=1e9))
        reno = RenoCC()
        got_mltcp, got_reno = run_competition(mltcp, reno)
        assert got_mltcp < got_reno

    def test_no_starvation(self):
        """§5: MLTCP does not starve legacy flows."""
        mltcp = MLTCPReno(MLTCPConfig(total_bytes=1, comp_time=1e9))
        reno = RenoCC()
        got_mltcp, got_reno = run_competition(mltcp, reno, until=0.5)
        assert got_reno > 0.1 * got_mltcp


class TestPacketLevelIterationTracking:
    def test_tracker_sees_iterations_over_real_network(self):
        """The ACK-gap boundary detector works over the packet simulator."""
        from repro.simulator.app import TrainingApp
        from repro.workloads.job import JobSpec

        sim = Simulator()
        net = build_dumbbell(sim, 1, bottleneck_bps=1e9)
        job = JobSpec(
            name="J", comm_bits=2e6, demand_gbps=1.0, compute_time=0.02
        )
        cc = MLTCPReno(MLTCPConfig(total_bytes=job.comm_bytes, comp_time=0.005))
        sender = TcpSender(sim, net.hosts["s0"], "J", "r0", cc)
        TcpReceiver(sim, net.hosts["r0"], "J", "s0")
        app = TrainingApp(sim, sender, job, max_iterations=5)
        app.start()
        sim.run(until=1.0)
        assert app.completed == 5
        # 5 iterations -> at least 4 boundaries observed by the tracker.
        assert cc.mltcp.tracker.iteration_index >= 4
        for record in cc.mltcp.tracker.completed_iterations:
            assert record.bytes_sent >= job.comm_bytes * 0.95

    def test_online_learning_over_real_network(self):
        """§3.2: TOTAL_BYTES and COMP_TIME learned from the first iterations."""
        from repro.simulator.app import TrainingApp
        from repro.workloads.job import JobSpec

        sim = Simulator()
        net = build_dumbbell(sim, 1, bottleneck_bps=1e9)
        job = JobSpec(name="J", comm_bits=2e6, demand_gbps=1.0, compute_time=0.02)
        cc = MLTCPReno(MLTCPConfig())  # learn everything online
        sender = TcpSender(sim, net.hosts["s0"], "J", "r0", cc)
        TcpReceiver(sim, net.hosts["r0"], "J", "s0")
        app = TrainingApp(sim, sender, job, max_iterations=6)
        app.start()
        sim.run(until=1.0)
        tracker = cc.mltcp.tracker
        assert tracker.total_bytes is not None
        assert tracker.total_bytes == pytest.approx(job.comm_bytes, rel=0.1)
        assert tracker.comp_time is not None
        assert tracker.comp_time < job.compute_time

"""Tests for statistics and convergence metrics."""

import numpy as np
import pytest

from repro.metrics.convergence import detect_convergence, is_stable_after, relative_gap
from repro.metrics.stats import empirical_cdf, percentile, summarize, tail_speedup


class TestCdf:
    def test_sorted_and_normalized(self):
        values, probs = empirical_cdf([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert probs[-1] == 1.0
        assert probs[0] == pytest.approx(1 / 3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            empirical_cdf([])


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_extremes(self):
        assert percentile([1, 2, 3], 0) == 1.0
        assert percentile([1, 2, 3], 100) == 3.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="q"):
            percentile([1.0], 150)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)


class TestTailSpeedup:
    def test_paper_style_speedup(self):
        baseline = np.full(100, 2.7)
        improved = np.full(100, 1.8)
        assert tail_speedup(baseline, improved) == pytest.approx(1.5)

    def test_uses_requested_quantile(self):
        baseline = np.concatenate([np.ones(99), [10.0]])
        improved = np.ones(100)
        assert tail_speedup(baseline, improved, q=50) == pytest.approx(1.0)
        assert tail_speedup(baseline, improved, q=100) == pytest.approx(10.0)


class TestSummarize:
    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_as_row_keys(self):
        row = summarize([1.0, 2.0]).as_row()
        assert set(row) == {"count", "mean", "std", "p50", "p90", "p99", "min", "max"}


class TestDetectConvergence:
    def test_detects_settling_point(self):
        series = [2.7, 2.5, 2.2, 1.85, 1.8, 1.81, 1.79, 1.8]
        report = detect_convergence(series, target=1.8, tolerance=0.05)
        assert report.converged_at == 3
        assert report.stable

    def test_never_converges(self):
        series = [2.7] * 10
        report = detect_convergence(series, target=1.8)
        assert not report.converged
        assert report.converged_at is None

    def test_window_requires_consecutive_points(self):
        # One lucky sample inside tolerance must not count as convergence.
        series = [2.7, 1.8, 2.7, 2.7, 2.7]
        report = detect_convergence(series, target=1.8, window=3)
        assert not report.converged

    def test_unstable_after_convergence(self):
        series = [1.8] * 5 + [2.7] * 15
        report = detect_convergence(series, target=1.8, window=3)
        assert report.converged
        assert not report.stable

    def test_validation(self):
        with pytest.raises(ValueError, match="target"):
            detect_convergence([1.0], target=0.0)
        with pytest.raises(ValueError, match="empty"):
            detect_convergence([], target=1.0)
        with pytest.raises(ValueError, match="window"):
            detect_convergence([1.0], target=1.0, window=0)


class TestHelpers:
    def test_relative_gap(self):
        assert relative_gap(1.86, 1.8) == pytest.approx(1 / 30)

    def test_relative_gap_validation(self):
        with pytest.raises(ValueError, match="target"):
            relative_gap(1.0, 0.0)

    def test_is_stable_after(self):
        series = [3.0, 1.8, 1.81, 1.79]
        assert is_stable_after(series, start=1, target=1.8)
        assert not is_stable_after(series, start=0, target=1.8)

    def test_is_stable_after_validates_start(self):
        with pytest.raises(ValueError, match="beyond"):
            is_stable_after([1.0], start=5, target=1.0)


class TestJainFairness:
    def test_equal_allocations_give_one(self):
        from repro.metrics.stats import jain_fairness

        assert jain_fairness([10.0, 10.0, 10.0]) == pytest.approx(1.0)

    def test_single_hog_gives_one_over_n(self):
        from repro.metrics.stats import jain_fairness

        assert jain_fairness([30.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_mltcp_extremes_stay_reasonable(self):
        """F's range is 0.25-2: even the most skewed two-flow MLTCP split
        (1:8) keeps Jain's index above 0.6 — unfair, not starving."""
        from repro.metrics.stats import jain_fairness

        assert jain_fairness([1.0, 8.0]) > 0.6

    def test_validation(self):
        from repro.metrics.stats import jain_fairness

        with pytest.raises(ValueError, match="empty"):
            jain_fairness([])
        with pytest.raises(ValueError, match="non-negative"):
            jain_fairness([-1.0, 1.0])
        with pytest.raises(ValueError, match="zero"):
            jain_fairness([0.0, 0.0])

"""Tests for the closed-form loss and escape-rate analysis additions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    escape_rate,
    iterations_to_converge,
    loss,
    loss_closed_form,
    predicted_convergence_iterations,
)


class TestClosedFormLoss:
    @pytest.mark.parametrize("delta", [0.0, 0.1, 0.45, 0.9, 1.35, 1.7, 1.8])
    def test_matches_quadrature_alpha_half(self, delta):
        assert loss_closed_form(delta, 0.5, 1.8) == pytest.approx(
            loss(delta, 0.5, 1.8), abs=1e-8
        )

    @pytest.mark.parametrize("delta", [0.0, 0.2, 0.45, 0.9, 1.35, 1.6])
    def test_matches_quadrature_alpha_quarter(self, delta):
        """Plateau and mirror regions agree too."""
        assert loss_closed_form(delta, 0.25, 1.8) == pytest.approx(
            loss(delta, 0.25, 1.8), abs=1e-8
        )

    @given(
        delta=st.floats(min_value=0.0, max_value=1.8),
        alpha=st.floats(min_value=0.1, max_value=0.5),
        slope=st.floats(min_value=0.5, max_value=4.0),
        intercept=st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_quadrature_property(self, delta, alpha, slope, intercept):
        closed = loss_closed_form(delta, alpha, 1.8, slope, intercept)
        numeric = loss(delta, alpha, 1.8, slope, intercept)
        assert closed == pytest.approx(numeric, abs=1e-6)

    def test_symmetry(self):
        assert loss_closed_form(0.3, 0.5, 1.8) == pytest.approx(
            loss_closed_form(1.5, 0.5, 1.8), abs=1e-10
        )

    def test_minimum_at_interleave(self):
        deltas = np.linspace(0, 1.8, 181)
        values = [loss_closed_form(d, 0.5, 1.8) for d in deltas]
        assert deltas[int(np.argmin(values))] == pytest.approx(0.9, abs=0.02)


class TestEscapeRate:
    def test_paper_constants_give_eight(self):
        """Slope 1.75 / Intercept 0.25: small offsets grow 8x per iteration."""
        assert escape_rate() == pytest.approx(8.0)

    def test_rate_grows_with_slope(self):
        assert escape_rate(slope=3.5) > escape_rate(slope=1.75)

    def test_validation(self):
        with pytest.raises(ValueError, match="slope"):
            escape_rate(slope=0.0)
        with pytest.raises(ValueError, match="intercept"):
            escape_rate(intercept=0.0)


class TestPredictedConvergence:
    def test_prediction_close_to_iterated_dynamics(self):
        predicted = predicted_convergence_iterations(0.05, 0.5, 1.8)
        actual = iterations_to_converge(0.05, 0.5, 1.8)
        assert actual is not None
        # The exponential model slightly under-estimates (shift tapers off).
        assert predicted <= actual + 0.5
        assert actual <= predicted + 4

    def test_closer_start_predicts_fewer(self):
        far = predicted_convergence_iterations(0.01, 0.5, 1.8)
        near = predicted_convergence_iterations(0.5, 0.5, 1.8)
        assert near < far

    def test_domain_validated(self):
        with pytest.raises(ValueError, match="overlap region"):
            predicted_convergence_iterations(0.0, 0.5, 1.8)
        with pytest.raises(ValueError, match="overlap region"):
            predicted_convergence_iterations(1.0, 0.5, 1.8)

"""Tests for ``repro verify``: the discrete-step model of Algorithm 1,
the exhaustive/z3 solver backends, committed proof artifacts, the
counterexample→fluid-replay pipeline, and the CLI exit-code contract."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.aggressiveness import DecreasingLinearAggressiveness
from repro.fluid.allocation import MLTCPWeighted
from repro.fluid.flowsim import run_fluid
from repro.verify import (
    MODEL_CONSTANTS,
    PROPERTIES,
    ModelParams,
    Verdict,
    have_z3,
    model_fingerprint,
    property_by_name,
    share_floor,
    solve,
)
from repro.verify.certificates import (
    CERTIFICATE_DIR,
    artifact_filename,
    build_artifact,
    certified_f_max,
    certified_invariants,
    certified_share_floor,
    load_artifact,
    load_committed,
    scenario_from_witness,
    staleness_errors,
    write_artifact,
)
from repro.verify.model import (
    circle_distance,
    f_of_ratio,
    is_interleaved,
    iteration_share,
    min_overlap_share,
    pairwise_lags,
    step_lag,
    step_offsets,
)
from repro.workloads.job import JobSpec

PAPER = ModelParams()
DEGRADED = ModelParams(variant="degraded")
FAIR = ModelParams(variant="fair")
WEAK = ModelParams(variant="decreasing-f")


class TestModel:
    def test_f_matches_eq2_on_paper_constants(self):
        assert f_of_ratio(0.0, PAPER) == 0.25
        assert f_of_ratio(1.0, PAPER) == 2.0
        assert f_of_ratio(0.5, PAPER) == pytest.approx(1.125)

    def test_degraded_f_is_constant_one(self):
        for ratio in (0.0, 0.3, 1.0):
            assert f_of_ratio(ratio, DEGRADED) == 1.0

    def test_step_preserves_lag_range(self):
        # No modulo in the step map — range preservation is what makes
        # the expressions z3-encodable; check it concretely per variant.
        for params in (PAPER, DEGRADED, FAIR, WEAK):
            lag = 0.013
            for _ in range(64):
                lag = step_lag(lag, params)
                assert 0.0 <= lag <= params.period

    def test_paper_variant_converges_to_interleaving(self):
        lag = 0.02
        for _ in range(32):
            lag = step_lag(lag, PAPER)
        assert is_interleaved(lag, PAPER)

    def test_weakened_variant_never_interleaves(self):
        lag = 0.05
        for _ in range(64):
            lag = step_lag(lag, WEAK)
            assert not is_interleaved(lag, WEAK)

    def test_degraded_is_step_equivalent_to_fair(self):
        for i in range(101):
            lag = i / 100.0
            assert step_lag(lag, DEGRADED) == step_lag(lag, FAIR)
            assert min_overlap_share(lag, DEGRADED) == min_overlap_share(lag, FAIR)

    def test_degraded_shift_is_zero(self):
        for lag in (0.1, 0.25, 0.4):
            assert step_lag(lag, DEGRADED) == lag

    def test_interleaved_is_fixed_point(self):
        lag = PAPER.comm  # fully interleaved: comm phases back to back
        assert is_interleaved(lag, PAPER)
        assert step_lag(lag, PAPER) == pytest.approx(lag)

    def test_circle_distance_symmetry(self):
        assert circle_distance(0.9, 1.0) == pytest.approx(0.1)
        assert circle_distance(0.1, 1.0) == pytest.approx(0.1)

    def test_iteration_share_floor_is_half(self):
        # Work conservation: the follower gets comm/(2*comm - d) >= 1/2.
        for i in range(1, 40):
            lag = i / 100.0
            assert iteration_share(lag, PAPER) >= 0.5

    def test_instantaneous_share_floor(self):
        floor = share_floor("paper", 2)
        assert floor == pytest.approx(1.0 / 9.0)
        for i in range(101):
            lag = i / 100.0
            assert min_overlap_share(lag, PAPER) >= floor - 1e-12

    def test_three_job_pairwise_lags(self):
        lags = pairwise_lags([0.0, 0.3, 0.7], 1.0)
        assert lags == pytest.approx([0.3, 0.7, 0.4])

    def test_three_job_step_stays_on_circle(self):
        params = ModelParams(jobs=3, alpha=0.3)
        offsets = [0.0, 0.05, 0.11]
        for _ in range(48):
            offsets = step_offsets(offsets, params)
            assert all(0.0 <= o < params.period for o in offsets)

    def test_fingerprint_tracks_constants_and_extra(self):
        base = model_fingerprint()
        assert base.startswith("sha256:")
        assert model_fingerprint() == base
        assert model_fingerprint({"k": 3}) != base

    def test_params_validation(self):
        with pytest.raises(ValueError):
            ModelParams(variant="nope")
        with pytest.raises(ValueError):
            ModelParams(alpha=0.7)
        with pytest.raises(ValueError):
            ModelParams(jobs=4)

    def test_model_constants_mirror_implementation(self):
        from repro.core.aggressiveness import PAPER_INTERCEPT, PAPER_SLOPE
        from repro.core.analysis import CONVERGENCE_TOLERANCE_FRACTION
        from repro.tcp.mltcp import DEGRADED_AGGRESSIVENESS

        assert MODEL_CONSTANTS["slope"] == PAPER_SLOPE
        assert MODEL_CONSTANTS["intercept"] == PAPER_INTERCEPT
        assert MODEL_CONSTANTS["degraded_f"] == DEGRADED_AGGRESSIVENESS
        assert (
            MODEL_CONSTANTS["interleave_tolerance_fraction"]
            == CONVERGENCE_TOLERANCE_FRACTION
        )


class TestExhaustiveSolver:
    @pytest.mark.parametrize("name", sorted(PROPERTIES))
    def test_fast_grid_reaches_expected_verdict(self, name):
        prop = PROPERTIES[name]
        verdict = solve(prop, backend="exhaustive", fast=True)
        assert verdict.verdict == prop.expected, verdict.reason
        assert verdict.matches_expected
        assert verdict.backend == "exhaustive"
        assert verdict.states_checked > 0

    def test_weakened_witness_is_concrete(self):
        prop = PROPERTIES["interleaving-reachability-weakened"]
        verdict = solve(prop, backend="exhaustive", fast=True)
        assert verdict.verdict == "sat"
        assert "initial_lag" in verdict.witness
        lag = verdict.witness["initial_lag"]
        params = ModelParams(variant="decreasing-f")
        for _ in range(prop.params["k"]):
            assert not is_interleaved(lag, params)
            lag = step_lag(lag, params)

    def test_timeout_yields_unknown(self):
        prop = PROPERTIES["starvation-bound"]
        from repro.verify.solver import ExhaustiveBackend

        verdict = ExhaustiveBackend(timeout_s=1e-9).solve(
            prop, prop.resolved(fast=True)
        )
        assert verdict.verdict == "unknown"
        assert "timeout" in verdict.reason

    def test_param_overrides_reach_the_query(self):
        prop = PROPERTIES["starvation-bound"]
        verdict = solve(prop, backend="exhaustive", fast=True, grid=11)
        assert verdict.params["grid"] == 11
        assert verdict.states_checked == 11

    def test_unknown_property_name(self):
        with pytest.raises(KeyError):
            property_by_name("no-such-property")


@pytest.mark.skipif(not have_z3(), reason="z3-solver not installed ([verify] extra)")
class TestZ3Solver:
    @pytest.mark.parametrize(
        "name",
        [
            "interleaving-reachability",
            "interleaving-reachability-weakened",
            "starvation-bound",
            "degradation-safety",
            "monotone-recovery",
        ],
    )
    def test_agrees_with_exhaustive(self, name):
        prop = PROPERTIES[name]
        verdict = solve(prop, backend="z3", fast=True)
        assert verdict.verdict == prop.expected, verdict.reason

    def test_three_job_property_is_unsupported(self):
        prop = PROPERTIES["interleaving-reachability-3job"]
        verdict = solve(prop, backend="z3", fast=True)
        assert verdict.verdict == "skipped"


class TestSkipsWithoutZ3:
    @pytest.mark.skipif(have_z3(), reason="z3 installed; skip-path untestable")
    def test_requested_z3_backend_skips_with_hint(self):
        from repro.verify.solver import Z3_INSTALL_HINT

        verdict = solve(PROPERTIES["starvation-bound"], backend="z3", fast=True)
        assert verdict.verdict == "skipped"
        assert verdict.reason == Z3_INSTALL_HINT

    @pytest.mark.skipif(have_z3(), reason="z3 installed; skip-path untestable")
    def test_auto_backend_falls_back_to_exhaustive(self):
        verdict = solve(PROPERTIES["starvation-bound"], backend="auto", fast=True)
        assert verdict.backend == "exhaustive"
        assert verdict.verdict == "unsat"


class TestCommittedArtifacts:
    @pytest.mark.parametrize("name", sorted(PROPERTIES))
    def test_artifact_is_committed_and_fresh(self, name):
        """Acceptance criterion: every property ships a current artifact."""
        artifact = load_committed(name)
        assert staleness_errors(artifact) == []
        expected_kind = (
            "counterexample"
            if PROPERTIES[name].expected == "sat"
            else "invariant-certificate"
        )
        assert artifact["kind"] == expected_kind

    def test_tampered_fingerprint_is_stale(self):
        artifact = dict(load_committed("starvation-bound"))
        artifact["fingerprint"] = "sha256:" + "0" * 64
        errors = staleness_errors(artifact)
        assert any("fingerprint mismatch" in e for e in errors)

    def test_version_bump_is_stale(self):
        artifact = dict(load_committed("starvation-bound"))
        artifact["property_version"] = 99
        assert any("v99" in e for e in staleness_errors(artifact))

    def test_unknown_property_is_stale(self):
        assert staleness_errors({"property": "ghost"}) == [
            "ghost: property no longer exists"
        ]

    def test_certified_invariants_roundtrip(self):
        invariants = certified_invariants("starvation-bound")
        assert invariants["f_max"] == 2.0
        assert invariants["f_min"] == 0.25
        assert invariants["iteration_share_floor"] == 0.5

    def test_certified_f_max_and_share_floor(self):
        assert certified_f_max() == 2.0
        assert certified_share_floor() == pytest.approx(1.0 / 9.0)

    def test_guards_cap_is_certificate_derived(self):
        """Acceptance criterion: a guards bound comes from a certificate."""
        from repro.guards.watchdog import bdp_cwnd_cap, certified_cwnd_slack

        assert certified_cwnd_slack() == 2.0 * certified_f_max()
        assert bdp_cwnd_cap(1e9, 1e-3, 1500, 64) == bdp_cwnd_cap(
            1e9, 1e-3, 1500, 64, slack=4.0
        )

    def test_build_artifact_rejects_inconclusive(self):
        verdict = Verdict(
            property="starvation-bound", version=1, verdict="unknown",
            backend="exhaustive",
        )
        with pytest.raises(ValueError):
            build_artifact(verdict)

    def test_write_and_load_roundtrip(self, tmp_path):
        prop = PROPERTIES["starvation-bound"]
        verdict = solve(prop, backend="exhaustive", fast=True)
        artifact = build_artifact(verdict)
        path = write_artifact(artifact, tmp_path)
        assert path.name == artifact_filename(prop)
        assert load_artifact(path) == artifact

    def test_load_artifact_rejects_non_artifact(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            load_artifact(bogus)


class TestCounterexampleReplay:
    """The SAT counterexample must predict the fluid simulator.

    The committed witness schedule, run under the weakened decreasing-F
    policy it was found against, must stay synchronized (the failing
    behaviour); the same schedule under the paper's F1 must interleave
    (the fix).  This is the model-to-simulator ground-truth link.
    """

    @staticmethod
    def _final_iteration_time(policy, scenario):
        jobs = [JobSpec(**spec) for spec in scenario["jobs"]]
        result = run_fluid(
            jobs,
            scenario["capacity_gbps"],
            policy=policy,
            max_iterations=scenario["iterations"],
            seed=0,
        )
        finals = [
            float(result.iteration_times(job.name)[-3:].mean()) for job in jobs
        ]
        return max(finals)

    def test_witness_schedule_fails_under_weakened_f_and_fixes_under_paper_f(self):
        scenario = load_committed("interleaving-reachability-weakened")["scenario"]
        assert scenario["expectation"]["interleaves"] is False
        period = scenario["period_s"]
        # Ideal (interleaved) iteration time is one period; a synchronized
        # pair pays the overlapped comm phase on top (~1.4 periods here).
        threshold = 1.15 * period
        weakened = self._final_iteration_time(
            MLTCPWeighted(DecreasingLinearAggressiveness()), scenario
        )
        fixed = self._final_iteration_time(MLTCPWeighted(), scenario)
        assert weakened > threshold, (
            f"model predicted no interleaving but the weakened run reached "
            f"{weakened:.3f} s/iteration"
        )
        assert fixed < threshold, (
            f"paper F1 should interleave from the same schedule, got "
            f"{fixed:.3f} s/iteration"
        )

    def test_scenario_from_witness_shapes(self):
        prop = PROPERTIES["interleaving-reachability-weakened"]
        scenario = scenario_from_witness(
            prop, {"initial_lag": 0.25}, prop.resolved()
        )
        assert [job["start_offset"] for job in scenario["jobs"]] == [0.0, 0.25]
        assert scenario["jobs"][0]["comm_bits"] == pytest.approx(
            0.4 * 1.0 * 10e9
        )
        with pytest.raises(ValueError):
            scenario_from_witness(prop, {}, prop.resolved())


class TestVerifyCli:
    def test_full_fast_catalog_exits_zero(self, capsys):
        assert main(["verify", "--fast", "--check"]) == 0
        out = capsys.readouterr().out
        assert "expected verdicts" in out

    def test_unknown_property_exits_two(self, capsys):
        assert main(["verify", "no-such-property"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_bad_timeout_exits_two(self, capsys):
        assert main(["verify", "--timeout", "-1"]) == 2
        capsys.readouterr()

    def test_list_properties(self, capsys):
        assert main(["verify", "--list"]) == 0
        out = capsys.readouterr().out
        for name in PROPERTIES:
            assert name in out

    def test_missing_artifact_fails_check(self, tmp_path, capsys):
        code = main([
            "verify", "starvation-bound", "--fast", "--check",
            "--write-dir", str(tmp_path),
        ])
        assert code == 1
        assert "no committed artifact" in capsys.readouterr().err

    def test_write_then_check_roundtrip(self, tmp_path, capsys):
        assert main([
            "verify", "starvation-bound", "--fast", "--write",
            "--write-dir", str(tmp_path),
        ]) == 0
        assert main([
            "verify", "starvation-bound", "--fast", "--check",
            "--write-dir", str(tmp_path),
        ]) == 0
        capsys.readouterr()

    def test_report_has_verification_section_and_validates(self, tmp_path, capsys):
        from repro.harness.telemetry import validate_run_report

        report_path = tmp_path / "verify.run.json"
        assert main([
            "verify", "starvation-bound", "degradation-safety", "--fast",
            "--report", str(report_path),
        ]) == 0
        capsys.readouterr()
        report = json.loads(report_path.read_text())
        validate_run_report(report)
        entries = report["verification"]
        # Explicitly named properties run (and report) in the given order.
        assert [e["property"] for e in entries] == [
            "starvation-bound", "degradation-safety",
        ]
        assert all(e["verdict"] == "unsat" for e in entries)

    def test_committed_artifacts_match_checked_in_files(self):
        """The certificate directory holds exactly the catalog's artifacts."""
        committed = sorted(p.name for p in CERTIFICATE_DIR.glob("*.json"))
        expected = sorted(
            artifact_filename(prop) for prop in PROPERTIES.values()
        )
        assert committed == expected


class TestTelemetryVerificationSection:
    def test_record_verification_validates_verdict(self):
        from repro.harness.telemetry import RunTelemetry

        telemetry = RunTelemetry("verify")
        with pytest.raises(ValueError):
            telemetry.record_verification(
                "p", version=1, verdict="maybe", backend="exhaustive"
            )
        with pytest.raises(ValueError):
            telemetry.record_verification(
                "p", version=1, verdict="unsat", backend="exhaustive",
                states_checked=-1,
            )

    def test_report_roundtrip(self):
        from repro.harness.telemetry import RunTelemetry, validate_run_report

        telemetry = RunTelemetry("verify")
        telemetry.record_verification(
            "starvation-bound", version=1, verdict="unsat",
            backend="exhaustive", states_checked=201, elapsed_s=0.01,
            params={"k": 3},
        )
        report = telemetry.as_report()
        validate_run_report(report)
        assert report["verification"][0]["states_checked"] == 201

"""Tests for the fluid (flow-level) simulator."""

import numpy as np
import pytest

from repro.fluid.allocation import FairShare, MLTCPWeighted
from repro.fluid.flowsim import FluidSimulator, Phase, run_fluid
from repro.workloads.job import JobSpec, gbit


def make_job(name="J", comm_gbit=10.0, demand=25.0, compute=1.0, **kwargs):
    return JobSpec(
        name=name,
        comm_bits=gbit(comm_gbit),
        demand_gbps=demand,
        compute_time=compute,
        **kwargs,
    )


class TestSingleJob:
    def test_isolated_job_runs_at_ideal(self):
        job = make_job()
        result = run_fluid([job], 50.0, max_iterations=5, seed=None)
        times = result.iteration_times("J")
        assert len(times) == 5
        assert times == pytest.approx(
            np.full(5, job.ideal_iteration_time), rel=1e-6
        )

    def test_comm_duration_matches_ideal(self):
        job = make_job()
        result = run_fluid([job], 50.0, max_iterations=3, seed=None)
        for it in result.iterations_of("J"):
            assert it.comm_duration == pytest.approx(job.ideal_comm_time, rel=1e-6)

    def test_capacity_limits_comm(self):
        """Demand above capacity stretches the communication phase."""
        job = make_job(demand=100.0)  # wants 100 Gbps on a 50 Gbps link
        result = run_fluid([job], 50.0, max_iterations=3, seed=None)
        expected_comm = gbit(10.0) / (50e9)
        for it in result.iterations_of("J"):
            assert it.comm_duration == pytest.approx(expected_comm, rel=1e-6)

    def test_start_offset_delays_first_iteration(self):
        job = make_job().with_offset(0.75)
        result = run_fluid([job], 50.0, max_iterations=2, seed=None)
        assert result.iterations_of("J")[0].comm_start == pytest.approx(0.75)


class TestMultipleJobs:
    def test_contention_stretches_iterations(self):
        jobs = [make_job("A", demand=40.0), make_job("B", demand=40.0)]
        result = run_fluid(jobs, 50.0, max_iterations=3, seed=None)
        # Synchronized start, fair share: both run at 25 < 40 Gbps.
        first = result.iterations_of("A")[0]
        assert first.comm_duration > jobs[0].ideal_comm_time * 1.3

    def test_rate_conservation(self):
        """Allocated rates never exceed capacity in any segment."""
        jobs = [make_job(f"J{i}", demand=40.0) for i in range(3)]
        result = run_fluid(jobs, 50.0, max_iterations=5, seed=0)
        for segment in result.segments:
            assert sum(segment.rates_bps.values()) <= 50e9 * (1 + 1e-9)

    def test_volume_conservation(self):
        """Every completed iteration delivered exactly its comm volume."""
        jobs = [make_job("A", demand=40.0), make_job("B", demand=40.0)]
        result = run_fluid(jobs, 50.0, max_iterations=4, seed=None)
        for job in jobs:
            for it in result.iterations_of(job.name):
                delivered = sum(
                    seg.rates_bps.get(job.name, 0.0) * (seg.end - seg.start)
                    for seg in result.segments
                    if it.comm_start <= seg.start < it.comm_end
                )
                assert delivered == pytest.approx(job.comm_bits, rel=1e-6)

    def test_unique_names_required(self):
        with pytest.raises(ValueError, match="unique"):
            FluidSimulator([make_job("X"), make_job("X")], 50.0)


class TestResultAccessors:
    def test_mean_iteration_time_with_skip(self):
        job = make_job()
        result = run_fluid([job], 50.0, max_iterations=5, seed=None)
        assert result.mean_iteration_time("J", skip=2) == pytest.approx(
            job.ideal_iteration_time, rel=1e-6
        )

    def test_mean_iteration_time_empty_raises(self):
        result = run_fluid([make_job()], 50.0, max_iterations=2, seed=None)
        with pytest.raises(ValueError, match="no completed iterations"):
            result.mean_iteration_time("J", skip=10)

    def test_mean_iteration_by_round_shape(self):
        jobs = [make_job("A"), make_job("B")]
        result = run_fluid(jobs, 50.0, max_iterations=4, seed=None)
        rounds = result.mean_iteration_by_round()
        assert len(rounds) == 4

    def test_rate_timeline_peaks_at_demand(self):
        job = make_job(demand=25.0)
        result = run_fluid([job], 50.0, max_iterations=3, seed=None)
        _times, rates = result.rate_timeline("J", dt=0.005)
        assert rates.max() == pytest.approx(25.0, rel=1e-6)

    def test_comm_starts_are_increasing(self):
        result = run_fluid([make_job()], 50.0, max_iterations=4, seed=None)
        starts = result.comm_starts("J")
        assert np.all(np.diff(starts) > 0)

    def test_all_iteration_times_pools_jobs(self):
        jobs = [make_job("A"), make_job("B")]
        result = run_fluid(jobs, 50.0, max_iterations=3, seed=None)
        assert len(result.all_iteration_times()) == 6


class TestStoppingCriteria:
    def test_requires_a_criterion(self):
        with pytest.raises(ValueError, match="end_time"):
            FluidSimulator([make_job()], 50.0).run()

    def test_end_time_stops_clock(self):
        result = run_fluid([make_job()], 50.0, end_time=2.0, seed=None)
        assert result.end_time <= 2.0 + 1e-9

    def test_max_iterations_completes_exactly(self):
        result = run_fluid([make_job()], 50.0, max_iterations=7, seed=None)
        assert len(result.iterations_of("J")) == 7

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="capacity"):
            FluidSimulator([make_job()], 0.0)
        with pytest.raises(ValueError, match="quantum"):
            FluidSimulator([make_job()], 50.0, quantum=0.0)
        with pytest.raises(ValueError, match="at least one job"):
            FluidSimulator([], 50.0)


class TestDeterminism:
    def test_seeded_runs_identical(self):
        jobs = [make_job("A", jitter_sigma=0.01), make_job("B", jitter_sigma=0.01)]
        r1 = run_fluid(jobs, 50.0, max_iterations=5, seed=42)
        r2 = run_fluid(jobs, 50.0, max_iterations=5, seed=42)
        assert np.allclose(r1.iteration_times("A"), r2.iteration_times("A"))

    def test_different_seeds_differ(self):
        jobs = [make_job("A", jitter_sigma=0.01), make_job("B", jitter_sigma=0.01)]
        r1 = run_fluid(jobs, 50.0, max_iterations=5, seed=1)
        r2 = run_fluid(jobs, 50.0, max_iterations=5, seed=2)
        assert not np.allclose(r1.iteration_times("A"), r2.iteration_times("A"))


class TestPolicyIntegration:
    def test_policy_name_recorded(self):
        result = run_fluid([make_job()], 50.0, policy=MLTCPWeighted(), max_iterations=2)
        assert result.policy_name == "mltcp"

    def test_default_policy_is_fair_share(self):
        result = run_fluid([make_job()], 50.0, max_iterations=2)
        assert result.policy_name == FairShare().name

    def test_phase_enum_values(self):
        assert Phase.COMM.value == "comm"
        assert Phase.COMPUTE.value == "compute"
        assert Phase.WAITING.value == "waiting"

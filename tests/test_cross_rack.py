"""Tests for per-link contention metrics, the fluid fabric mapping, and
the cross-rack interleaving experiment on both substrates."""

import numpy as np
import pytest

from repro.fluid import FluidFabric, place_on_fabric
from repro.harness.experiments import cross_rack_interleaving
from repro.harness.packetlab import mltcp_config_for, run_packet_placements
from repro.harness.telemetry import RunTelemetry, validate_run_report
from repro.metrics import hyper_period, link_contention_report, rack_link_loads
from repro.tcp.mltcp import MLTCPReno
from repro.workloads import cross_rack_scenario, place_jobs
from repro.workloads.job import JobSpec
from repro.workloads.placement import FabricSpec, JobPlacement


def _spec(**overrides):
    params = dict(n_racks=2, hosts_per_rack=2, n_spines=2, ecmp_seed=0)
    params.update(overrides)
    return FabricSpec(**params)


class TestHyperPeriod:
    def test_single_job_is_its_iteration(self):
        jobs = cross_rack_scenario(1)
        assert hyper_period(jobs) == pytest.approx(
            jobs[0].ideal_iteration_time, rel=1e-6
        )

    def test_lcm_of_two_periods(self):
        a = JobSpec(name="A", comm_bits=1e6, demand_gbps=1.0, compute_time=0.009)
        b = JobSpec(name="B", comm_bits=1e6, demand_gbps=1.0, compute_time=0.014)
        assert a.ideal_iteration_time == pytest.approx(0.010)
        assert hyper_period([a, b]) == pytest.approx(0.030, rel=1e-6)


class TestLinkContention:
    def test_shared_uplink_is_interleavable_but_contended(self):
        spec = _spec()
        placements = place_jobs(cross_rack_scenario(2), spec, policy="spread")
        report = link_contention_report(placements, spec)
        assert {entry.link for entry in report} == set(spec.fabric_links())
        busy = [entry for entry in report if entry.competitors]
        assert len(busy) == 2   # one uplink + the matching spine downlink
        for entry in busy:
            assert entry.competitors == ("Job1", "Job2")
            assert entry.peak_load_gbps == pytest.approx(2.0, rel=0.01)
            assert entry.mean_load_gbps < entry.capacity_gbps   # §4: fits
            assert entry.interleavable
            assert entry.contended

    def test_packed_placement_leaves_fabric_idle(self):
        spec = _spec()
        placements = place_jobs(cross_rack_scenario(2), spec, policy="packed")
        report = link_contention_report(placements, spec)
        assert all(not entry.competitors for entry in report)
        assert all(not entry.contended for entry in report)

    def test_rack_link_loads_shapes(self):
        spec = _spec()
        placements = place_jobs(cross_rack_scenario(2), spec, policy="spread")
        loads = rack_link_loads(placements, spec)
        assert len(loads) == spec.n_racks
        for per_rack in loads:
            assert set(per_rack) == {"up", "down"}
            assert per_rack["up"].shape == per_rack["down"].shape
        # Rack 0 only sends, rack 1 only receives, in this placement.
        assert loads[0]["up"].max() == pytest.approx(2.0, rel=0.01)
        assert loads[0]["down"].max() == pytest.approx(0.0, abs=1e-9)
        assert loads[1]["down"].max() == pytest.approx(2.0, rel=0.01)


class TestFluidFabric:
    def test_placed_jobs_carry_spec_paths(self):
        spec = _spec()
        placements = place_jobs(cross_rack_scenario(2), spec, policy="spread")
        fabric = FluidFabric.from_spec(spec)
        placed = fabric.place(placements)
        assert place_on_fabric(spec, placements) == placed
        for fluid_job, placement in zip(placed, placements):
            assert fluid_job.links == placement.links(spec)
            assert fluid_job.src == placement.src
            assert fluid_job.dst == placement.dst

    def test_capacities_come_from_spec(self):
        spec = _spec(oversubscription=2.0)
        fabric = FluidFabric.from_spec(spec)
        assert fabric.capacities_gbps == spec.capacities_gbps()
        assert fabric.capacities_gbps["rack0->spine0"] == pytest.approx(
            spec.uplink_gbps
        )


class TestPacketPlacements:
    def test_validation(self):
        spec = _spec()
        jobs = cross_rack_scenario(2)
        placements = place_jobs(jobs, spec, policy="spread")
        factory = lambda job: MLTCPReno(mltcp_config_for(job))  # noqa: E731
        with pytest.raises(ValueError, match="at least one"):
            run_packet_placements([], spec, factory)
        dup = (placements[0], JobPlacement(job=jobs[1], src=placements[0].src,
                                           dst="h1_1"))
        with pytest.raises(ValueError, match="share hosts"):
            run_packet_placements(dup, spec, factory)
        renamed = JobPlacement(job=jobs[0], src="h0_1", dst="h1_1")
        with pytest.raises(ValueError, match="unique"):
            run_packet_placements((placements[0], renamed), spec, factory)

    def test_flows_complete_and_use_their_uplinks(self):
        spec = _spec()
        placements = place_jobs(cross_rack_scenario(2), spec, policy="spread")
        result = run_packet_placements(
            placements, spec,
            lambda job: MLTCPReno(mltcp_config_for(job)),
            max_iterations=4,
        )
        for placement in placements:
            assert len(result.iteration_times(placement.job.name)) == 4
        utilization = result.network.link_utilization()
        data_links = {link for p in placements for link in p.links(spec)}
        for link in data_links:
            assert utilization[link] > 0.0, link
        # The reverse (ACK) path takes its own ECMP spine choice, so those
        # uplinks carry a little traffic too; everything else stays silent.
        ack_links = {
            link for p in placements for link in spec.path_links(p.dst, p.src)
        }
        idle = set(spec.fabric_links()) - data_links - ack_links
        for link in idle:
            assert utilization[link] == pytest.approx(0.0, abs=1e-12), link


class TestCrossRackExperiment:
    def test_fluid_mltcp_beats_fair_share(self):
        # oversubscription=1.0 keeps the uplink at 1 Gbps, so the two
        # flows' 0.89 Gbps combined mean fits and a perfect interleave
        # exists (the §4 regime the default 4-rack experiment also uses);
        # ecmp_seed=0 hashes both flows onto one uplink so it actually
        # contends (seed 2 happens to split them on this tiny fabric).
        result = cross_rack_interleaving(
            substrate="fluid", n_racks=2, hosts_per_rack=2,
            oversubscription=1.0, ecmp_seed=0, iterations=20,
        )
        assert result.cross_rack_flows == 2
        assert result.final_mean("mltcp") < 1.1 * result.ideal_iteration_time
        assert result.speedup > 1.2
        busy = [entry for entry in result.contention if entry.competitors]
        assert busy and all(e.interleavable and e.contended for e in busy)

    def test_fluid_is_deterministic(self):
        first = cross_rack_interleaving(n_racks=2, hosts_per_rack=2, iterations=12)
        again = cross_rack_interleaving(n_racks=2, hosts_per_rack=2, iterations=12)
        np.testing.assert_array_equal(first.mltcp_series, again.mltcp_series)
        np.testing.assert_array_equal(first.fair_series, again.fair_series)
        assert first.link_utilization == again.link_utilization

    def test_link_utilization_covers_fabric(self):
        result = cross_rack_interleaving(n_racks=2, hosts_per_rack=2, iterations=12)
        for policy in ("mltcp", "fair"):
            per_link = result.link_utilization[policy]
            for link in result.spec.fabric_links():
                assert link in per_link
                assert per_link[link] >= 0.0

    def test_packed_control_runs_at_ideal(self):
        result = cross_rack_interleaving(
            n_racks=2, hosts_per_rack=2, placement="packed", iterations=12
        )
        assert result.cross_rack_flows == 0
        assert result.final_mean("fair") == pytest.approx(
            result.ideal_iteration_time, rel=0.05
        )

    def test_packet_substrate_runs(self):
        result = cross_rack_interleaving(
            substrate="packet", n_racks=2, hosts_per_rack=2, iterations=6
        )
        assert result.substrate == "packet"
        assert len(result.mltcp_series) == 6
        used = [
            link for link, value in result.link_utilization["mltcp"].items()
            if value > 0
        ]
        assert used   # cross-rack flows exercised real uplinks

    def test_unknown_substrate_rejected(self):
        with pytest.raises(ValueError, match="substrate"):
            cross_rack_interleaving(substrate="quantum")


class TestLinkUtilizationTelemetry:
    def test_report_section_validates(self):
        telemetry = RunTelemetry("test.cross_rack")
        telemetry.record_link_utilization(
            "rack0->spine0", 0.83, capacity_gbps=1.0,
            policy="mltcp", substrate="fluid", params={"n_racks": 2},
        )
        telemetry.record_link_utilization("spine0->rack1", 0.0)
        report = telemetry.as_report()
        assert validate_run_report(report) == []
        assert report["link_utilization"][0]["link"] == "rack0->spine0"
        assert report["link_utilization"][1]["capacity_gbps"] is None

    def test_negative_utilization_rejected(self):
        telemetry = RunTelemetry("test.cross_rack")
        with pytest.raises(ValueError, match="utilization"):
            telemetry.record_link_utilization("rack0->spine0", -0.1)

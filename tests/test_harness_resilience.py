"""Tests for the harness's self-healing features (docs/HARNESS.md).

Covers the four resilience knobs of
:class:`repro.harness.runner.ExperimentRunner` — per-point timeouts,
bounded retries, crash isolation, checkpoint/resume — plus the
:class:`RunCheckpoint` journal itself and the ``python -m repro faults``
CLI that wires them together.  The overriding contract: with every knob
off, behavior is exactly the historical one (first exception propagates),
and with them on, a sweep survives crashing/hanging/flaky points, records
each degradation in the run-report, and a resumed run serves completed
points bit-identically while re-running exactly the failures.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.harness.checkpoint import RunCheckpoint
from repro.harness.runner import (
    ExperimentRunner,
    FailedPoint,
    PointTimeoutError,
)
from repro.harness.telemetry import RunTelemetry, validate_run_report


# Experiments live at module top level so they pickle by reference into
# process-pool workers.

def _tenfold(value: int) -> int:
    return value * 10


def _crash_on(value: int, crash_value: int, marker_dir: str) -> int:
    """Die *hard* (no exception, no cleanup) for one value — a segfault
    stand-in — leaving a marker so tests can count attempts."""
    attempt = _mark(marker_dir, value)
    if value == crash_value:
        os._exit(13)
    return value * 10


def _crash_twice(value: int, crash_value: int, marker_dir: str) -> int:
    """Die hard on the first two attempts for one value, then succeed.

    The marker files carry the attempt count across worker processes, so a
    later run with *identical parameters* (the checkpoint/resume scenario)
    sees the earlier attempts and heals.
    """
    attempt = _mark(marker_dir, value)
    if value == crash_value and attempt <= 2:
        os._exit(13)
    return value * 10


def _flaky(value: int, marker_dir: str, failures: int = 2) -> int:
    """Fail the first ``failures`` attempts for value 1, then succeed."""
    attempt = _mark(marker_dir, value)
    if value == 1 and attempt <= failures:
        raise RuntimeError(f"flaky failure, attempt {attempt}")
    return value + 100


def _hang_on(value: int, hang_value: int) -> int:
    if value == hang_value:
        time.sleep(60.0)
    return value * 2


def _mark(marker_dir: str, value: int) -> int:
    """Record one attempt for ``value``; return the attempt number (1-based)."""
    directory = Path(marker_dir)
    attempt = 1 + sum(1 for p in directory.iterdir() if p.name.startswith(f"v{value}_"))
    (directory / f"v{value}_{attempt}_{os.getpid()}").write_text("x")
    return attempt


def _attempts(marker_dir: Path, value: int) -> int:
    return sum(1 for p in marker_dir.iterdir() if p.name.startswith(f"v{value}_"))


class TestFailedPoint:
    def test_is_falsy_and_summarizes(self):
        failed = FailedPoint(
            params={"x": 1}, kind="crash", error_type="BrokenProcessPool",
            message="died", traceback="tb", attempts=2,
        )
        assert not failed
        assert [r for r in [1, failed, 3] if r] == [1, 3]
        assert "crash" in failed.summary() and "BrokenProcessPool" in failed.summary()


class TestCrashIsolation:
    def test_worker_crash_becomes_failed_point(self, tmp_path):
        telemetry = RunTelemetry("crash")
        runner = ExperimentRunner(
            name="crash", workers=2, telemetry=telemetry, isolate_failures=True
        )
        points = [
            {"value": v, "crash_value": 2, "marker_dir": str(tmp_path)}
            for v in range(4)
        ]
        results = runner.run_points(_crash_on, points)

        assert results[0] == 0 and results[1] == 10 and results[3] == 30
        failed = results[2]
        assert isinstance(failed, FailedPoint)
        assert failed.kind == "crash"
        assert failed.params["value"] == 2
        assert failed.traceback  # remote traceback captured

        report = telemetry.as_report()
        assert validate_run_report(report) == []
        assert report["totals"]["failed_points"] == 1
        assert any(d["kind"] == "crash" for d in report["degradations"])
        modes = [p["mode"] for p in report["points"]]
        assert modes.count("failed") == 1

    def test_pool_errors_propagate_without_isolation(self, tmp_path):
        # Historical contract (docs/HARNESS.md): with isolation off, a
        # genuine experiment exception propagates even under a pool.
        runner = ExperimentRunner(name="crash-raise", workers=2)
        points = [
            {"value": 1, "marker_dir": str(tmp_path), "failures": 99},
            {"value": 5, "marker_dir": str(tmp_path)},
        ]
        with pytest.raises(RuntimeError, match="flaky failure"):
            runner.run_points(_flaky, points)


class TestRetries:
    @pytest.mark.parametrize("workers", [None, 2])
    def test_flaky_point_healed_by_retries(self, tmp_path, workers):
        telemetry = RunTelemetry("flaky")
        runner = ExperimentRunner(
            name="flaky", workers=workers, telemetry=telemetry,
            retries=3, retry_backoff_s=0.001,
        )
        points = [{"value": v, "marker_dir": str(tmp_path)} for v in range(3)]
        assert runner.run_points(_flaky, points) == [100, 101, 102]
        assert _attempts(tmp_path, 1) == 3  # two failures + one success
        retry_events = [
            d for d in telemetry.degradations if d["kind"] == "retry"
        ]
        assert len(retry_events) == 2
        assert telemetry.failed_points == 0

    def test_exhausted_retries_propagate_without_isolation(self, tmp_path):
        runner = ExperimentRunner(
            name="exhaust", retries=1, retry_backoff_s=0.001
        )
        with pytest.raises(RuntimeError, match="flaky failure"):
            runner.run_points(
                _flaky, [{"value": 1, "marker_dir": str(tmp_path), "failures": 99}]
            )
        assert _attempts(tmp_path, 1) == 2  # original + 1 retry

    def test_exhausted_retries_fail_point_with_isolation(self, tmp_path):
        telemetry = RunTelemetry("exhaust-iso")
        runner = ExperimentRunner(
            name="exhaust-iso", telemetry=telemetry,
            retries=1, retry_backoff_s=0.001, isolate_failures=True,
        )
        points = [
            {"value": 1, "marker_dir": str(tmp_path), "failures": 99},
            {"value": 5, "marker_dir": str(tmp_path)},
        ]
        results = runner.run_points(_flaky, points)
        assert isinstance(results[0], FailedPoint)
        assert results[0].kind == "error"
        assert results[0].attempts == 2
        assert results[1] == 105
        assert validate_run_report(telemetry.as_report()) == []


class TestTimeouts:
    def test_hung_point_times_out_under_isolation(self):
        telemetry = RunTelemetry("hang")
        runner = ExperimentRunner(
            name="hang", workers=2, telemetry=telemetry,
            timeout=1.5, isolate_failures=True,
        )
        points = [{"value": v, "hang_value": 1} for v in range(3)]
        results = runner.run_points(_hang_on, points)
        assert results[0] == 0 and results[2] == 4
        assert isinstance(results[1], FailedPoint)
        assert results[1].kind == "timeout"
        assert any(d["kind"] == "timeout" for d in telemetry.degradations)

    def test_hung_point_raises_without_isolation(self):
        runner = ExperimentRunner(name="hang-raise", workers=2, timeout=1.0)
        with pytest.raises(PointTimeoutError):
            runner.run_points(_hang_on, [{"value": 1, "hang_value": 1}])

    def test_validation_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="timeout"):
            ExperimentRunner(timeout=0)
        with pytest.raises(ValueError, match="retries"):
            ExperimentRunner(retries=-1)


class TestRunCheckpoint:
    def test_roundtrip_and_persistence(self, tmp_path):
        path = tmp_path / "run.jsonl"
        checkpoint = RunCheckpoint(path)
        assert checkpoint.get("k1") == (False, None)
        assert checkpoint.put("k1", {"answer": 42})
        assert checkpoint.get("k1") == (True, {"answer": 42})

        reloaded = RunCheckpoint(path)  # fresh instance, same file
        assert len(reloaded) == 1
        assert reloaded.get("k1") == (True, {"answer": 42})
        reloaded.clear()
        assert len(RunCheckpoint(path)) == 0

    def test_corrupt_lines_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        checkpoint = RunCheckpoint(path)
        checkpoint.put("good", [1, 2, 3])
        with open(path, "a") as handle:
            handle.write("not json at all\n")
            handle.write('{"key": "half"')  # truncated write

        reloaded = RunCheckpoint(path)
        assert reloaded.get("good") == (True, [1, 2, 3])
        assert reloaded.corrupt_lines == 2

    def test_unpicklable_value_kept_in_memory_only(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "run.jsonl")
        assert not checkpoint.put("fn", lambda: None)
        hit, _ = checkpoint.get("fn")
        assert hit  # served within this run...
        assert len(RunCheckpoint(tmp_path / "run.jsonl")) == 0  # ...not across runs


class TestResume:
    def test_resume_skips_completed_points_bit_identically(self, tmp_path):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        journal = tmp_path / "run.jsonl"
        # Identical params in both passes — the whole point of resume.  The
        # crash point dies on its first two attempts (pool + isolated re-run)
        # and would succeed on the third, which only the resumed run reaches.
        points = [
            {"value": v, "crash_value": 2, "marker_dir": str(marker_dir)}
            for v in range(4)
        ]

        first = ExperimentRunner(
            name="resume", workers=2, isolate_failures=True,
            checkpoint=RunCheckpoint(journal),
        )
        first_results = first.run_points(_crash_twice, points)
        assert isinstance(first_results[2], FailedPoint)
        assert first_results[2].kind == "crash"
        good_first = [first_results[i] for i in (0, 1, 3)]
        before = {v: _attempts(marker_dir, v) for v in range(4)}

        # Second pass: same journal, same points.  The three successes come
        # back from the journal without re-running (the marker counts prove
        # it) and bit-identical; only the failure recomputes — and heals.
        telemetry = RunTelemetry("resume")
        second = ExperimentRunner(
            name="resume", workers=2, isolate_failures=True,
            checkpoint=RunCheckpoint(journal), telemetry=telemetry,
        )
        second_results = second.run_points(_crash_twice, points)
        assert second_results == [0, 10, 20, 30]
        assert [second_results[i] for i in (0, 1, 3)] == good_first
        assert _attempts(marker_dir, 2) == before[2] + 1  # the failure re-ran
        for v in (0, 1, 3):
            assert _attempts(marker_dir, v) == before[v]  # the successes did not

        report = telemetry.as_report()
        assert validate_run_report(report) == []
        assert report["totals"]["resumed_points"] == 3
        modes = [p["mode"] for p in report["points"]]
        assert modes.count("resumed") == 3

    def test_failures_never_journaled(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        runner = ExperimentRunner(
            name="nofail", retries=0, retry_backoff_s=0.001,
            isolate_failures=True, checkpoint=RunCheckpoint(journal),
        )
        results = runner.run_points(
            _flaky, [{"value": 1, "marker_dir": str(tmp_path), "failures": 99}]
        )
        assert isinstance(results[0], FailedPoint)
        assert len(RunCheckpoint(journal)) == 0


class TestCliFaults:
    @pytest.fixture(autouse=True)
    def _isolated(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.chdir(tmp_path)

    def test_fast_sweep_writes_valid_report(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "faults.run.json"
        assert main([
            "faults", "--fast", "--classes", "link_down",
            "--policies", "mltcp", "--substrate", "fluid",
            "--no-cache", "--report", str(report_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "link_down" in out and "mltcp" in out
        report = json.loads(report_path.read_text())
        assert validate_run_report(report) == []
        assert any(d["kind"] == "fault" for d in report["degradations"])

    def test_unknown_class_fails_fast(self, capsys):
        from repro.cli import main

        assert main([
            "faults", "--classes", "gremlin", "--substrate", "fluid",
        ]) == 2
        # Usage errors follow the shared CLI contract (repro.cliutil):
        # `repro: error: ...` on stderr, exit 2.
        err = capsys.readouterr().err
        assert "repro: error:" in err and "gremlin" in err

    def test_custom_schedule_file(self, tmp_path, capsys):
        from repro.cli import main
        from repro.faults import FaultEvent, FaultSchedule

        schedule_path = tmp_path / "schedule.json"
        FaultSchedule(
            events=(FaultEvent(kind="link_down", time=30.0, duration=5.0),),
            seed=5,
        ).to_json(schedule_path)
        assert main([
            "faults", "--fast", "--schedule", str(schedule_path),
            "--policies", "mltcp", "--substrate", "fluid", "--no-cache",
        ]) == 0
        assert "custom" in capsys.readouterr().out

    def test_invalid_schedule_file_fails_fast(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"events": [{"kind": "gremlin", "time": 1.0}]}')
        assert main(["faults", "--schedule", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err and "unknown kind" in err

"""Tests for multi-flow jobs (striped collectives, per-flow Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import MLTCPConfig
from repro.simulator.app import MultiFlowTrainingApp
from repro.simulator.engine import Simulator
from repro.simulator.queues import DropTailQueue
from repro.simulator.topology import build_dumbbell
from repro.tcp.base import TcpReceiver, TcpSender
from repro.tcp.mltcp import MLTCPReno
from repro.tcp.reno import RenoCC
from repro.workloads.job import JobSpec

OVERHEAD = 1500 / 1460


def build_multiflow_jobs(n_jobs, flows_per_job, mltcp, iterations, seed=2):
    """Wire n_jobs, each striped over flows_per_job TCP connections."""
    sim = Simulator()
    net = build_dumbbell(
        sim, n_jobs, bottleneck_bps=1e9, bottleneck_queue=DropTailQueue(64)
    )
    rng = np.random.default_rng(seed)
    template = JobSpec(
        name="Job",
        comm_bits=8e6,
        demand_gbps=1.0,
        compute_time=0.010,
        jitter_sigma=0.0005,
    )
    apps = []
    for i in range(n_jobs):
        job = template.with_name(f"Job{i + 1}")
        stripe_bytes = -(-job.comm_bytes // flows_per_job)
        senders = []
        for k in range(flows_per_job):
            if mltcp:
                cc = MLTCPReno(
                    MLTCPConfig(total_bytes=stripe_bytes, comp_time=0.003)
                )
            else:
                cc = RenoCC()
            sender = TcpSender(
                sim, net.hosts[f"s{i}"], f"{job.name}.{k}", f"r{i}", cc
            )
            TcpReceiver(sim, net.hosts[f"r{i}"], f"{job.name}.{k}", f"s{i}")
            senders.append(sender)
        app = MultiFlowTrainingApp(sim, senders, job, max_iterations=iterations, rng=rng)
        app.start()
        apps.append(app)
    sim.run(until=3.0)
    return apps


class TestSingleJobStriping:
    def test_stripes_sum_to_collective(self):
        apps = build_multiflow_jobs(1, flows_per_job=4, mltcp=False, iterations=3)
        app = apps[0]
        assert app.stripe_bytes * 4 >= app.job.comm_bytes
        assert app.completed == 3

    def test_iteration_time_near_ideal(self):
        apps = build_multiflow_jobs(1, flows_per_job=4, mltcp=False, iterations=4)
        ideal = 8e6 / 1e9 * OVERHEAD + 0.010
        assert apps[0].iteration_times().mean() == pytest.approx(ideal, rel=0.1)

    def test_rejects_empty_senders(self):
        sim = Simulator()
        job = JobSpec("J", comm_bits=1e6, demand_gbps=1.0, compute_time=0.01)
        with pytest.raises(ValueError, match="sender"):
            MultiFlowTrainingApp(sim, [], job)


class TestTwoJobsMultiFlow:
    def test_mltcp_interleaves_with_striped_flows(self):
        """Per-flow Algorithm 1 state still interleaves the *jobs* — the
        paper's deployment model (NCCL opens several sockets)."""
        apps = build_multiflow_jobs(2, flows_per_job=3, mltcp=True, iterations=40)
        ideal = 8e6 / 1e9 * OVERHEAD + 0.010
        per_job = [a.iteration_times() for a in apps]
        rounds = min(len(t) for t in per_job)
        mean_last = np.mean([t[rounds - 5 : rounds].mean() for t in per_job])
        mean_first = np.mean([t[:3].mean() for t in per_job])
        assert mean_first > 1.2 * ideal  # congested start
        # Striping adds per-flow restart overhead (three slow starts per
        # iteration), so the converged point sits a bit above the single-flow
        # ideal; the interleaving itself is what we assert.
        assert mean_last == pytest.approx(ideal, rel=0.15)
        assert mean_last < 0.92 * mean_first

    def test_all_stripes_complete_every_iteration(self):
        apps = build_multiflow_jobs(2, flows_per_job=2, mltcp=True, iterations=10)
        for app in apps:
            assert app.completed == 10

"""Unit tests for the periodic job model (JobSpec)."""

import numpy as np
import pytest

from repro.workloads.job import (
    GBPS,
    JobSpec,
    feasible_on_link,
    gbit,
    total_mean_load_gbps,
)


def make_job(**overrides):
    params = dict(
        name="J", comm_bits=gbit(10.0), demand_gbps=25.0, compute_time=1.0
    )
    params.update(overrides)
    return JobSpec(**params)


class TestDerivedQuantities:
    def test_comm_bytes(self):
        assert make_job(comm_bits=8e9).comm_bytes == 1_000_000_000

    def test_demand_bps(self):
        assert make_job(demand_gbps=25.0).demand_bps == 25 * GBPS

    def test_ideal_comm_time(self):
        job = make_job(comm_bits=gbit(10.0), demand_gbps=25.0)
        assert job.ideal_comm_time == pytest.approx(0.4)

    def test_ideal_iteration_time(self):
        job = make_job(comm_bits=gbit(10.0), demand_gbps=25.0, compute_time=1.0)
        assert job.ideal_iteration_time == pytest.approx(1.4)

    def test_alpha_fraction(self):
        job = make_job(comm_bits=gbit(25.0), demand_gbps=25.0, compute_time=1.0)
        assert job.alpha == pytest.approx(0.5)

    def test_mean_load(self):
        job = make_job(comm_bits=gbit(10.0), demand_gbps=25.0, compute_time=1.0)
        assert job.mean_load_bps == pytest.approx(gbit(10.0) / 1.4)


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("comm_bits", 0),
            ("demand_gbps", -1.0),
            ("compute_time", -0.1),
            ("start_offset", -1.0),
            ("jitter_sigma", -0.5),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError, match=field):
            make_job(**{field: value})

    def test_zero_compute_time_allowed(self):
        """Pure-communication jobs (alpha = 1) are legal."""
        assert make_job(compute_time=0.0).alpha == 1.0

    @pytest.mark.parametrize(
        "field",
        [
            "comm_bits",
            "demand_gbps",
            "compute_time",
            "start_offset",
            "jitter_sigma",
            "volume_jitter_fraction",
        ],
    )
    @pytest.mark.parametrize("value", [float("nan"), float("inf"), -float("inf")])
    def test_rejects_non_finite_values(self, field, value):
        """NaN/inf poison every downstream computation silently — the spec
        rejects them eagerly, naming the field (docs/FAULTS.md convention)."""
        with pytest.raises(ValueError, match=f"{field} must be finite"):
            make_job(**{field: value})

    def test_with_offset_rejects_nan(self):
        """Arrival-time paths (`with_offset`) go through the same gate."""
        with pytest.raises(ValueError, match="start_offset must be finite"):
            make_job().with_offset(float("nan"))

    def test_with_offset_rejects_negative(self):
        with pytest.raises(ValueError, match="start_offset"):
            make_job().with_offset(-1.0)


class TestCopies:
    def test_with_offset(self):
        assert make_job().with_offset(0.5).start_offset == 0.5

    def test_with_jitter(self):
        assert make_job().with_jitter(0.01).jitter_sigma == 0.01

    def test_with_name(self):
        assert make_job().with_name("X").name == "X"

    def test_scaled_preserves_alpha(self):
        job = make_job()
        scaled = job.scaled(0.01)
        assert scaled.alpha == pytest.approx(job.alpha)
        assert scaled.comm_bits == pytest.approx(job.comm_bits * 0.01)
        assert scaled.compute_time == pytest.approx(job.compute_time * 0.01)

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError, match="factor"):
            make_job().scaled(0.0)

    def test_originals_unchanged(self):
        job = make_job()
        job.with_offset(9.0)
        assert job.start_offset == 0.0


class TestJitterSampling:
    def test_no_jitter_is_deterministic(self):
        job = make_job(jitter_sigma=0.0)
        assert job.sample_compute_time(np.random.default_rng(0)) == job.compute_time

    def test_none_rng_is_deterministic(self):
        job = make_job(jitter_sigma=0.5)
        assert job.sample_compute_time(None) == job.compute_time

    def test_jitter_centers_on_compute_time(self):
        job = make_job(compute_time=1.0, jitter_sigma=0.05)
        rng = np.random.default_rng(0)
        samples = [job.sample_compute_time(rng) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(1.0, abs=0.01)
        assert np.std(samples) == pytest.approx(0.05, rel=0.15)

    def test_jitter_never_negative(self):
        job = make_job(compute_time=0.001, jitter_sigma=1.0)
        rng = np.random.default_rng(0)
        assert all(job.sample_compute_time(rng) >= 0.0 for _ in range(200))


class TestFeasibility:
    def test_empty_mix_feasible(self):
        assert feasible_on_link([], 50.0)

    def test_light_load_feasible(self):
        assert feasible_on_link([make_job()], 50.0)

    def test_overload_infeasible(self):
        heavy = make_job(comm_bits=gbit(50.0), demand_gbps=50.0, compute_time=0.0)
        assert not feasible_on_link([heavy, heavy.with_name("J2")], 50.0)

    def test_total_mean_load(self):
        job = make_job(comm_bits=gbit(14.0), demand_gbps=25.0, compute_time=0.84)
        # comm time 0.56, T = 1.4, mean load = 14/1.4 = 10 Gbps per job
        assert total_mean_load_gbps([job, job.with_name("J2")]) == pytest.approx(20.0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            feasible_on_link([make_job()], 0.0)

"""Integration tests: the paper's headline dynamics end to end (fluid).

These tests tie the subsystems together — workloads, allocation policies,
the fluid simulator, the centralized baseline, and the §4 theory — and
assert the paper's quantitative claims at the "shape" level.
"""

import numpy as np
import pytest

from repro.core.analysis import signed_shift
from repro.fluid.allocation import FairShare, MLTCPWeighted, PDQ, PIAS, SRPT
from repro.fluid.flowsim import run_fluid
from repro.metrics.convergence import detect_convergence
from repro.schedulers.centralized import CentralizedScheduler
from repro.workloads.job import JobSpec, gbit
from repro.workloads.presets import (
    four_job_scenario,
    six_job_scenario,
    two_job_scenario,
)


class TestTwoJobSliding:
    """The §4 running example: two identical alpha=1/2 jobs."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_fluid(
            two_job_scenario(),
            50.0,
            policy=MLTCPWeighted(),
            max_iterations=40,
            seed=1,
        )

    def test_converges_to_ideal(self, result):
        ideal = two_job_scenario()[0].ideal_iteration_time
        for job in ("Job1", "Job2"):
            tail = result.iteration_times(job)[-8:]
            assert tail.mean() == pytest.approx(ideal, rel=0.02)

    def test_start_time_difference_reaches_half_period(self, result):
        """After convergence the comm starts are T/2 apart (Figure 5(c))."""
        period = two_job_scenario()[0].ideal_iteration_time
        s1 = result.comm_starts("Job1")[-5:]
        s2 = result.comm_starts("Job2")[-5:]
        delta = np.abs(s1 - s2) % period
        delta = np.minimum(delta, period - delta)
        assert delta.mean() == pytest.approx(period / 2, abs=0.12)

    def test_fair_share_stays_congested(self):
        result = run_fluid(
            two_job_scenario(), 50.0, policy=FairShare(), max_iterations=40, seed=1
        )
        ideal = two_job_scenario()[0].ideal_iteration_time
        tail = result.iteration_times("Job1")[-8:]
        assert tail.mean() > 1.2 * ideal

    def test_measured_shift_has_theory_sign_and_direction(self):
        """The fluid simulator's per-iteration shifts agree with Eq. 3 in
        sign: while the phases overlap, the gap keeps growing."""
        jobs = [j.with_jitter(0.0) for j in two_job_scenario()]
        jobs = [jobs[0], jobs[1].with_offset(0.15)]  # initial delta 0.15 s
        result = run_fluid(
            jobs, 50.0, policy=MLTCPWeighted(), max_iterations=25, seed=None
        )
        period = jobs[0].ideal_iteration_time
        s1, s2 = result.comm_starts("Job1"), result.comm_starts("Job2")
        n = min(len(s1), len(s2))
        deltas = (s2[:n] - s1[:n]) % period
        comm = jobs[0].alpha * period
        for i in range(n - 1):
            if 0.02 < deltas[i] < comm * 0.9:
                theory = signed_shift(deltas[i], jobs[0].alpha, period)
                measured = deltas[i + 1] - deltas[i]
                assert measured > 0
                assert np.sign(measured) == np.sign(theory)


class TestFourJobApproximationError:
    """§2: converge within ~20 iterations to within 5% of the optimum."""

    def test_mltcp_matches_centralized_optimum(self):
        jobs = four_job_scenario()
        scheduler = CentralizedScheduler([j.with_jitter(0.0) for j in jobs], 50.0)
        schedule = scheduler.optimize()
        optimal = scheduler.iteration_times_if_scheduled(schedule)

        result = run_fluid(
            jobs, 50.0, policy=MLTCPWeighted(), max_iterations=60, seed=5
        )
        for job in jobs:
            measured = result.iteration_times(job.name)[-10:].mean()
            assert measured == pytest.approx(optimal[job.name], rel=0.05)

    def test_convergence_within_twenty_iterations(self):
        jobs = four_job_scenario()
        result = run_fluid(
            jobs, 50.0, policy=MLTCPWeighted(), max_iterations=60, seed=5
        )
        rounds = result.mean_iteration_by_round()
        target = float(np.mean([1.2, 1.8, 1.8, 1.8]))
        report = detect_convergence(rounds, target=target, tolerance=0.05)
        assert report.converged
        assert report.converged_at <= 20
        assert report.stable

    def test_random_start_times_also_converge(self):
        """§3.1: interleaving 'regardless of job start times'."""
        rng = np.random.default_rng(9)
        jobs = [
            j.with_offset(float(rng.uniform(0, j.ideal_iteration_time)))
            for j in four_job_scenario()
        ]
        result = run_fluid(
            jobs, 50.0, policy=MLTCPWeighted(), max_iterations=60, seed=7
        )
        assert result.iteration_times("J1")[-10:].mean() == pytest.approx(1.2, rel=0.05)


class TestBaselinesOnFourJobs:
    """Figure 2(b): myopic distributed schedulers mistreat the periodic mix."""

    @pytest.mark.parametrize("policy_factory", [SRPT, PIAS])
    def test_baselines_worse_than_mltcp_early(self, policy_factory):
        jobs = four_job_scenario()
        baseline = run_fluid(
            jobs, 50.0, policy=policy_factory(), max_iterations=15, seed=5
        )
        mltcp = run_fluid(
            jobs, 50.0, policy=MLTCPWeighted(), max_iterations=40, seed=5
        )
        baseline_avg = baseline.all_iteration_times().mean()
        mltcp_tail = np.concatenate(
            [mltcp.iteration_times(j.name)[-10:] for j in jobs]
        ).mean()
        assert baseline_avg > 1.02 * mltcp_tail

    def test_pdq_with_right_fan_in_is_competitive(self):
        """Observation: PDQ's sender pausing, with fan-in matched to the
        capacity structure (2 x 25 Gbps = 50 Gbps), itself induces a form of
        interleaving on this mix — it ends within ~5% of MLTCP.  Unlike
        MLTCP it needs switch support and the right fan-in constant."""
        jobs = four_job_scenario()
        pdq = run_fluid(jobs, 50.0, policy=PDQ(max_senders=2), max_iterations=15, seed=5)
        mltcp = run_fluid(jobs, 50.0, policy=MLTCPWeighted(), max_iterations=40, seed=5)
        pdq_avg = pdq.all_iteration_times().mean()
        mltcp_tail = np.concatenate(
            [mltcp.iteration_times(j.name)[-10:] for j in jobs]
        ).mean()
        assert pdq_avg <= 1.08 * mltcp_tail

    def test_srpt_penalizes_the_large_job_most(self):
        jobs = four_job_scenario()
        result = run_fluid(jobs, 50.0, policy=SRPT(), max_iterations=12, seed=5)
        j1_slowdown = result.iteration_times("J1")[:10].mean() / 1.2
        gpt2_slowdown = result.iteration_times("J2")[:10].mean() / 1.8
        assert j1_slowdown > 1.1


class TestSixJobLifetime:
    def test_tail_speedup_matches_paper_shape(self):
        """Figure 4(c): paper reports 1.59x tail speedup; we require > 1.25x."""
        jobs = six_job_scenario()
        reno = run_fluid(jobs, 50.0, policy=FairShare(), max_iterations=400, seed=5)
        mltcp = run_fluid(jobs, 50.0, policy=MLTCPWeighted(), max_iterations=400, seed=5)
        reno_p99 = np.percentile(reno.all_iteration_times(), 99)
        mltcp_p99 = np.percentile(mltcp.all_iteration_times(), 99)
        assert reno_p99 / mltcp_p99 > 1.25

    def test_all_six_jobs_reach_ideal(self):
        jobs = six_job_scenario()
        result = run_fluid(jobs, 50.0, policy=MLTCPWeighted(), max_iterations=80, seed=5)
        for job in jobs:
            tail = result.iteration_times(job.name)[-10:].mean()
            assert tail == pytest.approx(1.8, rel=0.03)


class TestHeterogeneousMixes:
    """Beyond the paper's scenarios: MLTCP generalizes across job shapes."""

    def test_three_different_periods(self):
        jobs = [
            JobSpec("A", gbit(10.0), 25.0, 0.6),   # T = 1.0
            JobSpec("B", gbit(12.5), 25.0, 1.0),   # T = 1.5
            JobSpec("C", gbit(15.0), 25.0, 1.4),   # T = 2.0
        ]
        jobs = [j.with_jitter(0.005) for j in jobs]
        result = run_fluid(jobs, 50.0, policy=MLTCPWeighted(), max_iterations=80, seed=3)
        for job in jobs:
            tail = result.iteration_times(job.name)[-10:].mean()
            assert tail <= 1.12 * job.ideal_iteration_time

    def test_unequal_demands(self):
        jobs = [
            JobSpec("big", gbit(24.0), 40.0, 1.2, jitter_sigma=0.005),
            JobSpec("small", gbit(6.0), 15.0, 1.4, jitter_sigma=0.005),
        ]
        result = run_fluid(jobs, 50.0, policy=MLTCPWeighted(), max_iterations=60, seed=3)
        for job in jobs:
            tail = result.iteration_times(job.name)[-10:].mean()
            assert tail <= 1.1 * job.ideal_iteration_time

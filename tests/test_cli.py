"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import FIGURES, main


class TestList:
    def test_list_prints_all_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_no_command_defaults_to_list(self, capsys):
        assert main([]) == 0
        assert "fig2" in capsys.readouterr().out


class TestRun:
    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_run_fig5_fast(self, capsys):
        assert main(["run", "fig5", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "minimum at delta" in out
        assert "0.900" in out

    def test_run_fig1_fast(self, capsys):
        assert main(["run", "fig1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "J1" in out and "J4" in out

    def test_run_fig3_fast(self, capsys):
        assert main(["run", "fig3", "--fast"]) == 0
        out = capsys.readouterr().out
        for key in ("F1", "F6"):
            assert key in out

    def test_run_noise_fast(self, capsys):
        assert main(["run", "noise", "--fast"]) == 0
        assert "bound" in capsys.readouterr().out


class TestCompat:
    def test_compatible_scenario(self, tmp_path, capsys):
        from repro.workloads import four_job_scenario, save_scenario

        path = tmp_path / "scenario.json"
        save_scenario(path, four_job_scenario())
        assert main(["compat", str(path)]) == 0
        out = capsys.readouterr().out
        assert "guarantee applies" in out
        assert "1.0000" in out

    def test_incompatible_scenario(self, tmp_path, capsys):
        from repro.workloads.job import JobSpec, gbit
        from repro.workloads.traceio import save_scenario

        jobs = [
            JobSpec("A", gbit(50.0), 50.0, 0.0),
            JobSpec("B", gbit(50.0), 50.0, 0.0),
        ]
        path = tmp_path / "overload.json"
        save_scenario(path, jobs)
        assert main(["compat", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no zero-contention interleave" in out

    def test_custom_capacity(self, tmp_path, capsys):
        from repro.workloads import two_job_scenario, save_scenario

        path = tmp_path / "two.json"
        save_scenario(path, two_job_scenario())
        assert main(["compat", str(path), "--capacity", "100"]) == 0
        assert "100 Gbps" in capsys.readouterr().out

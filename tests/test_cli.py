"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import FIGURES, main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep CLI runs from touching the user's ~/.cache/repro during tests."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli_cache"))


class TestList:
    def test_list_prints_all_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_no_command_defaults_to_list(self, capsys):
        assert main([]) == 0
        assert "fig2" in capsys.readouterr().out


class TestRun:
    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_run_fig5_fast(self, capsys):
        assert main(["run", "fig5", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "minimum at delta" in out
        assert "0.900" in out

    def test_run_fig1_fast(self, capsys):
        assert main(["run", "fig1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "J1" in out and "J4" in out

    def test_run_fig3_fast(self, capsys):
        assert main(["run", "fig3", "--fast"]) == 0
        out = capsys.readouterr().out
        for key in ("F1", "F6"):
            assert key in out

    def test_run_noise_fast(self, capsys):
        assert main(["run", "noise", "--fast"]) == 0
        assert "bound" in capsys.readouterr().out


class TestCompat:
    def test_compatible_scenario(self, tmp_path, capsys):
        from repro.workloads import four_job_scenario, save_scenario

        path = tmp_path / "scenario.json"
        save_scenario(path, four_job_scenario())
        assert main(["compat", str(path)]) == 0
        out = capsys.readouterr().out
        assert "guarantee applies" in out
        assert "1.0000" in out

    def test_incompatible_scenario(self, tmp_path, capsys):
        from repro.workloads.job import JobSpec, gbit
        from repro.workloads.traceio import save_scenario

        jobs = [
            JobSpec("A", gbit(50.0), 50.0, 0.0),
            JobSpec("B", gbit(50.0), 50.0, 0.0),
        ]
        path = tmp_path / "overload.json"
        save_scenario(path, jobs)
        assert main(["compat", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no zero-contention interleave" in out

    def test_custom_capacity(self, tmp_path, capsys):
        from repro.workloads import two_job_scenario, save_scenario

        path = tmp_path / "two.json"
        save_scenario(path, two_job_scenario())
        assert main(["compat", str(path), "--capacity", "100"]) == 0
        assert "100 Gbps" in capsys.readouterr().out


class TestRunnerFlags:
    def test_run_with_report_and_cache(self, tmp_path, monkeypatch, capsys):
        import json

        from repro.harness.telemetry import validate_run_report

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        report = tmp_path / "fig5.run.json"
        assert main(["run", "fig5", "--fast", "--report", str(report)]) == 0
        parsed = json.loads(report.read_text())
        assert validate_run_report(parsed) == []
        assert parsed["totals"]["cache_misses"] == 1

        # Second invocation of the unchanged figure is served from cache.
        report2 = tmp_path / "fig5b.run.json"
        assert main(["run", "fig5", "--fast", "--report", str(report2)]) == 0
        parsed2 = json.loads(report2.read_text())
        assert parsed2["totals"]["cache_hit_rate"] >= 0.9
        assert "minimum at delta" in capsys.readouterr().out

    def test_no_cache_forces_recompute(self, tmp_path, monkeypatch, capsys):
        import json

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        for _ in range(2):
            report = tmp_path / "r.run.json"
            assert main(
                ["run", "fig1", "--fast", "--no-cache", "--report", str(report)]
            ) == 0
            assert json.loads(report.read_text())["totals"]["cache_hits"] == 0
        capsys.readouterr()

    def test_workers_flag_accepted(self, tmp_path, monkeypatch, capsys):
        import json

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        report = tmp_path / "w.run.json"
        assert main(
            ["run", "fig1", "--fast", "--workers", "2", "--report", str(report)]
        ) == 0
        assert json.loads(report.read_text())["workers"] == 2
        assert "J1" in capsys.readouterr().out


class TestValidateReport:
    def _write_report(self, tmp_path, mutate=None):
        import json

        from repro.cli import _render_figure  # noqa: F401  (import sanity)
        from repro.harness.runner import ExperimentRunner
        from repro.harness.telemetry import RunTelemetry

        telemetry = RunTelemetry("vr")
        ExperimentRunner(name="vr", telemetry=telemetry).run_points(
            lambda seed: float(seed), [{"seed": 1}]
        )
        report = telemetry.as_report()
        if mutate:
            mutate(report)
        path = tmp_path / "vr.run.json"
        path.write_text(json.dumps(report, default=repr))
        return path

    def test_valid_report_passes(self, tmp_path, capsys):
        path = self._write_report(tmp_path)
        assert main(["validate-report", str(path)]) == 0
        assert "valid run-report" in capsys.readouterr().out

    def test_valid_report_against_checked_in_schema(self, tmp_path, capsys):
        from pathlib import Path

        schema = Path(__file__).resolve().parent.parent / "docs" / "run_report.schema.json"
        path = self._write_report(tmp_path)
        assert main(["validate-report", str(path), "--schema", str(schema)]) == 0
        capsys.readouterr()

    def test_invalid_report_fails(self, tmp_path, capsys):
        def strip_totals(report):
            del report["totals"]

        path = self._write_report(tmp_path, mutate=strip_totals)
        # Violations: exit 1, diagnostics on stderr (shared repro.cliutil
        # contract with `repro lint`).
        assert main(["validate-report", str(path)]) == 1
        assert "totals" in capsys.readouterr().err

    def test_missing_file_fails(self, tmp_path, capsys):
        # Unreadable input is a usage error: exit 2, `repro: error:` on
        # stderr (repro.cliutil contract).
        assert main(["validate-report", str(tmp_path / "nope.json")]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err and "cannot read" in err


class TestCrossRack:
    def test_fluid_fast_run(self, capsys):
        assert main([
            "cross-rack", "--fast", "--no-cache",
            "--racks", "2", "--hosts-per-rack", "2", "--oversub", "1.0",
            "--ecmp-seed", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "cross-rack [fluid]" in out
        assert "uplink" in out and "competitors" in out
        assert "speedup" in out

    def test_report_includes_link_utilization(self, tmp_path, capsys):
        import json

        from repro.harness.telemetry import validate_run_report

        report_path = tmp_path / "cross_rack.run.json"
        assert main([
            "cross-rack", "--fast", "--no-cache",
            "--racks", "2", "--hosts-per-rack", "2",
            "--report", str(report_path),
        ]) == 0
        capsys.readouterr()
        report = json.loads(report_path.read_text())
        assert validate_run_report(report) == []
        entries = report["link_utilization"]
        assert entries and {e["policy"] for e in entries} == {"mltcp", "fair"}
        assert all(e["utilization"] >= 0 for e in entries)

    def test_unknown_placement_fails(self, capsys):
        assert main(["cross-rack", "--placement", "diagonal"]) == 2
        assert "placement" in capsys.readouterr().err

    def test_packed_control(self, capsys):
        assert main([
            "cross-rack", "--fast", "--no-cache", "--placement", "packed",
            "--racks", "2", "--hosts-per-rack", "2",
        ]) == 0
        assert "0/2 flows cross racks" in capsys.readouterr().out


class TestDocsCheck:
    def test_docs_tree_passes(self, capsys):
        assert main(["docs-check"]) == 0
        assert "all pass" in capsys.readouterr().out

    def test_failing_fence_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.md"
        bad.write_text("```python\nraise ValueError('rotted example')\n```\n")
        assert main(["docs-check", str(bad)]) == 1
        assert "rotted example" in capsys.readouterr().err

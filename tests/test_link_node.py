"""Tests for links (serialization, propagation, loss) and nodes."""

import numpy as np
import pytest

from repro.simulator.engine import Simulator
from repro.simulator.link import Link
from repro.simulator.node import Host, Switch
from repro.simulator.packet import ACK_SIZE_BYTES, DATA_HEADER_BYTES, Packet
from repro.simulator.queues import DropTailQueue


def data_packet(seq=0, dst="r", flow="f"):
    return Packet(
        flow_id=flow, src="s", dst=dst, is_ack=False, seq=seq, payload_bytes=1460
    )


class TestPacket:
    def test_data_wire_size_includes_headers(self):
        assert data_packet().size_bytes == 1460 + DATA_HEADER_BYTES

    def test_ack_wire_size(self):
        ack = Packet(flow_id="f", src="r", dst="s", is_ack=True, seq=5, payload_bytes=0)
        assert ack.size_bytes == ACK_SIZE_BYTES

    def test_ack_with_payload_rejected(self):
        with pytest.raises(ValueError, match="ACK"):
            Packet(flow_id="f", src="r", dst="s", is_ack=True, seq=5, payload_bytes=10)

    def test_data_without_payload_rejected(self):
        with pytest.raises(ValueError, match="payload"):
            Packet(flow_id="f", src="s", dst="r", is_ack=False, seq=0, payload_bytes=0)

    def test_unique_uids(self):
        assert data_packet().uid != data_packet().uid


class TestLinkTiming:
    def test_serialization_plus_propagation(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, "l", rate_bps=1e6, delay=0.01)
        link.connect(lambda p: arrivals.append(sim.now))
        packet = data_packet()
        link.send(packet)
        sim.run()
        expected = packet.size_bits / 1e6 + 0.01
        assert arrivals == [pytest.approx(expected)]

    def test_back_to_back_serialization(self):
        """Second packet waits for the first to serialize (not propagate)."""
        sim = Simulator()
        arrivals = []
        link = Link(sim, "l", rate_bps=1e6, delay=0.01)
        link.connect(lambda p: arrivals.append(sim.now))
        p1, p2 = data_packet(0), data_packet(1)
        link.send(p1)
        link.send(p2)
        sim.run()
        tx = p1.size_bits / 1e6
        assert arrivals[0] == pytest.approx(tx + 0.01)
        assert arrivals[1] == pytest.approx(2 * tx + 0.01)

    def test_queue_overflow_drops(self):
        sim = Simulator()
        received = []
        link = Link(sim, "l", rate_bps=1e3, delay=0.0, queue=DropTailQueue(2))
        link.connect(lambda p: received.append(p.seq))
        for i in range(10):
            link.send(data_packet(i))
        sim.run()
        # One in transmission + 2 buffered = 3 delivered.
        assert len(received) == 3
        assert link.queue.drops == 7

    def test_counters(self):
        sim = Simulator()
        link = Link(sim, "l", rate_bps=1e9, delay=0.0)
        link.connect(lambda p: None)
        packet = data_packet()
        link.send(packet)
        sim.run()
        assert link.packets_sent == 1
        assert link.bits_sent == packet.size_bits
        assert link.mean_rate_bps(1.0) == packet.size_bits

    def test_random_loss_drops_fraction(self):
        sim = Simulator()
        received = []
        link = Link(
            sim,
            "l",
            rate_bps=1e9,
            delay=0.0,
            queue=DropTailQueue(10_000),
            random_loss=0.3,
            loss_rng=np.random.default_rng(0),
        )
        link.connect(lambda p: received.append(p))
        for i in range(2000):
            link.send(data_packet(i))
        sim.run()
        assert 0.25 < link.random_drops / 2000 < 0.35
        assert len(received) == 2000 - link.random_drops

    def test_unconnected_link_raises(self):
        sim = Simulator()
        link = Link(sim, "l", rate_bps=1e9, delay=0.0)
        with pytest.raises(RuntimeError, match="no receiver"):
            link.send(data_packet())

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="rate"):
            Link(sim, "l", rate_bps=0.0, delay=0.0)
        with pytest.raises(ValueError, match="delay"):
            Link(sim, "l", rate_bps=1.0, delay=-1.0)
        with pytest.raises(ValueError, match="random_loss"):
            Link(sim, "l", rate_bps=1.0, delay=0.0, random_loss=1.0)


class TestHost:
    def test_demux_by_flow_id(self):
        host = Host("h")
        seen = []

        class Sink:
            def __init__(self, tag):
                self.tag = tag

            def receive(self, packet):
                seen.append((self.tag, packet.seq))

        host.register_flow("a", Sink("a"))
        host.register_flow("b", Sink("b"))
        host.receive_packet(data_packet(1, flow="b"))
        host.receive_packet(data_packet(2, flow="a"))
        assert seen == [("b", 1), ("a", 2)]

    def test_unknown_flow_raises(self):
        with pytest.raises(RuntimeError, match="no flow"):
            Host("h").receive_packet(data_packet())

    def test_duplicate_flow_rejected(self):
        host = Host("h")

        class Sink:
            def receive(self, packet):
                pass

        host.register_flow("a", Sink())
        with pytest.raises(ValueError, match="already registered"):
            host.register_flow("a", Sink())

    def test_send_without_route_raises(self):
        with pytest.raises(RuntimeError, match="no route"):
            Host("h").send(data_packet())


class TestSwitch:
    def test_forwards_by_destination(self):
        sim = Simulator()
        switch = Switch("sw")
        delivered = []
        link = Link(sim, "sw->r", rate_bps=1e9, delay=0.0)
        link.connect(lambda p: delivered.append(p.seq))
        switch.attach_outgoing("r", link)
        switch.set_route("r", "r")
        switch.receive_packet(data_packet(7, dst="r"))
        sim.run()
        assert delivered == [7]
        assert switch.packets_forwarded == 1

    def test_missing_route_raises(self):
        with pytest.raises(RuntimeError, match="no route"):
            Switch("sw").receive_packet(data_packet())

    def test_route_to_unattached_neighbour_rejected(self):
        with pytest.raises(ValueError, match="no link"):
            Switch("sw").set_route("r", "ghost")

"""Tests for artifact persistence (traces, iteration logs, scenarios)."""

import numpy as np
import pytest

from repro.fluid.flowsim import run_fluid
from repro.workloads.presets import four_job_scenario, gpt2_job
from repro.workloads.traceio import (
    load_demand_trace,
    load_iterations,
    load_scenario,
    save_demand_trace,
    save_iterations,
    save_scenario,
)
from repro.workloads.traffic import demand_trace


class TestDemandTraceRoundTrip:
    def test_round_trip(self, tmp_path):
        times, demand = demand_trace(gpt2_job(jitter_sigma=0.0), 4.0)
        path = tmp_path / "trace.csv"
        save_demand_trace(path, times, demand)
        t2, d2 = load_demand_trace(path)
        assert np.allclose(times, t2)
        assert np.allclose(demand, d2)

    def test_mismatched_lengths_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="align"):
            save_demand_trace(tmp_path / "x.csv", [0.0, 1.0], [1.0])

    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "bogus.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="not a demand trace"):
            load_demand_trace(path)


class TestIterationLogRoundTrip:
    def test_round_trip(self, tmp_path):
        result = run_fluid(four_job_scenario(), 50.0, max_iterations=5, seed=1)
        path = tmp_path / "iters.csv"
        save_iterations(path, result)
        records = load_iterations(path)
        assert len(records) == len(result.iterations)
        for original, loaded in zip(result.iterations, records):
            assert loaded.job == original.job
            assert loaded.index == original.index
            assert loaded.duration == pytest.approx(original.duration)

    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "bogus.csv"
        path.write_text("x\n1\n")
        with pytest.raises(ValueError, match="not an iteration log"):
            load_iterations(path)


class TestScenarioRoundTrip:
    def test_round_trip(self, tmp_path):
        jobs = four_job_scenario()
        path = tmp_path / "scenario.json"
        save_scenario(path, jobs)
        loaded = load_scenario(path)
        assert loaded == jobs

    def test_iteration_limit_preserved(self, tmp_path):
        jobs = [gpt2_job().with_iteration_limit(7)]
        path = tmp_path / "scenario.json"
        save_scenario(path, jobs)
        assert load_scenario(path)[0].iteration_limit == 7

    def test_invalid_payload_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="not a scenario"):
            load_scenario(path)

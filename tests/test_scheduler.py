"""Tests for the centralized (Cassini-like) scheduler."""

import pytest

from repro.schedulers.centralized import CentralizedScheduler, unified_period
from repro.workloads.job import JobSpec, gbit
from repro.workloads.presets import (
    four_job_scenario,
    six_job_scenario,
    three_job_scenario,
)


def make_job(name, comm_gbit, demand, compute, offset=0.0):
    return JobSpec(
        name=name,
        comm_bits=gbit(comm_gbit),
        demand_gbps=demand,
        compute_time=compute,
        start_offset=offset,
    )


class TestUnifiedPeriod:
    def test_paper_periods(self):
        """Cassini's unified circle for 1.2 s and 1.8 s jobs is 3.6 s."""
        assert unified_period([1.2, 1.8]) == pytest.approx(3.6)

    def test_identical_periods(self):
        assert unified_period([1.8, 1.8, 1.8]) == pytest.approx(1.8)

    def test_single_period(self):
        assert unified_period([0.7]) == pytest.approx(0.7)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            unified_period([])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            unified_period([1.0, -1.0])


class TestContention:
    def test_zero_when_underloaded(self):
        jobs = [make_job("A", 5.0, 10.0, 1.0)]
        scheduler = CentralizedScheduler(jobs, 50.0)
        assert scheduler.contention({"A": 0.0}) == 0.0

    def test_positive_when_overlapping_overloads(self):
        # Two 40 Gbps comm phases overlap on a 50 Gbps link: 30 Gbps excess.
        jobs = [make_job("A", 40.0, 40.0, 1.0), make_job("B", 40.0, 40.0, 1.0)]
        scheduler = CentralizedScheduler(jobs, 50.0)
        value = scheduler.contention({"A": 0.0, "B": 0.0})
        assert value == pytest.approx(30.0 * 1.0, rel=0.05)

    def test_offset_removes_contention(self):
        jobs = [make_job("A", 40.0, 40.0, 1.0), make_job("B", 40.0, 40.0, 1.0)]
        scheduler = CentralizedScheduler(jobs, 50.0)
        assert scheduler.contention({"A": 0.0, "B": 1.0}) == pytest.approx(0.0)


class TestOptimize:
    def test_two_identical_jobs_interleave(self):
        jobs = [make_job("A", 40.0, 40.0, 1.0), make_job("B", 40.0, 40.0, 1.0)]
        schedule = CentralizedScheduler(jobs, 50.0).optimize()
        assert schedule.is_interleaved

    @pytest.mark.parametrize(
        "scenario", [four_job_scenario, three_job_scenario, six_job_scenario]
    )
    def test_paper_scenarios_are_compatible(self, scenario):
        """The paper's compatibility assumption: every evaluation scenario
        admits a zero-contention interleave."""
        jobs = [j.with_jitter(0.0) for j in scenario()]
        schedule = CentralizedScheduler(jobs, 50.0).optimize()
        assert schedule.is_interleaved

    def test_four_job_optimal_times_match_paper(self):
        """Figure 2(a): J1 averages 1.2 s, J2-J4 average 1.8 s."""
        jobs = [j.with_jitter(0.0) for j in four_job_scenario()]
        scheduler = CentralizedScheduler(jobs, 50.0)
        schedule = scheduler.optimize()
        times = scheduler.iteration_times_if_scheduled(schedule)
        assert times["J1"] == pytest.approx(1.2, rel=0.02)
        for name in ("J2", "J3", "J4"):
            assert times[name] == pytest.approx(1.8, rel=0.02)

    def test_infeasible_mix_reports_residual(self):
        """Overloaded link: contention cannot reach zero."""
        jobs = [
            make_job("A", 50.0, 50.0, 0.0),
            make_job("B", 50.0, 50.0, 0.0),
        ]
        schedule = CentralizedScheduler(jobs, 50.0).optimize()
        assert not schedule.is_interleaved
        assert schedule.contention > 0

    def test_contended_schedule_predicts_stretch(self):
        jobs = [make_job("A", 50.0, 50.0, 0.0), make_job("B", 50.0, 50.0, 0.0)]
        scheduler = CentralizedScheduler(jobs, 50.0)
        schedule = scheduler.optimize()
        times = scheduler.iteration_times_if_scheduled(schedule)
        # Each job alone needs the full link continuously; sharing doubles it.
        assert times["A"] > jobs[0].ideal_iteration_time * 1.5

    def test_restart_descent_path(self):
        """More than exhaustive_threshold jobs exercises coordinate descent."""
        jobs = [j.with_jitter(0.0) for j in six_job_scenario()]
        schedule = CentralizedScheduler(jobs, 50.0).optimize(
            exhaustive_threshold=2, restarts=3
        )
        assert schedule.is_interleaved


class TestSchedule:
    def test_offset_lookup(self):
        jobs = [make_job("A", 10.0, 25.0, 1.0)]
        schedule = CentralizedScheduler(jobs, 50.0).optimize()
        assert schedule.offset_of("A") == 0.0
        with pytest.raises(KeyError, match="ghost"):
            schedule.offset_of("ghost")

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            CentralizedScheduler([], 50.0)
        with pytest.raises(ValueError, match="capacity"):
            CentralizedScheduler([make_job("A", 1.0, 1.0, 1.0)], 0.0)
        with pytest.raises(ValueError, match="time_resolution"):
            CentralizedScheduler(
                [make_job("A", 1.0, 1.0, 1.0)], 50.0, time_resolution=0.0
            )

"""Tests for demand-trace generation (Figure 1 substrate)."""

import numpy as np
import pytest

from repro.workloads.job import JobSpec, gbit
from repro.workloads.traffic import (
    DOUBLE_HUMP,
    SQUARE,
    PulseShape,
    aggregate_trace,
    demand_trace,
)


def make_job(**overrides):
    params = dict(
        name="J", comm_bits=gbit(10.0), demand_gbps=25.0, compute_time=1.0
    )
    params.update(overrides)
    return JobSpec(**params)


class TestPulseShape:
    def test_square_is_flat(self):
        for f in (0.0, 0.3, 0.9):
            assert SQUARE.rate_at(f) == pytest.approx(1.0)

    def test_double_hump_has_texture(self):
        rates = [DOUBLE_HUMP.rate_at(f) for f in np.linspace(0, 0.999, 50)]
        assert max(rates) > 1.1
        assert min(rates) < 0.9

    def test_shape_mean_normalized(self):
        """Any shape delivers the same per-iteration volume as square."""
        fractions = np.linspace(0, 1, 10001, endpoint=False)
        mean = np.mean([DOUBLE_HUMP.rate_at(f) for f in fractions])
        assert mean == pytest.approx(1.0, abs=1e-3)

    def test_rejects_bad_durations(self):
        with pytest.raises(ValueError, match="sum to 1"):
            PulseShape("bad", ((0.5, 1.0),))

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError, match="non-negative"):
            PulseShape("bad", ((1.0, -1.0),))

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError, match="demand"):
            PulseShape("bad", ((1.0, 0.0),))


class TestDemandTrace:
    def test_volume_matches_comm_bits(self):
        """Integral of the demand over one iteration ~= comm volume."""
        job = make_job()
        dt = 0.001
        times, demand = demand_trace(job, job.ideal_iteration_time, dt=dt)
        volume_gbit = demand.sum() * dt  # Gbps * s
        assert volume_gbit == pytest.approx(job.comm_bits / 1e9, rel=0.02)

    def test_peak_equals_demand(self):
        job = make_job()
        _times, demand = demand_trace(job, 2.0, dt=0.001)
        assert demand.max() == pytest.approx(job.demand_gbps)

    def test_compute_phase_is_silent(self):
        job = make_job()
        times, demand = demand_trace(job, job.ideal_iteration_time, dt=0.001)
        comm_end = job.ideal_comm_time
        silent = demand[(times > comm_end + 0.002)]
        assert np.all(silent == 0.0)

    def test_periodicity(self):
        job = make_job()
        period = job.ideal_iteration_time
        times, demand = demand_trace(job, 3 * period, dt=0.001)
        bins_per_period = int(round(period / 0.001))
        first = demand[:bins_per_period]
        second = demand[bins_per_period : 2 * bins_per_period]
        assert np.allclose(first, second)

    def test_start_offset_shifts_trace(self):
        job = make_job().with_offset(0.5)
        times, demand = demand_trace(job, 1.0, dt=0.001)
        assert np.all(demand[times < 0.499] == 0.0)
        assert demand[times > 0.51][0] > 0.0

    def test_jitter_changes_trace(self):
        job = make_job(jitter_sigma=0.1)
        _t, d1 = demand_trace(job, 5.0, rng=np.random.default_rng(1))
        _t, d2 = demand_trace(job, 5.0, rng=np.random.default_rng(2))
        assert not np.allclose(d1, d2)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError, match="duration"):
            demand_trace(make_job(), 0.0)

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError, match="dt"):
            demand_trace(make_job(), 1.0, dt=2.0)


class TestAggregateTrace:
    def test_sums_components(self):
        jobs = [make_job(name="A"), make_job(name="B")]
        _t, total = aggregate_trace(jobs, 2.0, dt=0.001)
        _t, single = demand_trace(jobs[0], 2.0, dt=0.001)
        assert np.allclose(total, 2 * single)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            aggregate_trace([], 1.0)

"""Tests for the packet-level experiment assembly helpers."""

import pytest

from repro.harness.packetlab import (
    mltcp_config_for,
    run_packet_jobs,
    throughput_timeline,
)
from repro.tcp.mltcp import MLTCPReno
from repro.tcp.reno import RenoCC
from repro.workloads.job import JobSpec


def small_job(name="J1", comm_mbit=2.0, compute_ms=15.0):
    return JobSpec(
        name=name,
        comm_bits=comm_mbit * 1e6,
        demand_gbps=1.0,
        compute_time=compute_ms / 1000.0,
    )


class TestMltcpConfigFor:
    def test_matches_job_shape(self):
        job = small_job()
        config = mltcp_config_for(job)
        assert config.total_bytes == job.comm_bytes
        assert 0 < config.comp_time < job.compute_time

    def test_overrides(self):
        config = mltcp_config_for(small_job(), comp_time=0.001)
        assert config.comp_time == 0.001

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            mltcp_config_for(small_job(), comp_time_fraction=0.0)


class TestRunPacketJobs:
    def test_single_job_ideal_iterations(self):
        job = small_job()
        lab = run_packet_jobs(job_list := [job], lambda j: RenoCC(), max_iterations=4)
        times = lab.iteration_times("J1")
        assert len(times) == 4
        # Ideal comm time plus wire overhead; generous 10% envelope.
        overhead = 1500 / 1460
        ideal = job.ideal_comm_time * overhead + job.compute_time
        assert times.mean() == pytest.approx(ideal, rel=0.1)

    def test_two_jobs_complete(self):
        jobs = [small_job("J1"), small_job("J2")]
        lab = run_packet_jobs(
            jobs,
            lambda j: MLTCPReno(mltcp_config_for(j)),
            max_iterations=5,
        )
        for job in jobs:
            assert len(lab.iteration_times(job.name)) == 5

    def test_mean_iteration_by_round(self):
        jobs = [small_job("J1"), small_job("J2")]
        lab = run_packet_jobs(jobs, lambda j: RenoCC(), max_iterations=3)
        assert len(lab.mean_iteration_by_round()) == 3

    def test_all_iteration_times_with_skip(self):
        lab = run_packet_jobs([small_job()], lambda j: RenoCC(), max_iterations=4)
        assert len(lab.all_iteration_times(skip=1)) == 3

    def test_throughput_accessor(self):
        lab = run_packet_jobs([small_job()], lambda j: RenoCC(), max_iterations=3)
        times, rates = lab.throughput("J1")
        assert len(times) == len(rates)
        # A 2 Mbit comm phase delivered inside one 5 ms bin averages 0.4 Gbps.
        assert rates.max() > 0.3

    def test_rejects_empty_jobs(self):
        with pytest.raises(ValueError, match="at least one"):
            run_packet_jobs([], lambda j: RenoCC())


class TestThroughputTimeline:
    def test_bins_bytes_into_gbps(self):
        log = [(0.001, 125_000), (0.002, 125_000)]  # 2 Mbit total in bin 0
        times, series = throughput_timeline(log, end_time=0.02, dt=0.01)
        assert series[0] == pytest.approx(2e6 / 0.01 / 1e9)
        assert series[1] == 0.0

    def test_clamps_to_last_bin(self):
        log = [(0.999, 1000)]
        _times, series = throughput_timeline(log, end_time=0.5, dt=0.1)
        assert series[-1] > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="dt"):
            throughput_timeline([], end_time=1.0, dt=0.0)
        with pytest.raises(ValueError, match="end_time"):
            throughput_timeline([], end_time=0.0)

"""Unit tests for the Algorithm 1 state machine (IterationTracker)."""

import pytest

from repro.core.config import MLTCPConfig
from repro.core.iteration import IterationTracker


def make_tracker(total_bytes=15000, comp_time=0.1, **kwargs):
    return IterationTracker(
        MLTCPConfig(total_bytes=total_bytes, comp_time=comp_time, **kwargs)
    )


class TestBytesRatio:
    def test_starts_at_zero(self):
        tracker = make_tracker()
        assert tracker.bytes_ratio == 0.0
        assert tracker.bytes_sent == 0

    def test_ratio_grows_with_acks(self):
        tracker = make_tracker(total_bytes=15000)
        assert tracker.on_ack(0.0, 1500) == pytest.approx(0.1)
        assert tracker.on_ack(0.001, 3000) == pytest.approx(0.3)

    def test_ratio_capped_at_one(self):
        """Algorithm 1 line 16: bytes_ratio = min(1, ...)."""
        tracker = make_tracker(total_bytes=1500)
        tracker.on_ack(0.0, 1500)
        assert tracker.on_ack(0.001, 1500) == 1.0

    def test_aggressiveness_uses_ratio(self):
        tracker = make_tracker(total_bytes=3000)
        tracker.on_ack(0.0, 1500)
        # F(0.5) with the paper's linear function = 1.125.
        assert tracker.aggressiveness() == pytest.approx(1.75 * 0.5 + 0.25)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError, match="acked_bytes"):
            make_tracker().on_ack(0.0, -1)

    def test_rejects_time_reversal(self):
        tracker = make_tracker()
        tracker.on_ack(1.0, 1500)
        with pytest.raises(ValueError, match="backwards"):
            tracker.on_ack(0.5, 1500)


class TestIterationBoundary:
    def test_gap_resets_state(self):
        """Algorithm 1 lines 10-13: gap > COMP_TIME starts a new iteration."""
        tracker = make_tracker(total_bytes=15000, comp_time=0.05)
        tracker.on_ack(0.000, 7500)
        tracker.on_ack(0.001, 7500)
        assert tracker.bytes_ratio == 1.0
        ratio = tracker.on_ack(0.2, 1500)  # gap of ~0.2 > 0.05
        assert ratio == pytest.approx(1500 / 15000)
        assert tracker.bytes_sent == 1500

    def test_sub_threshold_gap_does_not_reset(self):
        tracker = make_tracker(total_bytes=15000, comp_time=0.05)
        tracker.on_ack(0.0, 1500)
        tracker.on_ack(0.04, 1500)
        assert tracker.bytes_sent == 3000

    def test_boundary_records_iteration(self):
        tracker = make_tracker(total_bytes=3000, comp_time=0.05)
        tracker.on_ack(0.000, 1500)
        tracker.on_ack(0.001, 1500)
        tracker.on_ack(0.2, 1500)
        records = tracker.completed_iterations
        assert len(records) == 1
        assert records[0].bytes_sent == 3000
        assert records[0].index == 0
        assert records[0].comm_duration == pytest.approx(0.001)

    def test_iteration_index_increments(self):
        tracker = make_tracker(total_bytes=1500, comp_time=0.05)
        tracker.on_ack(0.0, 1500)
        tracker.on_ack(0.2, 1500)
        tracker.on_ack(0.4, 1500)
        assert tracker.iteration_index == 2

    def test_explicit_boundary_notification(self):
        tracker = make_tracker(total_bytes=3000, comp_time=0.05)
        tracker.on_ack(0.0, 3000)
        assert tracker.bytes_ratio == 1.0
        tracker.notify_iteration_boundary(0.5)
        assert tracker.bytes_sent == 0
        assert tracker.bytes_ratio == 0.0
        assert len(tracker.completed_iterations) == 1


class TestOnlineLearning:
    """§3.2: TOTAL_BYTES and COMP_TIME are learned in the first iterations."""

    def test_learns_total_bytes_after_enough_iterations(self):
        tracker = IterationTracker(
            MLTCPConfig(comp_time=0.05, learn_iterations=2)
        )
        # Two iterations of 3000 bytes each, separated by big gaps.
        for start in (0.0, 1.0, 2.0):
            tracker.on_ack(start, 1500)
            tracker.on_ack(start + 0.001, 1500)
        assert tracker.total_bytes == pytest.approx(3000)

    def test_ratio_zero_while_learning(self):
        """Unknown TOTAL_BYTES behaves like plain TCP (least aggressive)."""
        tracker = IterationTracker(MLTCPConfig(comp_time=0.05))
        tracker.on_ack(0.0, 1500)
        assert tracker.bytes_ratio == 0.0
        assert tracker.aggressiveness() == pytest.approx(0.25)

    def test_learns_comp_time_from_rtt_gaps(self):
        """Boundary detection falls back to an SRTT multiple (§3.2)."""
        tracker = IterationTracker(MLTCPConfig(total_bytes=3000))
        srtt = 0.001
        tracker.on_ack(0.0, 1500, smoothed_rtt=srtt)
        tracker.on_ack(0.001, 1500, smoothed_rtt=srtt)
        # Gap of 0.5 s >> 4 * srtt: new iteration even without comp_time.
        tracker.on_ack(0.5, 1500, smoothed_rtt=srtt)
        assert tracker.bytes_sent == 1500
        assert tracker.comp_time is not None

    def test_no_boundary_without_any_threshold(self):
        """No comp_time and no RTT estimate: no resets can happen."""
        tracker = IterationTracker(MLTCPConfig(total_bytes=3000))
        tracker.on_ack(0.0, 1500)
        tracker.on_ack(10.0, 1500)
        assert tracker.bytes_sent == 3000

    def test_configured_values_take_precedence(self):
        tracker = make_tracker(total_bytes=9999, comp_time=0.123)
        assert tracker.total_bytes == 9999
        assert tracker.comp_time == 0.123


def drive_iterations(tracker, volume, count, start=0.0, chunk=1500, period=1.0):
    """Feed ``count`` iterations of ``volume`` bytes each; returns end time."""
    now = start
    for _ in range(count):
        sent = 0
        while sent < volume:
            step = min(chunk, volume - sent)
            tracker.on_ack(now, step)
            sent += step
            now += 0.001
        now += period  # >> comp_time: the next ACK opens a new iteration
    return now


class TestAdversarialEstimates:
    """Mis-estimated TOTAL_BYTES must trip the degradation state machine
    (docs/ROBUSTNESS.md), not silently skew the aggressiveness."""

    def test_2x_overestimate_degrades_after_consecutive_drift(self):
        # Real volume 6000, estimate 12000: drift = 0.5 > 0.45 every
        # iteration.  Entry needs degrade_after_iterations consecutive
        # dirty boundaries (here 2).
        tracker = make_tracker(
            total_bytes=12000, comp_time=0.05,
            drift_warmup_iterations=0, degrade_after_iterations=2,
        )
        drive_iterations(tracker, volume=6000, count=2)
        tracker.on_ack(10.0, 1500)  # boundary of the 2nd iteration
        assert tracker.estimate_unreliable
        assert tracker.unreliable_reason.startswith("drift=")

    def test_single_drifting_iteration_is_forgiven(self):
        # One short iteration (an RTO fragment, a straggler hiccup) must
        # not condemn an otherwise-correct estimate.
        tracker = make_tracker(
            total_bytes=12000, comp_time=0.05,
            drift_warmup_iterations=0, degrade_after_iterations=2,
        )
        end = drive_iterations(tracker, volume=6000, count=1)  # drifted
        drive_iterations(tracker, volume=12000, count=2, start=end)  # clean
        tracker.on_ack(100.0, 1500)
        assert not tracker.estimate_unreliable

    def test_half_x_underestimate_latches_missed_boundary(self):
        # Real volume 2x the estimate: bytes_sent overruns
        # (1 + drift_threshold) * total mid-iteration, flagged immediately
        # without waiting for a boundary that may never be detected.
        tracker = make_tracker(total_bytes=6000, comp_time=0.05)
        drive_iterations(tracker, volume=12000, count=1)
        assert tracker.estimate_unreliable
        assert tracker.unreliable_reason == "missed-boundary"

    def test_ratio_clamps_at_the_edges_under_overrun(self):
        tracker = make_tracker(total_bytes=6000, comp_time=0.05)
        assert tracker.bytes_ratio == 0.0
        now = 0.0
        for _ in range(10):  # 15000 bytes >> 6000 estimate
            ratio = tracker.on_ack(now, 1500)
            assert 0.0 <= ratio <= 1.0
            now += 0.001
        assert tracker.bytes_ratio == 1.0

    def test_reengages_after_k_clean_iterations(self):
        tracker = make_tracker(
            total_bytes=12000, comp_time=0.05,
            drift_warmup_iterations=0, degrade_after_iterations=2,
            reengage_iterations=3,
        )
        end = drive_iterations(tracker, volume=6000, count=2)
        # Clean iterations: 2 are not enough, the 3rd redeems.
        end = drive_iterations(tracker, volume=12000, count=2, start=end)
        tracker.on_ack(end, 1500)
        assert tracker.estimate_unreliable
        tracker.bytes_sent = 0  # restart the partial iteration cleanly
        end = drive_iterations(tracker, volume=12000, count=1, start=end + 1.0)
        tracker.on_ack(end, 1500)
        assert not tracker.estimate_unreliable
        assert tracker.unreliable_reason is None

    def test_warmup_iterations_count_for_nothing(self):
        # Startup fragments (slow start, RTOs) drift wildly; inside the
        # warmup window they neither condemn nor redeem.
        tracker = make_tracker(
            total_bytes=12000, comp_time=0.05,
            drift_warmup_iterations=3, degrade_after_iterations=2,
        )
        drive_iterations(tracker, volume=1500, count=3)  # all inside warmup
        tracker.on_ack(10.0, 1500)
        assert not tracker.estimate_unreliable

    def test_degrade_opt_out_never_flags(self):
        # The saturation idiom (total_bytes=1 as a constant-weight trick)
        # must be usable with the guard disabled.
        tracker = make_tracker(
            total_bytes=1, comp_time=1e9, degrade_on_unreliable=False
        )
        now = 0.0
        for _ in range(50):
            tracker.on_ack(now, 1500)
            now += 0.001
        assert not tracker.estimate_unreliable
        assert tracker.bytes_ratio == 1.0


class TestRestartReset:
    def test_reset_after_restart_discards_learned_state(self):
        tracker = IterationTracker(
            MLTCPConfig(comp_time=0.05, learn_iterations=2)
        )
        for start in (0.0, 1.0, 2.0, 3.0):
            tracker.on_ack(start, 1500)
            tracker.on_ack(start + 0.001, 1500)
        assert tracker.total_bytes is not None  # learning completed
        tracker.reset_after_restart(5.0)
        assert tracker.total_bytes is None
        assert tracker.bytes_sent == 0
        assert tracker.bytes_ratio == 0.0
        assert tracker.iteration_index == 0
        assert tracker.completed_iterations == ()
        # Learned state was in use → the estimate is distrusted until
        # re-learning completes.
        assert tracker.estimate_unreliable
        assert tracker.unreliable_reason == "post-restart"

    def test_reset_after_restart_keeps_configured_estimates_trusted(self):
        tracker = make_tracker(total_bytes=3000, comp_time=0.05)
        drive_iterations(tracker, volume=3000, count=2)
        tracker.reset_after_restart(10.0)
        assert tracker.total_bytes == 3000  # configured: ground truth
        assert not tracker.estimate_unreliable

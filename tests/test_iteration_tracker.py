"""Unit tests for the Algorithm 1 state machine (IterationTracker)."""

import pytest

from repro.core.config import MLTCPConfig
from repro.core.iteration import IterationTracker


def make_tracker(total_bytes=15000, comp_time=0.1, **kwargs):
    return IterationTracker(
        MLTCPConfig(total_bytes=total_bytes, comp_time=comp_time, **kwargs)
    )


class TestBytesRatio:
    def test_starts_at_zero(self):
        tracker = make_tracker()
        assert tracker.bytes_ratio == 0.0
        assert tracker.bytes_sent == 0

    def test_ratio_grows_with_acks(self):
        tracker = make_tracker(total_bytes=15000)
        assert tracker.on_ack(0.0, 1500) == pytest.approx(0.1)
        assert tracker.on_ack(0.001, 3000) == pytest.approx(0.3)

    def test_ratio_capped_at_one(self):
        """Algorithm 1 line 16: bytes_ratio = min(1, ...)."""
        tracker = make_tracker(total_bytes=1500)
        tracker.on_ack(0.0, 1500)
        assert tracker.on_ack(0.001, 1500) == 1.0

    def test_aggressiveness_uses_ratio(self):
        tracker = make_tracker(total_bytes=3000)
        tracker.on_ack(0.0, 1500)
        # F(0.5) with the paper's linear function = 1.125.
        assert tracker.aggressiveness() == pytest.approx(1.75 * 0.5 + 0.25)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError, match="acked_bytes"):
            make_tracker().on_ack(0.0, -1)

    def test_rejects_time_reversal(self):
        tracker = make_tracker()
        tracker.on_ack(1.0, 1500)
        with pytest.raises(ValueError, match="backwards"):
            tracker.on_ack(0.5, 1500)


class TestIterationBoundary:
    def test_gap_resets_state(self):
        """Algorithm 1 lines 10-13: gap > COMP_TIME starts a new iteration."""
        tracker = make_tracker(total_bytes=15000, comp_time=0.05)
        tracker.on_ack(0.000, 7500)
        tracker.on_ack(0.001, 7500)
        assert tracker.bytes_ratio == 1.0
        ratio = tracker.on_ack(0.2, 1500)  # gap of ~0.2 > 0.05
        assert ratio == pytest.approx(1500 / 15000)
        assert tracker.bytes_sent == 1500

    def test_sub_threshold_gap_does_not_reset(self):
        tracker = make_tracker(total_bytes=15000, comp_time=0.05)
        tracker.on_ack(0.0, 1500)
        tracker.on_ack(0.04, 1500)
        assert tracker.bytes_sent == 3000

    def test_boundary_records_iteration(self):
        tracker = make_tracker(total_bytes=3000, comp_time=0.05)
        tracker.on_ack(0.000, 1500)
        tracker.on_ack(0.001, 1500)
        tracker.on_ack(0.2, 1500)
        records = tracker.completed_iterations
        assert len(records) == 1
        assert records[0].bytes_sent == 3000
        assert records[0].index == 0
        assert records[0].comm_duration == pytest.approx(0.001)

    def test_iteration_index_increments(self):
        tracker = make_tracker(total_bytes=1500, comp_time=0.05)
        tracker.on_ack(0.0, 1500)
        tracker.on_ack(0.2, 1500)
        tracker.on_ack(0.4, 1500)
        assert tracker.iteration_index == 2

    def test_explicit_boundary_notification(self):
        tracker = make_tracker(total_bytes=3000, comp_time=0.05)
        tracker.on_ack(0.0, 3000)
        assert tracker.bytes_ratio == 1.0
        tracker.notify_iteration_boundary(0.5)
        assert tracker.bytes_sent == 0
        assert tracker.bytes_ratio == 0.0
        assert len(tracker.completed_iterations) == 1


class TestOnlineLearning:
    """§3.2: TOTAL_BYTES and COMP_TIME are learned in the first iterations."""

    def test_learns_total_bytes_after_enough_iterations(self):
        tracker = IterationTracker(
            MLTCPConfig(comp_time=0.05, learn_iterations=2)
        )
        # Two iterations of 3000 bytes each, separated by big gaps.
        for start in (0.0, 1.0, 2.0):
            tracker.on_ack(start, 1500)
            tracker.on_ack(start + 0.001, 1500)
        assert tracker.total_bytes == pytest.approx(3000)

    def test_ratio_zero_while_learning(self):
        """Unknown TOTAL_BYTES behaves like plain TCP (least aggressive)."""
        tracker = IterationTracker(MLTCPConfig(comp_time=0.05))
        tracker.on_ack(0.0, 1500)
        assert tracker.bytes_ratio == 0.0
        assert tracker.aggressiveness() == pytest.approx(0.25)

    def test_learns_comp_time_from_rtt_gaps(self):
        """Boundary detection falls back to an SRTT multiple (§3.2)."""
        tracker = IterationTracker(MLTCPConfig(total_bytes=3000))
        srtt = 0.001
        tracker.on_ack(0.0, 1500, smoothed_rtt=srtt)
        tracker.on_ack(0.001, 1500, smoothed_rtt=srtt)
        # Gap of 0.5 s >> 4 * srtt: new iteration even without comp_time.
        tracker.on_ack(0.5, 1500, smoothed_rtt=srtt)
        assert tracker.bytes_sent == 1500
        assert tracker.comp_time is not None

    def test_no_boundary_without_any_threshold(self):
        """No comp_time and no RTT estimate: no resets can happen."""
        tracker = IterationTracker(MLTCPConfig(total_bytes=3000))
        tracker.on_ack(0.0, 1500)
        tracker.on_ack(10.0, 1500)
        assert tracker.bytes_sent == 3000

    def test_configured_values_take_precedence(self):
        tracker = make_tracker(total_bytes=9999, comp_time=0.123)
        assert tracker.total_bytes == 9999
        assert tracker.comp_time == 0.123

"""Tests for CUBIC and DCTCP congestion control."""

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.queues import DropTailQueue, EcnQueue
from repro.simulator.topology import build_dumbbell
from repro.tcp.base import TcpReceiver, TcpSender
from repro.tcp.cubic import CubicCC
from repro.tcp.dctcp import DctcpCC
from repro.tcp.reno import RenoCC


def run_transfer(cc, nbytes=2_000_000, queue=None, until=1.0):
    sim = Simulator()
    net = build_dumbbell(
        sim,
        1,
        bottleneck_bps=1e9,
        bottleneck_queue=queue if queue is not None else DropTailQueue(64),
    )
    sender = TcpSender(sim, net.hosts["s0"], "f", "r0", cc)
    TcpReceiver(sim, net.hosts["r0"], "f", "s0")
    finished = {}
    sender.on_all_acked = lambda: finished.setdefault("t", sim.now)
    sender.send_bytes(nbytes)
    sim.run(until=until)
    return sim, net, sender, finished.get("t")


class TestCubic:
    def test_transfer_completes_with_good_throughput(self):
        _sim, _net, sender, t = run_transfer(CubicCC())
        assert t is not None
        assert 2_000_000 * 8 / t > 0.8e9

    def test_loss_reduces_window_by_beta(self):
        cc = CubicCC()
        cc.cwnd = 100.0

        class FakeConn:
            def flight_size(self):
                return 100

        cc.on_fast_retransmit(FakeConn())
        # ssthresh = 0.7 * 100; cwnd = ssthresh + 3 during recovery.
        assert cc.ssthresh == pytest.approx(70.0)
        cc.on_recovery_exit(FakeConn())
        assert cc.cwnd == pytest.approx(70.0)

    def test_concave_growth_toward_w_max(self):
        """After a loss, CUBIC approaches the old W_max along the cubic."""
        cc = CubicCC()
        cc.ssthresh = 50.0
        cc.cwnd = 50.0

        class FakeConn:
            smoothed_rtt = 0.001

            class sim:
                now = 0.0

            def flight_size(self):
                return 50

        cc.on_fast_retransmit(FakeConn())
        cc.on_recovery_exit(FakeConn())
        start = cc.cwnd
        FakeConn.sim.now = 0.05
        cc.on_ack(1, FakeConn())
        grown_early = cc.cwnd - start
        FakeConn.sim.now = 1.0
        before = cc.cwnd
        cc.on_ack(1, FakeConn())
        grown_late = cc.cwnd - before
        assert grown_early > 0
        assert grown_late > 0

    def test_window_never_collapses_below_min(self):
        cc = CubicCC()

        class FakeConn:
            def flight_size(self):
                return 2

        cc.on_rto(FakeConn())
        assert cc.cwnd >= 1.0


class TestDctcp:
    def test_marks_ecn_capable(self):
        assert DctcpCC().ecn_enabled
        assert not RenoCC().ecn_enabled

    def test_transfer_completes_over_ecn_queue(self):
        queue = EcnQueue(capacity_packets=100, mark_threshold=20)
        _sim, _net, sender, t = run_transfer(DctcpCC(), queue=queue)
        assert t is not None
        assert 2_000_000 * 8 / t > 0.7e9

    def test_dctcp_keeps_queue_shorter_than_reno(self):
        """DCTCP's raison d'etre: low queue occupancy at high throughput."""
        reno_queue = EcnQueue(capacity_packets=200, mark_threshold=20)
        dctcp_queue = EcnQueue(capacity_packets=200, mark_threshold=20)
        run_transfer(RenoCC(), queue=reno_queue, nbytes=3_000_000)
        run_transfer(DctcpCC(), queue=dctcp_queue, nbytes=3_000_000)
        # Reno (loss-driven) must fill the 200-packet buffer; DCTCP reacts
        # to marks at 20 packets, so its drops should be far fewer.
        assert dctcp_queue.drops < reno_queue.drops

    def test_alpha_rises_under_marks(self):
        queue = EcnQueue(capacity_packets=100, mark_threshold=5)
        _sim, _net, sender, _t = run_transfer(DctcpCC(), queue=queue)
        assert sender.cc.alpha > 0.0

    def test_alpha_stays_zero_without_marks(self):
        _sim, _net, sender, _t = run_transfer(
            DctcpCC(), nbytes=10 * 1460, queue=DropTailQueue(1000)
        )
        assert sender.cc.alpha == 0.0

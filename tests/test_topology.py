"""Tests for topology builders and routing."""

import networkx as nx
import pytest

from repro.simulator.engine import Simulator
from repro.simulator.packet import Packet
from repro.simulator.topology import Network, build_dumbbell, build_from_graph


class _Recorder:
    """Minimal flow sink collecting delivered packets."""

    def __init__(self):
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


def data_packet(src, dst, flow="f"):
    return Packet(flow_id=flow, src=src, dst=dst, is_ack=False, seq=0, payload_bytes=100)


class TestDumbbell:
    def test_structure(self):
        net = build_dumbbell(Simulator(), n_pairs=3, bottleneck_bps=1e9)
        assert set(net.switches) == {"sw_l", "sw_r"}
        assert set(net.hosts) == {"s0", "s1", "s2", "r0", "r1", "r2"}
        assert ("sw_l", "sw_r") in net.links

    def test_bottleneck_rate(self):
        net = build_dumbbell(Simulator(), n_pairs=1, bottleneck_bps=5e8)
        assert net.link("sw_l", "sw_r").rate_bps == 5e8

    def test_edge_rate_defaults_to_4x(self):
        net = build_dumbbell(Simulator(), n_pairs=1, bottleneck_bps=1e9)
        assert net.link("s0", "sw_l").rate_bps == 4e9

    def test_end_to_end_delivery(self):
        sim = Simulator()
        net = build_dumbbell(sim, n_pairs=2, bottleneck_bps=1e9)
        sink = _Recorder()
        net.hosts["r1"].register_flow("f", sink)
        net.hosts["s1"].send(data_packet("s1", "r1"))
        sim.run()
        assert len(sink.packets) == 1

    def test_reverse_path_delivery(self):
        sim = Simulator()
        net = build_dumbbell(sim, n_pairs=1, bottleneck_bps=1e9)
        sink = _Recorder()
        net.hosts["s0"].register_flow("f", sink)
        net.hosts["r0"].send(data_packet("r0", "s0"))
        sim.run()
        assert len(sink.packets) == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="n_pairs"):
            build_dumbbell(Simulator(), n_pairs=0, bottleneck_bps=1e9)
        with pytest.raises(ValueError, match="bottleneck"):
            build_dumbbell(Simulator(), n_pairs=1, bottleneck_bps=0.0)


class TestNetworkPrimitives:
    def test_duplicate_node_rejected(self):
        net = Network(sim=Simulator())
        net.add_host("a")
        with pytest.raises(ValueError, match="already exists"):
            net.add_switch("a")

    def test_duplicate_link_rejected(self):
        net = Network(sim=Simulator())
        net.add_host("a")
        net.add_host("b")
        net.add_link("a", "b", 1e9, 0.0)
        with pytest.raises(ValueError, match="already exists"):
            net.add_link("a", "b", 1e9, 0.0)

    def test_unknown_node_lookup(self):
        with pytest.raises(KeyError, match="ghost"):
            Network(sim=Simulator()).node("ghost")

    def test_unknown_link_lookup(self):
        with pytest.raises(KeyError, match="a -> b"):
            Network(sim=Simulator()).link("a", "b")

    def test_route_through_host_rejected(self):
        net = Network(sim=Simulator())
        for name in ("a", "m", "b"):
            net.add_host(name)
        net.add_link("a", "m", 1e9, 0.0)
        net.add_link("m", "b", 1e9, 0.0)
        with pytest.raises(ValueError, match="not a switch"):
            net.install_route("a", "b", ["a", "m", "b"])

    def test_route_endpoint_mismatch_rejected(self):
        net = Network(sim=Simulator())
        net.add_host("a")
        net.add_host("b")
        with pytest.raises(ValueError, match="must run"):
            net.install_route("a", "b", ["b", "a"])


class TestGraphBuilder:
    def test_star_topology_routes(self):
        graph = nx.Graph()
        graph.add_node("hub", kind="switch")
        for i in range(3):
            graph.add_edge(f"h{i}", "hub", rate_bps=1e9, delay=1e-6)
        sim = Simulator()
        net = build_from_graph(sim, graph)
        sink = _Recorder()
        net.hosts["h2"].register_flow("f", sink)
        net.hosts["h0"].send(data_packet("h0", "h2"))
        sim.run()
        assert len(sink.packets) == 1

    def test_edge_attributes_respected(self):
        graph = nx.Graph()
        graph.add_node("sw", kind="switch")
        graph.add_edge("a", "sw", rate_bps=7e8)
        net = build_from_graph(Simulator(), graph)
        assert net.link("a", "sw").rate_bps == 7e8

    def test_multi_switch_path(self):
        graph = nx.Graph()
        graph.add_node("sw1", kind="switch")
        graph.add_node("sw2", kind="switch")
        graph.add_edge("a", "sw1")
        graph.add_edge("sw1", "sw2")
        graph.add_edge("sw2", "b")
        sim = Simulator()
        net = build_from_graph(sim, graph)
        sink = _Recorder()
        net.hosts["b"].register_flow("f", sink)
        net.hosts["a"].send(data_packet("a", "b"))
        sim.run()
        assert len(sink.packets) == 1

    def test_disconnected_hosts_rejected(self):
        graph = nx.Graph()
        graph.add_node("a")
        graph.add_node("b")
        with pytest.raises(ValueError, match="no path"):
            build_from_graph(Simulator(), graph)

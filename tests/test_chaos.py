"""Fabric chaos engineering: failure-aware ECMP rerouting, seeded chaos
campaigns, and recovery SLOs.

Covers the shared :class:`FabricRoutingState`, the fabric fault kinds'
validation and rendering, packet-vs-fluid injector equivalence on a fat
tree, the :class:`ChaosCampaign` generator's budget guarantees, the
recovery-SLO metrics, and the end-to-end acceptance claim: after every
single-spine failure MLTCP re-reaches the §4 interleavable condition by
itself while fair share does not.
"""

import json

import numpy as np
import pytest

from repro.faults import (
    FABRIC_KINDS,
    FAULT_KINDS,
    ChaosBudget,
    ChaosCampaign,
    FabricRoutingState,
    FaultEvent,
    FaultSchedule,
    generate_campaign,
    rehashed_seed,
)
from repro.faults.schedule import _DESCRIBE_RECIPES
from repro.fluid.flowsim import IterationResult
from repro.metrics.recovery import (
    FaultWindow,
    fault_windows,
    goodput_deficit_bits,
    reinterleave_time,
    reroute_outage,
    recovery_slos,
)
from repro.workloads import cross_rack_scenario
from repro.workloads.placement import FabricSpec, place_jobs


def small_spec(**overrides) -> FabricSpec:
    params = dict(
        n_racks=4, hosts_per_rack=2, n_spines=2, oversubscription=2.0,
        ecmp_seed=2,
    )
    params.update(overrides)
    return FabricSpec(**params)


def spine_down(spine: str, time: float = 0.1, duration: float = 0.1) -> FaultEvent:
    return FaultEvent("spine_down", time=time, duration=duration, spine=spine)


class TestFabricRoutingState:
    def test_healthy_state_matches_spec_paths(self):
        spec = small_spec()
        state = FabricRoutingState(spec)
        assert state.healthy()
        for src in spec.host_names():
            for dst in spec.host_names():
                if src == dst:
                    continue
                assert state.path_nodes(src, dst) == spec.path_nodes(src, dst)

    def test_spine_down_reroutes_over_survivor_and_reverts(self):
        spec = small_spec()
        state = FabricRoutingState(spec)
        event = spine_down("spine0")
        state.apply(event)
        assert not state.healthy()
        src, dst = spec.host_name(0, 0), spec.host_name(2, 0)
        path = state.path_nodes(src, dst)
        assert path is not None and "spine1" in path and "spine0" not in path
        state.revert(event)
        assert state.healthy()
        assert state.path_nodes(src, dst) == spec.path_nodes(src, dst)

    def test_revert_without_apply_raises(self):
        state = FabricRoutingState(small_spec())
        with pytest.raises(ValueError, match="without a matching apply"):
            state.revert(spine_down("spine0"))

    def test_overlapping_identical_faults_are_reference_counted(self):
        state = FabricRoutingState(small_spec())
        first = spine_down("spine0", time=0.1)
        second = spine_down("spine0", time=0.15)
        state.apply(first)
        state.apply(second)
        state.revert(first)
        # One hold remains: the spine must stay down.
        assert not state.healthy()
        state.revert(second)
        assert state.healthy()

    def test_rack_partition_blackholes_only_that_rack(self):
        spec = small_spec()
        state = FabricRoutingState(spec)
        event = FaultEvent(
            "rack_partition", time=0.1, duration=0.1, rack="rack0"
        )
        state.apply(event)
        assert state.path_nodes(spec.host_name(0, 0), spec.host_name(1, 0)) is None
        # Intra-rack traffic of the partitioned rack never leaves the ToR.
        assert (
            state.path_nodes(spec.host_name(0, 0), spec.host_name(0, 1))
            is not None
        )
        # Unrelated racks still talk.
        assert (
            state.path_nodes(spec.host_name(1, 0), spec.host_name(2, 0))
            is not None
        )

    def test_uplink_down_severs_one_rack_spine_pair(self):
        spec = small_spec()
        state = FabricRoutingState(spec)
        state.apply(
            FaultEvent("uplink_down", time=0.1, duration=0.1, link="rack0->spine0")
        )
        assert not state.uplink_up(0, 0)
        assert state.uplink_up(0, 1)
        assert state.uplink_up(1, 0)
        assert state.surviving_spines(0, 2) == (1,)

    def test_down_links_cover_both_directions(self):
        state = FabricRoutingState(small_spec())
        state.apply(spine_down("spine1"))
        down = state.down_links()
        assert "rack0->spine1" in down and "spine1->rack0" in down
        assert not any("spine0" in link for link in down)

    def test_ecmp_rehash_reshuffles_and_restores(self):
        spec = small_spec()
        state = FabricRoutingState(spec)
        baseline = {
            (src, dst): state.path_nodes(src, dst)
            for src in spec.host_names()
            for dst in spec.host_names()
            if src != dst
        }
        event = FaultEvent("ecmp_rehash", time=0.1, duration=0.1)
        state.apply(event)
        assert state.ecmp_seed == rehashed_seed(spec.ecmp_seed, 1)
        rehashed = {
            pair: state.path_nodes(*pair) for pair in baseline
        }
        assert rehashed != baseline  # some spine choices moved
        state.revert(event)
        assert {pair: state.path_nodes(*pair) for pair in baseline} == baseline

    def test_generation_counter_tracks_every_transition(self):
        state = FabricRoutingState(small_spec())
        start = state.generation
        event = spine_down("spine0")
        state.apply(event)
        state.revert(event)
        assert state.generation == start + 2


class TestFabricValidation:
    def test_spine_existence_error_names_valid_spines(self):
        spec = small_spec()
        schedule = FaultSchedule(events=(spine_down("spine7"),))
        with pytest.raises(ValueError, match=r"valid spines.*spine0.*spine1"):
            schedule.validate(fabric=spec)

    def test_uplink_existence_error_names_valid_uplinks(self):
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    "uplink_down", time=0.1, duration=0.1, link="rack0->spine9"
                ),
            )
        )
        with pytest.raises(ValueError, match="valid uplinks"):
            schedule.validate(fabric=small_spec())

    def test_rack_existence_error_names_valid_racks(self):
        schedule = FaultSchedule(
            events=(
                FaultEvent("rack_partition", time=0.1, duration=0.1, rack="rack9"),
            )
        )
        with pytest.raises(ValueError, match="valid racks"):
            schedule.validate(fabric=small_spec())

    def test_network_also_accepted_as_fabric(self):
        from repro.simulator.engine import Simulator
        from repro.simulator.topology import build_fat_tree

        spec = small_spec()
        network = build_fat_tree(Simulator(), spec)
        schedule = FaultSchedule(events=(spine_down("spine0"),))
        schedule.validate(fabric=network)  # does not raise
        bad = FaultSchedule(events=(spine_down("spine9"),))
        with pytest.raises(ValueError, match="valid spines"):
            bad.validate(fabric=network)

    def test_non_fabric_kind_rejects_spine_target(self):
        with pytest.raises(ValueError, match="only fabric faults"):
            FaultSchedule(
                events=(
                    FaultEvent(
                        "link_down", time=0.1, duration=0.1, spine="spine0"
                    ),
                )
            )

    def test_fabric_kind_needs_positive_duration(self):
        with pytest.raises(ValueError, match="positive duration"):
            FaultSchedule(events=(spine_down("spine0", duration=0.0),))

    def test_ecmp_rehash_takes_no_target(self):
        with pytest.raises(ValueError, match="no target"):
            FaultSchedule(
                events=(
                    FaultEvent(
                        "ecmp_rehash", time=0.1, duration=0.1, spine="spine0"
                    ),
                )
            )

    def test_fabric_events_round_trip_through_json(self):
        schedule = FaultSchedule(
            events=(
                spine_down("spine0", time=0.2, duration=0.3),
                FaultEvent("ecmp_rehash", time=0.6, duration=0.1),
            ),
            seed=7,
        )
        restored = FaultSchedule.from_json(schedule.to_json())
        assert restored == schedule


class TestDescribeTable:
    #: A minimal valid sample of every kind, for table-driven rendering.
    SAMPLES = {
        "link_down": FaultEvent("link_down", 1.0, 2.0, link="a->b"),
        "bandwidth": FaultEvent("bandwidth", 1.0, 2.0, link="a->b", factor=0.5),
        "loss_burst": FaultEvent("loss_burst", 1.0, 2.0, link="a->b", loss=0.05),
        "ecn_storm": FaultEvent("ecn_storm", 1.0, 2.0, link="a->b"),
        "straggler": FaultEvent("straggler", 1.0, 2.0, job="Job1", factor=2.0),
        "job_restart": FaultEvent("job_restart", 1.0, job="Job1", restart_delay=0.5),
        "spine_down": FaultEvent("spine_down", 1.0, 2.0, spine="spine0"),
        "uplink_down": FaultEvent("uplink_down", 1.0, 2.0, link="rack0->spine1"),
        "rack_partition": FaultEvent("rack_partition", 1.0, 2.0, rack="rack2"),
        "ecmp_rehash": FaultEvent("ecmp_rehash", 1.0, 2.0),
    }

    def test_recipes_cover_every_kind_exactly(self):
        # A new kind cannot ship without a describe() rendering: the recipe
        # table and the kind catalogue must stay in lockstep.
        assert set(_DESCRIBE_RECIPES) == set(FAULT_KINDS)
        assert set(self.SAMPLES) == set(FAULT_KINDS)

    @pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
    def test_every_kind_renders_its_target_and_parameters(self, kind):
        event = self.SAMPLES[kind]
        text = event.describe()
        assert text.startswith(f"{kind} on {event.target}")
        assert "t=1s" in text
        field_name, params = _DESCRIBE_RECIPES[kind]
        if field_name:
            assert getattr(event, field_name) in text
        for param, suffix in params:
            assert f"{param}={getattr(event, param):g}{suffix}" in text

    def test_untargeted_kinds_fall_back_to_substrate_default(self):
        assert FaultEvent("ecmp_rehash", 1.0, 2.0).target == "the fabric"
        assert FaultEvent("link_down", 1.0, 2.0).target == "bottleneck"


class TestChaosCampaign:
    BUDGET = ChaosBudget(
        horizon=1.0, mtbf=0.2, mean_duration=0.1, start=0.5, max_concurrent=1
    )

    def test_generation_is_bit_reproducible(self):
        spec = small_spec()
        one = generate_campaign(spec, self.BUDGET, seed=11)
        two = generate_campaign(spec, self.BUDGET, seed=11)
        assert one == two
        assert generate_campaign(spec, self.BUDGET, seed=12) != one

    def test_campaigns_are_decorrelated_but_individually_stable(self):
        campaign = ChaosCampaign(
            spec=small_spec(), budget=self.BUDGET, seed=3, n_campaigns=3
        )
        schedules = campaign.schedules()
        assert len({tuple(s.events) for s in schedules}) == 3
        assert campaign.schedule(1) == schedules[1]
        with pytest.raises(IndexError):
            campaign.campaign_seed(3)

    def test_schedules_respect_the_budget_window_and_kinds(self):
        spec = small_spec()
        for seed in range(5):
            schedule = generate_campaign(spec, self.BUDGET, seed=seed)
            assert len(schedule) >= self.BUDGET.min_events
            for event in schedule:
                assert event.kind in self.BUDGET.kinds
                assert self.BUDGET.start <= event.time
                assert event.time < self.BUDGET.start + self.BUDGET.horizon
                assert (
                    0.25 * self.BUDGET.mean_duration
                    <= event.duration
                    <= 2.0 * self.BUDGET.mean_duration
                )

    def test_max_concurrent_bounds_overlap(self):
        spec = small_spec()
        budget = ChaosBudget(
            horizon=1.0, mtbf=0.05, mean_duration=0.3, max_concurrent=2,
        )
        for seed in range(3):
            schedule = generate_campaign(spec, budget, seed=seed)
            for when in schedule.transition_times():
                active = [
                    event
                    for event in schedule
                    if event.time <= when < event.end_time
                ]
                assert len(active) <= budget.max_concurrent

    def test_blast_radius_never_disconnects_without_allow_blackhole(self):
        spec = small_spec()
        budget = ChaosBudget(
            horizon=2.0, mtbf=0.05, mean_duration=0.4, max_concurrent=4,
        )
        for seed in range(3):
            schedule = generate_campaign(spec, budget, seed=seed)
            for when in schedule.transition_times():
                state = FabricRoutingState(spec)
                for event in schedule:
                    if event.time <= when < event.end_time:
                        state.apply(event)
                for src in range(spec.n_racks):
                    for dst in range(spec.n_racks):
                        if src != dst:
                            assert state.surviving_spines(src, dst)

    def test_rack_partition_requires_allow_blackhole(self):
        with pytest.raises(ValueError, match="allow_blackhole"):
            ChaosBudget(
                horizon=1.0, mtbf=0.2, mean_duration=0.1,
                kinds=("rack_partition",),
            )
        budget = ChaosBudget(
            horizon=2.0, mtbf=0.2, mean_duration=0.1,
            kinds=("rack_partition",), allow_blackhole=True,
        )
        schedule = generate_campaign(small_spec(), budget, seed=0)
        assert all(e.kind == "rack_partition" for e in schedule)

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fabric fault kinds"):
            ChaosBudget(
                horizon=1.0, mtbf=0.2, mean_duration=0.1, kinds=("link_down",)
            )

    def test_unsatisfiable_budget_raises_actionably(self):
        budget = ChaosBudget(
            horizon=1e-6, mtbf=10.0, mean_duration=0.1, min_events=3
        )
        with pytest.raises(ValueError, match="widen the horizon"):
            generate_campaign(small_spec(), budget, seed=0)


class TestInjectorEquivalence:
    """Satellite (c): both substrates traverse identical links under the
    same seeded schedule, including a spine_down."""

    def _placements(self, spec):
        jobs = cross_rack_scenario(spec.n_hosts // 2, jitter_sigma=0.0005)
        return place_jobs(jobs, spec, policy="spread", seed=2)

    def test_mid_fault_routes_agree_between_substrates(self):
        from repro.fluid.fabric import FluidFabric, FluidFabricFaults
        from repro.harness.packetlab import (
            mltcp_config_for,
            run_packet_placements,
        )
        from repro.tcp.mltcp import MLTCPReno

        spec = small_spec()
        placements = self._placements(spec)
        event = spine_down("spine0", time=0.05, duration=0.4)
        schedule = FaultSchedule(events=(event,), seed=2)
        mid = 0.2

        # Independent expectation: the shared rule over surviving spines.
        expected = FabricRoutingState(spec)
        expected.apply(event)

        lab = run_packet_placements(
            placements,
            spec,
            lambda job: MLTCPReno(mltcp_config_for(job)),
            max_iterations=64,
            until=mid,
            seed=2,
            faults=schedule,
        )
        fluid_faults = FluidFabricFaults(spec, schedule)
        fluid_faults.advance_to(mid)
        placed = FluidFabric.from_spec(spec).place(placements)

        for placement, fluid_job in zip(placements, placed):
            packet_path = lab.network.routes[(placement.src, placement.dst)]
            assert tuple(packet_path) == expected.path_nodes(
                placement.src, placement.dst
            )
            assert fluid_faults.links_for(fluid_job) == expected.path_links(
                placement.src, placement.dst
            )
            if placement.cross_rack:
                assert "spine0" not in packet_path

    def test_whole_run_spine_down_idles_the_same_links(self):
        from repro.fluid.fabric import FluidFabric, FluidFabricFaults
        from repro.fluid.network import run_network_fluid
        from repro.harness.packetlab import (
            mltcp_config_for,
            run_packet_placements,
        )
        from repro.tcp.mltcp import MLTCPReno

        spec = small_spec()
        placements = self._placements(spec)
        schedule = FaultSchedule(
            events=(spine_down("spine0", time=0.0, duration=50.0),), seed=2
        )
        iterations = 10

        fabric = FluidFabric.from_spec(spec)
        fluid = run_network_fluid(
            fabric.place(placements),
            fabric.capacities_gbps,
            mltcp=True,
            max_iterations=iterations,
            seed=2,
            quantum=min(0.02, placements[0].job.ideal_iteration_time / 10.0),
            fabric_faults=FluidFabricFaults(spec, schedule),
        )
        lab = run_packet_placements(
            placements,
            spec,
            lambda job: MLTCPReno(mltcp_config_for(job)),
            max_iterations=iterations,
            seed=2,
            faults=schedule,
        )
        fluid_util = fluid.link_utilization()
        packet_util = lab.network.link_utilization()
        for link in spec.fabric_links():
            used_fluid = fluid_util[link] > 0.02
            used_packet = packet_util[link] > 0.02
            assert used_fluid == used_packet, (
                f"{link}: fluid {fluid_util[link]:.3f} vs packet "
                f"{packet_util[link]:.3f}"
            )
            if "spine0" in link:
                assert not used_fluid


class TestRecoveryMetrics:
    def _iteration(self, job, index, start, duration):
        return IterationResult(
            job=job,
            index=index,
            comm_start=start,
            comm_end=start + 0.5 * duration,
            iteration_end=start + duration,
        )

    def _run(self, durations_by_job):
        iterations = []
        for job, durations in durations_by_job.items():
            t = 0.0
            for i, duration in enumerate(durations):
                iterations.append(self._iteration(job, i, t, duration))
                t += duration
        return iterations

    def test_fault_windows_keep_only_lasting_faults(self):
        schedule = FaultSchedule(
            events=(
                FaultEvent("job_restart", time=0.5, job="Job1"),
                spine_down("spine0", time=0.2, duration=0.3),
            )
        )
        windows = fault_windows(schedule)
        assert [w.description for w in windows] == [
            "spine_down on spine0 at t=0.2s for 0.3s"
        ]
        assert windows[0].start == 0.2 and windows[0].end == 0.5

    def test_reroute_outage_zero_when_paths_survive(self):
        spec = small_spec()
        placements = place_jobs(
            cross_rack_scenario(4), spec, policy="spread", seed=2
        )
        event = spine_down("spine0", time=0.1, duration=0.2)
        schedule = FaultSchedule(events=(event,))
        assert reroute_outage(spec, schedule, event, placements) == 0.0

    def test_reroute_outage_equals_duration_when_blackholed(self):
        spec = small_spec()
        placements = place_jobs(
            cross_rack_scenario(4), spec, policy="spread", seed=2
        )
        event = FaultEvent(
            "rack_partition", time=0.1, duration=0.2, rack="rack0"
        )
        schedule = FaultSchedule(events=(event,))
        assert reroute_outage(spec, schedule, event, placements) == 0.2

    def test_reroute_outage_accounts_for_concurrent_faults(self):
        spec = small_spec()
        placements = place_jobs(
            cross_rack_scenario(4), spec, policy="spread", seed=2
        )
        first = spine_down("spine0", time=0.1, duration=0.4)
        second = spine_down("spine1", time=0.2, duration=0.1)
        schedule = FaultSchedule(events=(first, second))
        # Alone, either spine failure reroutes instantly; together they
        # disconnect every rack pair for the second fault's lifetime.
        assert reroute_outage(spec, schedule, first, placements) == 0.0
        assert reroute_outage(spec, schedule, second, placements) == 0.1

    def test_reinterleave_time_finds_first_confirmed_round(self):
        # Two jobs; rounds cost 1.0 until the fault stretches rounds 3-4,
        # then settle back to 1.0.  Recovery at t=5.0.
        run = self._run(
            {
                "A": [1.0, 1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 1.0],
                "B": [1.0, 1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 1.0],
            }
        )
        delay = reinterleave_time(
            run,
            ["A", "B"],
            recovery_time=5.0,
            ideal_iteration_time=1.0,
            tolerance=0.1,
            window=3,
        )
        # First good round after recovery completes at t=8.0.
        assert delay == pytest.approx(3.0)

    def test_reinterleave_time_none_when_never_back_within_tolerance(self):
        run = self._run({"A": [1.3] * 10, "B": [1.3] * 10})
        assert (
            reinterleave_time(
                run,
                ["A", "B"],
                recovery_time=0.0,
                ideal_iteration_time=1.0,
                tolerance=0.1,
                window=3,
            )
            is None
        )

    def test_goodput_deficit_counts_missing_iterations(self):
        window = FaultWindow(spine_down("spine0", time=2.0, duration=2.0))
        control = self._run({"A": [1.0] * 8})
        faulted = self._run({"A": [1.0, 1.0, 2.0, 2.0, 1.0, 1.0]})
        lost = goodput_deficit_bits(
            faulted, control, window, {"A": 100.0}, margin=0.0
        )
        # Control completes rounds ending at 3.0 and 4.0 inside the window;
        # the faulted run only completes the one ending at 4.0.
        assert lost == pytest.approx(100.0)

    def test_recovery_slos_assembles_one_slo_per_window(self):
        spec = small_spec()
        placements = place_jobs(
            cross_rack_scenario(4), spec, policy="spread", seed=2
        )
        schedule = FaultSchedule(
            events=(
                spine_down("spine0", time=2.0, duration=1.0),
                FaultEvent("ecmp_rehash", time=5.0, duration=0.5),
            )
        )
        jobs = {p.job.name: [1.0] * 10 for p in placements}
        run = self._run(jobs)
        slos = recovery_slos(
            spec,
            schedule,
            placements,
            run,
            run,
            ideal_iteration_time=1.0,
            interleavable=True,
        )
        assert len(slos) == 2
        assert all(slo.time_to_reroute == 0.0 for slo in slos)
        assert all(slo.reinterleaved for slo in slos)
        assert all(slo.goodput_lost_bits == 0.0 for slo in slos)
        record = slos[0].as_record()
        assert record["fault"].startswith("spine_down on spine0")
        assert record["interleavable"] is True


class TestChaosRecoveryAcceptance:
    """The PR's headline claim, end to end on the default fabric."""

    @pytest.fixture(scope="class")
    def results(self):
        from repro.harness import chaos_recovery

        return chaos_recovery(substrate="fluid", campaigns=3, iterations=48)

    def test_mltcp_reinterleaves_after_every_fault(self, results):
        assert len(results) == 3
        sampled_kinds = {e.kind for r in results for e in r.schedule}
        # The default budget samples across fabric kinds; a single-spine
        # failure must be among them for the headline claim to bite.
        assert "spine_down" in sampled_kinds
        for result in results:
            assert result.reinterleaved("mltcp"), (
                f"campaign {result.campaign_index}: "
                f"{[s.as_record() for s in result.slos['mltcp']]}"
            )

    def test_fair_share_never_reinterleaves(self, results):
        for result in results:
            assert not any(s.reinterleaved for s in result.slos["fair"])

    def test_single_spine_failures_reroute_instantly(self, results):
        for result in results:
            assert result.total_outage() == 0.0

    def test_placement_is_statically_interleavable(self, results):
        for result in results:
            assert all(
                s.interleavable
                for policy in ("mltcp", "fair")
                for s in result.slos[policy]
            )

    def test_campaigns_are_bit_reproducible(self, results):
        from repro.harness import chaos_recovery

        rerun = chaos_recovery(substrate="fluid", campaigns=3, iterations=48)
        for first, second in zip(results, rerun):
            assert first.schedule == second.schedule
            assert first.slos == second.slos
            for policy in ("mltcp", "fair"):
                np.testing.assert_array_equal(
                    first.series[policy], second.series[policy]
                )

    def test_recovery_section_round_trips_through_telemetry(self, results):
        from repro.harness.telemetry import (
            REPORT_SCHEMA_VERSION,
            RunTelemetry,
            validate_run_report,
        )

        telemetry = RunTelemetry("test.chaos")
        for result in results:
            for policy in ("mltcp", "fair"):
                for slo in result.slos[policy]:
                    telemetry.record_recovery(
                        slo.fault,
                        strike_time=slo.strike_time,
                        recovery_time=slo.recovery_time,
                        time_to_reroute=slo.time_to_reroute,
                        time_to_reinterleave=slo.time_to_reinterleave,
                        goodput_lost_bits=slo.goodput_lost_bits,
                        interleavable=slo.interleavable,
                        policy=policy,
                        substrate=result.substrate,
                        campaign=result.campaign_index,
                    )
        report = json.loads(json.dumps(telemetry.as_report()))
        assert validate_run_report(report) == []
        assert report["schema_version"] == REPORT_SCHEMA_VERSION
        entries = report["recovery"]
        assert entries and all(e["fault"] for e in entries)
        mltcp = [e for e in entries if e["policy"] == "mltcp"]
        fair = [e for e in entries if e["policy"] == "fair"]
        assert all(e["reinterleaved"] for e in mltcp)
        assert not any(e["reinterleaved"] for e in fair)

"""Tests for the discrete-event engine."""

import pytest

from repro.simulator.engine import EventHandle, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.3, lambda: order.append("c"))
        sim.schedule(0.1, lambda: order.append("a"))
        sim.schedule(0.2, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        sim = Simulator()
        order = []
        for name in "abc":
            sim.schedule(0.5, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_schedule_during_callback(self):
        sim = Simulator()
        hits = []

        def chain():
            hits.append(sim.now)
            if len(hits) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert hits == [1.0, 2.0, 3.0]

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="delay"):
            Simulator().schedule(-0.1, lambda: None)

    def test_rejects_past_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError, match="past"):
            sim.schedule_at(0.5, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        entry = sim.schedule(0.5, lambda: fired.append(1))
        sim.cancel(entry)
        sim.run()
        assert fired == []
        assert sim.is_cancelled(entry)

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        entry = sim.schedule(0.5, lambda: None)
        sim.cancel(entry)
        sim.cancel(entry)
        sim.run()
        assert sim.pending_events() == 0

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        entry = sim.schedule(0.5, lambda: None)
        sim.run()
        sim.cancel(entry)  # late timer cancel: must not corrupt counts
        assert not sim.is_cancelled(entry)
        sim.schedule(1.0, lambda: None)
        assert sim.pending_events() == 1

    def test_handle_wrapper_cancel(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_handle(0.5, lambda: fired.append(1))
        assert isinstance(handle, EventHandle)
        assert handle.time == pytest.approx(0.5)
        assert not handle.cancelled
        handle.cancel()
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled


class TestRunHorizon:
    def test_until_stops_clock_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(1))
        sim.run(until=1.0)
        assert fired == []
        assert sim.now == 1.0

    def test_run_resumes_after_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(1))
        sim.run(until=1.0)
        sim.run(until=3.0)
        assert fired == [1]

    def test_empty_queue_advances_to_until(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.001, forever)
        sim.run(max_events=100)
        assert sim.events_processed == 100


class TestIntrospection:
    def test_peek_time(self):
        sim = Simulator()
        assert sim.peek_time() is None
        sim.schedule(0.7, lambda: None)
        assert sim.peek_time() == pytest.approx(0.7)

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        entry = sim.schedule(0.1, lambda: None)
        sim.schedule(0.9, lambda: None)
        sim.cancel(entry)
        assert sim.peek_time() == pytest.approx(0.9)

    def test_pending_events_counts_live_only(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        entry = sim.schedule(0.2, lambda: None)
        sim.cancel(entry)
        assert sim.pending_events() == 1

    def test_peek_and_cancel_interleaving_keeps_counts_exact(self):
        # Regression: peek_time prunes cancelled entries off the heap; the
        # pre-rewrite engine dropped them without any bookkeeping, which
        # would desync an O(1) pending_events counter.  Interleave the two
        # aggressively and require exact counts and firings throughout.
        sim = Simulator()
        fired = []
        entries = [
            sim.schedule(0.1 * (i + 1), lambda i=i: fired.append(i))
            for i in range(6)
        ]
        sim.cancel(entries[0])
        sim.cancel(entries[1])
        assert sim.peek_time() == pytest.approx(0.3)  # prunes two cancelled tops
        assert sim.pending_events() == 4
        sim.cancel(entries[2])
        assert sim.pending_events() == 3
        assert sim.peek_time() == pytest.approx(0.4)
        sim.cancel(entries[5])
        assert sim.pending_events() == 2
        sim.run()
        assert fired == [3, 4]
        assert sim.pending_events() == 0
        assert sim.peek_time() is None


class TestCalendarMode:
    """The bucketed front-end must be observationally identical."""

    @staticmethod
    def _mixed_workload(sim):
        order = []
        # Same-timestamp bursts plus distinct times, some cancelled.
        for i in range(4):
            sim.schedule(0.5, lambda i=i: order.append(("burst", i)))
        sim.schedule(0.2, lambda: order.append(("early", 0)))
        dead = sim.schedule(0.5, lambda: order.append(("dead", 0)))
        sim.cancel(dead)
        sim.schedule(0.9, lambda: order.append(("late", 0)))

        def reschedule():
            order.append(("resched", 0))
            sim.schedule(0.0, lambda: order.append(("same-time-child", 0)))

        sim.schedule(0.5, reschedule)
        return order

    def test_matches_plain_heap_order(self):
        plain, calendar = Simulator(), Simulator(calendar=True)
        expected = self._mixed_workload(plain)
        observed = self._mixed_workload(calendar)
        plain.run()
        calendar.run()
        assert observed == expected
        assert calendar.events_processed == plain.events_processed

    def test_pending_peek_and_horizon(self):
        sim = Simulator(calendar=True)
        fired = []
        for i in range(3):
            sim.schedule(0.5, lambda i=i: fired.append(i))
        entry = sim.schedule(0.5, lambda: fired.append(99))
        sim.cancel(entry)
        sim.schedule(1.0, lambda: fired.append(10))
        assert sim.pending_events() == 4
        assert sim.peek_time() == pytest.approx(0.5)
        sim.run(until=0.25)
        assert fired == []
        assert sim.now == 0.25
        sim.run(until=0.75)
        assert fired == [0, 1, 2]
        assert sim.pending_events() == 1
        sim.run()
        assert fired == [0, 1, 2, 10]
        assert sim.pending_events() == 0

    def test_max_events_splits_bucket_resumably(self):
        sim = Simulator(calendar=True)
        fired = []
        for i in range(5):
            sim.schedule(0.5, lambda i=i: fired.append(i))
        sim.run(max_events=2)
        assert fired == [0, 1]
        assert sim.pending_events() == 3
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_all_cancelled_bucket_peek(self):
        sim = Simulator(calendar=True)
        entries = [sim.schedule(0.5, lambda: None) for _ in range(3)]
        sim.schedule(0.9, lambda: None)
        for entry in entries:
            sim.cancel(entry)
        assert sim.peek_time() == pytest.approx(0.9)
        assert sim.pending_events() == 1


class TestProcessWideCounter:
    def test_total_events_accumulates_across_runs(self):
        from repro.simulator.engine import total_events_processed

        before = total_events_processed()
        sim = Simulator()
        for t in range(4):
            sim.schedule(0.1 * (t + 1), lambda: None)
        sim.run()
        assert total_events_processed() == before + 4

        other = Simulator()
        other.schedule(0.1, lambda: None)
        other.run()
        assert total_events_processed() == before + 5

    def test_counter_includes_early_stopped_runs(self):
        from repro.simulator.engine import total_events_processed

        before = total_events_processed()
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.001, forever)
        sim.run(max_events=10)
        assert total_events_processed() == before + 10

"""Tests for the discrete-event engine."""

import pytest

from repro.simulator.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.3, lambda: order.append("c"))
        sim.schedule(0.1, lambda: order.append("a"))
        sim.schedule(0.2, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        sim = Simulator()
        order = []
        for name in "abc":
            sim.schedule(0.5, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_schedule_during_callback(self):
        sim = Simulator()
        hits = []

        def chain():
            hits.append(sim.now)
            if len(hits) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert hits == [1.0, 2.0, 3.0]

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="delay"):
            Simulator().schedule(-0.1, lambda: None)

    def test_rejects_past_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError, match="past"):
            sim.schedule_at(0.5, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(0.5, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(0.5, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()


class TestRunHorizon:
    def test_until_stops_clock_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(1))
        sim.run(until=1.0)
        assert fired == []
        assert sim.now == 1.0

    def test_run_resumes_after_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(1))
        sim.run(until=1.0)
        sim.run(until=3.0)
        assert fired == [1]

    def test_empty_queue_advances_to_until(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.001, forever)
        sim.run(max_events=100)
        assert sim.events_processed == 100


class TestIntrospection:
    def test_peek_time(self):
        sim = Simulator()
        assert sim.peek_time() is None
        sim.schedule(0.7, lambda: None)
        assert sim.peek_time() == pytest.approx(0.7)

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        handle = sim.schedule(0.1, lambda: None)
        sim.schedule(0.9, lambda: None)
        handle.cancel()
        assert sim.peek_time() == pytest.approx(0.9)

    def test_pending_events_counts_live_only(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        handle = sim.schedule(0.2, lambda: None)
        handle.cancel()
        assert sim.pending_events() == 1


class TestProcessWideCounter:
    def test_total_events_accumulates_across_runs(self):
        from repro.simulator.engine import total_events_processed

        before = total_events_processed()
        sim = Simulator()
        for t in range(4):
            sim.schedule(0.1 * (t + 1), lambda: None)
        sim.run()
        assert total_events_processed() == before + 4

        other = Simulator()
        other.schedule(0.1, lambda: None)
        other.run()
        assert total_events_processed() == before + 5

    def test_counter_includes_early_stopped_runs(self):
        from repro.simulator.engine import total_events_processed

        before = total_events_processed()
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.001, forever)
        sim.run(max_events=10)
        assert total_events_processed() == before + 10

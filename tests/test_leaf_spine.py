"""Tests for the leaf-spine fabric and multi-bottleneck MLTCP convergence."""

import numpy as np
import pytest

from repro.core.config import MLTCPConfig
from repro.simulator.app import TrainingApp
from repro.simulator.engine import Simulator
from repro.simulator.packet import Packet
from repro.simulator.topology import build_leaf_spine
from repro.tcp.base import TcpReceiver, TcpSender
from repro.tcp.mltcp import MLTCPReno
from repro.workloads.job import JobSpec

OVERHEAD = 1500 / 1460


class _Recorder:
    def __init__(self):
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


class TestFabricStructure:
    def test_node_inventory(self):
        net = build_leaf_spine(Simulator(), n_leaves=2, hosts_per_leaf=2,
                               leaf_uplink_bps=1e9)
        assert set(net.switches) == {"spine", "leaf0", "leaf1"}
        assert set(net.hosts) == {"h0_0", "h0_1", "h1_0", "h1_1"}

    def test_inter_leaf_delivery(self):
        sim = Simulator()
        net = build_leaf_spine(sim, n_leaves=2, hosts_per_leaf=1,
                               leaf_uplink_bps=1e9)
        sink = _Recorder()
        net.hosts["h1_0"].register_flow("f", sink)
        net.hosts["h0_0"].send(
            Packet(flow_id="f", src="h0_0", dst="h1_0", is_ack=False,
                   seq=0, payload_bytes=100)
        )
        sim.run()
        assert len(sink.packets) == 1
        assert net.switches["spine"].packets_forwarded == 1

    def test_intra_leaf_avoids_spine(self):
        sim = Simulator()
        net = build_leaf_spine(sim, n_leaves=2, hosts_per_leaf=2,
                               leaf_uplink_bps=1e9)
        sink = _Recorder()
        net.hosts["h0_1"].register_flow("f", sink)
        net.hosts["h0_0"].send(
            Packet(flow_id="f", src="h0_0", dst="h0_1", is_ack=False,
                   seq=0, payload_bytes=100)
        )
        sim.run()
        assert len(sink.packets) == 1
        assert net.switches["spine"].packets_forwarded == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="n_leaves"):
            build_leaf_spine(Simulator(), n_leaves=1, hosts_per_leaf=1,
                             leaf_uplink_bps=1e9)
        with pytest.raises(ValueError, match="hosts_per_leaf"):
            build_leaf_spine(Simulator(), n_leaves=2, hosts_per_leaf=0,
                             leaf_uplink_bps=1e9)


class TestDualBottleneckConvergence:
    def test_independent_uplinks_interleave_independently(self):
        """Two pairs of jobs congest two different leaf uplinks; MLTCP
        interleaves each pair with zero cross-bottleneck coordination —
        the distributed-scalability pitch made concrete."""
        sim = Simulator()
        net = build_leaf_spine(sim, n_leaves=4, hosts_per_leaf=2,
                               leaf_uplink_bps=1e9)
        rng = np.random.default_rng(6)
        template = JobSpec(
            name="Job", comm_bits=8e6, demand_gbps=1.0, compute_time=0.010,
            jitter_sigma=0.0005,
        )
        placements = [
            ("A1", "h0_0", "h1_0"),
            ("A2", "h0_1", "h1_1"),   # share the leaf0 -> spine uplink
            ("B1", "h2_0", "h3_0"),
            ("B2", "h2_1", "h3_1"),   # share the leaf2 -> spine uplink
        ]
        apps = {}
        for name, src, dst in placements:
            job = template.with_name(name)
            cc = MLTCPReno(
                MLTCPConfig(total_bytes=job.comm_bytes, comp_time=0.003)
            )
            sender = TcpSender(sim, net.hosts[src], name, dst, cc)
            TcpReceiver(sim, net.hosts[dst], name, src)
            app = TrainingApp(sim, sender, job, max_iterations=35, rng=rng)
            app.start()
            apps[name] = app
        sim.run(until=2.0)

        ideal = 8e6 / 1e9 * OVERHEAD + 0.010
        for name, app in apps.items():
            times = app.iteration_times()
            assert len(times) == 35, name
            assert times[:3].mean() > 1.2 * ideal, name     # congested start
            assert times[-5:].mean() == pytest.approx(ideal, rel=0.1), name

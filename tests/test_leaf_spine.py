"""Tests for the leaf-spine fabric and multi-bottleneck MLTCP convergence."""

import numpy as np
import pytest

from repro.core.config import MLTCPConfig
from repro.simulator.app import TrainingApp
from repro.simulator.engine import Simulator
from repro.simulator.packet import Packet
from repro.simulator.topology import build_fat_tree, build_leaf_spine
from repro.tcp.base import TcpReceiver, TcpSender
from repro.tcp.mltcp import MLTCPReno
from repro.workloads.job import JobSpec
from repro.workloads.placement import FabricSpec

OVERHEAD = 1500 / 1460


class _Recorder:
    def __init__(self):
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


class TestFabricStructure:
    def test_node_inventory(self):
        net = build_leaf_spine(Simulator(), n_leaves=2, hosts_per_leaf=2,
                               leaf_uplink_bps=1e9)
        assert set(net.switches) == {"spine", "leaf0", "leaf1"}
        assert set(net.hosts) == {"h0_0", "h0_1", "h1_0", "h1_1"}

    def test_inter_leaf_delivery(self):
        sim = Simulator()
        net = build_leaf_spine(sim, n_leaves=2, hosts_per_leaf=1,
                               leaf_uplink_bps=1e9)
        sink = _Recorder()
        net.hosts["h1_0"].register_flow("f", sink)
        net.hosts["h0_0"].send(
            Packet(flow_id="f", src="h0_0", dst="h1_0", is_ack=False,
                   seq=0, payload_bytes=100)
        )
        sim.run()
        assert len(sink.packets) == 1
        assert net.switches["spine"].packets_forwarded == 1

    def test_intra_leaf_avoids_spine(self):
        sim = Simulator()
        net = build_leaf_spine(sim, n_leaves=2, hosts_per_leaf=2,
                               leaf_uplink_bps=1e9)
        sink = _Recorder()
        net.hosts["h0_1"].register_flow("f", sink)
        net.hosts["h0_0"].send(
            Packet(flow_id="f", src="h0_0", dst="h0_1", is_ack=False,
                   seq=0, payload_bytes=100)
        )
        sim.run()
        assert len(sink.packets) == 1
        assert net.switches["spine"].packets_forwarded == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="n_leaves"):
            build_leaf_spine(Simulator(), n_leaves=1, hosts_per_leaf=1,
                             leaf_uplink_bps=1e9)
        with pytest.raises(ValueError, match="hosts_per_leaf"):
            build_leaf_spine(Simulator(), n_leaves=2, hosts_per_leaf=0,
                             leaf_uplink_bps=1e9)
        with pytest.raises(ValueError, match="n_spines"):
            build_leaf_spine(Simulator(), n_leaves=2, hosts_per_leaf=1,
                             leaf_uplink_bps=1e9, n_spines=0)


class TestMultiSpine:
    def test_single_spine_keeps_historical_name(self):
        net = build_leaf_spine(Simulator(), n_leaves=2, hosts_per_leaf=1,
                               leaf_uplink_bps=1e9, n_spines=1)
        assert "spine" in net.switches and "spine0" not in net.switches

    def test_node_and_uplink_inventory(self):
        net = build_leaf_spine(Simulator(), n_leaves=3, hosts_per_leaf=2,
                               leaf_uplink_bps=1e9, n_spines=2)
        assert {"spine0", "spine1", "leaf0", "leaf1", "leaf2"} <= set(net.switches)
        uplinks = [key for key in net.links
                   if key[0].startswith("leaf") and key[1].startswith("spine")]
        assert len(uplinks) == 3 * 2   # every leaf to every spine

    def test_ecmp_routes_are_seed_deterministic(self):
        def routes(ecmp_seed):
            net = build_leaf_spine(Simulator(), n_leaves=2, hosts_per_leaf=4,
                                   leaf_uplink_bps=1e9, n_spines=2,
                                   ecmp_seed=ecmp_seed)
            return net.routes

        assert routes(0) == routes(0)
        seeds_differ = any(routes(0) != routes(seed) for seed in range(1, 8))
        assert seeds_differ

    def test_ecmp_uses_every_spine(self):
        net = build_leaf_spine(Simulator(), n_leaves=2, hosts_per_leaf=8,
                               leaf_uplink_bps=1e9, n_spines=2)
        spines_used = {
            path[2]
            for (src, _dst), path in net.routes.items()
            if len(path) == 5 and src.startswith("h0")
        }
        assert spines_used == {"spine0", "spine1"}

    def test_same_destination_same_spine(self):
        """Destination-keyed tables: all of leaf0's flows to one host share
        a spine, whatever their source host."""
        net = build_leaf_spine(Simulator(), n_leaves=2, hosts_per_leaf=4,
                               leaf_uplink_bps=1e9, n_spines=2)
        via = {net.routes[(f"h0_{i}", "h1_0")][2] for i in range(4)}
        assert len(via) == 1

    def test_multi_spine_delivery(self):
        sim = Simulator()
        net = build_leaf_spine(sim, n_leaves=2, hosts_per_leaf=2,
                               leaf_uplink_bps=1e9, n_spines=2)
        sink = _Recorder()
        net.hosts["h1_1"].register_flow("f", sink)
        net.hosts["h0_0"].send(
            Packet(flow_id="f", src="h0_0", dst="h1_1", is_ack=False,
                   seq=0, payload_bytes=100)
        )
        sim.run()
        assert len(sink.packets) == 1


class TestFatTree:
    spec = FabricSpec(n_racks=4, hosts_per_rack=2, n_spines=2,
                      oversubscription=2.0)

    def test_inventory_matches_spec(self):
        net = build_fat_tree(Simulator(), self.spec)
        assert set(net.hosts) == set(self.spec.host_names())
        assert set(net.switches) == {
            "rack0", "rack1", "rack2", "rack3", "spine0", "spine1"
        }

    def test_oversubscribed_uplink_rates(self):
        net = build_fat_tree(Simulator(), self.spec)
        # 2 hosts x 1 Gbps / 2:1 oversub / 2 spines = 0.5 Gbps per uplink.
        assert self.spec.uplink_gbps == pytest.approx(0.5)
        for rack in range(4):
            for spine in range(2):
                link = net.link(f"rack{rack}", f"spine{spine}")
                assert link.rate_bps == pytest.approx(0.5e9)
        edge = net.link("h0_0", "rack0")
        assert edge.rate_bps == pytest.approx(1e9)

    def test_routes_agree_with_spec_paths(self):
        """The packet network's programmed paths are exactly the spec's
        path_nodes — the substrate-agreement half of the ECMP contract."""
        net = build_fat_tree(Simulator(), self.spec)
        hosts = self.spec.host_names()
        for src in hosts:
            for dst in hosts:
                if src == dst:
                    continue
                assert net.routes[(src, dst)] == self.spec.path_nodes(src, dst)

    def test_capacity_model_matches_spec(self):
        net = build_fat_tree(Simulator(), self.spec)
        for name, gbps in self.spec.capacities_gbps().items():
            src, dst = name.split("->")
            assert net.link(src, dst).rate_bps == pytest.approx(gbps * 1e9)

    def test_link_utilization_reporting(self):
        sim = Simulator()
        net = build_fat_tree(sim, self.spec)
        assert all(v == 0.0 for v in net.link_utilization().values())
        sink = _Recorder()
        net.hosts["h1_0"].register_flow("f", sink)
        net.hosts["h0_0"].send(
            Packet(flow_id="f", src="h0_0", dst="h1_0", is_ack=False,
                   seq=0, payload_bytes=1500)
        )
        sim.run()
        used = {k for k, v in net.link_utilization().items() if v > 0}
        spine = self.spec.spine_name(self.spec.spine_for(0, "h1_0"))
        assert used == {
            "h0_0->rack0", f"rack0->{spine}", f"{spine}->rack1", "rack1->h1_0"
        }
        with pytest.raises(ValueError, match="elapsed"):
            net.link_utilization(elapsed=0.0)


class TestDualBottleneckConvergence:
    def test_independent_uplinks_interleave_independently(self):
        """Two pairs of jobs congest two different leaf uplinks; MLTCP
        interleaves each pair with zero cross-bottleneck coordination —
        the distributed-scalability pitch made concrete."""
        sim = Simulator()
        net = build_leaf_spine(sim, n_leaves=4, hosts_per_leaf=2,
                               leaf_uplink_bps=1e9)
        rng = np.random.default_rng(6)
        template = JobSpec(
            name="Job", comm_bits=8e6, demand_gbps=1.0, compute_time=0.010,
            jitter_sigma=0.0005,
        )
        placements = [
            ("A1", "h0_0", "h1_0"),
            ("A2", "h0_1", "h1_1"),   # share the leaf0 -> spine uplink
            ("B1", "h2_0", "h3_0"),
            ("B2", "h2_1", "h3_1"),   # share the leaf2 -> spine uplink
        ]
        apps = {}
        for name, src, dst in placements:
            job = template.with_name(name)
            cc = MLTCPReno(
                MLTCPConfig(total_bytes=job.comm_bytes, comp_time=0.003)
            )
            sender = TcpSender(sim, net.hosts[src], name, dst, cc)
            TcpReceiver(sim, net.hosts[dst], name, src)
            app = TrainingApp(sim, sender, job, max_iterations=35, rng=rng)
            app.start()
            apps[name] = app
        sim.run(until=2.0)

        ideal = 8e6 / 1e9 * OVERHEAD + 0.010
        for name, app in apps.items():
            times = app.iteration_times()
            assert len(times) == 35, name
            assert times[:3].mean() > 1.2 * ideal, name     # congested start
            assert times[-5:].mean() == pytest.approx(ideal, rel=0.1), name

"""Unit tests for the application layer (TrainingApp)."""

import numpy as np
import pytest

from repro.simulator.app import AppIteration, TrainingApp
from repro.simulator.engine import Simulator
from repro.simulator.topology import build_dumbbell
from repro.tcp.base import TcpReceiver, TcpSender
from repro.tcp.reno import RenoCC
from repro.workloads.job import JobSpec

OVERHEAD = 1500 / 1460


def wire(job, max_iterations=None, rng=None):
    sim = Simulator()
    net = build_dumbbell(sim, 1, bottleneck_bps=1e9)
    sender = TcpSender(sim, net.hosts["s0"], job.name, "r0", RenoCC())
    TcpReceiver(sim, net.hosts["r0"], job.name, "s0")
    app = TrainingApp(sim, sender, job, max_iterations=max_iterations, rng=rng)
    return sim, app


def small_job(**overrides):
    params = dict(
        name="J", comm_bits=1e6, demand_gbps=1.0, compute_time=0.005
    )
    params.update(overrides)
    return JobSpec(**params)


class TestAppIteration:
    def test_durations(self):
        it = AppIteration(index=0, comm_start=1.0, comm_end=1.4, iteration_end=2.0)
        assert it.comm_duration == pytest.approx(0.4)
        assert it.duration == pytest.approx(1.0)


class TestLifecycle:
    def test_runs_exact_iteration_count(self):
        sim, app = wire(small_job(), max_iterations=5)
        app.start()
        sim.run(until=1.0)
        assert app.completed == 5

    def test_unbounded_runs_until_horizon(self):
        sim, app = wire(small_job())
        app.start()
        sim.run(until=0.1)
        assert app.completed >= 10

    def test_start_twice_rejected(self):
        sim, app = wire(small_job(), max_iterations=1)
        app.start()
        with pytest.raises(RuntimeError, match="already started"):
            app.start()

    def test_start_offset_respected(self):
        sim, app = wire(small_job(start_offset=0.05), max_iterations=2)
        app.start()
        sim.run(until=0.5)
        assert app.iterations[0].comm_start == pytest.approx(0.05)

    def test_rejects_bad_max_iterations(self):
        sim = Simulator()
        net = build_dumbbell(sim, 1, bottleneck_bps=1e9)
        sender = TcpSender(sim, net.hosts["s0"], "J", "r0", RenoCC())
        TcpReceiver(sim, net.hosts["r0"], "J", "s0")
        with pytest.raises(ValueError, match="max_iterations"):
            TrainingApp(sim, sender, small_job(), max_iterations=0)


class TestAccounting:
    def test_iteration_times_match_structure(self):
        job = small_job()
        sim, app = wire(job, max_iterations=4)
        app.start()
        sim.run(until=1.0)
        times = app.iteration_times()
        ideal = job.ideal_comm_time * OVERHEAD + job.compute_time
        assert times == pytest.approx(np.full(4, ideal), rel=0.1)

    def test_comm_times_exclude_compute(self):
        job = small_job()
        sim, app = wire(job, max_iterations=3)
        app.start()
        sim.run(until=1.0)
        comms = app.comm_times()
        assert np.all(comms < job.ideal_comm_time * OVERHEAD * 1.2)
        assert np.all(comms > 0)

    def test_iterations_gate_on_previous(self):
        """The defining DNN property: comm i+1 starts after iteration i."""
        sim, app = wire(small_job(), max_iterations=4)
        app.start()
        sim.run(until=1.0)
        for previous, current in zip(app.iterations, app.iterations[1:]):
            assert current.comm_start >= previous.iteration_end - 1e-12

    def test_jitter_rng_used(self):
        job = small_job(jitter_sigma=0.002, compute_time=0.01)
        sim, app = wire(job, max_iterations=8, rng=np.random.default_rng(0))
        app.start()
        sim.run(until=1.0)
        times = app.iteration_times()
        assert times.std() > 1e-4  # jitter visible

"""Tests for the scheduling-as-a-service layer (docs/SERVICE.md).

Covers the open-loop arrival model, admission control and load shedding,
the write-ahead journal, watchdog-supervised crash recovery (including
kill + resume bit-identity — the PR's acceptance criterion), per-op
retry/backoff with injected clocks, churn-triggered graceful degradation,
and the schema-v6 ``service`` snapshot stream.
"""

import json

import pytest

from repro.guards import GuardRail, StepperWatchdog
from repro.harness.telemetry import (
    REPORT_SCHEMA_VERSION,
    RunTelemetry,
    validate_run_report,
)
from repro.service import (
    AdmissionController,
    ChurnDaemon,
    LiveFluidEngine,
    ServiceConfig,
    ServiceCrash,
    ServiceJournal,
    query_journal,
)
from repro.workloads import ArrivalModel, ArrivalStream, FlashCrowd
from repro.workloads.presets import gpt2_fast_job


def _model(**overrides):
    params = dict(rate_per_s=0.8, horizon_s=12.0)
    params.update(overrides)
    return ArrivalModel(**params)


def _config(**overrides):
    params = dict(
        arrival=_model(),
        templates=(gpt2_fast_job("tpl"),),
        epochs=12,
        seed=3,
    )
    params.update(overrides)
    return ServiceConfig(**params)


class TestArrivalModel:
    def test_stream_is_deterministic(self):
        model = _model(diurnal_amplitude=0.4)
        a = model.stream((gpt2_fast_job("tpl"),), seed=7)
        b = model.stream((gpt2_fast_job("tpl"),), seed=7)
        assert [(e.time, e.spec.name) for e in a.events] == [
            (e.time, e.spec.name) for e in b.events
        ]

    def test_different_seeds_differ(self):
        model = _model()
        a = model.stream((gpt2_fast_job("tpl"),), seed=1)
        b = model.stream((gpt2_fast_job("tpl"),), seed=2)
        assert [e.time for e in a.events] != [e.time for e in b.events]

    def test_events_sorted_and_within_horizon(self):
        model = _model(flash_crowds=(FlashCrowd(time=5.0, size=4),))
        stream = model.stream((gpt2_fast_job("tpl"),), seed=0)
        times = [e.time for e in stream.events]
        assert times == sorted(times)
        assert all(0.0 <= t <= model.horizon_s for t in times)

    def test_flash_crowd_jobs_present(self):
        model = _model(rate_per_s=0.1, flash_crowds=(FlashCrowd(5.0, 6),))
        stream = model.stream((gpt2_fast_job("tpl"),), seed=0)
        flash = [e for e in stream.events if e.flash]
        assert len(flash) == 6
        assert all(e.time == 5.0 for e in flash)
        assert all("-ft-" in e.spec.name for e in flash)

    def test_names_unique(self):
        stream = _model(rate_per_s=2.0).stream((gpt2_fast_job("tpl"),), seed=0)
        names = [e.spec.name for e in stream.events]
        assert len(names) == len(set(names))

    def test_diurnal_rate_oscillates(self):
        model = _model(diurnal_amplitude=0.5, diurnal_period_s=8.0)
        assert model.rate_at(2.0) == pytest.approx(model.rate_per_s * 1.5)
        assert model.rate_at(6.0) == pytest.approx(model.rate_per_s * 0.5)

    def test_between_window(self):
        stream = _model(rate_per_s=2.0).stream((gpt2_fast_job("tpl"),), seed=0)
        window = stream.between(2.0, 6.0)
        assert all(2.0 < e.time <= 6.0 for e in window)

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(rate_per_s=-1.0), "rate_per_s"),
            (dict(rate_per_s=float("nan")), "rate_per_s"),
            (dict(horizon_s=0.0), "horizon_s"),
            (dict(diurnal_amplitude=1.0), "diurnal_amplitude"),
            (dict(mean_iterations=0.5), "mean_iterations"),
            (
                dict(flash_crowds=(FlashCrowd(99.0, 2),)),
                "flash crowd",
            ),
        ],
    )
    def test_model_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            _model(**kwargs)

    @pytest.mark.parametrize("bad", [float("nan"), -1.0, float("inf")])
    def test_flash_crowd_rejects_bad_time(self, bad):
        with pytest.raises(ValueError, match="time"):
            FlashCrowd(time=bad, size=2)

    def test_stream_requires_templates(self):
        with pytest.raises(ValueError, match="template"):
            _model().stream((), seed=0)


class TestAdmissionController:
    def _spec(self, name):
        return gpt2_fast_job(name).with_iteration_limit(3)

    def test_admits_under_limit(self):
        ctrl = AdmissionController(2, 4, "defer")
        assert ctrl.offer(self._spec("a"), running=0) == "admit"
        assert ctrl.offer(self._spec("b"), running=1) == "admit"

    def test_defer_then_shed_when_queue_full(self):
        ctrl = AdmissionController(1, 2, "defer")
        assert ctrl.offer(self._spec("a"), running=1) == "defer"
        assert ctrl.offer(self._spec("b"), running=1) == "defer"
        assert ctrl.offer(self._spec("c"), running=1) == "shed"
        assert ctrl.queue_depth == 2

    def test_reject_policy_sheds_immediately(self):
        ctrl = AdmissionController(1, 4, "reject")
        assert ctrl.offer(self._spec("a"), running=1) == "shed"
        assert ctrl.queue_depth == 0

    def test_degrade_policy_oversubscribes_boundedly(self):
        ctrl = AdmissionController(1, 2, "degrade")
        assert ctrl.offer(self._spec("a"), running=1) == "degrade"
        assert ctrl.offer(self._spec("b"), running=2) == "degrade"
        assert ctrl.offer(self._spec("c"), running=3) == "shed"

    def test_no_queue_jumping(self):
        """A free slot goes to the queue head, not a fresh arrival."""
        ctrl = AdmissionController(2, 4, "defer")
        ctrl.offer(self._spec("a"), running=2)  # deferred
        assert ctrl.offer(self._spec("b"), running=1) == "defer"

    def test_drain_is_fifo_and_bounded(self):
        ctrl = AdmissionController(2, 4, "defer")
        for name in ("a", "b", "c"):
            ctrl.offer(self._spec(name), running=2)
        released = ctrl.drain(running=0)
        assert [s.name for s in released] == ["a", "b"]
        assert ctrl.queue_depth == 1

    def test_state_roundtrip(self):
        ctrl = AdmissionController(1, 4, "defer")
        ctrl.offer(self._spec("a"), running=1)
        other = AdmissionController(1, 4, "defer")
        other.load_state(ctrl.state())
        assert [s.name for s in other.pending] == ["a"]

    def test_validation(self):
        with pytest.raises(ValueError, match="policy"):
            AdmissionController(1, 4, "nope")
        with pytest.raises(ValueError, match="max_running"):
            AdmissionController(0, 4, "defer")


class TestStepperWatchdog:
    def _dog(self, **kwargs):
        rail = GuardRail("record")
        return rail, StepperWatchdog(rail, **kwargs)

    def test_clean_step_does_not_fire(self):
        rail, dog = self._dog()
        dog.begin(0.0)
        assert dog.check(1.0, 1.0) is False
        assert dog.fires == 0

    def test_stall_fires(self):
        rail, dog = self._dog()
        dog.begin(0.0)
        assert dog.check(0.4, 1.0) is True
        assert any(v.guard == "service-stall" for v in rail.violations)

    def test_time_regression_fires(self):
        rail, dog = self._dog()
        dog.begin(5.0)
        assert dog.check(4.0, 6.0) is True
        assert any(v.guard == "service-monotonic" for v in rail.violations)

    def test_wall_clock_budget_fires(self):
        ticks = iter([0.0, 100.0])
        rail, dog = self._dog(stall_timeout_s=30.0, clock=lambda: next(ticks))
        dog.begin(0.0)
        assert dog.check(1.0, 1.0) is True

    def test_check_without_begin_raises(self):
        _, dog = self._dog()
        with pytest.raises(RuntimeError, match="begin"):
            dog.check(1.0, 1.0)


class TestJournal:
    def test_meta_and_epoch_roundtrip(self, tmp_path):
        journal = ServiceJournal(tmp_path / "svc.journal")
        journal.write_meta({"fingerprint": "abc"})
        journal.commit_epoch(0, {"x": 1})
        journal.commit_epoch(1, {"x": 2})
        fresh = ServiceJournal(tmp_path / "svc.journal")
        assert fresh.meta() == {"fingerprint": "abc"}
        assert fresh.epochs() == [0, 1]
        assert fresh.latest_epoch() == 1
        assert fresh.epoch_state(1) == {"x": 2}

    def test_epoch_keys_sort_past_ten(self, tmp_path):
        """Zero-padding keeps lexicographic order == numeric order."""
        journal = ServiceJournal(tmp_path / "svc.journal")
        for epoch in (0, 2, 10, 9, 100):
            journal.commit_epoch(epoch, {"e": epoch})
        assert journal.epochs() == [0, 2, 9, 10, 100]
        assert journal.latest_epoch() == 100

    def test_missing_epoch_raises(self, tmp_path):
        journal = ServiceJournal(tmp_path / "svc.journal")
        with pytest.raises(KeyError):
            journal.epoch_state(3)

    def test_retain_bounds_memory_but_not_disk(self, tmp_path):
        path = tmp_path / "svc.journal"
        journal = ServiceJournal(path, retain=2)
        journal.write_meta({"fingerprint": "abc"})
        for epoch in range(5):
            journal.commit_epoch(epoch, {"e": epoch})
        assert journal.epochs() == [3, 4]
        assert journal.latest_epoch() == 4
        assert journal.meta() == {"fingerprint": "abc"}
        with pytest.raises(KeyError):
            journal.epoch_state(0)
        # The JSONL file keeps the full history: an unbounded reader
        # (what --query uses) still sees every committed epoch.
        full = ServiceJournal(path)
        assert full.epochs() == [0, 1, 2, 3, 4]
        assert full.epoch_state(0) == {"e": 0}

    def test_retain_compacts_on_load(self, tmp_path):
        path = tmp_path / "svc.journal"
        journal = ServiceJournal(path)
        for epoch in range(4):
            journal.commit_epoch(epoch, {"e": epoch})
        reopened = ServiceJournal(path, retain=1)
        assert reopened.epochs() == [3]
        assert reopened.epoch_state(3) == {"e": 3}

    def test_retain_validation(self, tmp_path):
        with pytest.raises(ValueError, match="retain"):
            ServiceJournal(tmp_path / "svc.journal", retain=0)


class TestDaemonRuns:
    def test_uninterrupted_run(self, tmp_path):
        daemon = ChurnDaemon(_config())
        result = daemon.run()
        assert result["epochs_run"] == 12
        assert result["final_time"] == pytest.approx(12.0)
        assert result["counters"]["admitted"] > 0
        assert result["counters"]["departed"] > 0
        assert result["counters"]["recoveries"] == 0

    def test_cc_policy_changes_results(self):
        # Capacity below 2x demand so concurrent flows actually contend
        # (at 50 Gbps two 25 Gbps flows both get their demand and the
        # weights never matter).
        mltcp = ChurnDaemon(_config(cc="mltcp", capacity_gbps=25.0))
        fair = ChurnDaemon(_config(cc="fair", capacity_gbps=25.0))
        mltcp.run(), fair.run()
        assert mltcp.per_job_fingerprint() != fair.per_job_fingerprint()

    def test_same_seed_same_fingerprint(self):
        a, b = ChurnDaemon(_config()), ChurnDaemon(_config())
        a.run(), b.run()
        assert a.per_job_fingerprint() == b.per_job_fingerprint()

    def test_supervised_crash_recovers_bit_identical(self, tmp_path):
        baseline = ChurnDaemon(_config())
        baseline.run()

        journal = ServiceJournal(tmp_path / "svc.journal")
        crashed = ChurnDaemon(
            _config(), journal=journal, crash_at_epoch=6
        )
        result = crashed.run()
        assert result["counters"]["recoveries"] == 1
        assert crashed.per_job_fingerprint() == baseline.per_job_fingerprint()
        kinds = [e["kind"] for s in crashed.snapshots for e in s["events"]]
        assert "recovery" in kinds

    def test_kill_and_resume_bit_identical(self, tmp_path):
        """Acceptance criterion: a daemon killed mid-flight resumes from
        the journal to bit-identical final per-job telemetry."""
        baseline = ChurnDaemon(_config())
        baseline.run()

        # "Kill" the daemon: no supervision budget, the crash propagates
        # out exactly like a SIGKILL would end the process.
        journal_path = tmp_path / "svc.journal"
        killed = ChurnDaemon(
            _config(max_recoveries=0),
            journal=ServiceJournal(journal_path),
            crash_at_epoch=6,
        )
        with pytest.raises(ServiceCrash):
            killed.run()

        # A fresh "process": new daemon object, journal re-read from disk.
        resumed = ChurnDaemon(
            _config(max_recoveries=0),
            journal=ServiceJournal(journal_path),
            resume=True,
        )
        result = resumed.run()
        assert resumed.per_job_fingerprint() == baseline.per_job_fingerprint()
        assert result["counters"]["recoveries"] == 1

    def test_supervised_recovery_with_bounded_retention(self, tmp_path):
        """Crash recovery only needs the latest committed epoch, so it
        works unchanged on a memory-bounded (retain=N) journal."""
        baseline = ChurnDaemon(_config())
        baseline.run()
        journal = ServiceJournal(tmp_path / "svc.journal", retain=1)
        crashed = ChurnDaemon(_config(), journal=journal, crash_at_epoch=6)
        result = crashed.run()
        assert result["counters"]["recoveries"] == 1
        assert crashed.per_job_fingerprint() == baseline.per_job_fingerprint()
        assert len(journal.epochs()) == 1

    def test_repeating_crash_trips_max_recoveries(self, tmp_path):
        """A deterministically repeating crash must exhaust the recovery
        budget: the restore path may not reset the in-process recovery
        counter to the (older) journaled value, or the supervisor would
        loop forever."""
        daemon = ChurnDaemon(
            _config(max_recoveries=3),
            journal=ServiceJournal(tmp_path / "svc.journal"),
        )
        original = daemon._step_supervised
        crashes = {"n": 0}

        def crashing(target):
            if daemon.epoch >= 2:
                crashes["n"] += 1
                raise ServiceCrash("deterministic repeating crash")
            return original(target)

        daemon._step_supervised = crashing
        with pytest.raises(ServiceCrash, match="gave up after 3"):
            daemon.run()
        assert daemon.counters["recoveries"] == 3
        assert crashes["n"] == 4  # the initial crash + one per restart

    def test_dead_journal_is_a_hard_stop(self, tmp_path):
        """A journal commit that fails every attempt voids the at-most-
        one-epoch recovery bound: the daemon must stop loudly, not keep
        advancing uncommitted epochs."""

        class DeadJournal(ServiceJournal):
            def commit_epoch(self, epoch, state):
                return False

        telemetry = RunTelemetry("test.service")
        daemon = ChurnDaemon(
            _config(backoff_base_s=0.0),
            journal=DeadJournal(tmp_path / "svc.journal"),
            telemetry=telemetry,
        )
        with pytest.raises(ServiceCrash, match="recovery bound"):
            daemon.run()
        report = telemetry.as_report()
        assert any(
            v["guard"] == "service-journal"
            for v in report["guards"]["violations"]
        )

    def test_unjournaled_crash_propagates(self):
        daemon = ChurnDaemon(_config(), crash_at_epoch=3)
        with pytest.raises(ServiceCrash, match="injected"):
            daemon.run()

    def test_crash_before_first_commit_replays_from_scratch(self, tmp_path):
        baseline = ChurnDaemon(_config())
        baseline.run()
        crashed = ChurnDaemon(
            _config(),
            journal=ServiceJournal(tmp_path / "svc.journal"),
            crash_at_epoch=0,
        )
        result = crashed.run()
        assert result["counters"]["recoveries"] == 1
        assert crashed.per_job_fingerprint() == baseline.per_job_fingerprint()

    def test_resume_refuses_fingerprint_mismatch(self, tmp_path):
        journal_path = tmp_path / "svc.journal"
        ChurnDaemon(
            _config(), journal=ServiceJournal(journal_path)
        ).run()
        with pytest.raises(ValueError, match="fingerprint"):
            ChurnDaemon(
                _config(seed=4),
                journal=ServiceJournal(journal_path),
                resume=True,
            )

    def test_fresh_run_refuses_used_journal(self, tmp_path):
        journal_path = tmp_path / "svc.journal"
        ChurnDaemon(_config(), journal=ServiceJournal(journal_path)).run()
        with pytest.raises(ValueError, match="already holds"):
            ChurnDaemon(_config(), journal=ServiceJournal(journal_path))

    def test_resume_without_journal_raises(self):
        with pytest.raises(ValueError, match="journal"):
            ChurnDaemon(_config(), resume=True)

    def test_query_journal(self, tmp_path):
        journal_path = tmp_path / "svc.journal"
        daemon = ChurnDaemon(_config(), journal=ServiceJournal(journal_path))
        result = daemon.run()
        summary = query_journal(journal_path)
        assert summary["meta"]["fingerprint"] == _config().fingerprint()
        assert summary["committed_epochs"] == 12
        assert summary["latest_epoch"] == 11
        assert summary["counters"] == result["counters"]
        assert summary["corrupt_lines"] == 0


class TestOverloadShedding:
    def test_overload_sheds_without_raising(self):
        """Acceptance criterion: a flash crowd far past capacity degrades
        (shed/defer counters move) but never raises."""
        config = _config(
            arrival=_model(
                rate_per_s=4.0, flash_crowds=(FlashCrowd(2.0, 30),)
            ),
            max_running=3,
            queue_limit=4,
            epochs=10,
        )
        result = ChurnDaemon(config).run()
        assert result["counters"]["shed"] > 0
        assert result["counters"]["deferred"] > 0
        assert result["queue_depth"] <= config.queue_limit

    def test_reject_policy_never_queues(self):
        config = _config(
            arrival=_model(rate_per_s=4.0),
            max_running=2,
            shed_policy="reject",
        )
        result = ChurnDaemon(config).run()
        assert result["counters"]["deferred"] == 0
        assert result["counters"]["shed"] > 0

    def test_degrade_policy_coarsens_telemetry(self):
        config = _config(
            arrival=_model(
                rate_per_s=3.0, flash_crowds=(FlashCrowd(1.0, 12),)
            ),
            max_running=2,
            queue_limit=6,
            shed_policy="degrade",
            snapshot_every=1,
            epochs=8,
        )
        daemon = ChurnDaemon(config)
        result = daemon.run()
        assert result["counters"]["degraded"] > 0
        coarse = [s for s in daemon.snapshots if s["coarse"]]
        assert coarse and all(s["jobs"] is None for s in coarse)

    def test_churn_fallback_clamps_to_vanilla(self):
        config = _config(
            arrival=_model(
                rate_per_s=0.5, flash_crowds=(FlashCrowd(3.0, 6),)
            ),
            max_running=12,
            churn_limit=2,
            snapshot_every=1,
        )
        daemon = ChurnDaemon(config)
        daemon.run()
        kinds = [e["kind"] for s in daemon.snapshots for e in s["events"]]
        assert "fallback" in kinds

    def test_churn_fallback_matches_fair_weights(self):
        """While the fallback is engaged the engine's weights are unit —
        identical to the `fair` policy's."""
        engine_m = LiveFluidEngine(50.0, "mltcp", seed=0)
        engine_f = LiveFluidEngine(50.0, "fair", seed=0)
        for engine in (engine_m, engine_f):
            for i in range(3):
                engine.admit(
                    gpt2_fast_job(f"j{i}").with_iteration_limit(4)
                )
        engine_m.fallback_engaged = True
        engine_m.step(5.0)
        engine_f.step(5.0)
        assert json.dumps(engine_m.completed, sort_keys=True) == json.dumps(
            engine_f.completed, sort_keys=True
        )


class TestRetryBackoff:
    def _daemon(self, clock_values, sleeps, **config_overrides):
        ticks = iter(clock_values)
        telemetry = RunTelemetry("test.service")
        daemon = ChurnDaemon(
            _config(**config_overrides),
            telemetry=telemetry,
            clock=lambda: next(ticks),
            sleep=sleeps.append,
        )
        return daemon, telemetry

    def test_slow_success_is_not_retried(self):
        # The attempt takes 10 s against a 5 s budget but *completes*:
        # the side effect (journal line, snapshot line) is already on
        # disk, so re-running it would duplicate it.  The overrun is a
        # timeout degradation for observability only.
        sleeps = []
        calls = {"n": 0}
        daemon, telemetry = self._daemon(
            [0.0, 10.0], sleeps, op_attempts=3, backoff_base_s=0.05
        )

        def slow():
            calls["n"] += 1

        assert daemon._with_retry("op", slow) is True
        assert calls["n"] == 1
        assert sleeps == []
        kinds = [d["kind"] for d in telemetry.degradations]
        assert kinds == ["timeout"]

    def test_failing_op_gives_up_after_attempts(self):
        sleeps = []
        daemon, telemetry = self._daemon(
            [0.0, 0.1, 0.2, 0.3, 0.4, 0.5],
            sleeps,
            op_attempts=3,
            backoff_base_s=0.05,
        )

        def dead():
            raise OSError("disk full")

        assert daemon._with_retry("op", dead) is False
        assert sleeps == [0.05, 0.1]
        kinds = [d["kind"] for d in telemetry.degradations]
        assert kinds == ["retry", "retry", "retry", "error"]

    def test_failing_op_retries_then_succeeds(self):
        sleeps = []
        daemon, telemetry = self._daemon(
            [0.0, 0.1, 0.2, 0.3], sleeps, op_attempts=3
        )
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("disk hiccup")

        assert daemon._with_retry("op", flaky) is True
        assert calls["n"] == 2
        assert sleeps == [0.05]
        assert [d["kind"] for d in telemetry.degradations] == ["retry"]

    def test_backoff_is_capped(self):
        sleeps = []
        daemon, _ = self._daemon(
            [float(i) for i in range(20)],
            sleeps,
            op_attempts=8,
            backoff_base_s=0.5,
        )

        def dead():
            raise OSError("nope")

        assert daemon._with_retry("op", dead) is False
        assert max(sleeps) == 2.0

    def test_snapshot_sink_failure_sheds_side_effect(self, tmp_path):
        """A read-only snapshot sink degrades telemetry, not the run."""
        sink = tmp_path / "denied" / "snapshots.jsonl"
        telemetry = RunTelemetry("test.service")
        daemon = ChurnDaemon(
            _config(backoff_base_s=0.0),
            telemetry=telemetry,
            snapshot_path=sink,
        )
        result = daemon.run()
        assert result["epochs_run"] == 12
        kinds = {d["kind"] for d in telemetry.degradations}
        assert "retry" in kinds and "error" in kinds


class TestServiceTelemetry:
    def _run(self, tmp_path, **overrides):
        telemetry = RunTelemetry("test.service")
        sink = tmp_path / "snapshots.jsonl"
        daemon = ChurnDaemon(
            _config(**overrides), telemetry=telemetry, snapshot_path=sink
        )
        daemon.run()
        return daemon, telemetry, sink

    def test_report_is_schema_valid(self, tmp_path):
        _, telemetry, _ = self._run(tmp_path)
        report = telemetry.as_report()
        assert report["schema_version"] == REPORT_SCHEMA_VERSION == 6
        assert validate_run_report(report) == []
        assert report["service"]

    def test_every_decision_is_in_the_snapshot_stream(self, tmp_path):
        """Acceptance criterion: shed/defer/degrade/recovery decisions all
        appear in the validated snapshot stream."""
        telemetry = RunTelemetry("test.service")
        config = _config(
            arrival=_model(
                rate_per_s=3.0, flash_crowds=(FlashCrowd(2.0, 20),)
            ),
            max_running=2,
            queue_limit=3,
            epochs=10,
        )
        daemon = ChurnDaemon(
            config,
            telemetry=telemetry,
            journal=ServiceJournal(tmp_path / "svc.journal"),
            crash_at_epoch=5,
        )
        daemon.run()
        assert validate_run_report(telemetry.as_report()) == []
        kinds = {e["kind"] for s in daemon.snapshots for e in s["events"]}
        assert {"admit", "defer", "shed", "depart", "recovery"} <= kinds
        counters = daemon.counters
        events = [e for s in daemon.snapshots for e in s["events"]]
        for kind, counter in (
            ("defer", "deferred"),
            ("shed", "shed"),
            ("recovery", "recoveries"),
        ):
            assert (
                len([e for e in events if e["kind"] == kind])
                == counters[counter]
            )

    def test_snapshot_cadence_and_final_snapshot(self, tmp_path):
        daemon, _, _ = self._run(tmp_path, epochs=12, snapshot_every=5)
        assert [s["epoch"] for s in daemon.snapshots] == [4, 9, 11]

    def test_jsonl_sink_mirrors_snapshots(self, tmp_path):
        daemon, _, sink = self._run(tmp_path)
        lines = [
            json.loads(line)
            for line in sink.read_text().splitlines()
            if line
        ]
        assert [s["epoch"] for s in lines] == [
            s["epoch"] for s in daemon.snapshots
        ]

    def test_counters_are_cumulative(self, tmp_path):
        daemon, _, _ = self._run(tmp_path, snapshot_every=1)
        admitted = [s["admitted"] for s in daemon.snapshots]
        assert admitted == sorted(admitted)


class TestServeCli:
    def test_serve_smoke(self, tmp_path, capsys):
        from repro.cli import main

        report = tmp_path / "svc.run.json"
        code = main(
            [
                "serve",
                "--epochs", "6",
                "--rate", "0.8",
                "--seed", "3",
                "--report", str(report),
            ]
        )
        assert code == 0
        payload = json.loads(report.read_text())
        assert payload["schema_version"] == 6
        assert validate_run_report(payload) == []
        assert "serve [mltcp]" in capsys.readouterr().out

    def test_serve_crash_and_query(self, tmp_path, capsys):
        from repro.cli import main

        journal = tmp_path / "svc.journal"
        assert (
            main(
                [
                    "serve", "--epochs", "6", "--seed", "3",
                    "--journal", str(journal), "--crash-at-epoch", "3",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["serve", "--query", str(journal)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["committed_epochs"] == 6

    def test_serve_bad_flash_spec_fails(self, capsys):
        from repro.cli import main

        assert main(["serve", "--flash", "nonsense"]) == 2
        assert "flash" in capsys.readouterr().err

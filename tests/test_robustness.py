"""Robustness tests: assumptions of §4 relaxed (volume jitter, mixed RTTs).

The paper's analysis assumes each job's per-iteration volume is constant and
(implicitly, through the testbed) that competing flows see similar RTTs.
These tests perturb both and check that the interleaving dynamics survive —
requirement (i)'s "range large enough to absorb the noise" in action.
"""

import numpy as np
import pytest

from repro.core.config import MLTCPConfig
from repro.fluid.allocation import MLTCPWeighted
from repro.fluid.flowsim import run_fluid
from repro.simulator.app import TrainingApp
from repro.simulator.engine import Simulator
from repro.simulator.queues import DropTailQueue
from repro.simulator.topology import Network
from repro.tcp.base import TcpReceiver, TcpSender
from repro.tcp.mltcp import MLTCPReno
from repro.workloads.job import JobSpec
from repro.workloads.presets import gpt2_heavy_job, identical_jobs


class TestVolumeJitter:
    def test_volume_jitter_validated(self):
        with pytest.raises(ValueError, match="volume_jitter_fraction"):
            JobSpec("J", 1e9, 25.0, 1.0, volume_jitter_fraction=1.5)

    def test_sampled_volumes_center_on_nominal(self):
        job = JobSpec("J", 1e9, 25.0, 1.0, volume_jitter_fraction=0.05)
        rng = np.random.default_rng(0)
        samples = [job.sample_comm_bits(rng) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(1e9, rel=0.01)
        assert np.std(samples) == pytest.approx(0.05e9, rel=0.15)

    def test_no_jitter_without_rng(self):
        job = JobSpec("J", 1e9, 25.0, 1.0, volume_jitter_fraction=0.5)
        assert job.sample_comm_bits(None) == 1e9

    def test_interleaving_survives_volume_jitter(self):
        """5% per-iteration volume noise: MLTCP still holds the interleave
        (Algorithm 1 normalizes by the *nominal* TOTAL_BYTES, so ratios
        saturate slightly early/late — absorbed by F's range)."""
        jobs = [
            job.with_jitter(0.005)
            for job in identical_jobs(gpt2_heavy_job(), 2)
        ]
        from dataclasses import replace

        jobs = [replace(j, volume_jitter_fraction=0.05) for j in jobs]
        result = run_fluid(
            jobs, 50.0, policy=MLTCPWeighted(), max_iterations=50, seed=4
        )
        rounds = result.mean_iteration_by_round()
        assert rounds[-10:].mean() < 1.06 * 1.8


def build_mixed_rtt_dumbbell(sim, delays):
    """Dumbbell with a different edge delay per sender/receiver pair."""
    network = Network(sim=sim)
    network.add_switch("sw_l")
    network.add_switch("sw_r")
    network.add_link("sw_l", "sw_r", 1e9, 5e-6, queue=DropTailQueue(64))
    network.add_link("sw_r", "sw_l", 1e9, 5e-6, queue=DropTailQueue(1024))
    for i, delay in enumerate(delays):
        s, r = f"s{i}", f"r{i}"
        network.add_host(s)
        network.add_host(r)
        for a, b in ((s, "sw_l"), ("sw_l", s), (r, "sw_r"), ("sw_r", r)):
            network.add_link(a, b, 4e9, delay, queue=DropTailQueue(256))
        network.install_route(s, r, [s, "sw_l", "sw_r", r])
        network.install_route(r, s, [r, "sw_r", "sw_l", s])
    return network


class TestHeterogeneousRtt:
    def test_mixed_rtts_still_interleave(self):
        """One job has ~10x the propagation delay of the other; MLTCP-Reno
        still slides them apart ("regardless of ... number of flows
        competing for bandwidth" — and, here, their RTTs)."""
        sim = Simulator()
        net = build_mixed_rtt_dumbbell(sim, delays=[5e-6, 50e-6])
        rng = np.random.default_rng(2)
        template = JobSpec(
            name="Job", comm_bits=8e6, demand_gbps=1.0, compute_time=0.010,
            jitter_sigma=0.0005,
        )
        apps = []
        for i, job in enumerate(
            (template.with_name("near"), template.with_name("far"))
        ):
            cc = MLTCPReno(MLTCPConfig(total_bytes=job.comm_bytes, comp_time=0.003))
            sender = TcpSender(sim, net.hosts[f"s{i}"], job.name, f"r{i}", cc)
            TcpReceiver(sim, net.hosts[f"r{i}"], job.name, f"s{i}")
            app = TrainingApp(sim, sender, job, max_iterations=35, rng=rng)
            app.start()
            apps.append(app)
        sim.run(until=2.0)

        overhead = 1500 / 1460
        ideal = 8e6 / 1e9 * overhead + 0.010
        for app in apps:
            times = app.iteration_times()
            assert len(times) == 35
            assert times[-5:].mean() == pytest.approx(ideal, rel=0.1), app.job.name


class TestStragglerBoundaries:
    def test_straggler_does_not_trip_the_degradation_guard(self):
        """A straggler stretches the compute gap — boundary detection only
        becomes *more* certain and the per-iteration volume stays the
        configured TOTAL_BYTES, so the reliability guard
        (docs/ROBUSTNESS.md) must not condemn the estimate."""
        from repro.faults import FaultEvent, FaultSchedule
        from repro.harness.packetlab import mltcp_config_for, run_packet_jobs

        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    kind="straggler", time=0.05, duration=0.1,
                    job="Job1", factor=4.0,
                ),
            )
        )
        jobs = [
            JobSpec(
                f"Job{i + 1}", comm_bits=2e6, demand_gbps=1.0,
                compute_time=0.005,
            )
            for i in range(2)
        ]
        result = run_packet_jobs(
            jobs,
            lambda job: MLTCPReno(mltcp_config_for(job)),
            max_iterations=30,
            until=0.5,
            faults=schedule,
        )
        for name in ("Job1", "Job2"):
            mltcp = result.senders[name].cc.mltcp
            tracker = mltcp.tracker
            assert not tracker.estimate_unreliable, name
            assert mltcp.degradation_episodes == [], name
            assert tracker.iteration_index >= 10, name
            assert 0.0 <= tracker.bytes_ratio <= 1.0, name

"""Tests for the TCP connection machinery and Reno congestion control."""

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.queues import DropTailQueue
from repro.simulator.topology import build_dumbbell
from repro.tcp.base import INITIAL_CWND, TcpReceiver, TcpSender
from repro.tcp.reno import RenoCC


def make_pair(
    bottleneck_bps=1e9,
    queue_packets=64,
    random_loss=0.0,
    cc=None,
    **sender_kwargs,
):
    sim = Simulator()
    net = build_dumbbell(
        sim,
        1,
        bottleneck_bps=bottleneck_bps,
        bottleneck_queue=DropTailQueue(queue_packets),
        bottleneck_random_loss=random_loss,
    )
    cc = cc if cc is not None else RenoCC()
    sender = TcpSender(sim, net.hosts["s0"], "f", "r0", cc, **sender_kwargs)
    TcpReceiver(sim, net.hosts["r0"], "f", "s0")
    return sim, net, sender


class TestBulkTransfer:
    def test_transfer_completes(self):
        sim, _net, sender = make_pair()
        finished = {}
        sender.on_all_acked = lambda: finished.setdefault("t", sim.now)
        sender.send_bytes(500_000)
        sim.run(until=1.0)
        assert "t" in finished
        assert sender.all_acked()

    def test_goodput_near_capacity(self):
        """A single Reno flow should achieve >80% of the bottleneck."""
        sim, _net, sender = make_pair()
        finished = {}
        sender.on_all_acked = lambda: finished.setdefault("t", sim.now)
        nbytes = 2_000_000
        sender.send_bytes(nbytes)
        sim.run(until=1.0)
        goodput = nbytes * 8 / finished["t"]
        assert goodput > 0.8e9

    def test_no_spurious_retransmissions_without_loss(self):
        """A transfer fitting entirely in the initial window is clean."""
        sim, _net, sender = make_pair()
        sender.send_bytes(5 * 1460)
        sim.run(until=0.5)
        assert sender.retransmissions == 0
        assert sender.timeouts == 0

    def test_receiver_rejects_acks(self):
        sim, net, _sender = make_pair()
        receiver_sink = net.hosts["r0"]._flows["f"]
        from repro.simulator.packet import Packet

        ack = Packet(flow_id="f", src="s0", dst="r0", is_ack=True, seq=0, payload_bytes=0)
        with pytest.raises(RuntimeError, match="got an ACK"):
            receiver_sink.receive(ack)


class TestWindowDynamics:
    def test_slow_start_doubles(self):
        """cwnd roughly doubles per RTT until ssthresh."""
        sim, _net, sender = make_pair(queue_packets=1000)
        sender.send_bytes(1_000_000)
        initial = sender.cc.cwnd
        sim.run(until=0.002)  # a few RTTs, no loss yet
        assert sender.cc.cwnd > 2 * initial

    def test_congestion_avoidance_linear(self):
        cc = RenoCC()
        cc.ssthresh = 10.0
        cc.cwnd = 10.0

        class FakeConn:
            pass

        before = cc.cwnd
        cc.on_ack(1, FakeConn())
        assert cc.cwnd == pytest.approx(before + 1.0 / before)

    def test_fast_retransmit_halves_window(self):
        """Loss under dup-ACKs triggers multiplicative decrease, not RTO."""
        sim, net, sender = make_pair(queue_packets=16)
        sender.send_bytes(3_000_000)
        sim.run(until=0.5)
        assert sender.fast_retransmits > 0
        # With ample dup-ACK feedback Reno should rarely need timeouts.
        assert sender.timeouts <= sender.fast_retransmits

    def test_rto_recovers_from_total_blackout(self):
        """All packets of a window lost -> timer-driven recovery."""
        sim, net, sender = make_pair(random_loss=0.9)
        sender.send_bytes(5 * 1460)
        sim.run(until=20.0)
        assert sender.all_acked()
        assert sender.timeouts > 0

    def test_idle_restart_resets_cwnd(self):
        sim, _net, sender = make_pair()
        done = []
        sender.on_all_acked = lambda: done.append(sim.now)
        sender.send_bytes(1_000_000)
        sim.run(until=0.5)
        assert sender.cc.cwnd > INITIAL_CWND
        # Idle much longer than the RTO, then send again.
        sim.schedule(0.5, lambda: sender.send_bytes(1460))
        sim.run(until=1.2)
        assert sender.cc.cwnd <= INITIAL_CWND + 1

    def test_disable_idle_restart(self):
        sim, _net, sender = make_pair(slow_start_after_idle=False)
        sender.on_all_acked = lambda: None
        sender.send_bytes(1_000_000)
        sim.run(until=0.5)
        grown = sender.cc.cwnd
        sim.schedule(0.5, lambda: sender.send_bytes(1460))
        sim.run(until=1.2)
        assert sender.cc.cwnd >= grown


class TestRttEstimation:
    def test_srtt_close_to_path_rtt(self):
        sim, _net, sender = make_pair(queue_packets=1000)
        sender.send_bytes(20 * 1460)
        sim.run(until=0.5)
        assert sender.smoothed_rtt is not None
        # 4 hops of 5 us propagation plus serialization; well under 1 ms here.
        assert 1e-5 < sender.smoothed_rtt < 1e-3

    def test_rto_bounded(self):
        sim, _net, sender = make_pair(min_rto=2e-3, max_rto=1.0)
        sender.send_bytes(20 * 1460)
        sim.run(until=0.5)
        assert 2e-3 <= sender.rto <= 1.0


class TestValidation:
    def test_rejects_bad_mss(self):
        sim = Simulator()
        net = build_dumbbell(sim, 1, bottleneck_bps=1e9)
        with pytest.raises(ValueError, match="mss"):
            TcpSender(sim, net.hosts["s0"], "f", "r0", RenoCC(), mss_bytes=0)

    def test_rejects_bad_rto_range(self):
        sim = Simulator()
        net = build_dumbbell(sim, 1, bottleneck_bps=1e9)
        with pytest.raises(ValueError, match="rto"):
            TcpSender(
                sim, net.hosts["s0"], "f", "r0", RenoCC(), min_rto=0.1, max_rto=0.01
            )

    def test_rejects_non_positive_send(self):
        _sim, _net, sender = make_pair()
        with pytest.raises(ValueError, match="nbytes"):
            sender.send_bytes(0)

    def test_bytes_outstanding(self):
        _sim, _net, sender = make_pair()
        sender.send_bytes(10 * 1460)
        assert sender.bytes_outstanding() == 10 * 1460

"""Tests for the per-figure experiment runners (reduced-scale)."""

import numpy as np
import pytest

from repro.core.aggressiveness import (
    DecreasingLinearAggressiveness,
    LinearAggressiveness,
)
from repro.harness.experiments import (
    fairness_competition_share,
    fairness_loss_response,
    fig1_traffic_patterns,
    fig2_schedules,
    fig3_aggressiveness,
    fig4_six_jobs,
    fig5_loss_function,
    noise_error_bound,
)


class TestFig1:
    def test_trace_per_job(self):
        traces = fig1_traffic_patterns(duration=4.0)
        assert set(traces) == {"J1", "J2", "J3", "J4"}

    def test_gpt3_demand_plateau(self):
        traces = fig1_traffic_patterns(duration=4.0)
        _t, demand = traces["J1"]
        assert demand.max() == pytest.approx(25.0, rel=0.01)

    def test_gpt2_double_hump_texture(self):
        traces = fig1_traffic_patterns(duration=4.0)
        _t, demand = traces["J2"]
        comm = demand[demand > 0]
        assert comm.max() > comm.min() * 1.5


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_schedules(iterations=40)

    def test_optimal_matches_paper(self, result):
        """Figure 2(a): J1 1.2 s, J2-J4 1.8 s."""
        assert result.optimal_times["J1"] == pytest.approx(1.2, rel=0.02)
        assert result.optimal_times["J2"] == pytest.approx(1.8, rel=0.02)

    def test_optimal_schedule_interleaved(self, result):
        assert result.schedule.is_interleaved

    def test_srpt_delays_j1(self, result):
        """Figure 2(b): SRPT head-of-line blocks the big GPT-3 job."""
        assert result.srpt_j1_slowdown > 1.15

    def test_srpt_suboptimal_overall(self, result):
        srpt_avg = np.mean(list(result.srpt_times.values()))
        optimal_avg = np.mean(list(result.optimal_times.values()))
        assert srpt_avg > 1.05 * optimal_avg

    def test_mltcp_converges_to_optimal(self, result):
        """§2: within 5% of the centralized optimum."""
        assert result.mltcp_gap_vs_optimal < 0.05

    def test_mltcp_converges_within_twenty_iterations(self, result):
        """§2: 'MLTCP converges to an interleaved state within 20 iterations'."""
        assert result.mltcp_converged_at is not None
        assert result.mltcp_converged_at <= 20


class TestFig3:
    @pytest.fixture(scope="class")
    def series(self):
        return fig3_aggressiveness(iterations=35)

    def test_all_six_functions_present(self, series):
        assert set(series) == {"F1", "F2", "F3", "F4", "F5", "F6"}

    @pytest.mark.parametrize("key", ["F1", "F2", "F3", "F4"])
    def test_increasing_functions_interleave(self, series, key):
        """Iteration time decreases toward the 1.05 s ideal."""
        tail = series[key][-5:].mean()
        assert tail == pytest.approx(1.05, rel=0.03)

    @pytest.mark.parametrize("key", ["F5", "F6"])
    def test_decreasing_functions_stay_congested(self, series, key):
        tail = series[key][-5:].mean()
        assert tail > 1.15

    def test_custom_function_subset(self):
        series = fig3_aggressiveness(
            iterations=10,
            functions={"up": LinearAggressiveness(), "down": DecreasingLinearAggressiveness()},
        )
        assert set(series) == {"up", "down"}


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        # The p99 is over the pooled lifetime; the lifetime must dwarf the
        # convergence transient (see fig4_six_jobs docstring).
        return fig4_six_jobs(iterations=400)

    def test_mltcp_tail_speedup(self, result):
        """Figure 4(c): the paper reports 1.59x; shape requires > 1.25x."""
        assert result.tail_speedup_p99 > 1.25

    def test_mltcp_reaches_ideal(self, result):
        last = result.mltcp_result.mean_iteration_by_round()[-5:]
        assert last.mean() == pytest.approx(1.8, rel=0.03)

    def test_reno_stays_congested(self, result):
        last = result.reno_result.mean_iteration_by_round()[-5:]
        assert last.mean() > 1.9

    def test_cdfs_well_formed(self, result):
        cdfs = result.cdfs()
        for _name, (values, probs) in cdfs.items():
            assert np.all(np.diff(values) >= 0)
            assert probs[-1] == 1.0


class TestFig5:
    def test_loss_minimum_at_half_period(self):
        curves = fig5_loss_function(alpha=0.5, period=1.8)
        idx = np.argmin(curves["loss"])
        assert curves["delta"][idx] == pytest.approx(0.9, abs=0.02)

    def test_shift_positive_before_minimum(self):
        curves = fig5_loss_function()
        before = curves["shift"][(curves["delta"] > 0.01) & (curves["delta"] < 0.85)]
        assert np.all(before > 0)


class TestNoiseBound:
    def test_measured_under_theory_bound(self):
        rows = noise_error_bound(sigmas=(0.002, 0.01), iterations=2000)
        for row in rows:
            assert row["measured_std"] <= 1.5 * row["theory_bound"]

    def test_error_scales_with_sigma(self):
        rows = noise_error_bound(sigmas=(0.002, 0.02), iterations=2000)
        assert rows[1]["measured_std"] > rows[0]["measured_std"]


class TestFairness:
    def test_mltcp_claims_more_without_starving(self):
        """§5: saturated MLTCP-Reno wins the share but Reno is not starved."""
        rows = fairness_competition_share(
            loss_probs=(0.0,), horizon=0.5, seeds=(1,)
        )
        assert rows[0]["share_ratio"] > 1.2
        assert rows[0]["reno_mbps"] > 50.0  # far from starvation

    def test_reno_follows_mathis_decay(self):
        """Quadrupling p roughly halves Reno's loss-limited throughput."""
        rows = fairness_loss_response(
            loss_probs=(0.001, 0.004), transfer_bytes=8_000_000
        )
        ratio = rows[0]["reno_mbps"] / rows[1]["reno_mbps"]
        assert 1.4 < ratio < 3.5

"""Churn and perturbation tests: jobs arriving, departing, and noise spikes.

Production clusters are not static: jobs join mid-run and finish at
different times.  MLTCP's distributed nature means the remaining jobs simply
re-run the gradient descent from the perturbed configuration — no controller
recomputation.  These tests inject that churn into the fluid simulator.
"""

import pytest

from repro.fluid.allocation import FairShare, MLTCPWeighted
from repro.fluid.flowsim import run_fluid
from repro.workloads.presets import gpt2_heavy_job, gpt2_job, identical_jobs


def _fingerprint(result):
    """Hex-exact record of everything both engines must reproduce."""
    return (
        [
            (
                it.job,
                it.index,
                it.comm_start.hex(),
                it.comm_end.hex(),
                it.iteration_end.hex(),
            )
            for it in result.iterations
        ],
        result.end_time.hex(),
    )


class TestLateArrival:
    def test_new_job_joining_converged_system(self):
        """Three jobs converge; a fourth arrives late; all four re-converge."""
        jobs = identical_jobs(gpt2_job(), 3)
        late = gpt2_job().with_name("Late").with_offset(15.0)  # ~8 iterations in
        result = run_fluid(
            jobs + [late], 50.0, policy=MLTCPWeighted(), max_iterations=40, seed=3
        )
        for job in jobs:
            tail = result.iteration_times(job.name)[-8:]
            assert tail.mean() == pytest.approx(1.8, rel=0.04)
        late_tail = result.iteration_times("Late")[-8:]
        assert late_tail.mean() == pytest.approx(1.8, rel=0.04)

    def test_arrival_perturbs_then_recovers(self):
        """The incumbents may slow transiently when the newcomer lands on
        their phase, but recover within a handful of iterations."""
        jobs = identical_jobs(gpt2_heavy_job(), 1)
        late = gpt2_heavy_job().with_name("Late").with_offset(10.0)
        result = run_fluid(
            jobs + [late], 50.0, policy=MLTCPWeighted(), max_iterations=40, seed=3
        )
        times = result.iteration_times("Job1")
        assert times[-5:].mean() == pytest.approx(1.8, rel=0.05)


class TestDeparture:
    def test_job_departs_after_iteration_limit(self):
        short = gpt2_job().with_name("Short").with_iteration_limit(5)
        result = run_fluid([short], 50.0, max_iterations=50, seed=None)
        assert len(result.iterations_of("Short")) == 5

    def test_survivors_keep_ideal_after_departure(self):
        """Six jobs interleave; three finish training; the survivors stay at
        the ideal (more slack, no re-congestion)."""
        jobs = identical_jobs(gpt2_job(), 6)
        jobs = [
            job.with_iteration_limit(20) if i % 2 == 0 else job
            for i, job in enumerate(jobs)
        ]
        result = run_fluid(
            jobs, 50.0, policy=MLTCPWeighted(), max_iterations=50, seed=5
        )
        for i, job in enumerate(jobs):
            times = result.iteration_times(job.name)
            if i % 2 == 0:
                assert len(times) == 20
            else:
                assert len(times) == 50
                assert times[-8:].mean() == pytest.approx(1.8, rel=0.03)

    def test_all_done_stops_simulation_early(self):
        jobs = [
            gpt2_job().with_name("A").with_iteration_limit(3),
            gpt2_job().with_name("B").with_iteration_limit(3),
        ]
        result = run_fluid(jobs, 50.0, end_time=1000.0, seed=None)
        assert result.end_time < 20.0

    def test_iteration_limit_validation(self):
        with pytest.raises(ValueError, match="iteration_limit"):
            gpt2_job().with_iteration_limit(0)


class TestNoiseSpike:
    def test_interleaving_restored_after_noise_burst(self):
        """§4: interleaving is a *stable* optimum — after a large one-off
        perturbation (modelled as a big start offset on one job), the
        system descends back."""
        jobs = identical_jobs(gpt2_heavy_job(), 2)
        # Start the pair maximally mis-aligned relative to the interleave.
        jobs = [jobs[0], jobs[1].with_offset(0.05)]
        result = run_fluid(
            jobs, 50.0, policy=MLTCPWeighted(), max_iterations=40, seed=7
        )
        rounds = result.mean_iteration_by_round()
        assert rounds[-5:].mean() == pytest.approx(1.8, rel=0.03)

    def test_high_jitter_still_converges_on_average(self):
        """With sigma at ~2% of the iteration time, convergence holds."""
        jobs = [j.with_jitter(0.04) for j in identical_jobs(gpt2_job(), 4)]
        result = run_fluid(
            jobs, 50.0, policy=MLTCPWeighted(), max_iterations=80, seed=11
        )
        rounds = result.mean_iteration_by_round()
        assert rounds[-15:].mean() < 1.1 * 1.8


class TestChurnEngineDispatch:
    """Churn scenarios are bit-identical across the scalar/array engines.

    ``run_fluid`` routes populations under ``_VECTORIZED_MIN_FLOWS`` to the
    scalar engine and larger ones to the PR-9 array engine.  Late arrivals
    and departures exercise the engines' bookkeeping of waiting and retired
    flows — exactly the state the live service churns through — so forcing
    the threshold down must not change a single bit of any output.
    """

    @pytest.mark.parametrize("policy_factory", [FairShare, MLTCPWeighted])
    def test_late_arrival_bit_identical(self, monkeypatch, policy_factory):
        jobs = identical_jobs(gpt2_job(), 3)
        late = gpt2_job().with_name("Late").with_offset(15.0)
        scalar = run_fluid(
            jobs + [late], 50.0, policy=policy_factory(),
            max_iterations=20, seed=3,
        )
        monkeypatch.setattr("repro.fluid.flowsim._VECTORIZED_MIN_FLOWS", 1)
        array = run_fluid(
            jobs + [late], 50.0, policy=policy_factory(),
            max_iterations=20, seed=3,
        )
        assert _fingerprint(scalar) == _fingerprint(array)

    @pytest.mark.parametrize("policy_factory", [FairShare, MLTCPWeighted])
    def test_departure_bit_identical(self, monkeypatch, policy_factory):
        jobs = identical_jobs(gpt2_job(), 6)
        jobs = [
            job.with_iteration_limit(8) if i % 2 == 0 else job
            for i, job in enumerate(jobs)
        ]
        scalar = run_fluid(
            jobs, 50.0, policy=policy_factory(), max_iterations=20, seed=5
        )
        monkeypatch.setattr("repro.fluid.flowsim._VECTORIZED_MIN_FLOWS", 1)
        array = run_fluid(
            jobs, 50.0, policy=policy_factory(), max_iterations=20, seed=5
        )
        assert _fingerprint(scalar) == _fingerprint(array)

    def test_mixed_churn_with_jitter_bit_identical(self, monkeypatch):
        """Arrival + departure + jitter in one run: the RNG draw order and
        retirement bookkeeping must line up exactly across engines."""
        jobs = [j.with_jitter(0.01) for j in identical_jobs(gpt2_job(), 4)]
        jobs[1] = jobs[1].with_iteration_limit(6)
        late = (
            gpt2_job().with_name("Late").with_offset(12.0).with_jitter(0.01)
        )
        scalar = run_fluid(
            jobs + [late], 50.0, policy=MLTCPWeighted(),
            max_iterations=16, seed=7,
        )
        monkeypatch.setattr("repro.fluid.flowsim._VECTORIZED_MIN_FLOWS", 1)
        array = run_fluid(
            jobs + [late], 50.0, policy=MLTCPWeighted(),
            max_iterations=16, seed=7,
        )
        assert _fingerprint(scalar) == _fingerprint(array)

"""Tests for the packet-level pFabric substrate (priority queues + minimal
transport) and the Figure 2(b) head-of-line argument at packet granularity."""

import numpy as np
import pytest

from repro.simulator.app import TrainingApp
from repro.simulator.engine import Simulator
from repro.simulator.queues import PriorityQueue
from repro.simulator.topology import build_dumbbell
from repro.tcp.base import TcpReceiver
from repro.tcp.pfabric import PFabricSender
from repro.workloads.job import JobSpec


def make_pair(n_pairs=1, queue_packets=32):
    sim = Simulator()
    net = build_dumbbell(
        sim,
        n_pairs,
        bottleneck_bps=1e9,
        bottleneck_queue=PriorityQueue(queue_packets),
    )
    return sim, net


class TestPFabricSender:
    def test_transfer_completes(self):
        sim, net = make_pair()
        done = {}
        sender = PFabricSender(
            sim, net.hosts["s0"], "f", "r0",
            on_all_acked=lambda: done.setdefault("t", sim.now),
        )
        TcpReceiver(sim, net.hosts["r0"], "f", "s0")
        sender.send_bytes(1_000_000)
        sim.run(until=0.5)
        assert "t" in done
        assert sender.all_acked()

    def test_near_line_rate_for_lone_flow(self):
        sim, net = make_pair()
        done = {}
        sender = PFabricSender(
            sim, net.hosts["s0"], "f", "r0",
            on_all_acked=lambda: done.setdefault("t", sim.now),
        )
        TcpReceiver(sim, net.hosts["r0"], "f", "s0")
        sender.send_bytes(2_000_000)
        sim.run(until=0.5)
        assert 2_000_000 * 8 / done["t"] > 0.8e9

    def test_short_flow_preempts_long(self):
        """The SRPT property: the short flow finishes near isolation speed."""
        sim, net = make_pair(n_pairs=2)
        done = {}
        long_sender = PFabricSender(
            sim, net.hosts["s1"], "long", "r1",
            on_all_acked=lambda: done.setdefault("long", sim.now),
        )
        short_sender = PFabricSender(
            sim, net.hosts["s0"], "short", "r0",
            on_all_acked=lambda: done.setdefault("short", sim.now),
        )
        TcpReceiver(sim, net.hosts["r1"], "long", "s1")
        TcpReceiver(sim, net.hosts["r0"], "short", "s0")
        long_sender.send_bytes(4_000_000)
        short_sender.send_bytes(400_000)
        sim.run(until=1.0)
        # Isolation time for 400 KB at 1 Gbps is ~3.4 ms (incl. headers).
        assert done["short"] < 0.006
        assert done["long"] > 5 * done["short"]

    def test_timeout_recovers_losses(self):
        """Overload the tiny priority buffer: drops recovered via RTO."""
        sim, net = make_pair(n_pairs=2, queue_packets=8)
        done = {}
        senders = []
        for i, size in enumerate((2_000_000, 2_000_000)):
            s = PFabricSender(
                sim, net.hosts[f"s{i}"], f"f{i}", f"r{i}", window=64,
                on_all_acked=lambda i=i: done.setdefault(i, sim.now),
            )
            TcpReceiver(sim, net.hosts[f"r{i}"], f"f{i}", f"s{i}")
            s.send_bytes(size)
            senders.append(s)
        sim.run(until=2.0)
        assert set(done) == {0, 1}
        assert any(s.timeouts > 0 for s in senders)

    def test_validation(self):
        sim, net = make_pair()
        with pytest.raises(ValueError, match="window"):
            PFabricSender(sim, net.hosts["s0"], "f", "r0", window=0)
        sender = PFabricSender(sim, net.hosts["s0"], "f2", "r0")
        with pytest.raises(ValueError, match="nbytes"):
            sender.send_bytes(0)


class TestFigure2bAtPacketLevel:
    def test_pfabric_defers_the_big_periodic_job(self):
        """Four periodic jobs over pFabric: the job with the largest
        collective (J1) is head-of-line blocked by the smaller trio —
        the packet-granularity version of paper Figure 2(b)."""
        sim = Simulator()
        net = build_dumbbell(
            sim, 4, bottleneck_bps=1e9, bottleneck_queue=PriorityQueue(64)
        )
        rng = np.random.default_rng(4)
        big = JobSpec("J1", comm_bits=8e6, demand_gbps=1.0, compute_time=0.010,
                      jitter_sigma=0.0003)
        small = JobSpec("Jx", comm_bits=4e6, demand_gbps=1.0, compute_time=0.020,
                        jitter_sigma=0.0003)
        jobs = [big] + [small.with_name(f"J{i}") for i in (2, 3, 4)]
        apps = {}
        for i, job in enumerate(jobs):
            sender = PFabricSender(sim, net.hosts[f"s{i}"], job.name, f"r{i}")
            TcpReceiver(sim, net.hosts[f"r{i}"], job.name, f"s{i}")
            app = TrainingApp(sim, sender, job, max_iterations=12, rng=rng)
            app.start()
            apps[job.name] = app
        sim.run(until=2.0)

        overhead = 1500 / 1460
        j1_ideal = big.ideal_comm_time * overhead + big.compute_time
        j1_measured = apps["J1"].iteration_times()[:8].mean()
        # The early iterations show the head-of-line penalty on J1.
        assert j1_measured > 1.25 * j1_ideal

"""Tests for the runtime guardrail subsystem (docs/ROBUSTNESS.md).

Covers the rail itself (policies, overrides, caps), the engine's monitored
event loop and heartbeat watchdog, the per-substrate invariant monitors,
MLTCP's graceful degradation to vanilla CC — including the same-seed
equivalence with plain Reno while degraded — and the telemetry v3 ``guards``
section.
"""

import numpy as np
import pytest

from repro.core.config import MLTCPConfig
from repro.fluid.allocation import AllocationPolicy, MLTCPWeighted
from repro.fluid.flowsim import run_fluid
from repro.guards import (
    GuardRail,
    GuardViolationError,
    InvariantViolation,
    check_allocation,
    check_cwnd_bounds,
    check_link_conservation,
)
from repro.guards.watchdog import EngineWatchdog, bdp_cwnd_cap
from repro.harness.packetlab import mltcp_config_for, run_packet_jobs
from repro.harness.telemetry import (
    RunTelemetry,
    validate_run_report,
)
from repro.simulator.engine import Simulator
from repro.tcp.mltcp import MLTCPReno
from repro.tcp.reno import RenoCC
from repro.workloads.job import JobSpec


def small_jobs(n=2, comm_bits=2e6, compute_time=0.005):
    return [
        JobSpec(
            f"Job{i + 1}", comm_bits=comm_bits, demand_gbps=1.0,
            compute_time=compute_time,
        )
        for i in range(n)
    ]


class TestGuardRail:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown guard policy"):
            GuardRail("explode")

    def test_rejects_unknown_override_policy(self):
        with pytest.raises(ValueError, match="override policy"):
            GuardRail("record", overrides={"engine-stall": "explode"})

    def test_record_accumulates_and_counts(self):
        rail = GuardRail("record")
        rail.violation("cwnd-bounds", "f1", 0.1, "too big")
        rail.violation("cwnd-bounds", "f2", 0.2, "too big")
        rail.violation("link-conservation", "sw_l->sw_r", 0.3, "imbalance")
        assert len(rail) == 3
        assert rail.counts_by_guard() == {
            "cwnd-bounds": 2,
            "link-conservation": 1,
        }

    def test_raise_policy_raises_after_recording(self):
        rail = GuardRail("raise")
        with pytest.raises(GuardViolationError, match="cwnd-bounds"):
            rail.violation("cwnd-bounds", "f1", 0.1, "runaway")
        # The post-mortem still sees the violation.
        assert len(rail) == 1
        assert rail.violations[0].guard == "cwnd-bounds"

    def test_fallback_engaged_never_raises(self):
        """Degrading IS the graceful path: it must not abort the run even
        under the strictest policy."""
        rail = GuardRail("raise")
        violation = rail.violation(
            "tracker-sanity", "Job1", 0.5, "degraded", fallback_engaged=True
        )
        assert violation is not None
        assert violation.fallback_engaged
        assert len(rail) == 1

    def test_off_policy_drops(self):
        rail = GuardRail("off")
        assert rail.violation("cwnd-bounds", "f1", 0.0, "x") is None
        assert len(rail) == 0

    def test_override_refines_default(self):
        rail = GuardRail("raise", overrides={"engine-stall": "record"})
        assert rail.policy_for("engine-stall") == "record"
        assert rail.policy_for("cwnd-bounds") == "raise"
        rail.violation("engine-stall", "engine", 1.0, "slow")  # no raise
        assert len(rail) == 1

    def test_max_violations_caps_and_counts_dropped(self):
        rail = GuardRail("record", max_violations=3)
        for i in range(5):
            rail.violation("cwnd-bounds", f"f{i}", float(i), "x")
        assert len(rail) == 3
        assert rail.dropped == 2

    def test_clear_forgets_everything(self):
        rail = GuardRail("record", max_violations=1)
        rail.violation("cwnd-bounds", "a", 0.0, "x")
        rail.violation("cwnd-bounds", "b", 0.0, "x")
        rail.clear()
        assert len(rail) == 0
        assert rail.dropped == 0

    def test_violation_render_and_dict(self):
        violation = InvariantViolation("g", "s", 0.125, "msg", fallback_engaged=True)
        assert violation.render() == "[g] t=0.125 s: msg [fallback engaged]"
        assert violation.as_dict()["fallback_engaged"] is True


class TestEngineMonitor:
    def test_zero_delay_livelock_raises_engine_stall(self):
        rail = GuardRail("raise")
        sim = Simulator(monitor=rail, stall_event_limit=50)

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(GuardViolationError) as excinfo:
            sim.run()
        assert excinfo.value.violation.guard == "engine-stall"

    def test_stall_records_once_under_record_policy(self):
        rail = GuardRail("record")
        sim = Simulator(monitor=rail, stall_event_limit=50)

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        sim.run(max_events=200)
        assert rail.counts_by_guard() == {"engine-stall": 1}

    def test_clean_monitored_run_records_nothing(self):
        rail = GuardRail("raise")
        sim = Simulator(monitor=rail, stall_event_limit=10)
        fired = []
        for i in range(30):
            sim.schedule(0.001 * (i + 1), lambda i=i: fired.append(i))
        sim.run()
        assert len(fired) == 30
        assert len(rail) == 0


class TestEngineWatchdog:
    def test_healthy_run_beats_and_lets_the_sim_finish(self):
        rail = GuardRail("raise")
        sim = Simulator()
        for i in range(10):
            sim.schedule(0.02 * (i + 1), lambda: None)
        watchdog = EngineWatchdog(sim, rail, interval=0.01)
        watchdog.start()
        sim.run()
        assert watchdog.beats >= 1
        assert len(rail) == 0
        assert sim.pending_events() == 0  # the watchdog let go

    def test_event_storm_flags_engine_stall(self):
        rail = GuardRail("record")
        sim = Simulator()
        count = [0]

        def churn():
            count[0] += 1
            if count[0] < 500:
                sim.schedule(1e-5, churn)

        sim.schedule(1e-5, churn)
        watchdog = EngineWatchdog(
            sim, rail, interval=0.001, max_events_per_interval=10
        )
        watchdog.start()
        sim.run()
        assert "engine-stall" in rail.counts_by_guard()

    def test_start_twice_raises(self):
        watchdog = EngineWatchdog(Simulator(), GuardRail())
        watchdog.start()
        with pytest.raises(RuntimeError, match="already started"):
            watchdog.start()

    def test_bdp_cap_validates_inputs(self):
        with pytest.raises(ValueError, match="must be positive"):
            bdp_cwnd_cap(0.0, 1e-4, 1500, 64)

    def test_bdp_cap_covers_bdp_plus_buffer(self):
        cap = bdp_cwnd_cap(1e9, 1e-3, 1500, 64, slack=1.0)
        bdp_segments = 1e9 * 1e-3 / (8.0 * 1500)
        assert cap > bdp_segments + 64


class TestPacketGuards:
    def test_healthy_run_is_violation_free_under_raise(self):
        """Acceptance: with monitors in ``raise`` mode a healthy packet run
        completes without a single violation."""
        rail = GuardRail("raise")
        result = run_packet_jobs(
            small_jobs(),
            lambda job: MLTCPReno(mltcp_config_for(job)),
            max_iterations=15,
            until=0.3,
            guards=rail,
        )
        assert len(rail) == 0
        for job in result.jobs:
            assert len(result.iteration_times(job.name)) >= 5

    def test_cwnd_bounds_monitor_flags_runaway_and_collapse(self):
        rail = GuardRail("record")
        check_cwnd_bounds(rail, "f1", 1e9, now=0.1, max_cwnd=1000.0)
        check_cwnd_bounds(rail, "f2", 0.25, now=0.2, min_cwnd=1.0)
        check_cwnd_bounds(rail, "f3", 50.0, now=0.3, min_cwnd=1.0, max_cwnd=1000.0)
        assert rail.counts_by_guard() == {"cwnd-bounds": 2}

    def test_link_conservation_monitor_flags_tampered_counters(self):
        result = run_packet_jobs(
            small_jobs(n=1),
            lambda job: MLTCPReno(mltcp_config_for(job)),
            max_iterations=3,
            until=0.06,
        )
        link = result.network.links[("sw_l", "sw_r")]
        rail = GuardRail("record")
        check_link_conservation(rail, link, now=result.sim.now)
        assert len(rail) == 0  # sane after a real run
        link._packets_settled += 1  # simulate a double-counted packet
        check_link_conservation(rail, link, now=result.sim.now)
        assert rail.counts_by_guard() == {"link-conservation": 1}


class _Oversubscribe(AllocationPolicy):
    """Deliberately broken policy: hands every flow the full capacity."""

    name = "oversubscribe"

    def allocate(self, flows, capacity_bps):
        return {f.flow_id: capacity_bps for f in flows}


class TestFluidGuards:
    def test_healthy_fluid_run_is_violation_free_under_raise(self):
        rail = GuardRail("raise")
        result = run_fluid(
            small_jobs(), 1.0, policy=MLTCPWeighted(),
            max_iterations=15, seed=3, guards=rail,
        )
        assert len(rail) == 0
        assert len(result.mean_iteration_by_round()) >= 5

    def test_oversubscribing_policy_is_caught(self):
        rail = GuardRail("record")
        run_fluid(
            small_jobs(), 1.0, policy=_Oversubscribe(),
            max_iterations=4, seed=3, guards=rail,
        )
        assert "allocation-capacity" in rail.counts_by_guard()
        first = rail.violations[0]
        assert first.subject == "oversubscribe"
        assert "exceeds capacity" in first.message

    def test_oversubscription_aborts_under_raise(self):
        with pytest.raises(GuardViolationError, match="allocation-capacity"):
            run_fluid(
                small_jobs(), 1.0, policy=_Oversubscribe(),
                max_iterations=4, seed=3, guards=GuardRail("raise"),
            )

    def test_check_allocation_flags_negative_rates(self):
        rail = GuardRail("record")
        check_allocation(
            rail, {"a": -1.0, "b": 0.5e9}, 1e9, now=0.2, subject="unit"
        )
        assert rail.counts_by_guard() == {"allocation-negative": 1}
        assert rail.violations[0].subject == "a"

    def test_check_allocation_tolerates_ulp_noise(self):
        rail = GuardRail("raise")
        # A few ulps over capacity is float summation, not a violation.
        check_allocation(
            rail, {"a": 0.5e9, "b": 0.5e9 + 1.0}, 1e9, now=0.1
        )
        assert len(rail) == 0


class TestDegradation:
    """Acceptance: a corrupted tracker degrades MLTCP to vanilla CC,
    behaves exactly like Reno while degraded, and re-engages after
    ``reengage_iterations`` clean iterations."""

    def test_2x_overestimate_triggers_degraded_mode(self):
        rail = GuardRail("raise")  # degradation must never abort the run
        result = run_packet_jobs(
            small_jobs(),
            lambda job: MLTCPReno(
                mltcp_config_for(job, total_bytes=2 * job.comm_bytes)
            ),
            max_iterations=30,
            until=0.5,
            seed=1,
            guards=rail,
        )
        for job in result.jobs:
            mltcp = result.senders[job.name].cc.mltcp
            assert mltcp.degraded, job.name
            assert mltcp.tracker.unreliable_reason.startswith("drift="), job.name
            episodes = mltcp.degradation_episodes
            assert episodes and episodes[-1]["end"] is None, job.name
        # The rail saw only graceful-fallback reports, nothing fatal.
        assert len(rail) == len(result.jobs)
        assert all(v.fallback_engaged for v in rail.violations)
        assert all(v.guard == "tracker-sanity" for v in rail.violations)

    def test_degraded_flow_matches_vanilla_reno_same_seed(self):
        """While F is clamped to 1, MLTCP-Reno's window trajectory is
        bit-identical to plain Reno's (Eq. 1 with F == 1)."""

        def poisoned_factory(job):
            # Correct config, but the tracker starts distrusted and the
            # re-engage bar is unreachable: degraded for the whole run.
            cc = MLTCPReno(
                mltcp_config_for(job, reengage_iterations=10**9)
            )
            cc.mltcp.tracker.estimate_unreliable = True
            cc.mltcp.tracker.unreliable_reason = "test-poisoned"
            return cc

        jobs = small_jobs()
        degraded = run_packet_jobs(
            jobs, poisoned_factory, max_iterations=20, until=0.35, seed=7
        )
        vanilla = run_packet_jobs(
            jobs, lambda job: RenoCC(), max_iterations=20, until=0.35, seed=7
        )
        for job in jobs:
            mltcp = degraded.senders[job.name].cc.mltcp
            assert mltcp.degraded, job.name  # stayed clamped throughout
            times = degraded.iteration_times(job.name)
            assert len(times) >= 5, job.name
            np.testing.assert_array_equal(
                times, vanilla.iteration_times(job.name), err_msg=job.name
            )
            assert degraded.senders[job.name].cc.cwnd == pytest.approx(
                vanilla.senders[job.name].cc.cwnd
            ), job.name

    def test_reengages_within_k_clean_iterations(self):
        def poisoned_factory(job):
            cc = MLTCPReno(mltcp_config_for(job))  # defaults: reengage after 3
            cc.mltcp.tracker.estimate_unreliable = True
            cc.mltcp.tracker.unreliable_reason = "test-poisoned"
            return cc

        result = run_packet_jobs(
            small_jobs(), poisoned_factory,
            max_iterations=30, until=0.5, seed=2,
        )
        for job in result.jobs:
            mltcp = result.senders[job.name].cc.mltcp
            tracker = mltcp.tracker
            assert not mltcp.degraded, job.name
            assert tracker.unreliable_reason is None, job.name
            episodes = mltcp.degradation_episodes
            assert len(episodes) == 1, job.name
            assert episodes[0]["end"] is not None, job.name
            # Warmup iterations count for nothing, then K=3 clean ones
            # redeem: the episode must close within the first handful of
            # iterations, not linger to the end of the run.
            config = mltcp.config
            budget = config.drift_warmup_iterations + config.reengage_iterations
            closed_after = sum(
                1
                for record in tracker.completed_iterations
                if record.end_time <= episodes[0]["end"]
            )
            assert closed_after <= budget + 1, job.name

    def test_healthy_run_never_degrades(self):
        result = run_packet_jobs(
            small_jobs(),
            lambda job: MLTCPReno(mltcp_config_for(job)),
            max_iterations=25,
            until=0.4,
            seed=4,
        )
        for job in result.jobs:
            mltcp = result.senders[job.name].cc.mltcp
            assert not mltcp.degraded, job.name
            assert mltcp.degradation_episodes == [], job.name


class TestFaultRecoveryGuarded:
    def test_fluid_fault_recovery_is_violation_free_under_raise(self):
        """Acceptance: the fault_recovery experiment runs violation-free
        with every monitor armed in ``raise`` mode."""
        from repro.harness.experiments import fault_recovery

        rail = GuardRail("raise")
        result = fault_recovery(
            "link_down", "mltcp", "fluid", iterations=40, seed=5, guards=rail
        )
        assert result.recovered
        genuine = [v for v in rail.violations if not v.fallback_engaged]
        assert genuine == []


class TestTelemetryGuardEvents:
    def test_rejects_unknown_kind(self):
        telemetry = RunTelemetry("t")
        with pytest.raises(ValueError, match="guard event kind"):
            telemetry.record_guard_event("explosion", "boom")

    def test_report_partitions_by_kind_and_validates(self):
        telemetry = RunTelemetry("t")
        telemetry.record_guard_event(
            "violation", "cwnd runaway", guard="cwnd-bounds",
            subject="Job1", time=0.25,
        )
        telemetry.record_guard_event(
            "degradation", "degraded to vanilla CC", guard="tracker-sanity",
            subject="Job2", time=0.5, params={"reason": "drift=0.50"},
        )
        telemetry.record_guard_event("watchdog", "point blew its budget")
        report = telemetry.as_report()
        guards = report["guards"]
        assert [e["detail"] for e in guards["violations"]] == ["cwnd runaway"]
        assert [e["subject"] for e in guards["degradations"]] == ["Job2"]
        assert [e["detail"] for e in guards["watchdog_fires"]] == [
            "point blew its budget"
        ]
        assert validate_run_report(report) == []
        assert "guard event(s)" in telemetry.summary_line()

    def test_reports_without_guard_events_omit_nothing_required(self):
        report = RunTelemetry("t").as_report()
        assert report["guards"] == {
            "violations": [], "degradations": [], "watchdog_fires": [],
        }
        assert validate_run_report(report) == []

"""Unit tests for the bandwidth aggressiveness functions (paper §3.1)."""

import math

import pytest

from repro.core.aggressiveness import (
    ConcaveQuadraticAggressiveness,
    ConstantAggressiveness,
    DecreasingLinearAggressiveness,
    DecreasingQuarticAggressiveness,
    LinearAggressiveness,
    PAPER_INTERCEPT,
    PAPER_SLOPE,
    QuadraticAggressiveness,
    ReciprocalAggressiveness,
    default_aggressiveness,
    is_monotone_non_decreasing,
    paper_functions,
)


class TestLinear:
    def test_paper_constants(self):
        f = default_aggressiveness()
        assert f.slope == PAPER_SLOPE == 1.75
        assert f.intercept == PAPER_INTERCEPT == 0.25

    def test_endpoints_match_paper_range(self):
        f = LinearAggressiveness()
        assert f(0.0) == pytest.approx(0.25)
        assert f(1.0) == pytest.approx(2.0)

    def test_midpoint(self):
        f = LinearAggressiveness()
        assert f(0.5) == pytest.approx(1.75 * 0.5 + 0.25)

    def test_custom_slope_intercept(self):
        f = LinearAggressiveness(slope=3.0, intercept=0.5)
        assert f(1.0) == pytest.approx(3.5)

    def test_rejects_non_positive_intercept(self):
        with pytest.raises(ValueError, match="intercept"):
            LinearAggressiveness(intercept=0.0)

    def test_rejects_negative_slope(self):
        with pytest.raises(ValueError, match="slope"):
            LinearAggressiveness(slope=-1.0)

    def test_clamps_out_of_range_ratio(self):
        f = LinearAggressiveness()
        assert f(1.5) == pytest.approx(f(1.0))
        assert f(-0.5) == pytest.approx(f(0.0))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            LinearAggressiveness()(math.nan)


class TestPaperFunctionFamily:
    """The six functions of Figure 3."""

    def test_registry_has_six(self):
        assert set(paper_functions()) == {"F1", "F2", "F3", "F4", "F5", "F6"}

    @pytest.mark.parametrize("key", ["F1", "F2", "F3", "F4", "F5", "F6"])
    def test_shared_range(self, key):
        """All six have range 0.25 – 2 (paper: 'same range (0.25 - 2)')."""
        f = paper_functions()[key]
        values = [f(i / 100) for i in range(101)]
        assert min(values) == pytest.approx(0.25, abs=1e-9)
        assert max(values) == pytest.approx(2.0, abs=1e-9)

    @pytest.mark.parametrize("key", ["F1", "F2", "F3", "F4"])
    def test_increasing_functions(self, key):
        assert paper_functions()[key].is_increasing()

    @pytest.mark.parametrize("key", ["F5", "F6"])
    def test_decreasing_functions(self, key):
        assert not paper_functions()[key].is_increasing()

    def test_f2_quadratic_value(self):
        assert QuadraticAggressiveness()(0.5) == pytest.approx(1.75 * 0.25 + 0.25)

    def test_f3_reciprocal_value(self):
        assert ReciprocalAggressiveness()(0.5) == pytest.approx(1.0 / 2.25)

    def test_f4_concave_value(self):
        f = ConcaveQuadraticAggressiveness()
        assert f(0.5) == pytest.approx(-1.75 * 0.25 + 3.5 * 0.5 + 0.25)

    def test_f5_decreasing_linear(self):
        f = DecreasingLinearAggressiveness()
        assert f(0.0) == pytest.approx(2.0)
        assert f(1.0) == pytest.approx(0.25)

    def test_f6_decreasing_quartic(self):
        f = DecreasingQuarticAggressiveness()
        assert f(0.5) == pytest.approx(-1.75 * 0.5**4 + 2.0)

    def test_range_span_requirement(self):
        """Requirement (i): all paper functions share a 1.75 range span."""
        for f in paper_functions().values():
            assert f.range_span() == pytest.approx(1.75, abs=1e-9)


class TestConstant:
    def test_identity_element(self):
        f = ConstantAggressiveness(1.0)
        assert f(0.0) == f(0.5) == f(1.0) == 1.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            ConstantAggressiveness(0.0)

    def test_constant_counts_as_non_decreasing(self):
        assert ConstantAggressiveness(2.0).is_increasing()


class TestMonotonicityCheck:
    def test_needs_two_samples(self):
        with pytest.raises(ValueError, match="samples"):
            is_monotone_non_decreasing(LinearAggressiveness(), samples=1)

    def test_linear_passes(self):
        assert is_monotone_non_decreasing(LinearAggressiveness())

    def test_decreasing_fails(self):
        assert not is_monotone_non_decreasing(DecreasingLinearAggressiveness())

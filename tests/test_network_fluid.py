"""Tests for the multi-bottleneck fluid simulator and weighted max-min."""

import numpy as np
import pytest

from repro.fluid.network import (
    NetworkFluidSimulator,
    PlacedJob,
    run_network_fluid,
    weighted_max_min,
)
from repro.workloads.presets import gpt2_heavy_job, gpt2_job, gpt3_job


def place(job, *links):
    return PlacedJob(job=job, links=tuple(links))


class TestWeightedMaxMin:
    def test_single_link_equal_weights(self):
        rates = weighted_max_min(
            {"a": (1.0, 100e9, ("l",)), "b": (1.0, 100e9, ("l",))},
            {"l": 50e9},
        )
        assert rates["a"] == pytest.approx(25e9)
        assert rates["b"] == pytest.approx(25e9)

    def test_weights_respected(self):
        rates = weighted_max_min(
            {"a": (3.0, 100e9, ("l",)), "b": (1.0, 100e9, ("l",))},
            {"l": 40e9},
        )
        assert rates["a"] == pytest.approx(30e9)
        assert rates["b"] == pytest.approx(10e9)

    def test_demand_caps_apply(self):
        rates = weighted_max_min(
            {"a": (1.0, 10e9, ("l",)), "b": (1.0, 100e9, ("l",))},
            {"l": 50e9},
        )
        assert rates["a"] == pytest.approx(10e9)
        assert rates["b"] == pytest.approx(40e9)

    def test_multi_link_bottleneck_identified(self):
        """A flow crossing a narrow and a wide link is limited by the
        narrow one; a second flow on the wide link takes the leftover."""
        rates = weighted_max_min(
            {
                "narrowed": (1.0, 100e9, ("narrow", "wide")),
                "wide_only": (1.0, 100e9, ("wide",)),
            },
            {"narrow": 10e9, "wide": 50e9},
        )
        assert rates["narrowed"] == pytest.approx(10e9)
        assert rates["wide_only"] == pytest.approx(40e9)

    def test_no_link_exceeds_capacity(self):
        flows = {
            f"f{i}": (float(i + 1), 30e9, ("x", "y") if i % 2 else ("x",))
            for i in range(5)
        }
        capacities = {"x": 50e9, "y": 20e9}
        rates = weighted_max_min(flows, capacities)
        for link, cap in capacities.items():
            usage = sum(
                rates[fid]
                for fid, (_w, _d, links) in flows.items()
                if link in links
            )
            assert usage <= cap * (1 + 1e-6)

    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError, match="ghost"):
            weighted_max_min({"a": (1.0, 1e9, ("ghost",))}, {"l": 1e9})

    def test_zero_weight_does_not_starve(self):
        rates = weighted_max_min(
            {"zero": (0.0, 100e9, ("l",)), "one": (1.0, 100e9, ("l",))},
            {"l": 50e9},
        )
        assert rates["zero"] > 0.0


class TestSimulatorBasics:
    def test_isolated_job_at_ideal(self):
        placed = place(gpt2_job(jitter_sigma=0.0), "up")
        result = run_network_fluid([placed], {"up": 50.0}, max_iterations=4, seed=None)
        assert result.iteration_times("J2") == pytest.approx(
            np.full(4, 1.8), rel=1e-6
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            NetworkFluidSimulator([], {"l": 50.0})
        with pytest.raises(ValueError, match="no capacity"):
            NetworkFluidSimulator([place(gpt2_job(), "ghost")], {"l": 50.0})
        with pytest.raises(ValueError, match="unique"):
            NetworkFluidSimulator(
                [place(gpt2_job(), "l"), place(gpt2_job(), "l")], {"l": 50.0}
            )
        with pytest.raises(ValueError, match="at least one link"):
            PlacedJob(job=gpt2_job(), links=())
        with pytest.raises(ValueError, match="duplicate"):
            PlacedJob(job=gpt2_job(), links=("l", "l"))


class TestMultiBottleneckConvergence:
    def test_two_independent_uplinks(self):
        """Two congested uplinks interleave independently under MLTCP."""
        placements = []
        for g, up in ((0, "up0"), (1, "up1")):
            for k in range(2):
                job = gpt2_heavy_job(jitter_sigma=0.005).with_name(f"G{g}J{k}")
                placements.append(place(job, up))
        caps = {"up0": 50.0, "up1": 50.0}
        mltcp = run_network_fluid(placements, caps, mltcp=True, max_iterations=40, seed=1)
        fair = run_network_fluid(placements, caps, mltcp=False, max_iterations=40, seed=1)
        assert mltcp.mean_iteration_by_round()[-5:].mean() == pytest.approx(1.8, rel=0.02)
        assert fair.mean_iteration_by_round()[-5:].mean() > 2.2

    def test_shared_spine_plus_private_uplinks(self):
        """Jobs crossing both a private uplink and a shared spine port: the
        sliding must resolve contention on every traversed link."""
        j1 = gpt3_job(jitter_sigma=0.005)
        j2 = gpt2_job(jitter_sigma=0.005).with_name("J2")
        j3 = gpt2_job(jitter_sigma=0.005).with_name("J3")
        placements = [
            place(j1, "up0", "spine"),
            place(j2, "up1", "spine"),
            place(j3, "up1", "spine"),
        ]
        caps = {"up0": 50.0, "up1": 50.0, "spine": 50.0}
        result = run_network_fluid(placements, caps, mltcp=True, max_iterations=60, seed=2)
        assert result.iteration_times("J1")[-10:].mean() == pytest.approx(1.2, rel=0.05)
        assert result.iteration_times("J2")[-10:].mean() == pytest.approx(1.8, rel=0.05)
        assert result.iteration_times("J3")[-10:].mean() == pytest.approx(1.8, rel=0.05)

    def test_heterogeneous_capacities(self):
        """A slower uplink stretches only its own jobs."""
        fast = gpt2_heavy_job(jitter_sigma=0.005).with_name("Fast")
        slow = gpt2_heavy_job(jitter_sigma=0.005).with_name("Slow")
        result = run_network_fluid(
            [place(fast, "big"), place(slow, "small")],
            {"big": 50.0, "small": 20.0},
            mltcp=True,
            max_iterations=20,
            seed=1,
        )
        fast_mean = result.iteration_times("Fast")[-5:].mean()
        slow_mean = result.iteration_times("Slow")[-5:].mean()
        assert fast_mean == pytest.approx(1.8, rel=0.03)
        # 36 Gbit over 20 Gbps = 1.8 s comm + 0.9 s compute = 2.7 s.
        assert slow_mean == pytest.approx(2.7, rel=0.03)

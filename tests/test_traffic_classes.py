"""Tests for per-class CC selection and latency-sensitive request traffic."""

import numpy as np
import pytest

from repro.simulator.app import RequestApp, TrainingApp
from repro.simulator.engine import Simulator
from repro.simulator.queues import DropTailQueue
from repro.simulator.topology import build_dumbbell
from repro.tcp.base import TcpReceiver, TcpSender
from repro.tcp.classes import (
    LATENCY_AGGRESSIVENESS,
    TrafficClassRegistry,
    default_registry,
)
from repro.tcp.mltcp import MLTCPReno
from repro.tcp.reno import RenoCC
from repro.workloads.job import JobSpec


class TestRegistry:
    def test_default_classes(self):
        registry = default_registry()
        assert registry.classes() == ["latency", "legacy", "ml"]

    def test_ml_class_uses_job_shape(self):
        job = JobSpec("J", comm_bits=8e6, demand_gbps=1.0, compute_time=0.01)
        cc = default_registry().create("ml", job)
        assert isinstance(cc, MLTCPReno)
        assert cc.mltcp.config.total_bytes == job.comm_bytes

    def test_ml_class_without_job_learns_online(self):
        cc = default_registry().create("ml")
        assert isinstance(cc, MLTCPReno)
        assert cc.mltcp.config.total_bytes is None

    def test_legacy_class_is_plain_reno(self):
        cc = default_registry().create("legacy")
        assert type(cc) is RenoCC

    def test_latency_class_has_large_constant_weight(self):
        cc = default_registry().create("latency")
        assert isinstance(cc, MLTCPReno)
        assert cc.mltcp.config.function(0.0) == LATENCY_AGGRESSIVENESS
        assert cc.mltcp.config.function(1.0) == LATENCY_AGGRESSIVENESS

    def test_unknown_class_rejected(self):
        with pytest.raises(KeyError, match="unknown traffic class"):
            default_registry().create("bulk")

    def test_custom_registration(self):
        registry = TrafficClassRegistry()
        registry.register("mine", lambda job: RenoCC())
        assert type(registry.create("mine")) is RenoCC

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            TrafficClassRegistry().register("", lambda job: RenoCC())


class TestRequestApp:
    def _wire(self, cc, **app_kwargs):
        sim = Simulator()
        net = build_dumbbell(sim, 1, bottleneck_bps=1e9)
        sender = TcpSender(sim, net.hosts["s0"], "rpc", "r0", cc)
        TcpReceiver(sim, net.hosts["r0"], "rpc", "s0")
        app = RequestApp(sim, sender, **app_kwargs)
        return sim, app

    def test_requests_complete(self):
        sim, app = self._wire(
            RenoCC(), request_bytes=100_000, interval=0.01, max_requests=5
        )
        app.start()
        sim.run(until=1.0)
        assert app.completed == 5

    def test_fct_reasonable_in_isolation(self):
        sim, app = self._wire(
            RenoCC(), request_bytes=100_000, interval=0.01, max_requests=5
        )
        app.start()
        sim.run(until=1.0)
        # 100 KB at 1 Gbps is ~0.85 ms; slow start stretches it somewhat.
        assert app.fct().max() < 0.01

    def test_poisson_arrivals(self):
        sim, app = self._wire(
            RenoCC(),
            request_bytes=50_000,
            interval=0.01,
            max_requests=10,
            poisson=True,
            rng=np.random.default_rng(1),
        )
        app.start()
        sim.run(until=2.0)
        assert app.completed == 10

    def test_validation(self):
        with pytest.raises(ValueError, match="request_bytes"):
            self._wire(RenoCC(), request_bytes=0, interval=0.01)
        with pytest.raises(ValueError, match="interval"):
            self._wire(RenoCC(), request_bytes=1000, interval=0.0)
        with pytest.raises(ValueError, match="max_requests"):
            self._wire(RenoCC(), request_bytes=1000, interval=0.01, max_requests=0)

    def test_start_twice_rejected(self):
        sim, app = self._wire(
            RenoCC(), request_bytes=1000, interval=0.01, max_requests=1
        )
        app.start()
        with pytest.raises(RuntimeError, match="already started"):
            app.start()


class TestMixedTraffic:
    def _mixed_run(self, latency_class: str, seed=3):
        """One ML job plus one RPC stream sharing the bottleneck."""
        registry = default_registry()
        sim = Simulator()
        net = build_dumbbell(
            sim, 2, bottleneck_bps=1e9, bottleneck_queue=DropTailQueue(64)
        )
        job = JobSpec(
            "ML", comm_bits=8e6, demand_gbps=1.0, compute_time=0.004,
            jitter_sigma=0.0003,
        )
        ml_sender = TcpSender(
            sim, net.hosts["s0"], "ML", "r0", registry.create("ml", job)
        )
        TcpReceiver(sim, net.hosts["r0"], "ML", "s0")
        ml_app = TrainingApp(
            sim, ml_sender, job, max_iterations=None, rng=np.random.default_rng(seed)
        )
        ml_app.start()

        rpc_sender = TcpSender(
            sim, net.hosts["s1"], "rpc", "r1", registry.create(latency_class)
        )
        TcpReceiver(sim, net.hosts["r1"], "rpc", "s1")
        rpc_app = RequestApp(
            sim, rpc_sender, request_bytes=200_000, interval=0.004,
            max_requests=60, rng=np.random.default_rng(seed),
        )
        rpc_app.start()
        sim.run(until=2.0)
        return rpc_app.fct()

    def test_latency_class_beats_legacy_for_shorts(self):
        """§5: the 'larger values' function lets latency traffic grab
        bandwidth from the ML bulk flows, cutting its tail FCT."""
        legacy_fct = self._mixed_run("legacy")
        latency_fct = self._mixed_run("latency")
        assert len(legacy_fct) > 20 and len(latency_fct) > 20
        assert np.percentile(latency_fct, 90) < 0.9 * np.percentile(legacy_fct, 90)

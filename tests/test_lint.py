"""Tests for the ``repro lint`` analyzer: per-rule fixtures, suppressions,
CLI exit codes — and the acceptance gate that the repo's own ``src/`` tree
is clean."""

from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import ALL_RULES, lint_paths, lint_source, rule_by_code

#: Default fixture path — inside the fluid/ scope so every rule family
#: (including the scoped ones) is active.
FLUID = "src/repro/fluid/fixture.py"
#: A path outside every scope restriction but inside none of the exemptions.
NEUTRAL = "src/repro/workloads/fixture.py"


def codes(source: str, path: str = FLUID) -> list[str]:
    """Rule codes found in ``source`` when linted as ``path``."""
    return [f.code for f in lint_source(source, path, ALL_RULES)]


class TestDeterminismRules:
    def test_det001_flags_global_random_calls(self):
        src = "import random\nx = random.random()\ny = random.randint(0, 3)\n"
        assert codes(src) == ["DET001", "DET001"]

    def test_det001_allows_seeded_instances(self):
        src = (
            "import random\n"
            "rng = random.Random(42)\n"
            "x = rng.random()\n"
            "y = rng.randint(0, 3)\n"
        )
        assert codes(src) == []

    def test_det002_flags_wall_clock_in_simulation_code(self):
        src = "import time\nt0 = time.perf_counter()\nt1 = time.time()\n"
        assert codes(src, "src/repro/simulator/fixture.py") == [
            "DET002", "DET002",
        ]

    def test_det002_flags_datetime_now(self):
        src = "from datetime import datetime\nstamp = datetime.now()\n"
        assert codes(src) == ["DET002"]

    def test_det002_allows_harness_layer(self):
        src = "import time\nt0 = time.perf_counter()\n"
        assert codes(src, "src/repro/harness/telemetry.py") == []

    def test_det003_flags_legacy_numpy_global_rng(self):
        src = "import numpy as np\nnp.random.seed(1)\nx = np.random.normal()\n"
        assert codes(src) == ["DET003", "DET003"]

    def test_det003_allows_default_rng(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
            "x = rng.normal()\n"
        )
        assert codes(src) == []

    def test_det004_flags_float_sum_over_set(self):
        # The water_fill bug shape: summation order over a set reaches the
        # allocation result.
        src = (
            "def f(weights, demands):\n"
            "    unsat = {fid for fid in demands}\n"
            "    return sum(weights[fid] for fid in unsat)\n"
        )
        assert codes(src) == ["DET004"]

    def test_det004_flags_for_loop_and_subscripted_dict_of_sets(self):
        src = (
            "def f(items):\n"
            "    members: dict[str, set[str]] = {}\n"
            "    chosen = set(items)\n"
            "    out = []\n"
            "    for x in chosen:\n"
            "        out.append(x)\n"
            "    picked = [f for f in members['k']]\n"
            "    return out, picked\n"
        )
        assert codes(src) == ["DET004", "DET004"]

    def test_det004_allows_sorted_iteration_and_set_building(self):
        src = (
            "def f(weights, demands):\n"
            "    unsat = {fid for fid in demands}\n"
            "    capped = {fid for fid in unsat if weights[fid] > 0}\n"
            "    return sum(weights[fid] for fid in sorted(unsat)), capped\n"
        )
        assert codes(src) == []

    def test_det004_out_of_scope_paths_are_ignored(self):
        src = "def f(xs):\n    s = set(xs)\n    return [x for x in s]\n"
        assert codes(src, "src/repro/harness/fixture.py") == []

    def test_det005_flags_mutable_defaults(self):
        src = (
            "def f(a, log=[]):\n    return log\n"
            "def g(*, cache={}):\n    return cache\n"
            "def h(s=set()):\n    return s\n"
        )
        assert codes(src) == ["DET005", "DET005", "DET005"]

    def test_det005_allows_none_default(self):
        src = "def f(a, log=None):\n    return log or []\n"
        assert codes(src) == []


class TestFloatRule:
    def test_flt001_flags_float_equality(self):
        src = "def f(rate):\n    return rate == 0.0\n"
        assert codes(src) == ["FLT001"]

    def test_flt001_flags_suffixed_identifiers(self):
        src = "def f(a_time, b_time):\n    return a_time != b_time\n"
        assert codes(src) == ["FLT001"]

    def test_flt001_allows_ordered_comparison_and_int_equality(self):
        src = (
            "def f(rate, seq, expected_seq):\n"
            "    return rate <= 0.0 or seq == expected_seq\n"
        )
        assert codes(src) == []

    def test_flt001_scoped_to_simulation_packages(self):
        src = "def f(rate):\n    return rate == 0.0\n"
        assert codes(src, NEUTRAL) == []


class TestUnitRules:
    def test_unt001_flags_cross_unit_assignment(self):
        src = "def f(capacity_gbps):\n    capacity_bps = capacity_gbps * 1e9\n    return capacity_bps\n"
        assert codes(src) == ["UNT001"]

    def test_unt001_flags_bits_bytes_crossing(self):
        src = "def f(payload_bytes):\n    total_bits = payload_bytes * 8\n    return total_bits\n"
        assert codes(src) == ["UNT001"]

    def test_unt001_allows_named_converter(self):
        src = (
            "from repro.core.units import bps_from_gbps\n"
            "def f(capacity_gbps):\n"
            "    capacity_bps = bps_from_gbps(capacity_gbps)\n"
            "    return capacity_bps\n"
        )
        assert codes(src) == []

    def test_unt001_allows_same_unit(self):
        src = "def f(demand_bps):\n    rate_bps = demand_bps / 2\n    return rate_bps\n"
        assert codes(src) == []

    def test_unt002_flags_cross_unit_kwarg(self):
        src = "def f(run, payload_bytes):\n    run(total_bits=payload_bytes)\n"
        assert codes(src) == ["UNT002"]

    def test_unt002_allows_converter_at_call_site(self):
        src = (
            "from repro.core.units import bits_from_bytes\n"
            "def f(run, payload_bytes):\n"
            "    run(total_bits=bits_from_bytes(payload_bytes))\n"
        )
        assert codes(src) == []


class TestHygieneRules:
    def test_sim001_flags_clock_mutation(self):
        src = (
            "def handler(self):\n"
            "    self.sim.now = 5.0\n"
            "def other(engine, dt):\n"
            "    engine.now += dt\n"
        )
        assert codes(src) == ["SIM001", "SIM001"]

    def test_sim001_exempts_the_engine_itself(self):
        src = "def _advance(self, t):\n    self.now = t\n"
        assert codes(src, "src/repro/simulator/engine.py") == []

    def test_sim002_flags_storing_popped_events(self):
        src = (
            "import heapq\n"
            "def handler(self):\n"
            "    self.last_event = heapq.heappop(self._heap)\n"
        )
        assert codes(src, "src/repro/simulator/fixture.py") == ["SIM002"]

    def test_sim002_flags_appending_popped_events(self):
        src = (
            "import heapq\n"
            "def handler(self):\n"
            "    self.history.append(heapq.heappop(self._heap))\n"
        )
        assert codes(src, "src/repro/simulator/fixture.py") == ["SIM002"]

    def test_sim002_allows_local_use(self):
        src = (
            "import heapq\n"
            "def handler(self):\n"
            "    event = heapq.heappop(self._heap)\n"
            "    event.callback()\n"
        )
        assert codes(src, "src/repro/simulator/fixture.py") == []


class TestPerfRule:
    _DATACLASS_PREFIX = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Entry:\n"
        "    t: float\n"
    )

    def test_prf001_flags_dataclass_in_event_handler(self):
        src = self._DATACLASS_PREFIX + (
            "def on_packet(self, pkt):\n"
            "    return Entry(t=0.0)\n"
        )
        assert codes(src) == ["PRF001"]

    def test_prf001_flags_dispatch_and_allocate(self):
        src = self._DATACLASS_PREFIX + (
            "def _dispatch(self):\n"
            "    e = Entry(1.0)\n"
            "    return e\n"
            "def allocate(self, flows, capacity_bps):\n"
            "    return [Entry(t=f) for f in flows]\n"
        )
        assert codes(src) == ["PRF001", "PRF001"]

    def test_prf001_flags_dataclasses_replace(self):
        src = (
            "import dataclasses\n"
            "def on_ack(self, state):\n"
            "    return dataclasses.replace(state, cwnd=1.0)\n"
        )
        assert codes(src) == ["PRF001"]

    def test_prf001_allows_construction_outside_hot_functions(self):
        src = self._DATACLASS_PREFIX + (
            "def build_schedule():\n"
            "    return Entry(t=0.0)\n"
        )
        assert codes(src) == []

    def test_prf001_allows_non_dataclass_calls_in_hot_functions(self):
        src = (
            "def allocate(self, flows, capacity_bps):\n"
            "    rates = dict()\n"
            "    return sorted(rates)\n"
        )
        assert codes(src) == []

    def test_prf001_scoped_to_simulator_and_fluid(self):
        src = self._DATACLASS_PREFIX + (
            "def on_packet(self, pkt):\n"
            "    return Entry(t=0.0)\n"
        )
        assert codes(src, NEUTRAL) == []
        assert codes(src, "src/repro/harness/fixture.py") == []

    def test_prf001_suppressible_in_place(self):
        src = self._DATACLASS_PREFIX + (
            "def on_packet(self, pkt):\n"
            "    return Entry(t=0.0)  # repro-lint: disable=PRF001\n"
        )
        assert codes(src) == []


class TestHotPathFlowLoopRule:
    _MARKER = "# repro-lint: hot-path-module\n"

    def test_prf002_flags_loop_over_annotated_flow_param(self):
        src = self._MARKER + (
            "def allocate(self, flows: 'Sequence[FlowView]', capacity_bps):\n"
            "    for f in flows:\n"
            "        f.sent_bits += 1.0\n"
        )
        assert codes(src) == ["PRF002"]

    def test_prf002_tracks_sequence_wrappers_slices_and_assignment(self):
        src = self._MARKER + (
            "def sweep(self, flows: 'list[FlowView]'):\n"
            "    ordered = sorted(flows)\n"
            "    head = ordered[:4]\n"
            "    for f in head:\n"
            "        f.remaining_bits = 0.0\n"
        )
        assert codes(src) == ["PRF002"]

    def test_prf002_seeds_from_annassign_and_comprehension(self):
        src = self._MARKER + (
            "def build(self, jobs):\n"
            "    views: list[FlowView] = []\n"
            "    for v in views:\n"
            "        v.demand_bps = 1.0\n"
            "def make(self, jobs):\n"
            "    views = [FlowView(j) for j in jobs]\n"
            "    for v in views:\n"
            "        v.demand_bps = 1.0\n"
        )
        assert codes(src) == ["PRF002", "PRF002"]

    def test_prf002_ignores_unmarked_modules(self):
        src = (
            "def allocate(self, flows: 'Sequence[FlowView]', capacity_bps):\n"
            "    for f in flows:\n"
            "        f.sent_bits += 1.0\n"
        )
        assert codes(src) == []

    def test_prf002_mapping_annotations_iterate_keys_not_flows(self):
        src = self._MARKER + (
            "def allocate(self, flows: 'Sequence[FlowView]', capacity_bps):\n"
            "    levels: dict[int, list[FlowView]] = {}\n"
            "    for level in sorted(levels):\n"
            "        pass\n"
        )
        assert codes(src) == []

    def test_prf002_ignores_non_flow_loops_in_marked_modules(self):
        src = self._MARKER + (
            "def allocate(self, flows: 'Sequence[FlowView]', capacity_bps):\n"
            "    for i in range(3):\n"
            "        pass\n"
            "    for name in ['a', 'b']:\n"
            "        pass\n"
        )
        assert codes(src) == []

    def test_prf002_scoped_to_repro_packages(self):
        src = self._MARKER + (
            "def allocate(self, flows: 'Sequence[FlowView]', capacity_bps):\n"
            "    for f in flows:\n"
            "        f.sent_bits += 1.0\n"
        )
        assert codes(src, "scripts/fixture.py") == []

    def test_prf002_suppressible_in_place(self):
        src = self._MARKER + (
            "def allocate(self, flows: 'Sequence[FlowView]', capacity_bps):\n"
            "    for f in flows:  # repro-lint: disable=PRF002\n"
            "        f.sent_bits += 1.0\n"
        )
        assert codes(src) == []


class TestGuardRule:
    def test_grd001_flags_bare_except_without_reraise(self):
        src = (
            "try:\n"
            "    risky()\n"
            "except:\n"
            "    cleanup()\n"
        )
        assert codes(src, path=NEUTRAL) == ["GRD001"]

    def test_grd001_allows_bare_except_that_reraises(self):
        src = (
            "try:\n"
            "    risky()\n"
            "except:\n"
            "    cleanup()\n"
            "    raise\n"
        )
        assert codes(src, path=NEUTRAL) == []

    def test_grd001_flags_exception_pass(self):
        src = (
            "try:\n"
            "    risky()\n"
            "except Exception:\n"
            "    pass\n"
        )
        assert codes(src, path=NEUTRAL) == ["GRD001"]

    def test_grd001_flags_base_exception_and_tuples(self):
        src = (
            "try:\n"
            "    risky()\n"
            "except (ValueError, BaseException):\n"
            "    continue\n"
        )
        # Wrap in a loop so `continue` parses.
        src = "for _ in items:\n" + "\n".join(
            "    " + line for line in src.splitlines()
        ) + "\n"
        assert codes(src, path=NEUTRAL) == ["GRD001"]

    def test_grd001_allows_handled_catch_all(self):
        src = (
            "try:\n"
            "    risky()\n"
            "except Exception:\n"
            "    return False\n"
        )
        src = "def f():\n" + "\n".join(
            "    " + line for line in src.splitlines()
        ) + "\n"
        assert codes(src, path=NEUTRAL) == []

    def test_grd001_allows_narrow_swallow(self):
        src = (
            "try:\n"
            "    risky()\n"
            "except OSError:\n"
            "    pass\n"
        )
        assert codes(src, path=NEUTRAL) == []

    def test_grd001_suppressible_in_place(self):
        src = (
            "try:\n"
            "    risky()\n"
            "except Exception:  # repro-lint: disable=GRD001\n"
            "    pass\n"
        )
        assert codes(src, path=NEUTRAL) == []


class TestUnrecordedFaultHandlerRule:
    FAULTS = "src/repro/faults/fixture.py"

    def test_grd002_flags_narrow_swallow_in_faults_package(self):
        src = (
            "try:\n"
            "    risky()\n"
            "except OSError:\n"
            "    fallback()\n"
        )
        assert codes(src, path=self.FAULTS) == ["GRD002"]

    def test_grd002_flags_fault_named_function_anywhere(self):
        src = (
            "def apply_reroute(network):\n"
            "    try:\n"
            "        network.install()\n"
            "    except KeyError:\n"
            "        return None\n"
        )
        assert codes(src, path=NEUTRAL) == ["GRD002"]

    def test_grd002_allows_reraise(self):
        src = (
            "def arm_fault(sim):\n"
            "    try:\n"
            "        sim.schedule()\n"
            "    except ValueError:\n"
            "        raise\n"
        )
        assert codes(src, path=NEUTRAL) == []

    def test_grd002_allows_recording_call(self):
        src = (
            "def replay_chaos(rail):\n"
            "    try:\n"
            "        strike()\n"
            "    except ValueError as error:\n"
            "        rail.violation('route-liveness', 'spine0', 0.0, str(error))\n"
        )
        assert codes(src, path=NEUTRAL) == []

    def test_grd002_allows_telemetry_recorders_and_cli_fail(self):
        src = (
            "def run_faults(telemetry):\n"
            "    try:\n"
            "        strike()\n"
            "    except ValueError as error:\n"
            "        telemetry.record_degradation('fault', str(error))\n"
            "    try:\n"
            "        reroute()\n"
            "    except OSError as error:\n"
            "        return fail(str(error))\n"
        )
        assert codes(src, path=NEUTRAL) == []

    def test_grd002_ignores_functions_without_fault_names(self):
        src = (
            "def load_config(path):\n"
            "    try:\n"
            "        return read(path)\n"
            "    except OSError:\n"
            "        return None\n"
        )
        assert codes(src, path=NEUTRAL) == []

    def test_grd002_default_is_not_a_fault_name(self):
        src = (
            "def json_default(value):\n"
            "    try:\n"
            "        return value.item()\n"
            "    except Exception:\n"
            "        return repr(value)\n"
        )
        assert codes(src, path=NEUTRAL) == []

    def test_grd002_suppressible_in_place(self):
        src = (
            "def clear_faults(state):\n"
            "    try:\n"
            "        state.reset()\n"
            "    except KeyError:  # repro-lint: disable=GRD002\n"
            "        return None\n"
        )
        assert codes(src, path=NEUTRAL) == []


class TestSuppressions:
    def test_line_suppression_drops_the_finding(self):
        src = "import random\nx = random.random()  # repro-lint: disable=DET001\n"
        assert codes(src) == []

    def test_line_suppression_is_code_specific(self):
        # The FLT001 directive does not hide DET001 — and, silencing
        # nothing, it is itself flagged as an unused suppression.
        src = "import random\nx = random.random()  # repro-lint: disable=FLT001\n"
        assert codes(src) == ["DET001", "SUP001"]

    def test_line_suppression_all(self):
        src = "import random\nx = random.random()  # repro-lint: disable=all\n"
        assert codes(src) == []

    def test_file_suppression(self):
        src = (
            "# repro-lint: disable-file=DET001\n"
            "import random\n"
            "x = random.random()\n"
            "y = random.uniform(0, 1)\n"
        )
        assert codes(src) == []

    def test_multiple_codes_one_comment(self):
        src = (
            "import random\n"
            "def f(rate):\n"
            "    x = random.random() == 0.0  # repro-lint: disable=DET001,FLT001\n"
            "    return x\n"
        )
        assert codes(src) == []

    def test_unused_line_suppression_is_flagged(self):
        src = "x = 1  # repro-lint: disable=DET001\n"
        findings = lint_source(src, FLUID, ALL_RULES)
        assert [f.code for f in findings] == ["SUP001"]
        assert findings[0].col == src.index("#")
        assert "unused suppression" in findings[0].message

    def test_unused_file_suppression_is_flagged(self):
        src = "# repro-lint: disable-file=DET001\nx = 1\n"
        findings = lint_source(src, FLUID, ALL_RULES)
        assert [f.code for f in findings] == ["SUP001"]
        assert "in this file" in findings[0].message

    def test_partially_used_multi_code_directive(self):
        # DET001 fires and is silenced; FLT001 never fires, so only the
        # FLT001 half of the directive is reported stale.
        src = "import random\nrandom.random()  # repro-lint: disable=DET001,FLT001\n"
        findings = lint_source(src, FLUID, ALL_RULES)
        assert [f.code for f in findings] == ["SUP001"]
        assert "FLT001" in findings[0].message

    def test_unused_disable_all_is_flagged(self):
        src = "x = 1  # repro-lint: disable=all\n"
        assert codes(src) == ["SUP001"]

    def test_used_disable_all_is_not_flagged(self):
        src = "import random\nrandom.random()  # repro-lint: disable=all\n"
        assert codes(src) == []

    def test_unselected_code_gets_benefit_of_the_doubt(self):
        # Under --select DET001, an FLT001 directive cannot prove itself
        # useful, so SUP001 stays quiet about it.
        from repro.lint.engine import SUPPRESSION_RULE

        rules = (rule_by_code("DET001"), SUPPRESSION_RULE)
        src = "x = 0.1 == 0.2  # repro-lint: disable=FLT001\n"
        assert [f.code for f in lint_source(src, FLUID, rules)] == []

    def test_file_and_line_suppressions_both_count_as_used(self):
        # A finding covered by both a file-wide and a line directive marks
        # both used — neither is reported stale.
        src = (
            "# repro-lint: disable-file=DET001\n"
            "import random\n"
            "random.random()  # repro-lint: disable=DET001\n"
        )
        assert codes(src) == []

    def test_directive_shaped_docstring_text_is_inert(self):
        # Directive syntax inside a docstring neither suppresses nor
        # counts as a (stale) suppression: directives live in comments.
        src = (
            '"""Example: ``# repro-lint: disable=DET001`` silences a line."""\n'
            "import random\n"
            "random.random()\n"
        )
        assert codes(src) == ["DET001"]

    def test_sup001_is_itself_suppressible(self):
        src = "x = 1  # repro-lint: disable=DET001,SUP001\n"
        assert codes(src) == []


class TestAliasDataflow:
    def test_from_import_of_global_random_fn(self):
        src = "from random import shuffle\nshuffle([1, 2])\n"
        assert codes(src) == ["DET001"]

    def test_from_import_with_asname(self):
        src = "from random import randint as ri\nri(0, 3)\n"
        assert codes(src) == ["DET001"]

    def test_module_alias_through_assignment(self):
        src = "import random\nr = random\nr.seed(1)\n"
        assert codes(src) == ["DET001"]

    def test_transitive_assignment_chain(self):
        src = "import random\nr = random\ns = r\ns.random()\n"
        assert codes(src) == ["DET001"]

    def test_alias_cycle_does_not_hang(self):
        src = "a = b\nb = a\na.c()\n"
        assert codes(src, NEUTRAL) == []

    def test_seeded_instance_still_allowed_through_alias(self):
        src = "import random\nr = random\ngen = r.Random(7)\ngen.random()\n"
        assert codes(src) == []

    def test_wall_clock_from_import(self):
        src = "from time import monotonic\nmonotonic()\n"
        assert codes(src) == ["DET002"]

    def test_wall_clock_alias_exempt_in_harness(self):
        src = "from time import monotonic\nmonotonic()\n"
        assert codes(src, "src/repro/harness/fixture.py") == []

    def test_numpy_alias_resolution(self):
        src = "import numpy as np\nnp.random.normal(0, 1)\n"
        assert codes(src) == ["DET003"]

    def test_numpy_random_module_from_import(self):
        src = "from numpy import random as nr\nnr.normal(0, 1)\n"
        assert codes(src) == ["DET003"]

    def test_finding_message_names_both_spellings(self):
        src = "from random import shuffle\nshuffle([1, 2])\n"
        (finding,) = lint_source(src, FLUID, ALL_RULES)
        assert "shuffle()" in finding.message
        assert "random.shuffle" in finding.message


class TestModelDriftRule:
    VERIFY = "src/repro/verify/fixture.py"

    def test_in_sync_constant_is_clean(self):
        src = "SLOPE = 1.75  # mdl: mirrors repro.core.aggressiveness.PAPER_SLOPE\n"
        assert codes(src, self.VERIFY) == []

    def test_drifted_constant_is_flagged(self):
        src = "SLOPE = 2.5  # mdl: mirrors repro.core.aggressiveness.PAPER_SLOPE\n"
        findings = lint_source(src, self.VERIFY, ALL_RULES)
        assert [f.code for f in findings] == ["MDL001"]
        assert "drift" in findings[0].message
        assert "1.75" in findings[0].message

    def test_class_attribute_target(self):
        src = (
            "DRIFT = 0.45"
            "  # mdl: mirrors repro.core.config.MLTCPConfig.drift_threshold\n"
        )
        assert codes(src, self.VERIFY) == []

    def test_unresolvable_target_is_flagged(self):
        src = "X = 1.0  # mdl: mirrors repro.core.no_such_module.NOPE\n"
        findings = lint_source(src, self.VERIFY, ALL_RULES)
        assert [f.code for f in findings] == ["MDL001"]
        assert "unresolvable" in findings[0].message

    def test_rule_is_scoped_to_verify(self):
        src = "SLOPE = 2.5  # mdl: mirrors repro.core.aggressiveness.PAPER_SLOPE\n"
        assert codes(src, NEUTRAL) == []

    def test_model_module_mirrors_are_in_sync(self):
        """Acceptance criterion: the real verify/model.py passes MDL001."""
        model = (
            Path(__file__).resolve().parent.parent
            / "src" / "repro" / "verify" / "model.py"
        )
        findings = lint_source(
            model.read_text(), str(model), (rule_by_code("MDL001"),)
        )
        assert findings == []


class TestAsynchronyRule:
    """ASY001: no blocking calls inside `async def` bodies."""

    def test_time_sleep_in_async_flagged(self):
        src = (
            "import time\n"
            "async def poll():\n"
            "    time.sleep(1.0)\n"
        )
        assert codes(src, NEUTRAL) == ["ASY001"]

    def test_aliased_sleep_resolved(self):
        src = (
            "from time import sleep\n"
            "async def poll():\n"
            "    sleep(1.0)\n"
        )
        assert codes(src, NEUTRAL) == ["ASY001"]

    def test_open_in_async_flagged(self):
        src = (
            "async def dump(path):\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n"
        )
        assert codes(src, NEUTRAL) == ["ASY001"]

    def test_path_write_text_in_async_flagged(self):
        src = (
            "async def dump(path, blob):\n"
            "    path.write_text(blob)\n"
        )
        assert codes(src, NEUTRAL) == ["ASY001"]

    def test_sleep_in_sync_function_clean(self):
        src = (
            "import time\n"
            "def backoff():\n"
            "    time.sleep(1.0)\n"
        )
        assert codes(src, NEUTRAL) == []

    def test_nested_sync_function_not_flagged(self):
        """A sync helper defined inside a coroutine runs wherever it is
        *called* — flagging its definition site would be guessing."""
        src = (
            "import time\n"
            "async def poll():\n"
            "    def blocking():\n"
            "        time.sleep(1.0)\n"
            "    return blocking\n"
        )
        assert codes(src, NEUTRAL) == []

    def test_async_sleep_clean(self):
        src = (
            "import asyncio\n"
            "async def poll():\n"
            "    await asyncio.sleep(1.0)\n"
        )
        assert codes(src, NEUTRAL) == []

    def test_deeply_nested_blocking_call_flagged(self):
        src = (
            "import time\n"
            "async def poll(items):\n"
            "    for item in items:\n"
            "        if item:\n"
            "            time.sleep(0.1)\n"
        )
        assert codes(src, NEUTRAL) == ["ASY001"]

    def test_suppression_comment(self):
        src = (
            "import time\n"
            "async def poll():\n"
            "    time.sleep(1.0)  # repro-lint: disable=ASY001 -- test shim\n"
        )
        assert codes(src, NEUTRAL) == []


class TestRuleCatalog:
    def test_codes_are_unique_and_documented(self):
        seen = [rule.code for rule in ALL_RULES]
        assert len(seen) == len(set(seen))
        for rule in ALL_RULES:
            assert rule.summary and rule.rationale

    def test_rule_by_code_roundtrip(self):
        for rule in ALL_RULES:
            assert rule_by_code(rule.code) is rule

    def test_rule_by_code_unknown(self):
        with pytest.raises(KeyError):
            rule_by_code("XYZ999")

    def test_every_rule_is_catalogued_in_docs(self):
        doc = (
            Path(__file__).resolve().parent.parent / "docs" / "LINTING.md"
        ).read_text()
        for rule in ALL_RULES:
            assert rule.code in doc, f"{rule.code} missing from docs/LINTING.md"


class TestCli:
    def _write(self, tmp_path, name, source):
        path = tmp_path / name
        path.write_text(source)
        return path

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, "ok.py", "x = 1\n")
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr()
        assert "no findings" in out.out and out.err == ""

    def test_findings_exit_one_on_stderr(self, tmp_path, capsys):
        path = self._write(
            tmp_path, "bad.py", "import random\nx = random.random()\n"
        )
        assert main(["lint", str(path)]) == 1
        err = capsys.readouterr().err
        assert "DET001" in err and "1 finding(s)" in err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.py")]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        path = self._write(tmp_path, "broken.py", "def f(:\n")
        assert main(["lint", str(path)]) == 2
        assert "repro: error: cannot parse" in capsys.readouterr().err

    def test_select_restricts_rules(self, tmp_path, capsys):
        path = self._write(
            tmp_path, "bad.py", "import random\nx = random.random()\n"
        )
        assert main(["lint", "--select", "DET005", str(path)]) == 0
        capsys.readouterr()

    def test_ignore_drops_rules(self, tmp_path, capsys):
        path = self._write(
            tmp_path, "bad.py", "import random\nx = random.random()\n"
        )
        assert main(["lint", "--ignore", "DET001", str(path)]) == 0
        capsys.readouterr()

    def test_unknown_code_exits_two(self, tmp_path, capsys):
        path = self._write(tmp_path, "ok.py", "x = 1\n")
        assert main(["lint", "--select", "NOPE", str(path)]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.code in out

    def test_json_output_findings(self, tmp_path, capsys):
        import json

        path = self._write(
            tmp_path, "bad.py", "import random\nx = random.random()\n"
        )
        assert main(["lint", "--json", str(path)]) == 1
        out = capsys.readouterr()
        payload = json.loads(out.out)
        assert out.err == ""  # machine mode: stdout only
        assert len(payload) == 1
        entry = payload[0]
        assert entry["code"] == "DET001"
        assert entry["path"] == str(path)
        assert entry["line"] == 2
        assert set(entry) == {"path", "line", "col", "code", "message"}

    def test_json_output_clean(self, tmp_path, capsys):
        import json

        path = self._write(tmp_path, "ok.py", "x = 1\n")
        assert main(["lint", "--json", str(path)]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_directory_walk(self, tmp_path, capsys):
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "a.py").write_text("x = 1\n")
        (sub / "b.py").write_text("import random\ny = random.choice([1])\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "b.py" in capsys.readouterr().err


class TestRepoIsClean:
    def test_src_tree_has_no_findings(self):
        """Acceptance criterion: `repro lint src/` exits 0 on the tree."""
        src = Path(__file__).resolve().parent.parent / "src"
        assert lint_paths([str(src)]) == []

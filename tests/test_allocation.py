"""Tests for the fluid bandwidth-allocation policies."""

import pytest

from repro.core.aggressiveness import ConstantAggressiveness, LinearAggressiveness
from repro.fluid.allocation import (
    FairShare,
    FlowView,
    MLTCPWeighted,
    PDQ,
    PIAS,
    SRPT,
    water_fill,
)


def flow(fid, demand=25e9, remaining=1e9, sent=0.0, total=2e9):
    return FlowView(
        flow_id=fid,
        demand_bps=demand,
        remaining_bits=remaining,
        sent_bits=sent,
        total_bits=total,
    )


class TestFlowView:
    def test_bytes_ratio(self):
        assert flow("a", sent=1e9, total=2e9).bytes_ratio == pytest.approx(0.5)

    def test_bytes_ratio_capped(self):
        assert flow("a", sent=3e9, total=2e9).bytes_ratio == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="demand"):
            flow("a", demand=0)
        with pytest.raises(ValueError, match="total"):
            flow("a", total=0)
        with pytest.raises(ValueError, match="non-negative"):
            flow("a", remaining=-1)


class TestWaterFill:
    def test_equal_weights_equal_shares(self):
        rates = water_fill({"a": 100.0, "b": 100.0}, {"a": 1.0, "b": 1.0}, 50.0)
        assert rates["a"] == pytest.approx(25.0)
        assert rates["b"] == pytest.approx(25.0)

    def test_weights_divide_proportionally(self):
        rates = water_fill({"a": 100.0, "b": 100.0}, {"a": 3.0, "b": 1.0}, 40.0)
        assert rates["a"] == pytest.approx(30.0)
        assert rates["b"] == pytest.approx(10.0)

    def test_caps_respected_and_surplus_redistributed(self):
        rates = water_fill({"a": 10.0, "b": 100.0}, {"a": 1.0, "b": 1.0}, 50.0)
        assert rates["a"] == pytest.approx(10.0)
        assert rates["b"] == pytest.approx(40.0)

    def test_never_exceeds_capacity(self):
        rates = water_fill(
            {"a": 100.0, "b": 100.0, "c": 100.0},
            {"a": 5.0, "b": 1.0, "c": 0.5},
            60.0,
        )
        assert sum(rates.values()) <= 60.0 + 1e-9

    def test_underload_gives_everyone_demand(self):
        rates = water_fill({"a": 10.0, "b": 20.0}, {"a": 1.0, "b": 9.0}, 100.0)
        assert rates["a"] == pytest.approx(10.0)
        assert rates["b"] == pytest.approx(20.0)

    def test_all_zero_weights_split_evenly(self):
        """No flow fully starves (§5: non-zero bandwidth for all)."""
        rates = water_fill({"a": 100.0, "b": 100.0}, {"a": 0.0, "b": 0.0}, 50.0)
        assert rates["a"] == pytest.approx(25.0)
        assert rates["b"] == pytest.approx(25.0)

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError, match="weight"):
            water_fill({"a": 10.0}, {"a": -1.0}, 50.0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            water_fill({"a": 10.0}, {"a": 1.0}, 0.0)


class TestFairShare:
    def test_empty(self):
        assert FairShare().allocate([], 50e9) == {}

    def test_splits_equally_up_to_demand(self):
        rates = FairShare().allocate([flow("a"), flow("b"), flow("c")], 50e9)
        for fid in ("a", "b", "c"):
            assert rates[fid] == pytest.approx(50e9 / 3)

    def test_two_flows_reach_demand(self):
        rates = FairShare().allocate([flow("a"), flow("b")], 50e9)
        assert rates["a"] == pytest.approx(25e9)
        assert rates["b"] == pytest.approx(25e9)


class TestMLTCPWeighted:
    def test_progress_wins_bandwidth(self):
        """The flow closer to finishing its iteration gets the larger share
        (the paper's key insight, §3.1)."""
        ahead = flow("ahead", sent=1.8e9, total=2e9)
        behind = flow("behind", sent=0.2e9, total=2e9)
        rates = MLTCPWeighted().allocate([ahead, behind], 30e9)
        assert rates["ahead"] > rates["behind"]

    def test_share_ratio_follows_f(self):
        f = LinearAggressiveness()
        ahead = flow("ahead", demand=1e12, sent=1.0e9, total=2e9)
        behind = flow("behind", demand=1e12, sent=0.0, total=2e9)
        rates = MLTCPWeighted(f).allocate([ahead, behind], 30e9)
        expected = f(0.5) / f(0.0)
        assert rates["ahead"] / rates["behind"] == pytest.approx(expected)

    def test_constant_function_reduces_to_fair_share(self):
        flows = [flow("a", sent=1.5e9), flow("b", sent=0.1e9)]
        mltcp = MLTCPWeighted(ConstantAggressiveness(1.0)).allocate(flows, 30e9)
        fair = FairShare().allocate(flows, 30e9)
        assert mltcp == pytest.approx(fair)

    def test_nobody_starves(self):
        """§5: MLTCP allocates non-zero bandwidth to all competing flows."""
        flows = [flow(f"f{i}", sent=i * 0.4e9) for i in range(5)]
        rates = MLTCPWeighted().allocate(flows, 50e9)
        assert all(rate > 0 for rate in rates.values())


class TestSRPT:
    def test_shortest_flow_first(self):
        short = flow("short", remaining=0.1e9)
        long = flow("long", remaining=1.9e9)
        rates = SRPT().allocate([short, long], 25e9)
        assert rates["short"] == pytest.approx(25e9)
        assert rates["long"] == 0.0

    def test_leftover_goes_to_next(self):
        short = flow("short", remaining=0.1e9, demand=20e9)
        long = flow("long", remaining=1.9e9, demand=20e9)
        rates = SRPT().allocate([short, long], 50e9)
        assert rates["short"] == pytest.approx(20e9)
        assert rates["long"] == pytest.approx(20e9)

    def test_ties_share_fairly(self):
        """Near-equal remaining bytes split the link (packet interleaving)."""
        a = flow("a", remaining=1.00e9)
        b = flow("b", remaining=1.01e9)
        rates = SRPT(tie_fraction=0.05).allocate([a, b], 30e9)
        assert rates["a"] == pytest.approx(rates["b"])

    def test_zero_tie_fraction_is_strict(self):
        a = flow("a", remaining=1.00e9)
        b = flow("b", remaining=1.01e9)
        rates = SRPT(tie_fraction=0.0).allocate([a, b], 25e9)
        assert rates["a"] == pytest.approx(25e9)
        assert rates["b"] == 0.0

    def test_rejects_bad_tie_fraction(self):
        with pytest.raises(ValueError, match="tie_fraction"):
            SRPT(tie_fraction=1.0)


class TestPDQ:
    def test_limits_concurrent_senders(self):
        flows = [flow(f"f{i}", remaining=(i + 1) * 0.1e9, demand=5e9) for i in range(5)]
        rates = PDQ(max_senders=2).allocate(flows, 50e9)
        active = [fid for fid, rate in rates.items() if rate > 0]
        assert active == ["f0", "f1"]

    def test_paused_flows_get_zero(self):
        flows = [flow("a", remaining=0.1e9), flow("b", remaining=0.2e9)]
        rates = PDQ(max_senders=1).allocate(flows, 50e9)
        assert rates["b"] == 0.0

    def test_rejects_bad_max_senders(self):
        with pytest.raises(ValueError, match="max_senders"):
            PDQ(max_senders=0)


class TestPIAS:
    def test_fresh_flow_beats_old_flow(self):
        """Flows demote as they send (LAS approximation)."""
        fresh = flow("fresh", sent=0.0)
        old = flow("old", sent=1.5e9)
        rates = PIAS().allocate([fresh, old], 25e9)
        assert rates["fresh"] == pytest.approx(25e9)
        assert rates["old"] == 0.0

    def test_same_level_shares_fairly(self):
        a = flow("a", sent=0.0)
        b = flow("b", sent=0.0)
        rates = PIAS().allocate([a, b], 30e9)
        assert rates["a"] == pytest.approx(rates["b"])

    def test_leftover_flows_down_levels(self):
        fresh = flow("fresh", sent=0.0, demand=10e9)
        old = flow("old", sent=1.5e9, demand=10e9)
        rates = PIAS().allocate([fresh, old], 30e9)
        assert rates["fresh"] == pytest.approx(10e9)
        assert rates["old"] == pytest.approx(10e9)

    def test_explicit_thresholds(self):
        pias = PIAS(thresholds_bits=[1e9])
        below = flow("below", sent=0.5e9)
        above = flow("above", sent=1.5e9)
        rates = pias.allocate([below, above], 25e9)
        assert rates["below"] == pytest.approx(25e9)
        assert rates["above"] == 0.0

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError, match="positive"):
            PIAS(thresholds_bits=[0.0])

    def test_empty(self):
        assert PIAS().allocate([], 50e9) == {}

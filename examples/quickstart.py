#!/usr/bin/env python3
"""Quickstart: watch MLTCP interleave two training jobs.

Two identical fine-tuning jobs (alpha = 1/2, the paper's §4 running example)
share a 50 Gbps bottleneck.  Under fair-share TCP they stay congested
forever; under MLTCP their iteration times fall back to the ideal within a
handful of iterations as the communication phases slide apart.

Run:  python examples/quickstart.py
"""

from repro.fluid import FairShare, MLTCPWeighted, run_fluid
from repro.harness import render_series, render_table
from repro.workloads import BOTTLENECK_GBPS, two_job_scenario


def main() -> None:
    jobs = two_job_scenario()
    ideal = jobs[0].ideal_iteration_time
    print(f"Two identical jobs, ideal iteration time {ideal:.2f} s, "
          f"{BOTTLENECK_GBPS:.0f} Gbps bottleneck\n")

    rows = []
    for policy in (FairShare(), MLTCPWeighted()):
        result = run_fluid(
            jobs,
            BOTTLENECK_GBPS,
            policy=policy,
            max_iterations=40,
            seed=1,
        )
        rounds = result.mean_iteration_by_round()
        print(render_series(f"{policy.name:>9} iteration times", rounds, unit="s"))
        rows.append(
            [
                policy.name,
                float(rounds[:3].mean()),
                float(rounds[-5:].mean()),
                float(rounds[-5:].mean() / ideal),
            ]
        )

    print()
    print(
        render_table(
            ["policy", "first 3 iters (s)", "last 5 iters (s)", "vs ideal"],
            rows,
            title="Congested start -> converged state",
        )
    )
    print(
        "\nMLTCP reaches the ideal iteration time without any central "
        "scheduler; fair-share TCP never does."
    )


if __name__ == "__main__":
    main()

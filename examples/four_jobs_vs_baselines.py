#!/usr/bin/env python3
"""The paper's motivating scenario (Figure 2): one GPT-3-like job and three
GPT-2-like jobs on a 50 Gbps bottleneck, scheduled four ways:

* a centralized Cassini-like optimizer (the upper bound),
* pFabric-style SRPT (myopic: it head-of-line blocks the big job),
* PIAS-style multi-level feedback,
* MLTCP (distributed, converges to the centralized optimum).

Run:  python examples/four_jobs_vs_baselines.py
"""

import numpy as np

from repro.fluid import MLTCPWeighted, PIAS, SRPT, run_fluid
from repro.harness import render_table
from repro.schedulers import CentralizedScheduler
from repro.workloads import BOTTLENECK_GBPS, four_job_scenario


def main() -> None:
    jobs = four_job_scenario()
    names = [j.name for j in jobs]
    ideals = {j.name: j.ideal_iteration_time for j in jobs}

    # Upper bound: the centralized scheduler (needs demand profiles upfront).
    scheduler = CentralizedScheduler([j.with_jitter(0.0) for j in jobs], BOTTLENECK_GBPS)
    schedule = scheduler.optimize()
    optimal = scheduler.iteration_times_if_scheduled(schedule)
    print(
        f"Centralized schedule: contention {schedule.contention:.3g}, "
        f"offsets " + ", ".join(f"{n}={schedule.offset_of(n):.2f}s" for n in names)
    )

    results = {"optimal (Cassini-like)": optimal}
    for policy in (SRPT(), PIAS(), MLTCPWeighted()):
        run = run_fluid(
            jobs, BOTTLENECK_GBPS, policy=policy, max_iterations=50, seed=5
        )
        window = slice(0, 10) if policy.name in ("srpt", "pias") else slice(-10, None)
        results[policy.name] = {
            n: float(run.iteration_times(n)[window].mean()) for n in names
        }

    rows = []
    for label, times in results.items():
        rows.append(
            [label]
            + [times[n] for n in names]
            + [float(np.mean([times[n] / ideals[n] for n in names]))]
        )
    print()
    print(
        render_table(
            ["scheduler"] + [f"{n} (s)" for n in names] + ["mean slowdown"],
            rows,
            title="Average iteration times (baselines: early window; MLTCP: converged)",
        )
    )
    print(
        "\nSRPT defers the GPT-3 job (largest collective) every iteration; "
        "MLTCP matches the centralized optimum without a controller."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Beyond the network: MLTCP-style progress weighting for CPU scheduling.

The paper's §5 argues the aggressiveness function generalizes to any
resource: "in the case of CPU cores, the operating system's scheduler
tracks the progress of each task, and assigns a number of CPU cores based
on the desired aggressiveness function."

This example runs two experiments on the multi-resource simulator:

1. Two periodic CPU-bound tasks on a 16-core box — equal-share scheduling
   keeps them colliding; progress weighting interleaves them.
2. Two tasks that each cycle CPU -> network, sharing both resources —
   progress weighting finds the software-pipelined schedule where one
   computes while the other communicates (the Muri/Cassini picture).

Run:  python examples/multi_resource_scheduling.py
"""

from repro.harness import render_series, render_table
from repro.multiresource import (
    EqualShare,
    MultiResourceTask,
    ProgressWeighted,
    ResourcePhase,
    run_multiresource,
    two_phase_task,
)


def cpu_experiment() -> None:
    print("== Two CPU-bound tasks, 16 cores (ideal iteration 2.0 s) ==\n")
    tasks = [
        two_phase_task(f"T{i + 1}", "cpu", work=16.0, demand=16.0,
                       think_time=1.0, jitter_sigma=0.01)
        for i in range(2)
    ]
    rows = []
    for policy in (EqualShare(), ProgressWeighted()):
        result = run_multiresource(
            tasks, {"cpu": 16.0}, policy=policy, max_iterations=40, seed=1
        )
        rounds = result.mean_iteration_by_round()
        print(render_series(f"{policy.name:>17}", rounds, unit="s"))
        rows.append([policy.name, float(rounds[0]), float(rounds[-5:].mean())])
    print()
    print(render_table(["scheduler", "first iter (s)", "final (s)"], rows))


def pipeline_experiment() -> None:
    print("\n== Two CPU->network tasks sharing both resources "
          "(ideal iteration 2.0 s) ==\n")

    def task(name: str) -> MultiResourceTask:
        return MultiResourceTask(
            name,
            (
                ResourcePhase("cpu", work=16.0, demand=16.0),   # 1 s on CPU
                ResourcePhase("net", work=10.0, demand=10.0),   # 1 s on net
            ),
            jitter_sigma=0.01,
        )

    tasks = [task("A"), task("B")]
    capacities = {"cpu": 16.0, "net": 10.0}
    rows = []
    for policy in (EqualShare(), ProgressWeighted()):
        result = run_multiresource(
            tasks, capacities, policy=policy, max_iterations=50, seed=2
        )
        rounds = result.mean_iteration_by_round()
        print(render_series(f"{policy.name:>17}", rounds, unit="s"))
        rows.append([policy.name, float(rounds[0]), float(rounds[-5:].mean())])
    print()
    print(render_table(["scheduler", "first iter (s)", "final (s)"], rows))
    print(
        "\nProgress weighting pipelines the tasks across both resources: "
        "A computes while B communicates, halving iteration time vs the "
        "fair scheduler — the paper's multi-resource gradient descent."
    )


if __name__ == "__main__":
    cpu_experiment()
    pipeline_experiment()

#!/usr/bin/env python3
"""Explore bandwidth aggressiveness functions (paper §3.1 and Figure 3).

Reruns the paper's six functions F1…F6 on three competing GPT-2 jobs, then
tries a custom function of your own to show the design rule in action: any
monotonically non-decreasing F with enough range interleaves; decreasing
functions never do.

Run:  python examples/aggressiveness_playground.py
"""

from dataclasses import dataclass

from repro.core import AggressivenessFunction, paper_functions
from repro.fluid import MLTCPWeighted, run_fluid
from repro.harness import render_series, render_table
from repro.workloads import BOTTLENECK_GBPS, three_job_scenario


@dataclass(frozen=True, repr=False)
class SqrtAggressiveness(AggressivenessFunction):
    """A custom increasing function: F = 0.25 + 1.75 * sqrt(ratio)."""

    name: str = "custom-sqrt"

    def _evaluate(self, bytes_ratio: float) -> float:
        return 0.25 + 1.75 * bytes_ratio**0.5


def main() -> None:
    jobs = three_job_scenario()
    ideal = jobs[0].ideal_iteration_time
    functions = dict(paper_functions())
    functions["Fx"] = SqrtAggressiveness()

    rows = []
    for key, function in functions.items():
        result = run_fluid(
            jobs,
            BOTTLENECK_GBPS,
            policy=MLTCPWeighted(function),
            max_iterations=35,
            seed=11,
        )
        rounds = result.mean_iteration_by_round()
        print(render_series(f"{key} ({function.name})", rounds, unit="s"))
        rows.append(
            [
                key,
                function.name,
                "yes" if function.is_increasing() else "no",
                float(rounds[-5:].mean()),
                "interleaved" if rounds[-5:].mean() < 1.05 * ideal else "congested",
            ]
        )

    print()
    print(
        render_table(
            ["id", "function", "non-decreasing?", "final iter (s)", "outcome"],
            rows,
            title=f"Three GPT-2 jobs, ideal iteration {ideal:.2f} s",
        )
    )
    print(
        "\nRequirement (ii) in action: every non-decreasing function "
        "(F1-F4 and the custom sqrt) interleaves; F5/F6 do not."
    )


if __name__ == "__main__":
    main()

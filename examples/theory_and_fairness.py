#!/usr/bin/env python3
"""The §4 analysis and the §5 fairness story, numerically.

Part 1 — gradient descent: iterates the paper's Eq. 3 shift from a small
initial offset and shows the start-time difference climbing the loss valley
to the interleaved point, with and without iteration-time noise; compares
the measured steady-state error against the 2*sigma*(1 + I/S) bound.

Part 2 — fairness: competes a saturated MLTCP-Reno flow against a legacy
Reno flow on one bottleneck (packet level) and shows MLTCP claims a larger
share without starving the legacy flow.

Run:  python examples/theory_and_fairness.py
"""

import numpy as np

from repro.core import convergence_error_std, gradient_descent, loss_curve
from repro.harness import render_series, render_table
from repro.harness.experiments import fairness_competition_share


def theory_demo() -> None:
    alpha, period = 0.5, 1.8
    print("== Part 1: gradient descent on the interleaving loss (paper §4) ==\n")

    deltas, losses = loss_curve(alpha, period)
    print(render_series("Loss(delta) over one period", losses))
    print(f"   minimum at delta = {deltas[np.argmin(losses)]:.2f} s "
          f"(= T/2 = {period / 2:.2f} s for alpha = 1/2)\n")

    clean = gradient_descent(0.05, alpha, period, iterations=30)
    print(render_series("delta_i, no noise", clean.deltas, unit="s"))
    print(f"   interleaved after {clean.converged_iteration} iterations\n")

    rows = []
    for sigma in (0.002, 0.005, 0.01, 0.02):
        trajectory = gradient_descent(
            0.05, alpha, period, iterations=4000, noise_sigma=sigma,
            rng=np.random.default_rng(0),
        )
        measured = float(trajectory.steady_state_error().std())
        rows.append([sigma, measured, convergence_error_std(sigma)])
    print(
        render_table(
            ["noise sigma (s)", "measured error std", "2*sigma*(1+I/S) bound"],
            rows,
            title="Steady-state approximation error vs the paper's bound",
        )
    )


def fairness_demo() -> None:
    print("\n== Part 2: MLTCP vs legacy Reno on one bottleneck (paper §5) ==\n")
    # Loss-free competition isolates the aggressiveness effect; the full
    # loss-probability sweep (noisier, slower) lives in
    # benchmarks/bench_fairness_loss_response.py.
    rows = fairness_competition_share(loss_probs=(0.0,), horizon=1.0, seeds=(1, 2))
    print(
        render_table(
            ["loss prob", "MLTCP-Reno (Mbps)", "Reno (Mbps)", "share ratio"],
            [
                [r["loss_prob"], r["mltcp_mbps"], r["reno_mbps"], r["share_ratio"]]
                for r in rows
            ],
            title="Saturated MLTCP flow (F = 2) vs legacy Reno flow",
        )
    )
    print(
        "\nMLTCP claims the larger share at equal loss, but the legacy flow "
        "keeps a healthy fraction — no starvation (paper §5)."
    )


if __name__ == "__main__":
    theory_demo()
    fairness_demo()

#!/usr/bin/env python3
"""Cluster scale: MLTCP across many bottlenecks at once.

The paper's scalability pitch is that MLTCP needs no controller: every
congested link develops the interleaving independently.  This example
builds a leaf-spine-shaped *fluid* cluster — eight 50 Gbps leaf uplinks,
two contending training jobs on each, plus one cross-cluster job that
traverses its uplink *and* a shared spine port — and shows every bottleneck
converging in a handful of iterations, with zero coordination.

Run:  python examples/cluster_scale.py
"""

import numpy as np

from repro.fluid import PlacedJob, run_network_fluid
from repro.harness import render_series, render_table
from repro.workloads import gpt2_heavy_job, gpt3_job


def main() -> None:
    n_uplinks = 8
    placements = []
    for u in range(n_uplinks):
        for k in range(2):
            job = gpt2_heavy_job(jitter_sigma=0.005).with_name(f"U{u}J{k}")
            placements.append(PlacedJob(job=job, links=(f"up{u}",)))
    # A GPT-3-like job crossing uplink 0 and the shared spine port.
    cross = gpt3_job(jitter_sigma=0.005).with_name("Cross")
    placements.append(PlacedJob(job=cross, links=("up0", "spine")))

    capacities = {f"up{u}": 50.0 for u in range(n_uplinks)}
    capacities["spine"] = 50.0

    print(
        f"{len(placements)} jobs over {len(capacities)} capacitated links "
        "(fair share vs MLTCP)\n"
    )
    rows = []
    for mltcp in (False, True):
        result = run_network_fluid(
            placements, capacities, mltcp=mltcp, max_iterations=40, seed=3
        )
        label = "mltcp" if mltcp else "tcp-fair"
        rounds = result.mean_iteration_by_round()
        print(render_series(f"{label:>8} cluster mean iteration", rounds, unit="s"))
        heavy_tail = np.mean(
            [result.iteration_times(p.job.name)[-5:].mean() for p in placements[:-1]]
        )
        cross_tail = result.iteration_times("Cross")[-5:].mean()
        rows.append([label, float(rounds[0]), float(heavy_tail), float(cross_tail)])

    print()
    print(
        render_table(
            [
                "policy",
                "first iter (s)",
                "uplink jobs final (s, ideal 1.8)",
                "cross job final (s, ideal 1.2)",
            ],
            rows,
        )
    )
    print(
        "\nEvery uplink interleaves its pair independently, and the "
        "cross-cluster job settles into the gaps on both links it "
        "traverses — all without a scheduler."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Packet-level MLTCP-Reno on a dumbbell testbed (paper Figure 6).

Builds the full stack by hand — discrete-event simulator, dumbbell topology,
TCP senders with the MLTCP-Reno congestion module (Algorithm 1), periodic
training apps — and shows two jobs sliding from a congested synchronized
start into an interleaved schedule, exactly like the paper's Figure 6.

Run:  python examples/packet_level_dumbbell.py   (takes ~10 s)
"""

import numpy as np

from repro.core import MLTCPConfig
from repro.harness import render_series, sparkline
from repro.simulator import DropTailQueue, Simulator, TrainingApp, build_dumbbell
from repro.tcp import MLTCPReno, TcpReceiver, TcpSender
from repro.workloads import JobSpec


def main() -> None:
    sim = Simulator()
    network = build_dumbbell(
        sim,
        n_pairs=2,
        bottleneck_bps=1e9,  # scaled: 1 Gbps stands in for the paper's 50
        bottleneck_queue=DropTailQueue(64),
    )

    job_template = JobSpec(
        name="Job",
        comm_bits=8e6,       # 1 MB collective per iteration
        demand_gbps=1.0,
        compute_time=0.010,  # alpha = 1/2, like the paper's GPT-2 jobs
        jitter_sigma=0.0005,
    )
    jobs = [job_template.with_name("Job1"), job_template.with_name("Job2")]

    rng = np.random.default_rng(2)
    apps, senders = {}, {}
    for i, job in enumerate(jobs):
        config = MLTCPConfig(total_bytes=job.comm_bytes, comp_time=0.003)
        sender = TcpSender(
            sim, network.hosts[f"s{i}"], job.name, f"r{i}", MLTCPReno(config)
        )
        TcpReceiver(sim, network.hosts[f"r{i}"], job.name, f"s{i}")
        app = TrainingApp(sim, sender, job, max_iterations=40, rng=rng)
        app.start()
        apps[job.name], senders[job.name] = app, sender

    sim.run(until=2.0)
    print(f"Simulated {sim.now:.2f} s of cluster time "
          f"({sim.events_processed:,} events)\n")

    for name, app in apps.items():
        times = app.iteration_times() * 1000
        print(render_series(f"{name} iteration times", times, unit="ms"))

    # Figure 6's view: per-job throughput over time (until the jobs finish).
    from repro.harness import throughput_timeline

    active_until = max(
        t for sender in senders.values() for t, _ in sender.acked_bytes_log
    )
    print(f"\nThroughput over the active period (0 – {active_until:.2f} s):")
    for name, sender in senders.items():
        _t, gbps = throughput_timeline(
            sender.acked_bytes_log, active_until, dt=0.01
        )
        print(f"  {name}: {sparkline(gbps, width=76)}")

    rounds = [apps[j.name].iteration_times() for j in jobs]
    first = np.mean([t[:3].mean() for t in rounds]) * 1000
    last = np.mean([t[-5:].mean() for t in rounds]) * 1000
    print(
        f"\nMean iteration time: {first:.1f} ms (congested start) -> "
        f"{last:.1f} ms (interleaved); the alternating throughput bursts "
        "above are the sliding effect of paper Figure 6."
    )


if __name__ == "__main__":
    main()

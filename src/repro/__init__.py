"""MLTCP reproduction: distributed approximation of centralized flow
scheduling for machine-learning workloads (Rajasekaran et al., HotNets '24).

Public API tour
---------------
``repro.core``
    The paper's contribution: aggressiveness functions (Eq. 2 / Figure 3),
    the Algorithm 1 iteration tracker, and the §4 gradient-descent analysis
    (shift, loss, convergence error bound).
``repro.tcp``
    A TCP stack (Reno, CUBIC, DCTCP, rate-based DCQCN) with MLTCP-augmented
    variants, for the packet-level simulator.
``repro.simulator``
    Packet-level discrete-event network simulator (links, queues, switches,
    dumbbell topology, training-app traffic generators).
``repro.fluid``
    Flow-level simulator with pluggable bottleneck allocation policies
    (fair share, MLTCP-weighted, SRPT/pFabric, PDQ, PIAS).
``repro.workloads``
    Periodic DNN job models and the paper-calibrated scenarios.
``repro.schedulers``
    The centralized (Cassini-like) interleaving baseline.
``repro.harness``
    One runner per paper figure plus reporting helpers.

Quickstart
----------
>>> from repro.workloads import two_job_scenario
>>> from repro.fluid import run_fluid, MLTCPWeighted
>>> result = run_fluid(two_job_scenario(), capacity_gbps=50.0,
...                    policy=MLTCPWeighted(), max_iterations=30)
>>> result.mean_iteration_time("Job1", skip=20)  # ~1.8 s: interleaved
"""

from . import core, fluid, harness, metrics, schedulers, simulator, tcp, workloads
from .core import (
    IterationTracker,
    LinearAggressiveness,
    MLTCPConfig,
    convergence_error_std,
    default_aggressiveness,
    gradient_descent,
    loss,
    paper_functions,
    shift,
    signed_shift,
)
from .fluid import FairShare, MLTCPWeighted, PDQ, PIAS, SRPT, run_fluid
from .workloads import (
    JobSpec,
    four_job_scenario,
    six_job_scenario,
    three_job_scenario,
    two_job_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "core",
    "tcp",
    "simulator",
    "fluid",
    "workloads",
    "schedulers",
    "metrics",
    "harness",
    "MLTCPConfig",
    "IterationTracker",
    "LinearAggressiveness",
    "default_aggressiveness",
    "paper_functions",
    "shift",
    "signed_shift",
    "loss",
    "gradient_descent",
    "convergence_error_std",
    "run_fluid",
    "FairShare",
    "MLTCPWeighted",
    "SRPT",
    "PDQ",
    "PIAS",
    "JobSpec",
    "two_job_scenario",
    "three_job_scenario",
    "four_job_scenario",
    "six_job_scenario",
    "__version__",
]

"""Multi-rack fabric specification and cross-rack job placement.

The paper's testbed is a single-bottleneck dumbbell, but its
distributed-scheduling claim is only stressed when one job's flows cross
*several* contended links with different competitor sets per link — the
regime where centralized network-aware schedulers (CASSINI) must solve a
global optimization while MLTCP just runs per-flow.  This module is the
substrate-neutral description of that regime:

* :class:`FabricSpec` — a two-tier fat-tree / multi-spine leaf-spine
  fabric (racks, hosts per rack, spines, oversubscription) plus the
  deterministic ECMP rule both simulators share, so a packet-level run
  and a fluid run of the same placement traverse *identical* paths.
* :class:`JobPlacement` — one job pinned to a (src host, dst host) pair.
* :func:`place_jobs` — packed / spread / seeded-random policies mapping
  a job list onto the fabric's hosts.

The packet side consumes this via
:func:`repro.simulator.topology.build_fat_tree`; the fluid side via
:mod:`repro.fluid.fabric`.  Naming follows the existing leaf-spine
builder: hosts ``h{rack}_{index}``, rack switches ``rack{i}``, spine
switches ``spine{k}``, directed links ``"a->b"``.

ECMP determinism
----------------
The simulator's routing tables are destination-keyed (one next hop per
``(switch, dst)``), so ECMP here is a deterministic per-(rack, dst)
choice of spine, not per-flow hashing.  The choice function is a CRC-32
of ``"{seed}/{rack}/{dst}"`` — CRC-32 is specified byte-for-byte, unlike
Python's salted builtin ``hash``, so every process, platform and
substrate picks the same spine and reruns are bit-reproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from .job import JobSpec

__all__ = [
    "PLACEMENT_POLICIES",
    "FabricSpec",
    "JobPlacement",
    "ecmp_index",
    "host_rack",
    "place_jobs",
]

#: The placement policies :func:`place_jobs` understands.
PLACEMENT_POLICIES = ("packed", "spread", "random")


def ecmp_index(seed: int, ingress: str, dst_host: str, n_choices: int) -> int:
    """Deterministic ECMP-style choice among ``n_choices`` equal-cost paths.

    ``ingress`` is the switch making the choice (a rack name), ``dst_host``
    the packet's destination.  The same ``(seed, ingress, dst_host)`` always
    yields the same index, in every process and on every platform.
    """
    if n_choices < 1:
        raise ValueError(f"n_choices must be positive, got {n_choices!r}")
    key = f"{seed}/{ingress}/{dst_host}".encode("ascii")
    digest = zlib.crc32(key)
    # CRC-32 is linear in its input: host names differing only in the last
    # character map to CRCs differing by a fixed XOR pattern, which makes
    # ``crc % n`` nearly constant across a rack's hosts.  A multiply/xor
    # avalanche (Murmur3-style finalizer) breaks that linearity while
    # staying exactly reproducible everywhere.
    digest ^= digest >> 16
    digest = (digest * 0x45D9F3B) & 0xFFFFFFFF
    digest ^= digest >> 16
    return digest % n_choices


def host_rack(host: str) -> int:
    """The rack index encoded in a fabric host name (``h{rack}_{index}``)."""
    if not host.startswith("h") or "_" not in host:
        raise ValueError(f"not a fabric host name: {host!r}")
    return int(host[1:].split("_", 1)[0])


@dataclass(frozen=True)
class FabricSpec:
    """A two-tier multi-rack fabric, shared by both simulators.

    Parameters
    ----------
    n_racks:
        Number of racks (leaf switches), at least 2.
    hosts_per_rack:
        Hosts attached to each rack switch.
    n_spines:
        Number of spine switches; every rack uplinks to every spine.
    oversubscription:
        Ratio of aggregate host bandwidth entering a rack to the rack's
        aggregate uplink bandwidth.  1.0 is non-blocking; 2.0 means the
        rack's hosts can offer twice what its uplinks carry, so uplinks
        congest under cross-rack load.
    host_gbps:
        Host NIC (edge link) rate in Gbps.
    ecmp_seed:
        Seed of the deterministic ECMP choice (:func:`ecmp_index`).
        Different seeds give different — but equally deterministic —
        spine assignments.
    """

    n_racks: int = 4
    hosts_per_rack: int = 2
    n_spines: int = 2
    oversubscription: float = 1.0
    host_gbps: float = 1.0
    ecmp_seed: int = 0

    def __post_init__(self) -> None:
        if self.n_racks < 2:
            raise ValueError(f"n_racks must be at least 2, got {self.n_racks!r}")
        if self.hosts_per_rack < 1:
            raise ValueError(
                f"hosts_per_rack must be positive, got {self.hosts_per_rack!r}"
            )
        if self.n_spines < 1:
            raise ValueError(f"n_spines must be positive, got {self.n_spines!r}")
        if self.oversubscription <= 0:
            raise ValueError(
                f"oversubscription must be positive, got {self.oversubscription!r}"
            )
        if self.host_gbps <= 0:
            raise ValueError(f"host_gbps must be positive, got {self.host_gbps!r}")

    # -- derived capacities --------------------------------------------------

    @property
    def n_hosts(self) -> int:
        """Total hosts in the fabric."""
        return self.n_racks * self.hosts_per_rack

    @property
    def rack_capacity_gbps(self) -> float:
        """Aggregate uplink bandwidth of one rack (all spines), in Gbps."""
        return self.hosts_per_rack * self.host_gbps / self.oversubscription

    @property
    def uplink_gbps(self) -> float:
        """Rate of one physical rack<->spine link, in Gbps."""
        return self.rack_capacity_gbps / self.n_spines

    # -- names ---------------------------------------------------------------

    def host_name(self, rack: int, index: int) -> str:
        """Name of host ``index`` in ``rack`` (``h{rack}_{index}``)."""
        return f"h{rack}_{index}"

    def rack_name(self, rack: int) -> str:
        """Name of a rack (leaf) switch."""
        return f"rack{rack}"

    def spine_name(self, spine: int) -> str:
        """Name of a spine switch."""
        return f"spine{spine}"

    def host_names(self) -> tuple[str, ...]:
        """Every host, rack-major: ``h0_0, h0_1, ..., h1_0, ...``."""
        return tuple(
            self.host_name(rack, index)
            for rack in range(self.n_racks)
            for index in range(self.hosts_per_rack)
        )

    # -- routing -------------------------------------------------------------

    def spine_for(self, rack: int, dst_host: str) -> int:
        """The spine ``rack``'s switch uses to reach ``dst_host``."""
        return ecmp_index(self.ecmp_seed, self.rack_name(rack), dst_host, self.n_spines)

    def path_nodes(self, src: str, dst: str) -> tuple[str, ...]:
        """Node names a ``src -> dst`` flow visits (both simulators agree)."""
        src_rack, dst_rack = host_rack(src), host_rack(dst)
        for rack, host in ((src_rack, src), (dst_rack, dst)):
            if not 0 <= rack < self.n_racks:
                raise ValueError(f"{host!r} is not on this {self.n_racks}-rack fabric")
        if src == dst:
            raise ValueError(f"src and dst must differ, got {src!r} twice")
        if src_rack == dst_rack:
            return (src, self.rack_name(src_rack), dst)
        spine = self.spine_for(src_rack, dst)
        return (
            src,
            self.rack_name(src_rack),
            self.spine_name(spine),
            self.rack_name(dst_rack),
            dst,
        )

    def path_links(self, src: str, dst: str) -> tuple[str, ...]:
        """Directed link names (``"a->b"``) a ``src -> dst`` flow crosses."""
        nodes = self.path_nodes(src, dst)
        return tuple(f"{a}->{b}" for a, b in zip(nodes, nodes[1:]))

    def capacities_gbps(self) -> dict[str, float]:
        """Every directed link's capacity, keyed by ``"a->b"`` name.

        This is the fluid simulator's link-capacity map; the packet builder
        creates one :class:`~repro.simulator.link.Link` per entry at the
        same rate, so both substrates share one capacity model.
        """
        capacities: dict[str, float] = {}
        for rack in range(self.n_racks):
            rack_sw = self.rack_name(rack)
            for index in range(self.hosts_per_rack):
                host = self.host_name(rack, index)
                capacities[f"{host}->{rack_sw}"] = self.host_gbps
                capacities[f"{rack_sw}->{host}"] = self.host_gbps
            for spine in range(self.n_spines):
                spine_sw = self.spine_name(spine)
                capacities[f"{rack_sw}->{spine_sw}"] = self.uplink_gbps
                capacities[f"{spine_sw}->{rack_sw}"] = self.uplink_gbps
        return capacities

    def fabric_links(self) -> tuple[str, ...]:
        """The rack<->spine link names — the links that can be oversubscribed."""
        names: list[str] = []
        for rack in range(self.n_racks):
            rack_sw = self.rack_name(rack)
            for spine in range(self.n_spines):
                spine_sw = self.spine_name(spine)
                names.append(f"{rack_sw}->{spine_sw}")
                names.append(f"{spine_sw}->{rack_sw}")
        return tuple(names)


@dataclass(frozen=True)
class JobPlacement:
    """One job pinned to a source and destination host on a fabric."""

    job: JobSpec
    src: str
    dst: str

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"{self.job.name}: src and dst must differ")

    @property
    def cross_rack(self) -> bool:
        """Whether the flow leaves its source rack (crosses uplinks)."""
        return host_rack(self.src) != host_rack(self.dst)

    def nodes(self, spec: FabricSpec) -> tuple[str, ...]:
        """Node path of this job's flow on ``spec``."""
        return spec.path_nodes(self.src, self.dst)

    def links(self, spec: FabricSpec) -> tuple[str, ...]:
        """Directed links of this job's flow on ``spec``."""
        return spec.path_links(self.src, self.dst)


def _host_order(spec: FabricSpec, policy: str, seed: int) -> list[str]:
    """Host assignment order for one policy (see :func:`place_jobs`)."""
    rack_major = list(spec.host_names())
    if policy == "packed":
        return rack_major
    if policy == "spread":
        # Round-robin across racks: consecutive hosts sit in different
        # racks, so consecutive (src, dst) pairs become cross-rack flows.
        return [
            spec.host_name(rack, index)
            for index in range(spec.hosts_per_rack)
            for rack in range(spec.n_racks)
        ]
    if policy == "random":
        rng = np.random.default_rng(seed)
        return [rack_major[i] for i in rng.permutation(len(rack_major))]
    raise ValueError(
        f"unknown placement policy {policy!r}; expected one of {PLACEMENT_POLICIES}"
    )


def place_jobs(
    jobs: list[JobSpec] | tuple[JobSpec, ...],
    spec: FabricSpec,
    policy: str = "spread",
    seed: int = 0,
) -> tuple[JobPlacement, ...]:
    """Map jobs onto fabric hosts, two hosts (one flow) per job.

    Policies:

    * ``"packed"`` — rack-major assignment: consecutive host pairs, so
      jobs mostly stay *inside* a rack (the scheduler-friendly layout
      Metronome-style placers aim for); cross-rack flows appear only
      where a pair straddles a rack boundary.
    * ``"spread"`` — round-robin across racks: every pair lands in two
      different racks, so every job crosses uplinks and each uplink sees
      a different competitor set (the CASSINI-hard layout).
    * ``"random"`` — a seeded permutation of the hosts; the realistic
      middle ground where a cluster scheduler ignored the network.

    Each host carries at most one flow endpoint, so host NICs never
    multiplex jobs and contention happens only on fabric links.
    """
    if not jobs:
        raise ValueError("need at least one job")
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        raise ValueError(f"job names must be unique, got {names}")
    if 2 * len(jobs) > spec.n_hosts:
        raise ValueError(
            f"{len(jobs)} jobs need {2 * len(jobs)} hosts; the fabric has "
            f"{spec.n_hosts} ({spec.n_racks} racks x {spec.hosts_per_rack})"
        )
    order = _host_order(spec, policy, seed)
    return tuple(
        JobPlacement(job=job, src=order[2 * i], dst=order[2 * i + 1])
        for i, job in enumerate(jobs)
    )

"""Periodic DNN job models, paper-calibrated scenarios and demand traces."""

from .job import GBPS, JobSpec, feasible_on_link, gbit, total_mean_load_gbps
from .presets import (
    BOTTLENECK_GBPS,
    DEFAULT_JITTER_SIGMA,
    four_job_scenario,
    gpt2_fast_job,
    gpt2_heavy_job,
    gpt2_job,
    gpt3_job,
    identical_jobs,
    six_job_scenario,
    three_job_scenario,
    two_job_scenario,
)
from .traceio import (
    load_demand_trace,
    load_iterations,
    load_scenario,
    save_demand_trace,
    save_iterations,
    save_scenario,
)
from .traffic import DOUBLE_HUMP, SQUARE, PulseShape, aggregate_trace, demand_trace

__all__ = [
    "JobSpec",
    "GBPS",
    "gbit",
    "feasible_on_link",
    "total_mean_load_gbps",
    "BOTTLENECK_GBPS",
    "DEFAULT_JITTER_SIGMA",
    "gpt3_job",
    "gpt2_job",
    "gpt2_fast_job",
    "gpt2_heavy_job",
    "four_job_scenario",
    "three_job_scenario",
    "six_job_scenario",
    "two_job_scenario",
    "identical_jobs",
    "PulseShape",
    "SQUARE",
    "DOUBLE_HUMP",
    "demand_trace",
    "aggregate_trace",
    "save_demand_trace",
    "load_demand_trace",
    "save_iterations",
    "load_iterations",
    "save_scenario",
    "load_scenario",
]

"""Calibrated job mixes for every scenario in the paper's evaluation.

The paper's testbed jobs are real GPT-2 / GPT-3 training instances on pairs
of A100 servers across a 50 Gbps bottleneck.  Here each job is a periodic
:class:`~repro.workloads.job.JobSpec` calibrated so that

* ideal (isolation) iteration times match the paper's reported values
  (GPT-3-like J1: 1.2 s; GPT-2-like: 1.8 s),
* a zero-contention interleaved schedule *exists* (the paper's compatibility
  assumption — verified in tests via the centralized scheduler), and
* per-iteration communication volumes give SRPT the same size ordering as in
  the paper (the GPT-3 job's collective is the largest, so pFabric-style
  SRPT defers it).

Demand rates are set to 25 Gbps per job (two GPU servers' worth of NCCL
socket flows) so that any *two* jobs can share the 50 Gbps bottleneck at full
rate but three cannot — reproducing the contention structure that makes
interleaving matter.
"""

from __future__ import annotations

from .job import JobSpec, gbit

__all__ = [
    "BOTTLENECK_GBPS",
    "gpt3_job",
    "gpt2_job",
    "gpt2_fast_job",
    "gpt2_heavy_job",
    "four_job_scenario",
    "three_job_scenario",
    "six_job_scenario",
    "two_job_scenario",
    "identical_jobs",
]

#: The paper's dumbbell bottleneck capacity (Gbps).
BOTTLENECK_GBPS = 50.0

#: Default computation-time jitter (seconds); paper §4 models testbed noise
#: as zero-mean Gaussian on iteration times.  5 ms is well under 1% of the
#: iteration times here, comparable to real kernel/NCCL scheduling jitter.
DEFAULT_JITTER_SIGMA = 0.005


def gpt3_job(name: str = "J1", jitter_sigma: float = DEFAULT_JITTER_SIGMA) -> JobSpec:
    """The GPT-3-like job J1: ideal iteration 1.2 s, the largest collective.

    15 Gbit (1.875 GB) per iteration at 25 Gbps -> 0.6 s communication +
    0.6 s computation (alpha = 0.5, visible as the long plateau in paper
    Figure 1(a)).
    """
    return JobSpec(
        name=name,
        comm_bits=gbit(15.0),
        demand_gbps=25.0,
        compute_time=0.6,
        jitter_sigma=jitter_sigma,
    )


def gpt2_job(name: str = "J2", jitter_sigma: float = DEFAULT_JITTER_SIGMA) -> JobSpec:
    """A GPT-2-like job: ideal iteration 1.8 s.

    11.25 Gbit (1.4 GB) per iteration at 25 Gbps -> 0.45 s communication +
    1.35 s computation (alpha = 0.25).
    """
    return JobSpec(
        name=name,
        comm_bits=gbit(11.25),
        demand_gbps=25.0,
        compute_time=1.35,
        jitter_sigma=jitter_sigma,
    )


def gpt2_fast_job(
    name: str = "J1", jitter_sigma: float = DEFAULT_JITTER_SIGMA
) -> JobSpec:
    """The Figure 3 GPT-2 variant: ideal iteration 1.05 s.

    Figure 3's y-axis spans 1000–1600 ms; this calibration starts three
    contending copies near 1.3 s and converges to the 1.05 s ideal.
    11.25 Gbit at 25 Gbps -> 0.45 s communication + 0.6 s computation.
    """
    return JobSpec(
        name=name,
        comm_bits=gbit(11.25),
        demand_gbps=25.0,
        compute_time=0.6,
        jitter_sigma=jitter_sigma,
    )


def gpt2_heavy_job(
    name: str = "J1", jitter_sigma: float = DEFAULT_JITTER_SIGMA
) -> JobSpec:
    """The Figure 6 GPT-2 variant: alpha = 1/2 with real contention.

    36 Gbit at 40 Gbps -> 0.9 s communication + 0.9 s computation; two
    copies overlap at 80 Gbps offered vs 50 Gbps capacity, producing the
    visible congestion region of paper Figure 6 before MLTCP slides them
    apart.
    """
    return JobSpec(
        name=name,
        comm_bits=gbit(36.0),
        demand_gbps=40.0,
        compute_time=0.9,
        jitter_sigma=jitter_sigma,
    )


def four_job_scenario(
    jitter_sigma: float = DEFAULT_JITTER_SIGMA, synchronized_start: bool = True
) -> list[JobSpec]:
    """Figures 1 and 2: one GPT-3-like job plus three GPT-2-like jobs.

    "For simplicity, consider the scenario when all four jobs start the
    communication phase of their first iteration at the same time." (§2)
    """
    jobs = [
        gpt3_job("J1", jitter_sigma),
        gpt2_job("J2", jitter_sigma),
        gpt2_job("J3", jitter_sigma),
        gpt2_job("J4", jitter_sigma),
    ]
    if not synchronized_start:
        # Deterministic staggered variant used by ablations.
        offsets = [0.0, 0.1, 0.2, 0.3]
        jobs = [job.with_offset(off) for job, off in zip(jobs, offsets)]
    return jobs


def three_job_scenario(jitter_sigma: float = DEFAULT_JITTER_SIGMA) -> list[JobSpec]:
    """Figure 3: three identical GPT-2 training jobs competing on one link."""
    return identical_jobs(gpt2_fast_job(jitter_sigma=jitter_sigma), 3)


def six_job_scenario(jitter_sigma: float = DEFAULT_JITTER_SIGMA) -> list[JobSpec]:
    """Figure 4: six identical GPT-2 jobs sharing the bottleneck link."""
    return identical_jobs(gpt2_job(jitter_sigma=jitter_sigma), 6)


def two_job_scenario(jitter_sigma: float = DEFAULT_JITTER_SIGMA) -> list[JobSpec]:
    """Figure 6: two identical alpha = 1/2 GPT-2 jobs (the §4 running example)."""
    return identical_jobs(gpt2_heavy_job(jitter_sigma=jitter_sigma), 2)


def identical_jobs(template: JobSpec, count: int) -> list[JobSpec]:
    """``count`` copies of ``template`` named ``Job1`` … ``JobN``."""
    if count < 1:
        raise ValueError(f"count must be positive, got {count!r}")
    return [template.with_name(f"Job{i + 1}") for i in range(count)]


def cross_rack_job(jitter_sigma: float = 0.0005) -> JobSpec:
    """The packet-scale template of the cross-rack fabric experiments.

    Same units as the leaf-spine convergence tests (8 Mb per iteration at
    1 Gbps plus 10 ms compute, alpha ~ 0.44): small enough for the packet
    simulator, and used unscaled by the fluid substrate so both report
    directly comparable iteration times.
    """
    return JobSpec(
        name="Job",
        comm_bits=8e6,
        demand_gbps=1.0,
        compute_time=0.010,
        jitter_sigma=jitter_sigma,
    )


def cross_rack_scenario(
    n_jobs: int, jitter_sigma: float = 0.0005
) -> list[JobSpec]:
    """``n_jobs`` identical cross-rack jobs (see :func:`cross_rack_job`)."""
    return identical_jobs(cross_rack_job(jitter_sigma=jitter_sigma), n_jobs)

"""Offered-load traces for periodic jobs (paper Figure 1).

Figure 1 plots each job's network demand over time: pulses of high demand
(the communication phase of each iteration) separated by near-zero demand
(the computation phase).  :func:`demand_trace` regenerates such a trace from
a :class:`~repro.workloads.job.JobSpec`; :func:`aggregate_trace` sums traces
to show total offered load against link capacity.

Real collectives are not perfectly square — the paper's GPT-2 traces show a
double-hump per iteration (two all-reduce bursts for different parameter
groups).  ``PulseShape`` captures that texture without changing per-iteration
volume, so shaped traces remain calibrated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .job import JobSpec

__all__ = ["PulseShape", "SQUARE", "DOUBLE_HUMP", "demand_trace", "aggregate_trace"]


@dataclass(frozen=True)
class PulseShape:
    """Relative rate profile of one communication phase.

    ``segments`` is a sequence of ``(duration_fraction, relative_rate)``
    pairs covering the communication phase; durations must sum to 1 and the
    volume-weighted mean rate is normalized away so that every shape delivers
    exactly the job's per-iteration volume.
    """

    name: str
    segments: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        total = sum(fraction for fraction, _rate in self.segments)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"{self.name}: segment durations must sum to 1, got {total!r}"
            )
        if any(rate < 0 for _fraction, rate in self.segments):
            raise ValueError(f"{self.name}: segment rates must be non-negative")
        if all(rate == 0 for _fraction, rate in self.segments):
            raise ValueError(f"{self.name}: at least one segment must have demand")

    def rate_at(self, phase_fraction: float) -> float:
        """Normalized rate multiplier at ``phase_fraction`` in [0, 1)."""
        mean = sum(f * r for f, r in self.segments)
        position = 0.0
        for fraction, rate in self.segments:
            position += fraction
            if phase_fraction < position:
                return rate / mean
        return self.segments[-1][1] / mean


#: Constant-rate communication phase (the §4 "continuous and constant" model).
SQUARE = PulseShape("square", ((1.0, 1.0),))

#: Two all-reduce bursts per iteration, as in the paper's GPT-2 traces.
DOUBLE_HUMP = PulseShape(
    "double-hump",
    ((0.35, 1.25), (0.2, 0.35), (0.35, 1.25), (0.1, 0.35)),
)


def demand_trace(
    job: JobSpec,
    duration: float,
    dt: float = 0.01,
    shape: PulseShape = SQUARE,
    rng: Optional[np.random.Generator] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Offered load of ``job`` in isolation over ``[0, duration)``.

    Returns ``(times, demand_gbps)`` sampled every ``dt`` seconds.  The job
    repeats its ideal iteration (communication then computation) starting at
    ``job.start_offset``; compute-time jitter is drawn per iteration when the
    spec carries noise and an ``rng`` is provided.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration!r}")
    if dt <= 0 or dt > duration:
        raise ValueError(f"dt must be in (0, duration], got {dt!r}")

    samples = int(round(duration / dt))
    times = np.arange(samples) * dt
    demand = np.zeros(samples)

    comm = job.ideal_comm_time
    phase_start = job.start_offset
    while phase_start < duration:
        comm_end = phase_start + comm
        start_idx = int(np.ceil(phase_start / dt))
        end_idx = min(samples, int(np.ceil(comm_end / dt)))
        for i in range(max(0, start_idx), end_idx):
            phase_fraction = (times[i] - phase_start) / comm
            demand[i] = job.demand_gbps * shape.rate_at(min(phase_fraction, 1.0 - 1e-12))
        phase_start = comm_end + job.sample_compute_time(rng)
    return times, demand


def aggregate_trace(
    jobs: Sequence[JobSpec],
    duration: float,
    dt: float = 0.01,
    shape: PulseShape = SQUARE,
    rng: Optional[np.random.Generator] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sum of the jobs' isolated offered loads — the contention picture."""
    if not jobs:
        raise ValueError("need at least one job")
    total: Optional[np.ndarray] = None
    times: Optional[np.ndarray] = None
    for job in jobs:
        times, demand = demand_trace(job, duration, dt=dt, shape=shape, rng=rng)
        total = demand if total is None else total + demand
    assert times is not None and total is not None
    return times, total

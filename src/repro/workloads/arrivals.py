"""Open-loop job arrival models for the scheduling service.

CASSINI and Metronome (PAPERS.md) frame ML-cluster scheduling as a
*service* answering a continuous arrival stream of periodic training
jobs.  This module generates that stream for the churn daemon
(:mod:`repro.service`): a non-homogeneous Poisson process of job
arrivals with

* a base arrival rate (jobs per second of simulated time),
* optional *diurnal modulation* — the rate swings sinusoidally around
  the base, the fluid-time analogue of day/night load,
* optional *flash crowds* — bursts of short fine-tune jobs landing at
  one instant (a popular base model just dropped), and
* per-job lifetimes in iterations (geometric, so departures are an
  open-loop Poisson-like process too).

The stream is generated **up front** from one seed by thinning: the
whole sequence of arrival times, template choices and lifetimes is a
pure function of ``(model, templates, seed)``, independent of anything
the daemon later does with it.  That is what makes crash recovery
bit-identical — a resumed daemon re-reads the same events by index
instead of re-drawing them (docs/SERVICE.md).

Validation is eager, in the :mod:`repro.faults.schedule` style: a
negative, NaN or otherwise unusable field raises ``ValueError`` naming
the offending value at construction time, never downstream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .job import JobSpec

__all__ = ["FlashCrowd", "ArrivalModel", "ArrivalStream", "ArrivalEvent"]


def _check(condition: bool, what: str, message: str) -> None:
    """Eager validation helper (mirrors ``repro.faults.schedule._check``)."""
    if not condition:
        raise ValueError(f"{what}: {message}")


@dataclass(frozen=True)
class FlashCrowd:
    """A burst of ``size`` short fine-tune jobs arriving at ``time``.

    Fine-tunes are modelled as regular template jobs with a small, fixed
    ``iterations`` lifetime — they join, train briefly, and depart,
    which is exactly the churn shape that stresses admission control.
    """

    time: float
    size: int
    iterations: int = 3

    def __post_init__(self) -> None:
        _check(
            math.isfinite(self.time) and self.time >= 0.0,
            f"flash crowd at t={self.time!r}",
            f"time must be finite and non-negative, got {self.time!r}",
        )
        _check(
            self.size >= 1,
            f"flash crowd at t={self.time:g}",
            f"size must be positive, got {self.size!r}",
        )
        _check(
            self.iterations >= 1,
            f"flash crowd at t={self.time:g}",
            f"iterations must be positive, got {self.iterations!r}",
        )


@dataclass(frozen=True)
class ArrivalEvent:
    """One job offered to the service: the spec's ``start_offset`` is the
    absolute arrival time (seconds of simulated time)."""

    index: int
    time: float
    spec: JobSpec
    flash: bool = False

    def __post_init__(self) -> None:
        _check(
            math.isfinite(self.time) and self.time >= 0.0,
            f"arrival #{self.index} ({self.spec.name!r})",
            f"arrival time must be finite and non-negative, got {self.time!r}",
        )


@dataclass(frozen=True)
class ArrivalModel:
    """Open-loop arrival process parameters.

    Parameters
    ----------
    rate_per_s:
        Base mean arrival rate, jobs per second of simulated time.
    horizon_s:
        Arrivals are generated in ``[0, horizon_s)``.
    mean_iterations:
        Mean job lifetime in iterations; each job draws a geometric
        lifetime with this mean (minimum 1), so departures form an
        open-loop process too.
    diurnal_amplitude:
        Relative swing of the rate: ``rate(t) = rate_per_s * (1 +
        amplitude * sin(2 pi t / period))``.  Zero disables modulation;
        must stay below 1 so the rate never goes negative.
    diurnal_period_s:
        Period of the modulation, seconds of simulated time.
    flash_crowds:
        Bursts of short fine-tune jobs (see :class:`FlashCrowd`).
    """

    rate_per_s: float
    horizon_s: float
    mean_iterations: float = 12.0
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float = 60.0
    flash_crowds: tuple[FlashCrowd, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        _check(
            math.isfinite(self.rate_per_s) and self.rate_per_s > 0,
            "arrival model",
            f"rate_per_s must be finite and positive, got {self.rate_per_s!r}",
        )
        _check(
            math.isfinite(self.horizon_s) and self.horizon_s > 0,
            "arrival model",
            f"horizon_s must be finite and positive, got {self.horizon_s!r}",
        )
        _check(
            self.mean_iterations >= 1.0 and math.isfinite(self.mean_iterations),
            "arrival model",
            f"mean_iterations must be >= 1, got {self.mean_iterations!r}",
        )
        _check(
            0.0 <= self.diurnal_amplitude < 1.0,
            "arrival model",
            f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude!r}",
        )
        _check(
            math.isfinite(self.diurnal_period_s) and self.diurnal_period_s > 0,
            "arrival model",
            f"diurnal_period_s must be finite and positive, got "
            f"{self.diurnal_period_s!r}",
        )
        for crowd in self.flash_crowds:
            _check(
                crowd.time < self.horizon_s,
                f"flash crowd at t={crowd.time:g}",
                f"lands beyond the horizon {self.horizon_s:g}",
            )

    def rate_at(self, time: float) -> float:
        """Instantaneous arrival rate at ``time`` (jobs/s)."""
        if not math.isfinite(time) or time < 0:
            raise ValueError(
                f"arrival model: rate_at time must be finite and "
                f"non-negative, got {time!r}"
            )
        swing = math.sin(2.0 * math.pi * time / self.diurnal_period_s)
        return self.rate_per_s * (1.0 + self.diurnal_amplitude * swing)

    def stream(
        self, templates: Sequence[JobSpec], seed: Optional[int] = 0
    ) -> "ArrivalStream":
        """Generate the full arrival stream (see module docstring).

        Thinning: candidate inter-arrival gaps are drawn at the peak
        rate ``rate_per_s * (1 + amplitude)`` and each candidate is
        accepted with probability ``rate(t) / peak`` — the standard
        construction for a non-homogeneous Poisson process.  Template
        choice and lifetime are drawn per accepted arrival, in arrival
        order, so the whole stream is one deterministic function of the
        seed.
        """
        if not templates:
            raise ValueError("arrival model: need at least one job template")
        rng = np.random.default_rng(seed)
        peak = self.rate_per_s * (1.0 + self.diurnal_amplitude)
        events: list[ArrivalEvent] = []
        now = 0.0
        index = 0
        while True:
            now += float(rng.exponential(1.0 / peak))
            if now >= self.horizon_s:
                break
            if self.diurnal_amplitude > 0.0:
                if float(rng.random()) >= self.rate_at(now) / peak:
                    continue  # thinned: the trough rejects candidates
            template = templates[int(rng.integers(len(templates)))]
            lifetime = int(rng.geometric(1.0 / self.mean_iterations))
            events.append(
                ArrivalEvent(
                    index=index,
                    time=now,
                    spec=template.with_name(
                        f"svc-{index:04d}-{template.name}"
                    ).with_offset(now).with_iteration_limit(lifetime),
                )
            )
            index += 1
        for crowd in self.flash_crowds:
            for _burst in range(crowd.size):
                template = templates[int(rng.integers(len(templates)))]
                events.append(
                    ArrivalEvent(
                        index=index,
                        time=crowd.time,
                        spec=template.with_name(
                            f"svc-{index:04d}-ft-{template.name}"
                        ).with_offset(crowd.time).with_iteration_limit(
                            crowd.iterations
                        ),
                        flash=True,
                    )
                )
                index += 1
        events.sort(key=lambda event: (event.time, event.index))
        return ArrivalStream(events=tuple(events), model=self)


@dataclass(frozen=True)
class ArrivalStream:
    """A fully materialized arrival sequence, sorted by arrival time."""

    events: tuple[ArrivalEvent, ...]
    model: ArrivalModel

    def __len__(self) -> int:
        return len(self.events)

    def between(self, start: float, end: float) -> tuple[ArrivalEvent, ...]:
        """Events with ``start < time <= end`` (epoch-boundary polling)."""
        if not (math.isfinite(start) and math.isfinite(end)):
            raise ValueError(
                f"arrival stream: window must be finite, got "
                f"({start!r}, {end!r}]"
            )
        if end < start:
            raise ValueError(
                f"arrival stream: window end {end!r} precedes start {start!r}"
            )
        return tuple(e for e in self.events if start < e.time <= end)

    def offered_load_gbps(self) -> float:
        """Mean offered load if every arrival were admitted (Gbps)."""
        total_bits = sum(
            e.spec.comm_bits * (e.spec.iteration_limit or 1)
            for e in self.events
        )
        return total_bits / self.model.horizon_s / 1e9

"""Periodic DNN training/fine-tuning job models.

The paper abstracts a distributed training job as a strictly periodic
two-phase loop: a *communication* phase (the collective all-reduce of one
iteration, ``total_bytes`` at up to ``demand_gbps``) followed by a
*computation* phase (``compute_time`` seconds of forward/backward work), with
the next iteration's flows starting only when the previous iteration
finishes.  :class:`JobSpec` captures that abstraction; the fluid and packet
simulators both consume it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

__all__ = ["JobSpec", "GBPS", "gbit"]

#: Bits per second in one Gbps (decimal, as link rates are quoted).
GBPS = 1e9


def gbit(value: float) -> float:
    """Convert gigabits to bits (readability helper for job volumes)."""
    return value * 1e9


@dataclass(frozen=True)
class JobSpec:
    """Static description of one periodic training job.

    Parameters
    ----------
    name:
        Identifier used in reports ("J1", "GPT-2#3", ...).
    comm_bits:
        Bits transferred per training iteration (``TOTAL_BYTES * 8``).
    demand_gbps:
        Peak rate the job's flows can drive, in Gbps (bounded by its NIC /
        number of flows).  During the communication phase the job wants
        ``min(demand, allocated share)`` of the bottleneck.
    compute_time:
        Seconds of computation between communication phases.
    start_offset:
        When the job's first iteration begins, in seconds.
    jitter_sigma:
        Std of zero-mean Gaussian noise added to each computation phase
        (paper §4's noise model).  Zero disables noise.
    iteration_limit:
        Number of iterations after which the job departs (training
        finishes).  ``None`` means the job runs for the whole simulation —
        used by churn experiments where jobs join and leave.
    volume_jitter_fraction:
        Relative std of zero-mean Gaussian noise on each iteration's
        communication volume.  The paper's §4 analysis assumes the volume
        is constant; this knob probes robustness to that assumption
        (real collectives vary slightly between iterations).
    """

    name: str
    comm_bits: float
    demand_gbps: float
    compute_time: float
    start_offset: float = 0.0
    jitter_sigma: float = 0.0
    iteration_limit: Optional[int] = None
    volume_jitter_fraction: float = 0.0

    def __post_init__(self) -> None:
        # Finiteness first: every ordered check below is silently False for
        # NaN (``nan < 0`` is False), so a NaN offset used to slip straight
        # into the simulators and poison event times.  Reject eagerly, with
        # the offending field named (the repro.faults.schedule convention).
        for field_name in (
            "comm_bits", "demand_gbps", "compute_time", "start_offset",
            "jitter_sigma", "volume_jitter_fraction",
        ):
            value = getattr(self, field_name)
            if not math.isfinite(value):
                raise ValueError(
                    f"{self.name}: {field_name} must be finite, got {value!r}"
                )
        if self.comm_bits <= 0:
            raise ValueError(f"{self.name}: comm_bits must be positive, got {self.comm_bits!r}")
        if self.demand_gbps <= 0:
            raise ValueError(
                f"{self.name}: demand_gbps must be positive, got {self.demand_gbps!r}"
            )
        if self.compute_time < 0:
            raise ValueError(
                f"{self.name}: compute_time must be non-negative, got {self.compute_time!r}"
            )
        if self.start_offset < 0:
            raise ValueError(
                f"{self.name}: start_offset must be non-negative, got {self.start_offset!r}"
            )
        if self.jitter_sigma < 0:
            raise ValueError(
                f"{self.name}: jitter_sigma must be non-negative, got {self.jitter_sigma!r}"
            )
        if self.iteration_limit is not None and self.iteration_limit < 1:
            raise ValueError(
                f"{self.name}: iteration_limit must be positive, got "
                f"{self.iteration_limit!r}"
            )
        if not 0.0 <= self.volume_jitter_fraction < 1.0:
            raise ValueError(
                f"{self.name}: volume_jitter_fraction must be in [0, 1), got "
                f"{self.volume_jitter_fraction!r}"
            )

    @property
    def comm_bytes(self) -> int:
        """TOTAL_BYTES for Algorithm 1."""
        return int(round(self.comm_bits / 8.0))

    @property
    def demand_bps(self) -> float:
        """Peak demand in bits per second."""
        return self.demand_gbps * GBPS

    @property
    def ideal_comm_time(self) -> float:
        """Communication-phase duration when the job runs in isolation."""
        return self.comm_bits / self.demand_bps

    @property
    def ideal_iteration_time(self) -> float:
        """Isolation iteration time ``T`` (paper Figure 5(a))."""
        return self.ideal_comm_time + self.compute_time

    @property
    def alpha(self) -> float:
        """Communication fraction ``alpha = comm / T`` of the ideal iteration."""
        return self.ideal_comm_time / self.ideal_iteration_time

    @property
    def mean_load_bps(self) -> float:
        """Long-run average offered load in isolation, in bits per second."""
        return self.comm_bits / self.ideal_iteration_time

    def with_offset(self, start_offset: float) -> "JobSpec":
        """Copy of this spec starting at a different time."""
        return replace(self, start_offset=start_offset)

    def with_jitter(self, jitter_sigma: float) -> "JobSpec":
        """Copy of this spec with a different compute-time noise level."""
        return replace(self, jitter_sigma=jitter_sigma)

    def with_name(self, name: str) -> "JobSpec":
        """Copy of this spec under a different name."""
        return replace(self, name=name)

    def with_iteration_limit(self, iteration_limit: Optional[int]) -> "JobSpec":
        """Copy of this spec departing after ``iteration_limit`` iterations."""
        return replace(self, iteration_limit=iteration_limit)

    def scaled(self, factor: float) -> "JobSpec":
        """Copy with bytes, demand and compute time all scaled by ``factor``.

        Scaling everything together preserves ``alpha`` and every ratio that
        MLTCP's dynamics depend on — this is how paper-scale (50 Gbps)
        scenarios are mapped onto the packet-level simulator's smaller,
        tractable units.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor!r}")
        return replace(
            self,
            comm_bits=self.comm_bits * factor,
            demand_gbps=self.demand_gbps,  # rate unchanged; time stretches
            compute_time=self.compute_time * factor,
            start_offset=self.start_offset * factor,
            jitter_sigma=self.jitter_sigma * factor,
        )

    def sample_compute_time(self, rng: Optional[np.random.Generator]) -> float:
        """One computation-phase duration, with the §4 Gaussian noise model."""
        if self.jitter_sigma == 0.0 or rng is None:
            return self.compute_time
        noisy = rng.normal(self.compute_time, self.jitter_sigma)
        # Computation can't take negative time no matter how unlucky the draw.
        return max(0.0, noisy)

    def sample_comm_bits(self, rng: Optional[np.random.Generator]) -> float:
        """One iteration's communication volume, with relative jitter."""
        if self.volume_jitter_fraction == 0.0 or rng is None:
            return float(self.comm_bits)
        noisy = rng.normal(1.0, self.volume_jitter_fraction) * self.comm_bits
        # At least one MTU's worth of traffic per iteration.
        return max(12000.0, noisy)


def total_mean_load_gbps(jobs: list[JobSpec]) -> float:
    """Aggregate long-run average load of a job mix, in Gbps."""
    return sum(job.mean_load_bps for job in jobs) / GBPS


def feasible_on_link(jobs: list[JobSpec], capacity_gbps: float) -> bool:
    """Necessary condition for a zero-contention interleave to exist.

    The average offered load must not exceed capacity.  (Sufficiency also
    needs a tiling of the comm phases; the centralized scheduler checks that
    constructively.)
    """
    if capacity_gbps <= 0:
        raise ValueError(f"capacity_gbps must be positive, got {capacity_gbps!r}")
    if not jobs:
        return True
    load = total_mean_load_gbps(jobs)
    return load <= capacity_gbps * (1.0 + 1e-9) and not math.isnan(load)

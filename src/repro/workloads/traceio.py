"""Persistence for experiment artifacts: demand traces and iteration logs.

Downstream analysis (plotting, statistics outside this library) wants flat
files.  These helpers write/read the two artifact kinds the figures are
built from — time-series demand traces (Figure 1) and per-iteration records
(Figures 2/3/4/6) — as CSV, plus a JSON round-trip for
:class:`~repro.workloads.job.JobSpec` scenarios so a run is reproducible
from its artifacts alone.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .job import JobSpec

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from ..fluid.flowsim import FluidResult, IterationResult

__all__ = [
    "save_demand_trace",
    "load_demand_trace",
    "save_iterations",
    "load_iterations",
    "save_scenario",
    "load_scenario",
]


def save_demand_trace(
    path: str | Path, times: Sequence[float], demand_gbps: Sequence[float]
) -> None:
    """Write a (time, demand) series as two-column CSV."""
    times = np.asarray(times, dtype=float)
    demand = np.asarray(demand_gbps, dtype=float)
    if times.shape != demand.shape:
        raise ValueError(
            f"times and demand must align, got {times.shape} vs {demand.shape}"
        )
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_s", "demand_gbps"])
        for t, d in zip(times, demand):
            writer.writerow([f"{t:.9g}", f"{d:.9g}"])


def load_demand_trace(path: str | Path) -> tuple[np.ndarray, np.ndarray]:
    """Read a demand trace written by :func:`save_demand_trace`."""
    times, demand = [], []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != ["time_s", "demand_gbps"]:
            raise ValueError(
                f"{path}: not a demand trace (header {reader.fieldnames})"
            )
        for row in reader:
            times.append(float(row["time_s"]))
            demand.append(float(row["demand_gbps"]))
    return np.array(times), np.array(demand)


def save_iterations(path: str | Path, result: "FluidResult") -> None:
    """Write a fluid run's iteration records as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["job", "index", "comm_start_s", "comm_end_s", "iteration_end_s"]
        )
        for it in result.iterations:
            writer.writerow(
                [
                    it.job,
                    it.index,
                    f"{it.comm_start:.9g}",
                    f"{it.comm_end:.9g}",
                    f"{it.iteration_end:.9g}",
                ]
            )


def load_iterations(path: str | Path) -> list["IterationResult"]:
    """Read iteration records written by :func:`save_iterations`."""
    from ..fluid.flowsim import IterationResult

    records = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        expected = ["job", "index", "comm_start_s", "comm_end_s", "iteration_end_s"]
        if reader.fieldnames != expected:
            raise ValueError(
                f"{path}: not an iteration log (header {reader.fieldnames})"
            )
        for row in reader:
            records.append(
                IterationResult(
                    job=row["job"],
                    index=int(row["index"]),
                    comm_start=float(row["comm_start_s"]),
                    comm_end=float(row["comm_end_s"]),
                    iteration_end=float(row["iteration_end_s"]),
                )
            )
    return records


def save_scenario(path: str | Path, jobs: Sequence[JobSpec]) -> None:
    """Write a job mix as JSON (exact field round-trip)."""
    payload = {"jobs": [asdict(job) for job in jobs]}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_scenario(path: str | Path) -> list[JobSpec]:
    """Read a job mix written by :func:`save_scenario`."""
    payload = json.loads(Path(path).read_text())
    if "jobs" not in payload or not isinstance(payload["jobs"], list):
        raise ValueError(f"{path}: not a scenario file")
    return [JobSpec(**entry) for entry in payload["jobs"]]

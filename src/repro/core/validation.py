"""Validation of custom aggressiveness functions against the paper's rules.

§3.1 states three requirements for a bandwidth aggressiveness function:
(i) a range large enough to absorb network noise, (ii) a non-negative
derivative, (iii) all flows using the same function.  (iii) is a deployment
property; (i) and (ii) — plus basic sanity (positive, finite) — are
checkable per function.  :func:`validate_aggressiveness` returns a list of
human-readable violations (empty = valid), so operators can lint a custom
function before rolling it out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .aggressiveness import AggressivenessFunction

__all__ = ["ValidationIssue", "validate_aggressiveness", "is_valid_aggressiveness"]

#: Default minimum range span for requirement (i).  The paper's functions
#: all span 1.75; a function spanning less than ~0.5 barely differentiates
#: flows and risks being lost in RTT/iteration-time noise.
DEFAULT_MIN_RANGE = 0.5


@dataclass(frozen=True)
class ValidationIssue:
    """One violated requirement."""

    requirement: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.requirement}] {self.detail}"


def validate_aggressiveness(
    function: AggressivenessFunction,
    min_range: float = DEFAULT_MIN_RANGE,
    samples: int = 257,
) -> list[ValidationIssue]:
    """Check a function against §3.1's requirements on a sample grid.

    Returns an empty list when the function is deployable.
    """
    if samples < 2:
        raise ValueError(f"need at least 2 samples, got {samples}")
    issues: list[ValidationIssue] = []
    values = []
    for i in range(samples):
        ratio = i / (samples - 1)
        try:
            value = function(ratio)
        except Exception as error:  # noqa: BLE001 - reported, not raised
            issues.append(
                ValidationIssue(
                    requirement="totality",
                    detail=f"F({ratio:.3f}) raised {type(error).__name__}: {error}",
                )
            )
            return issues
        values.append((ratio, value))

    for ratio, value in values:
        if not math.isfinite(value):
            issues.append(
                ValidationIssue(
                    requirement="finiteness",
                    detail=f"F({ratio:.3f}) = {value!r} is not finite",
                )
            )
            return issues
        if value <= 0.0:
            issues.append(
                ValidationIssue(
                    requirement="positivity",
                    detail=(
                        f"F({ratio:.3f}) = {value:.4g} <= 0: a zero weight "
                        "stalls the flow entirely (and starves it, "
                        "violating the §5 no-starvation property)"
                    ),
                )
            )
            break

    span = max(v for _r, v in values) - min(v for _r, v in values)
    if span < min_range:
        issues.append(
            ValidationIssue(
                requirement="(i) range",
                detail=(
                    f"range span {span:.4g} < {min_range:.4g}: too small to "
                    "absorb RTT/iteration-time noise (paper's functions "
                    "span 1.75)"
                ),
            )
        )

    for (r0, v0), (r1, v1) in zip(values, values[1:]):
        if v1 < v0 - 1e-12:
            issues.append(
                ValidationIssue(
                    requirement="(ii) monotonicity",
                    detail=(
                        f"F decreases between {r0:.3f} and {r1:.3f} "
                        f"({v0:.4g} -> {v1:.4g}): decreasing functions "
                        "never interleave (paper Figure 3, F5/F6)"
                    ),
                )
            )
            break

    return issues


def is_valid_aggressiveness(
    function: AggressivenessFunction,
    min_range: float = DEFAULT_MIN_RANGE,
    samples: int = 257,
) -> bool:
    """True when :func:`validate_aggressiveness` finds no violations."""
    return not validate_aggressiveness(function, min_range=min_range, samples=samples)

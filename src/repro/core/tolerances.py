"""Tolerance helpers for float comparisons in simulation code.

The ``repro lint`` float-discipline rule (FLT001) forbids exact ``==`` /
``!=`` between float expressions in ``simulator/``, ``fluid/`` and
``tcp/``: event times and rates are sums of many small floats, so exact
equality is an accident of evaluation order.  These helpers make the
intended slack explicit — and keep the repo on *one* epsilon per quantity
class instead of scattered magic numbers.
"""

from __future__ import annotations

import math

__all__ = ["TIME_EPS", "BITS_EPS", "REL_EPS", "close", "is_zero"]

#: Seconds below which two simulation instants are "the same event time".
TIME_EPS = 1e-12

#: Bits below which a communication phase counts as drained.
BITS_EPS = 1e-6

#: Default relative tolerance for dimensionless factors (rates, ratios).
REL_EPS = 1e-9


def close(a: float, b: float, *, rel: float = REL_EPS, abs_tol: float = 0.0) -> bool:
    """Whether ``a`` and ``b`` agree within the given tolerances.

    Thin wrapper over :func:`math.isclose` so call sites read as policy
    (``close(factor, last_factor)``) rather than mechanism.
    """
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)


def is_zero(x: float, *, eps: float = REL_EPS) -> bool:
    """Whether ``x`` is indistinguishable from zero at tolerance ``eps``."""
    return abs(x) <= eps

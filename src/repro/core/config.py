"""Configuration shared by every MLTCP integration point.

Algorithm 1 in the paper is parameterized by two per-job constants —
``TOTAL_BYTES`` (bytes sent per training iteration) and ``COMP_TIME`` (the
communication gap that marks an iteration boundary) — plus the aggressiveness
function's slope/intercept and the MTU used to convert ACK counts to bytes.
:class:`MLTCPConfig` bundles them so the packet-level TCP stack, the fluid
simulator, and the analysis module all agree on parameter semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .aggressiveness import (
    AggressivenessFunction,
    LinearAggressiveness,
    default_aggressiveness,
)

__all__ = ["MLTCPConfig", "DEFAULT_MTU_BYTES"]

#: Maximum packet size used by the system (Algorithm 1, line 6).
DEFAULT_MTU_BYTES = 1500


@dataclass(frozen=True)
class MLTCPConfig:
    """Parameters of one MLTCP-augmented flow.

    Parameters
    ----------
    function:
        The bandwidth aggressiveness function shared by all flows
        (requirement iii).  Defaults to the paper's linear function with
        slope 1.75 and intercept 0.25.
    total_bytes:
        ``TOTAL_BYTES``: bytes this flow sends per training iteration.
        ``None`` means "learn it online" from the first iterations, as the
        paper's kernel module does.
    comp_time:
        ``COMP_TIME`` in seconds: an ACK gap longer than this marks the start
        of a new iteration (Algorithm 1, line 10).  ``None`` means "learn it
        online" as a multiple of the RTT.
    mtu_bytes:
        Maximum packet size; converts ACK counts to bytes (line 7).
    learn_iterations:
        When learning online, how many complete iterations to observe before
        trusting the learned ``total_bytes``.
    gap_rtt_multiplier:
        When learning ``comp_time`` online, the iteration boundary is an ACK
        gap exceeding this many smoothed RTTs ("gaps in the ack arrivals that
        exceed several round-trip times", §3.2).
    degrade_on_unreliable:
        Graceful-degradation master switch (docs/ROBUSTNESS.md): when the
        tracker's TOTAL_BYTES estimate is flagged unreliable — observed
        per-iteration volume drifting beyond ``drift_threshold``, a missed
        boundary, or post-restart staleness — MLTCP clamps ``F`` to 1 and
        behaves like its vanilla base algorithm until the estimate heals.
    drift_threshold:
        Fractional deviation of the observed per-iteration volume from the
        TOTAL_BYTES estimate beyond which the estimate is unreliable.  The
        default tolerates the paper's §4 noise (well under 45%) while a
        2x/0.5x mis-estimate (drift 0.5/1.0) trips it.
    reengage_iterations:
        Hysteresis: consecutive clean iterations (volume within
        ``drift_threshold`` of the estimate) required before a degraded
        sender re-engages MLTCP.
    degrade_after_iterations:
        Entry hysteresis: consecutive drifting iterations required before
        the estimate is condemned.  A single retransmission timeout can
        split one healthy iteration into a tiny fragment plus a remainder
        (one isolated drifting record); a genuinely wrong estimate drifts
        on *every* iteration, so two in a row separates the two cleanly.
        Missed-boundary overruns are not hysteresis-gated (they cannot
        happen spuriously — fragments undershoot).
    drift_warmup_iterations:
        Completed iterations to observe before drift can condemn the
        estimate.  ACK-gap boundary detection is noisy while a flow is in
        slow start and early recovery — a retransmission timeout splits the
        first iteration into small fragments whose volume is far below
        TOTAL_BYTES — so judging drift from the start would degrade
        perfectly healthy flows.  The missed-boundary overrun check is not
        warmup-gated (fragments undershoot; only a genuinely low estimate
        overruns).
    """

    function: AggressivenessFunction = field(default_factory=default_aggressiveness)
    total_bytes: Optional[int] = None
    comp_time: Optional[float] = None
    mtu_bytes: int = DEFAULT_MTU_BYTES
    learn_iterations: int = 2
    gap_rtt_multiplier: float = 4.0
    degrade_on_unreliable: bool = True
    drift_threshold: float = 0.45
    reengage_iterations: int = 3
    degrade_after_iterations: int = 2
    drift_warmup_iterations: int = 3

    def __post_init__(self) -> None:
        if self.total_bytes is not None and self.total_bytes <= 0:
            raise ValueError(f"total_bytes must be positive, got {self.total_bytes!r}")
        if self.comp_time is not None and self.comp_time <= 0:
            raise ValueError(f"comp_time must be positive, got {self.comp_time!r}")
        if self.mtu_bytes <= 0:
            raise ValueError(f"mtu_bytes must be positive, got {self.mtu_bytes!r}")
        if self.learn_iterations < 1:
            raise ValueError(
                f"learn_iterations must be at least 1, got {self.learn_iterations!r}"
            )
        if self.gap_rtt_multiplier <= 1.0:
            raise ValueError(
                "gap_rtt_multiplier must exceed 1 RTT to avoid classifying "
                f"ordinary ACK jitter as an iteration boundary, got "
                f"{self.gap_rtt_multiplier!r}"
            )
        if self.drift_threshold <= 0.0:
            raise ValueError(
                f"drift_threshold must be positive, got {self.drift_threshold!r}"
            )
        if self.reengage_iterations < 1:
            raise ValueError(
                f"reengage_iterations must be at least 1, got "
                f"{self.reengage_iterations!r}"
            )
        if self.degrade_after_iterations < 1:
            raise ValueError(
                f"degrade_after_iterations must be at least 1, got "
                f"{self.degrade_after_iterations!r}"
            )
        if self.drift_warmup_iterations < 0:
            raise ValueError(
                f"drift_warmup_iterations must be non-negative, got "
                f"{self.drift_warmup_iterations!r}"
            )

    @property
    def slope(self) -> float:
        """Slope of the linear function, if linear (for the error bound)."""
        if isinstance(self.function, LinearAggressiveness):
            return self.function.slope
        raise TypeError(
            f"slope is only defined for LinearAggressiveness, not "
            f"{type(self.function).__name__}"
        )

    @property
    def intercept(self) -> float:
        """Intercept of the linear function, if linear."""
        if isinstance(self.function, LinearAggressiveness):
            return self.function.intercept
        raise TypeError(
            f"intercept is only defined for LinearAggressiveness, not "
            f"{type(self.function).__name__}"
        )

    @property
    def knows_iteration_shape(self) -> bool:
        """Whether both TOTAL_BYTES and COMP_TIME are given (no learning)."""
        return self.total_bytes is not None and self.comp_time is not None

    def with_function(self, function: AggressivenessFunction) -> "MLTCPConfig":
        """A copy of this config using a different aggressiveness function."""
        return replace(self, function=function)

"""Algorithm 1 state machine: tracking iteration progress from ACK arrivals.

The paper's MLTCP-Reno kernel module keeps three pieces of per-flow state —
``bytes_sent``, ``bytes_ratio`` and ``prev_ack_tstamp`` — updated on every
ACK.  A gap between consecutive ACKs longer than ``COMP_TIME`` marks the
start of a new training iteration and resets the state (Algorithm 1,
lines 10–13); otherwise ``bytes_ratio = min(1, bytes_sent / TOTAL_BYTES)``
(line 16).

The paper also "automatically learn[s]" ``TOTAL_BYTES`` and ``COMP_TIME`` by
"measuring the total amount of data and computation time during the first few
iterations" (§3.2); :class:`IterationTracker` implements that online learning
when the config leaves them unset.

Beyond the paper, the tracker judges its own estimate (docs/ROBUSTNESS.md):
when the observed per-iteration volume drifts beyond
``config.drift_threshold`` of the TOTAL_BYTES estimate, a boundary is
missed (``bytes_sent`` overruns the estimate mid-iteration), or learned
state is discarded after an application restart, it sets
``estimate_unreliable`` — and :class:`repro.tcp.mltcp.MltcpState` clamps the
aggressiveness to 1 (vanilla CC) until ``config.reengage_iterations``
consecutive clean iterations re-earn trust.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .config import MLTCPConfig

__all__ = ["IterationTracker", "IterationRecord"]


@dataclass(frozen=True)
class IterationRecord:
    """Summary of one observed (completed) training iteration."""

    index: int
    bytes_sent: int
    start_time: float
    end_time: float

    @property
    def comm_duration(self) -> float:
        """Wall-clock length of the iteration's communication phase."""
        return self.end_time - self.start_time


@dataclass
class IterationTracker:
    """Per-flow Algorithm 1 state, fed by ACK arrivals.

    Call :meth:`on_ack` for every received ACK; it returns the current
    ``bytes_ratio`` to plug into the aggressiveness function.  The tracker is
    transport-agnostic: the packet simulator drives it from real ACK events
    while the fluid simulator drives it from delivered-byte accounting.
    """

    config: MLTCPConfig
    bytes_sent: int = 0
    bytes_ratio: float = 0.0
    prev_ack_tstamp: Optional[float] = None
    iteration_index: int = 0
    #: Whether the TOTAL_BYTES estimate is currently distrusted; while set,
    #: MLTCP degrades to its vanilla base CC (docs/ROBUSTNESS.md).
    estimate_unreliable: bool = False
    #: Why the estimate is distrusted (``"drift=..."``, ``"missed-boundary"``,
    #: ``"post-restart"``); ``None`` while reliable.
    unreliable_reason: Optional[str] = None
    _iteration_start: Optional[float] = None
    _learned_total_bytes: Optional[float] = None
    _learned_comp_time: Optional[float] = None
    _completed: list[IterationRecord] = field(default_factory=list)
    _observed_gaps: list[float] = field(default_factory=list)
    _clean_streak: int = 0
    _dirty_streak: int = 0
    _missed_boundary: bool = False

    @property
    def total_bytes(self) -> Optional[float]:
        """Effective TOTAL_BYTES: configured value, else the learned one."""
        if self.config.total_bytes is not None:
            return float(self.config.total_bytes)
        return self._learned_total_bytes

    @property
    def comp_time(self) -> Optional[float]:
        """Effective COMP_TIME: configured value, else the learned one."""
        if self.config.comp_time is not None:
            return self.config.comp_time
        return self._learned_comp_time

    @property
    def completed_iterations(self) -> tuple[IterationRecord, ...]:
        """Records of iterations whose boundary has been observed."""
        return tuple(self._completed)

    def on_ack(
        self, now: float, acked_bytes: int, smoothed_rtt: Optional[float] = None
    ) -> float:
        """Process one cumulative ACK covering ``acked_bytes`` new bytes.

        Parameters
        ----------
        now:
            Current (simulation or wall-clock) time in seconds.
        acked_bytes:
            Bytes newly acknowledged by this ACK (``num_acks * MTU`` in the
            paper's packet-count formulation).
        smoothed_rtt:
            The connection's current SRTT estimate, used only to learn
            ``COMP_TIME`` online when the config does not provide it.

        Returns
        -------
        float
            The updated ``bytes_ratio`` in [0, 1].
        """
        if acked_bytes < 0:
            raise ValueError(f"acked_bytes must be non-negative, got {acked_bytes!r}")
        if self.prev_ack_tstamp is not None and now < self.prev_ack_tstamp:
            raise ValueError(
                f"time went backwards: now={now!r} < "
                f"prev_ack_tstamp={self.prev_ack_tstamp!r}"
            )

        boundary_gap = self._boundary_gap(smoothed_rtt)
        if self.prev_ack_tstamp is None:
            self._start_iteration(now)
        else:
            gap = now - self.prev_ack_tstamp
            if boundary_gap is not None and gap > boundary_gap:
                self._finish_iteration(end_time=self.prev_ack_tstamp)
                self._start_iteration(now)
            else:
                self._observed_gaps.append(gap)

        self.bytes_sent += acked_bytes
        total = self.total_bytes
        if total is None or total <= 0:
            # Still in the learning phase: behave like plain TCP (ratio 0
            # yields the intercept, the least aggressive setting).
            self.bytes_ratio = 0.0
        else:
            self.bytes_ratio = min(1.0, self.bytes_sent / total)
            if (
                self.config.degrade_on_unreliable
                and not self._missed_boundary
                and self.bytes_sent > (1.0 + self.config.drift_threshold) * total
            ):
                # The iteration volume has overrun the estimate by more than
                # the drift tolerance and no boundary arrived: either the
                # estimate is badly low or boundary detection failed.  Flag
                # immediately rather than waiting for the (possibly never
                # observed) boundary.
                self._missed_boundary = True
                self.estimate_unreliable = True
                self.unreliable_reason = "missed-boundary"
                self._clean_streak = 0
        self.prev_ack_tstamp = now
        return self.bytes_ratio

    def aggressiveness(self) -> float:
        """Evaluate the configured F at the current ``bytes_ratio``."""
        return self.config.function(self.bytes_ratio)

    def notify_iteration_boundary(self, now: float) -> None:
        """Explicitly mark an iteration boundary (fluid-simulator hook).

        The packet path detects boundaries from ACK gaps; flow-level models
        know them exactly and call this instead.
        """
        if self.prev_ack_tstamp is not None:
            self._finish_iteration(end_time=self.prev_ack_tstamp)
        self._start_iteration(now)
        self.prev_ack_tstamp = None
        self._iteration_start = now

    def reset_after_restart(self, now: float) -> None:
        """Discard *all* state after the application restarted.

        A restart aborts the in-flight transfer and restarts training from
        the last checkpoint, so the partial iteration must not be learned
        from (it would poison the TOTAL_BYTES max-window) and previously
        learned estimates describe a training run that no longer exists.
        Configured values survive (they are ground truth); learned ones are
        dropped and — when they were actually in use — the estimate is
        flagged unreliable so MLTCP rides vanilla CC until re-learning
        completes (docs/ROBUSTNESS.md).
        """
        stale_learned = (
            self.config.total_bytes is None and self._learned_total_bytes is not None
        ) or (self.config.comp_time is None and self._learned_comp_time is not None)
        self.bytes_sent = 0
        self.bytes_ratio = 0.0
        self.prev_ack_tstamp = None
        self.iteration_index = 0
        self._iteration_start = now
        self._learned_total_bytes = None
        self._learned_comp_time = None
        self._completed.clear()
        self._observed_gaps.clear()
        self._missed_boundary = False
        self._clean_streak = 0
        self._dirty_streak = 0
        if stale_learned and self.config.degrade_on_unreliable:
            self.estimate_unreliable = True
            self.unreliable_reason = "post-restart"

    # -- internals --------------------------------------------------------

    def _boundary_gap(self, smoothed_rtt: Optional[float]) -> Optional[float]:
        """The ACK gap threshold that signals a new iteration, if known."""
        comp_time = self.comp_time
        if comp_time is not None:
            return comp_time
        if smoothed_rtt is not None and smoothed_rtt > 0:
            return self.config.gap_rtt_multiplier * smoothed_rtt
        return None

    def _start_iteration(self, now: float) -> None:
        self.bytes_sent = 0
        self.bytes_ratio = 0.0
        self._iteration_start = now

    def _finish_iteration(self, end_time: float) -> None:
        start = self._iteration_start if self._iteration_start is not None else end_time
        record = IterationRecord(
            index=self.iteration_index,
            bytes_sent=self.bytes_sent,
            start_time=start,
            end_time=end_time,
        )
        self._completed.append(record)
        self.iteration_index += 1
        # Judge the estimate that was in effect *during* this iteration,
        # before learning updates it from the iteration's own volume.
        self._assess_reliability(record)
        self._learn_from(record)

    def _assess_reliability(self, record: IterationRecord) -> None:
        """Degradation state machine step, run at every iteration boundary.

        ``degrade_after_iterations`` consecutive drifting iterations
        (observed volume beyond ``drift_threshold`` of the estimate)
        condemn the estimate; ``reengage_iterations`` consecutive clean
        ones redeem it.  A missed boundary condemns immediately (latched by
        :meth:`on_ack`).  Iterations inside the warmup window or with no
        estimate at all (learning phase) count for nothing on either side.
        """
        if not self.config.degrade_on_unreliable:
            return
        missed = self._missed_boundary
        self._missed_boundary = False
        if missed:
            # on_ack already latched unreliable; the boundary merely closes
            # the dirty iteration.
            self._clean_streak = 0
            self._dirty_streak = 0
            return
        if record.index < self.config.drift_warmup_iterations:
            # Boundary detection is noisy during slow start / early
            # recovery: an RTO splits the first iteration into fragments
            # whose volume is far below TOTAL_BYTES.  Drift can neither
            # condemn nor redeem the estimate yet.
            return
        total = self.total_bytes
        if total is None or total <= 0 or record.bytes_sent <= 0:
            return
        drift = abs(record.bytes_sent - total) / total
        if drift > self.config.drift_threshold:
            self._clean_streak = 0
            self._dirty_streak += 1
            if (
                self.estimate_unreliable
                or self._dirty_streak >= self.config.degrade_after_iterations
            ):
                self.estimate_unreliable = True
                self.unreliable_reason = f"drift={drift:.2f}"
        else:
            self._dirty_streak = 0
            if self.estimate_unreliable:
                self._clean_streak += 1
                if self._clean_streak >= self.config.reengage_iterations:
                    self.estimate_unreliable = False
                    self.unreliable_reason = None
                    self._clean_streak = 0

    def _learn_from(self, record: IterationRecord) -> None:
        """Update online estimates of TOTAL_BYTES and COMP_TIME (§3.2)."""
        if self.config.total_bytes is None and record.bytes_sent > 0:
            if len(self._completed) >= self.config.learn_iterations:
                window = self._completed[-self.config.learn_iterations :]
                self._learned_total_bytes = max(r.bytes_sent for r in window)
        if self.config.comp_time is None and self._observed_gaps:
            # The computation gap dwarfs intra-iteration ACK gaps; halfway
            # between the largest intra-iteration gap and the boundary that
            # was just detected is a robust threshold.
            largest_intra = max(self._observed_gaps)
            self._learned_comp_time = max(
                self._learned_comp_time or 0.0, 2.0 * largest_intra
            )
        self._observed_gaps.clear()

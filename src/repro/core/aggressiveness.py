"""Bandwidth aggressiveness functions (paper §3.1, Eq. 2, Figure 3).

MLTCP scales the congestion-window (or rate) increase step of a flow by
``F(bytes_ratio)``, where ``bytes_ratio`` is the fraction of the current
training iteration's bytes that the flow has already delivered.  The paper
states three requirements for a valid aggressiveness function:

(i)   its range is large enough to absorb network noise,
(ii)  its derivative is non-negative (monotonically non-decreasing), and
(iii) all flows employ the same function.

This module provides the six functions evaluated in the paper's Figure 3
(``F1`` … ``F6``), the linear family the paper adopts (Eq. 2), and helpers
to validate requirement (ii) numerically.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = [
    "AggressivenessFunction",
    "LinearAggressiveness",
    "QuadraticAggressiveness",
    "ReciprocalAggressiveness",
    "ConcaveQuadraticAggressiveness",
    "DecreasingLinearAggressiveness",
    "DecreasingQuarticAggressiveness",
    "ConstantAggressiveness",
    "PAPER_SLOPE",
    "PAPER_INTERCEPT",
    "paper_functions",
    "default_aggressiveness",
    "is_monotone_non_decreasing",
]

#: Constants the paper uses for the deployed linear function (Eq. 2).
PAPER_SLOPE = 1.75
PAPER_INTERCEPT = 0.25


def _clamp_ratio(bytes_ratio: float) -> float:
    """Clamp a bytes ratio into the valid domain [0, 1].

    Algorithm 1 already computes ``bytes_ratio = min(1, bytes_sent /
    total_bytes)``, but callers that estimate ``total_bytes`` online can
    transiently produce values slightly outside the domain; clamping keeps
    every aggressiveness function total on real inputs.
    """
    if math.isnan(bytes_ratio):
        raise ValueError("bytes_ratio must be a number, got NaN")
    return min(1.0, max(0.0, bytes_ratio))


class AggressivenessFunction(ABC):
    """A bandwidth aggressiveness function ``F: [0, 1] -> (0, inf)``.

    Subclasses implement :meth:`_evaluate` on the clamped domain; calling the
    instance clamps the input first, so integrations with noisy online
    estimates of ``total_bytes`` never leave the domain.
    """

    #: Human-readable name used in reports and benchmark output.
    name: str = "F"

    @abstractmethod
    def _evaluate(self, bytes_ratio: float) -> float:
        """Evaluate the function at a ratio already clamped into [0, 1]."""

    def __call__(self, bytes_ratio: float) -> float:
        value = self._evaluate(_clamp_ratio(bytes_ratio))
        if value < 0.0:
            raise ValueError(
                f"{self.name} produced a negative aggressiveness {value!r}; "
                "aggressiveness must be non-negative"
            )
        return value

    def is_increasing(self, samples: int = 257) -> bool:
        """Whether the function satisfies requirement (ii) on a sample grid."""
        return is_monotone_non_decreasing(self, samples=samples)

    def range_span(self, samples: int = 257) -> float:
        """Spread between the largest and smallest sampled value.

        Requirement (i) asks for a range "large enough to absorb the noise";
        this helper quantifies it so experiments can sweep it.
        """
        values = [self(i / (samples - 1)) for i in range(samples)]
        return max(values) - min(values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


@dataclass(frozen=True, repr=False)
class LinearAggressiveness(AggressivenessFunction):
    """The paper's deployed function, Eq. 2: ``F = slope * ratio + intercept``.

    The paper selects a linear form "to simplify MLTCP's implementation in
    the Linux kernel and to minimize computational overhead", with
    ``slope = 1.75`` and ``intercept = 0.25`` (range 0.25 – 2.0).
    """

    slope: float = PAPER_SLOPE
    intercept: float = PAPER_INTERCEPT
    name: str = "F1-linear"

    def __post_init__(self) -> None:
        if self.intercept <= 0.0:
            raise ValueError(
                f"intercept must be positive so flows never fully stall, "
                f"got {self.intercept!r}"
            )
        if self.slope < 0.0:
            raise ValueError(
                f"slope must be non-negative (requirement ii), got {self.slope!r}"
            )

    def _evaluate(self, bytes_ratio: float) -> float:
        return self.slope * bytes_ratio + self.intercept


@dataclass(frozen=True, repr=False)
class QuadraticAggressiveness(AggressivenessFunction):
    """Paper's F2: ``1.75 * ratio**2 + 0.25`` (convex increasing)."""

    coefficient: float = PAPER_SLOPE
    intercept: float = PAPER_INTERCEPT
    name: str = "F2-quadratic"

    def _evaluate(self, bytes_ratio: float) -> float:
        return self.coefficient * bytes_ratio**2 + self.intercept


@dataclass(frozen=True, repr=False)
class ReciprocalAggressiveness(AggressivenessFunction):
    """Paper's F3: ``1 / (-3.5 * ratio + 4)`` (increasing, range 0.25 – 2)."""

    name: str = "F3-reciprocal"

    def _evaluate(self, bytes_ratio: float) -> float:
        return 1.0 / (-3.5 * bytes_ratio + 4.0)


@dataclass(frozen=True, repr=False)
class ConcaveQuadraticAggressiveness(AggressivenessFunction):
    """Paper's F4: ``-1.75 * ratio**2 + 3.5 * ratio + 0.25`` (concave incr.)."""

    name: str = "F4-concave"

    def _evaluate(self, bytes_ratio: float) -> float:
        return -1.75 * bytes_ratio**2 + 3.5 * bytes_ratio + 0.25


@dataclass(frozen=True, repr=False)
class DecreasingLinearAggressiveness(AggressivenessFunction):
    """Paper's F5: ``-1.75 * ratio + 2``.

    Violates requirement (ii); included because Figure 3 uses it as a
    negative control showing decreasing functions never interleave.
    """

    name: str = "F5-decreasing-linear"

    def _evaluate(self, bytes_ratio: float) -> float:
        return -1.75 * bytes_ratio + 2.0


@dataclass(frozen=True, repr=False)
class DecreasingQuarticAggressiveness(AggressivenessFunction):
    """Paper's F6: ``-1.75 * ratio**4 + 2`` (second negative control)."""

    name: str = "F6-decreasing-quartic"

    def _evaluate(self, bytes_ratio: float) -> float:
        return -1.75 * bytes_ratio**4 + 2.0


@dataclass(frozen=True, repr=False)
class ConstantAggressiveness(AggressivenessFunction):
    """``F = value`` — reduces MLTCP-X exactly to plain X (Reno, CUBIC, ...).

    Useful as the identity element in tests and ablations: with
    ``value=1.0`` the MLTCP window update (Eq. 1) becomes the standard
    additive-increase update.
    """

    value: float = 1.0
    name: str = "constant"

    def __post_init__(self) -> None:
        if self.value <= 0.0:
            raise ValueError(f"constant aggressiveness must be positive, got {self.value!r}")

    def _evaluate(self, bytes_ratio: float) -> float:
        return self.value


def paper_functions() -> dict[str, AggressivenessFunction]:
    """The six functions compared in the paper's Figure 3, keyed F1 … F6."""
    return {
        "F1": LinearAggressiveness(),
        "F2": QuadraticAggressiveness(),
        "F3": ReciprocalAggressiveness(),
        "F4": ConcaveQuadraticAggressiveness(),
        "F5": DecreasingLinearAggressiveness(),
        "F6": DecreasingQuarticAggressiveness(),
    }


def default_aggressiveness() -> LinearAggressiveness:
    """The function the paper deploys: linear, slope 1.75, intercept 0.25."""
    return LinearAggressiveness()


def is_monotone_non_decreasing(
    function: AggressivenessFunction, samples: int = 257, tolerance: float = 1e-12
) -> bool:
    """Numerically check requirement (ii) on an even grid over [0, 1]."""
    if samples < 2:
        raise ValueError(f"need at least 2 samples, got {samples}")
    previous = function(0.0)
    for i in range(1, samples):
        current = function(i / (samples - 1))
        if current < previous - tolerance:
            return False
        previous = current
    return True

"""Theoretical analysis of MLTCP (paper §4).

The paper models two identical jobs sharing a link: each iteration lasts
``T`` seconds in isolation, of which the first ``alpha * T`` is the
communication phase.  ``delta`` denotes the difference in start times of the
jobs' current iterations.  MLTCP's unequal bandwidth sharing moves ``delta``
by ``Shift(delta)`` every iteration (Eq. 3):

    Shift(d) = Slope * d * (alpha*T - d) / (alpha*T*Intercept + d*Slope)

and convergence is gradient descent on the loss (Eq. 4):

    Loss(d) = integral_0^d -Shift(x) dx

which is minimized when the communication phases no longer overlap (for
``alpha = 1/2``, at ``delta = T/2`` — paper Figure 5(c)).  With zero-mean
Gaussian noise of std ``sigma`` on iteration times, the steady-state error is
normal with std ``2 * sigma * (1 + Intercept/Slope)``.

This module provides those functions in closed/numeric form, signed versions
covering the full circle ``delta in [0, T)``, single- and multi-job
gradient-descent trajectories, and the error bound — all of which the
benchmarks compare against simulator measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np
from scipy import integrate

from .aggressiveness import PAPER_INTERCEPT, PAPER_SLOPE

__all__ = [
    "CONVERGENCE_TOLERANCE_FRACTION",
    "TwoJobModel",
    "shift",
    "signed_shift",
    "loss",
    "loss_closed_form",
    "loss_curve",
    "gradient_descent",
    "DescentTrajectory",
    "convergence_error_std",
    "escape_rate",
    "predicted_convergence_iterations",
    "iterations_to_converge",
    "MultiJobDescent",
]

#: Fraction of the period treated as "converged" around the non-overlap
#: region.  Absorbs the asymptotic approach: the shift map converges
#: geometrically, so exact non-overlap is only reached in the limit (and
#: for ``alpha = 0.5`` the non-overlap region is a single point).  The
#: bounded-model-checking layer mirrors this constant
#: (``repro.verify.model``, kept in sync by lint rule MDL001).
CONVERGENCE_TOLERANCE_FRACTION = 0.02


def shift(
    delta: float,
    alpha: float,
    period: float,
    slope: float = PAPER_SLOPE,
    intercept: float = PAPER_INTERCEPT,
) -> float:
    """Eq. 3: the per-iteration shift while communication phases overlap.

    Defined on ``0 <= delta <= alpha * period``; outside that range the
    phases no longer overlap and the shift is zero.
    """
    _validate_model(alpha, period, slope, intercept)
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta!r}")
    comm = alpha * period
    if delta >= comm:
        return 0.0
    numerator = slope * delta * (comm - delta)
    denominator = comm * intercept + delta * slope
    return numerator / denominator


def signed_shift(
    delta: float,
    alpha: float,
    period: float,
    slope: float = PAPER_SLOPE,
    intercept: float = PAPER_INTERCEPT,
) -> float:
    """Shift over the full circle ``delta in [0, period)``.

    The start-time difference of two periodic jobs lives on a circle of
    circumference ``period``.  For ``delta`` just below ``period`` the
    second job leads the first by ``period - delta < alpha * period`` and the
    same mechanism pushes ``delta`` *down*; by symmetry
    ``signed_shift(d) = -shift(period - d)`` there.
    """
    _validate_model(alpha, period, slope, intercept)
    wrapped = delta % period
    comm = alpha * period
    if wrapped < comm:
        return shift(wrapped, alpha, period, slope, intercept)
    if wrapped > period - comm:
        return -shift(period - wrapped, alpha, period, slope, intercept)
    return 0.0


def loss(
    delta: float,
    alpha: float,
    period: float,
    slope: float = PAPER_SLOPE,
    intercept: float = PAPER_INTERCEPT,
) -> float:
    """Eq. 4: ``Loss(delta) = -integral_0^delta Shift``.

    Uses the signed shift so the loss is defined over the whole circle; it is
    maximal at full overlap (``delta = 0``) and minimal wherever the
    communication phases are disjoint.
    """
    _validate_model(alpha, period, slope, intercept)
    wrapped = delta % period

    def negative_shift(x: float) -> float:
        return -signed_shift(x, alpha, period, slope, intercept)

    value, _abserr = integrate.quad(
        negative_shift, 0.0, wrapped, limit=200, epsabs=1e-10, epsrel=1e-10
    )
    return value


def loss_closed_form(
    delta: float,
    alpha: float,
    period: float,
    slope: float = PAPER_SLOPE,
    intercept: float = PAPER_INTERCEPT,
) -> float:
    """Eq. 4 in closed form (polynomial division of Eq. 3).

    With ``m = alpha*T``, ``k = Slope`` and ``c = m*Intercept``, Eq. 3 is

        Shift(x) = k*x*(m - x) / (c + k*x)
                 = -x + (k*m + c)/k - (c*(k*m + c)/k) / (k*x + c)

    so, on the overlap region ``0 <= delta <= m``,

        Loss(delta) = delta^2/2 - (m + c/k)*delta
                      + (c*(k*m + c)/k^2) * ln(1 + k*delta/c).

    Beyond ``m`` the loss continues flat through the disjoint plateau and
    mirrors by the circle symmetry ``Loss(T - x) = Loss(x)`` near ``T``.
    """
    _validate_model(alpha, period, slope, intercept)
    wrapped = delta % period
    m = alpha * period
    k = slope
    c = m * intercept

    def overlap_loss(x: float) -> float:
        return (
            x * x / 2.0
            - (m + c / k) * x
            + (c * (k * m + c) / (k * k)) * math.log1p(k * x / c)
        )

    floor = overlap_loss(m)
    if wrapped <= m:
        return overlap_loss(wrapped)
    if wrapped >= period - m:
        # Mirror: descending into the valley from the other side.
        return floor + (overlap_loss(m) - overlap_loss(period - wrapped)) * -1.0
    return floor


def escape_rate(
    slope: float = PAPER_SLOPE, intercept: float = PAPER_INTERCEPT
) -> float:
    """Per-iteration growth factor of a small start-time difference.

    Linearizing Eq. 3 at ``delta -> 0`` gives ``Shift ~ (Slope/Intercept) *
    delta``, so each iteration multiplies a small offset by
    ``1 + Slope/Intercept``.  With the paper's constants that is 8x per
    iteration — why MLTCP escapes the synchronized (fully overlapped)
    unstable equilibrium within a handful of iterations.
    """
    if slope <= 0:
        raise ValueError(f"slope must be positive, got {slope!r}")
    if intercept <= 0:
        raise ValueError(f"intercept must be positive, got {intercept!r}")
    return 1.0 + slope / intercept


def predicted_convergence_iterations(
    delta0: float,
    alpha: float,
    period: float,
    slope: float = PAPER_SLOPE,
    intercept: float = PAPER_INTERCEPT,
) -> float:
    """Analytic estimate of iterations to leave the overlap region.

    Uses the exponential escape approximation ``delta_i ~ delta_0 * r^i``
    with ``r = escape_rate()``; accurate near 0 and a slight *under*-estimate
    overall, because the shift tapers off as the offset approaches the edge
    of the overlap region (Eq. 3's numerator vanishes there).
    """
    _validate_model(alpha, period, slope, intercept)
    if not 0 < delta0 < alpha * period:
        raise ValueError(
            f"delta0 must lie inside the overlap region (0, {alpha * period}), "
            f"got {delta0!r}"
        )
    rate = escape_rate(slope, intercept)
    return math.log(alpha * period / delta0) / math.log(rate)


def loss_curve(
    alpha: float,
    period: float,
    slope: float = PAPER_SLOPE,
    intercept: float = PAPER_INTERCEPT,
    samples: int = 513,
) -> tuple[np.ndarray, np.ndarray]:
    """Sampled ``(delta, Loss(delta))`` over one period (for Figure 5(c)).

    Cumulative trapezoidal integration of the signed shift — O(samples)
    instead of O(samples) quadratures — normalized so ``Loss(0) = 0`` like
    Eq. 4.
    """
    _validate_model(alpha, period, slope, intercept)
    if samples < 3:
        raise ValueError(f"need at least 3 samples, got {samples}")
    deltas = np.linspace(0.0, period, samples)
    shifts = np.array(
        [signed_shift(d, alpha, period, slope, intercept) for d in deltas]
    )
    losses = integrate.cumulative_trapezoid(-shifts, deltas, initial=0.0)
    return deltas, losses


@dataclass(frozen=True)
class DescentTrajectory:
    """Result of a gradient-descent run of the two-job model."""

    deltas: np.ndarray
    alpha: float
    period: float
    slope: float
    intercept: float
    noise_sigma: float

    @property
    def final_delta(self) -> float:
        """Start-time difference after the last iteration."""
        return float(self.deltas[-1])

    @property
    def converged_iteration(self) -> Optional[int]:
        """First iteration with (near-)zero communication overlap, if any.

        A 2%-of-period tolerance absorbs the asymptotic approach; for
        ``alpha = 0.5`` the non-overlap region is a single point that the
        geometric convergence only reaches in the limit.
        """
        comm = self.alpha * self.period
        tolerance = CONVERGENCE_TOLERANCE_FRACTION * self.period
        for i, d in enumerate(self.deltas):
            wrapped = d % self.period
            if comm - tolerance <= wrapped <= self.period - comm + tolerance:
                return i
        return None

    def steady_state_error(self, settle_fraction: float = 0.5) -> np.ndarray:
        """Signed distance from the nearest loss minimum after settling."""
        start = int(len(self.deltas) * settle_fraction)
        comm = self.alpha * self.period
        lo, hi = comm, self.period - comm
        errors = []
        for d in self.deltas[start:]:
            wrapped = d % self.period
            if lo <= wrapped <= hi:
                errors.append(0.0)
            elif wrapped < lo:
                errors.append(wrapped - lo)
            else:
                errors.append(wrapped - hi)
        return np.array(errors)


def gradient_descent(
    delta0: float,
    alpha: float,
    period: float,
    iterations: int,
    slope: float = PAPER_SLOPE,
    intercept: float = PAPER_INTERCEPT,
    noise_sigma: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> DescentTrajectory:
    """Iterate ``delta <- delta + signed_shift(delta) + noise`` (paper §4).

    ``noise_sigma`` is the std of the zero-mean Gaussian noise on *each
    job's* iteration time; the start-time difference absorbs the difference
    of the two jobs' noises, i.e. Gaussian with std ``sqrt(2) * sigma``.
    """
    _validate_model(alpha, period, slope, intercept)
    if iterations < 1:
        raise ValueError(f"iterations must be positive, got {iterations!r}")
    if noise_sigma < 0:
        raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma!r}")
    if noise_sigma > 0 and rng is None:
        rng = np.random.default_rng(0)

    deltas = np.empty(iterations + 1)
    deltas[0] = delta0 % period
    current = deltas[0]
    for i in range(iterations):
        step = signed_shift(current, alpha, period, slope, intercept)
        if noise_sigma > 0:
            assert rng is not None
            step += rng.normal(0.0, noise_sigma) - rng.normal(0.0, noise_sigma)
        current = (current + step) % period
        deltas[i + 1] = current
    return DescentTrajectory(
        deltas=deltas,
        alpha=alpha,
        period=period,
        slope=slope,
        intercept=intercept,
        noise_sigma=noise_sigma,
    )


def convergence_error_std(
    noise_sigma: float,
    slope: float = PAPER_SLOPE,
    intercept: float = PAPER_INTERCEPT,
) -> float:
    """Paper §4 bound: steady-state error std = ``2*sigma*(1 + I/S)``."""
    if noise_sigma < 0:
        raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma!r}")
    if slope <= 0:
        raise ValueError(f"slope must be positive for the bound, got {slope!r}")
    if intercept < 0:
        raise ValueError(f"intercept must be non-negative, got {intercept!r}")
    return 2.0 * noise_sigma * (1.0 + intercept / slope)


def iterations_to_converge(
    delta0: float,
    alpha: float,
    period: float,
    slope: float = PAPER_SLOPE,
    intercept: float = PAPER_INTERCEPT,
    tolerance_fraction: float = CONVERGENCE_TOLERANCE_FRACTION,
    max_iterations: int = 10_000,
) -> Optional[int]:
    """Noise-free iterations until the overlap shrinks below a tolerance.

    Returns ``None`` when ``delta0`` sits exactly on the unstable equilibrium
    (full overlap, ``delta = 0``) or when ``max_iterations`` is exhausted.
    """
    _validate_model(alpha, period, slope, intercept)
    comm = alpha * period
    tolerance = tolerance_fraction * period
    current = delta0 % period
    if current == 0.0:
        return None
    for i in range(max_iterations + 1):
        wrapped = current % period
        if comm - tolerance <= wrapped <= period - comm + tolerance:
            return i
        current = (current + signed_shift(current, alpha, period, slope, intercept)) % period
    return None


@dataclass
class MultiJobDescent:
    """Gradient descent over N periodic jobs' start offsets (§5 discussion).

    Generalizes the two-job model: the loss is the sum of pairwise losses and
    each offset moves by the sum of pairwise signed shifts against every
    other job.  Used by the job-count ablation to show that the
    gradient-descent view extends beyond two jobs.
    """

    alpha: float
    period: float
    slope: float = PAPER_SLOPE
    intercept: float = PAPER_INTERCEPT
    damping: float = 1.0
    _offsets: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        _validate_model(self.alpha, self.period, self.slope, self.intercept)
        if not 0 < self.damping <= 1.0:
            raise ValueError(f"damping must be in (0, 1], got {self.damping!r}")

    def run(
        self,
        offsets0: Sequence[float],
        iterations: int,
        noise_sigma: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Return offsets per iteration, shape ``(iterations+1, n_jobs)``."""
        offsets = np.array([o % self.period for o in offsets0], dtype=float)
        if offsets.ndim != 1 or len(offsets) < 2:
            raise ValueError("need at least two job offsets")
        if noise_sigma > 0 and rng is None:
            rng = np.random.default_rng(0)
        history = np.empty((iterations + 1, len(offsets)))
        history[0] = offsets
        for i in range(iterations):
            offsets = self._step(offsets, noise_sigma, rng)
            history[i + 1] = offsets
        return history

    def total_overlap(self, offsets: Sequence[float]) -> float:
        """Sum of pairwise communication-phase overlaps (contention proxy)."""
        comm = self.alpha * self.period
        total = 0.0
        arr = [o % self.period for o in offsets]
        for i in range(len(arr)):
            for j in range(i + 1, len(arr)):
                d = abs(arr[i] - arr[j]) % self.period
                d = min(d, self.period - d)
                total += max(0.0, comm - d)
        return total

    def _step(
        self,
        offsets: np.ndarray,
        noise_sigma: float,
        rng: Optional[np.random.Generator],
    ) -> np.ndarray:
        moves = np.zeros_like(offsets)
        for i in range(len(offsets)):
            for j in range(len(offsets)):
                if i == j:
                    continue
                d = (offsets[j] - offsets[i]) % self.period
                # A positive signed shift of pair (i leads j) moves j later,
                # i earlier; split it symmetrically between the two jobs.
                s = signed_shift(d, self.alpha, self.period, self.slope, self.intercept)
                moves[j] += 0.5 * s
                moves[i] -= 0.5 * s
        moves *= self.damping
        if noise_sigma > 0:
            assert rng is not None
            moves += rng.normal(0.0, noise_sigma, size=len(offsets))
        return (offsets + moves) % self.period


@dataclass(frozen=True)
class TwoJobModel:
    """Convenience bundle of the §4 two-job parameters."""

    alpha: float
    period: float
    slope: float = PAPER_SLOPE
    intercept: float = PAPER_INTERCEPT

    def __post_init__(self) -> None:
        _validate_model(self.alpha, self.period, self.slope, self.intercept)

    @property
    def comm_duration(self) -> float:
        """Length of each job's communication phase (alpha * T)."""
        return self.alpha * self.period

    def shift(self, delta: float) -> float:
        """Signed Eq. 3 shift at ``delta`` for this model."""
        return signed_shift(delta, self.alpha, self.period, self.slope, self.intercept)

    def loss(self, delta: float) -> float:
        """Eq. 4 loss at ``delta`` for this model."""
        return loss(delta, self.alpha, self.period, self.slope, self.intercept)

    def descend(
        self,
        delta0: float,
        iterations: int,
        noise_sigma: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> DescentTrajectory:
        """Run :func:`gradient_descent` with this model's parameters."""
        return gradient_descent(
            delta0,
            self.alpha,
            self.period,
            iterations,
            slope=self.slope,
            intercept=self.intercept,
            noise_sigma=noise_sigma,
            rng=rng,
        )


def _validate_model(alpha: float, period: float, slope: float, intercept: float) -> None:
    if not 0.0 < alpha <= 0.5:
        raise ValueError(
            f"alpha must be in (0, 0.5] for a two-job interleave to exist, got {alpha!r}"
        )
    if period <= 0:
        raise ValueError(f"period must be positive, got {period!r}")
    if slope <= 0:
        raise ValueError(f"slope must be positive, got {slope!r}")
    if intercept <= 0:
        raise ValueError(f"intercept must be positive, got {intercept!r}")

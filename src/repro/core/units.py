"""Named unit converters — the one audited home for scale factors.

The ``repro lint`` unit-safety rules (UNT001/UNT002, see docs/LINTING.md)
forbid assigning or passing a value across mismatched unit suffixes
(``_bits`` vs ``_bytes``, ``_gbps`` vs ``_bps``, ``_s`` vs ``_us``)
unless the conversion goes through a function whose *name* declares it.
These are those functions.  Keeping every factor of 8 and 1e9 here means a
unit bug is a one-file review, not a repo-wide hunt.
"""

from __future__ import annotations

__all__ = [
    "BITS_PER_BYTE",
    "BPS_PER_GBPS",
    "BPS_PER_MBPS",
    "US_PER_S",
    "bits_from_bytes",
    "bytes_from_bits",
    "bps_from_gbps",
    "gbps_from_bps",
    "bps_from_mbps",
    "mbps_from_bps",
    "s_from_us",
    "us_from_s",
]

BITS_PER_BYTE = 8
BPS_PER_GBPS = 1e9
BPS_PER_MBPS = 1e6
US_PER_S = 1e6


def bits_from_bytes(nbytes: float) -> float:
    """Bytes -> bits (the classic silent factor of 8)."""
    return nbytes * BITS_PER_BYTE


def bytes_from_bits(bits: float) -> float:
    """Bits -> bytes."""
    return bits / BITS_PER_BYTE


def bps_from_gbps(gbps: float) -> float:
    """Gigabits per second -> bits per second."""
    return gbps * BPS_PER_GBPS


def gbps_from_bps(bps: float) -> float:
    """Bits per second -> gigabits per second."""
    return bps / BPS_PER_GBPS


def bps_from_mbps(mbps: float) -> float:
    """Megabits per second -> bits per second."""
    return mbps * BPS_PER_MBPS


def mbps_from_bps(bps: float) -> float:
    """Bits per second -> megabits per second."""
    return bps / BPS_PER_MBPS


def s_from_us(us: float) -> float:
    """Microseconds -> seconds."""
    return us / US_PER_S


def us_from_s(s: float) -> float:
    """Seconds -> microseconds."""
    return s * US_PER_S

"""Shared CLI error reporting: one exit-code convention, one stderr format.

Every ``repro`` subcommand that can fail reports through these helpers so
that scripts and CI see a uniform contract:

* exit ``0`` — success (:data:`EXIT_OK`)
* exit ``1`` — the input was processed and violates the check
  (:data:`EXIT_VIOLATIONS`): lint findings, schema violations
* exit ``2`` — the command could not run at all (:data:`EXIT_USAGE`):
  unreadable files, bad arguments, syntax errors

Diagnostics go to stderr (``repro: error: ...`` for usage errors, a header
plus indented detail lines for violations); stdout stays reserved for the
command's actual output.
"""

from __future__ import annotations

import sys
from typing import Iterable

__all__ = [
    "EXIT_OK",
    "EXIT_VIOLATIONS",
    "EXIT_USAGE",
    "fail",
    "report_violations",
]

EXIT_OK = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def fail(message: str) -> int:
    """Report a usage/IO error to stderr; returns :data:`EXIT_USAGE`."""
    print(f"repro: error: {message}", file=sys.stderr)
    return EXIT_USAGE


def report_violations(header: str, details: Iterable[str]) -> int:
    """Report check violations to stderr; returns :data:`EXIT_VIOLATIONS`.

    ``header`` summarises (and counts) the problem; each detail line is
    printed indented beneath it.
    """
    print(header, file=sys.stderr)
    for line in details:
        print(f"  {line}", file=sys.stderr)
    return EXIT_VIOLATIONS

"""Cassini-style compatibility scoring for job mixes.

Cassini's placement decisions rest on a *compatibility* notion: a set of
jobs sharing a link is compatible if time shifts exist under which their
total demand never exceeds capacity.  MLTCP's §4 guarantee is conditioned on
exactly that ("we limit the scope of our analysis to scenarios in which an
interleaved schedule exists").  These helpers quantify it:

* :func:`compatibility_score` — for given offsets, the fraction of the
  hyper-period during which total demand fits the link (1.0 = interleaved).
* :func:`best_compatibility` — the score under optimized offsets.
* :func:`are_compatible` — whether a zero-contention interleave exists,
  i.e. whether the paper's convergence guarantee applies to the mix.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..workloads.job import JobSpec
from .centralized import CentralizedScheduler, Schedule

__all__ = ["compatibility_score", "best_compatibility", "are_compatible"]


def compatibility_score(
    jobs: Sequence[JobSpec],
    capacity_gbps: float,
    offsets: dict[str, float] | None = None,
    time_resolution: float = 0.005,
) -> float:
    """Fraction of the hyper-period with total demand <= capacity.

    ``offsets`` default to each job's own ``start_offset``.
    """
    scheduler = CentralizedScheduler(
        jobs, capacity_gbps, time_resolution=time_resolution
    )
    if offsets is None:
        offsets = {job.name: job.start_offset for job in jobs}
    total = np.zeros(scheduler._bins)
    for job in jobs:
        shift_bins = int(
            round(offsets.get(job.name, 0.0) / scheduler.time_resolution)
        )
        total += np.roll(scheduler._profiles[job.name], shift_bins)
    return float((total <= capacity_gbps + 1e-9).mean())


def best_compatibility(
    jobs: Sequence[JobSpec],
    capacity_gbps: float,
    time_resolution: float = 0.005,
) -> tuple[float, Schedule]:
    """Maximum compatibility score over offsets, with the achieving schedule."""
    scheduler = CentralizedScheduler(
        jobs, capacity_gbps, time_resolution=time_resolution
    )
    schedule = scheduler.optimize()
    score = compatibility_score(
        jobs, capacity_gbps, offsets=schedule.offsets, time_resolution=time_resolution
    )
    return score, schedule


def are_compatible(
    jobs: Sequence[JobSpec],
    capacity_gbps: float,
    time_resolution: float = 0.005,
) -> bool:
    """Whether a zero-contention interleave exists (the §4 precondition)."""
    score, _schedule = best_compatibility(
        jobs, capacity_gbps, time_resolution=time_resolution
    )
    return score >= 1.0 - 1e-9

"""Centralized scheduling baseline (Cassini-like offset optimization)."""

from .centralized import CentralizedScheduler, Schedule, unified_period
from .compatibility import are_compatible, best_compatibility, compatibility_score

__all__ = [
    "CentralizedScheduler",
    "Schedule",
    "unified_period",
    "compatibility_score",
    "best_compatibility",
    "are_compatible",
]

"""Centralized interleaving scheduler (the Cassini/Muri baseline).

Cassini computes per-job time shifts so that the communication phases of
jobs sharing a link interleave, using a geometric abstraction over a unified
period and an ILP.  This module implements the same optimization for a
single bottleneck: choose a start offset per job minimizing the integral of
over-capacity demand across the hyper-period.

The search is exact on a coarse offset grid for small job counts and refines
with multi-restart coordinate descent otherwise — for the paper's scenarios
(2–8 jobs) it reliably finds the zero-contention optima whose existence is
the paper's compatibility assumption (§4).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

import numpy as np

from ..workloads.job import JobSpec

__all__ = ["Schedule", "CentralizedScheduler", "unified_period"]


def unified_period(periods: Sequence[float], max_denominator: int = 1000) -> float:
    """Least common multiple of the jobs' ideal iteration times.

    Periods are rationalized (denominator-limited) first, mirroring
    Cassini's unified geometric circle whose circumference is the LCM of
    the participating jobs' iteration times.
    """
    if not periods:
        raise ValueError("need at least one period")
    if any(p <= 0 for p in periods):
        raise ValueError(f"periods must be positive, got {list(periods)}")
    fractions = [Fraction(p).limit_denominator(max_denominator) for p in periods]
    numerator = fractions[0].numerator
    denominator = fractions[0].denominator
    for f in fractions[1:]:
        numerator = math.lcm(numerator, f.numerator)
        denominator = math.gcd(denominator, f.denominator)
    return numerator / denominator


@dataclass(frozen=True)
class Schedule:
    """Result of the centralized optimization."""

    offsets: dict[str, float]
    contention: float
    hyper_period: float
    capacity_gbps: float

    @property
    def is_interleaved(self) -> bool:
        """Whether the schedule has (numerically) zero over-capacity demand."""
        return self.contention <= 1e-9

    def offset_of(self, job: str) -> float:
        """The optimized start offset of one job."""
        try:
            return self.offsets[job]
        except KeyError:
            raise KeyError(f"no offset for job {job!r}") from None


class CentralizedScheduler:
    """Offset optimizer over the hyper-period demand profile."""

    def __init__(
        self,
        jobs: Sequence[JobSpec],
        capacity_gbps: float,
        time_resolution: float = 0.005,
        offset_step: Optional[float] = None,
    ) -> None:
        if not jobs:
            raise ValueError("need at least one job")
        if capacity_gbps <= 0:
            raise ValueError(f"capacity_gbps must be positive, got {capacity_gbps!r}")
        if time_resolution <= 0:
            raise ValueError(f"time_resolution must be positive, got {time_resolution!r}")
        self.jobs = tuple(jobs)
        self.capacity_gbps = capacity_gbps
        self.hyper_period = unified_period([j.ideal_iteration_time for j in jobs])
        self._bins = max(64, int(round(self.hyper_period / time_resolution)))
        self.time_resolution = self.hyper_period / self._bins
        if offset_step is None:
            offset_step = max(self.time_resolution, self.hyper_period / 720.0)
        self.offset_step = offset_step
        self._profiles = {job.name: self._demand_profile(job) for job in self.jobs}

    # -- public API ---------------------------------------------------------

    def contention(self, offsets: dict[str, float]) -> float:
        """Integral (Gbps * s) of demand above capacity over the hyper-period."""
        total = np.zeros(self._bins)
        for job in self.jobs:
            shift_bins = int(round(offsets.get(job.name, 0.0) / self.time_resolution))
            total += np.roll(self._profiles[job.name], shift_bins)
        excess = np.maximum(0.0, total - self.capacity_gbps)
        return float(excess.sum() * self.time_resolution)

    def optimize(
        self,
        restarts: int = 8,
        exhaustive_threshold: int = 4,
        seed: int = 0,
    ) -> Schedule:
        """Find offsets minimizing contention.

        Exhaustive grid search over all offset combinations when the job
        count is small (the first job is pinned at offset 0 — only relative
        phase matters); multi-restart coordinate descent otherwise.  Stops
        early on a zero-contention (fully interleaved) schedule.
        """
        if len(self.jobs) <= exhaustive_threshold:
            schedule = self._exhaustive()
            if schedule.is_interleaved:
                return schedule
            refined = self._coordinate_descent(dict(schedule.offsets))
            return min((schedule, refined), key=lambda s: s.contention)
        rng = np.random.default_rng(seed)
        best: Optional[Schedule] = None
        for restart in range(max(1, restarts)):
            if restart == 0:
                start = {job.name: 0.0 for job in self.jobs}
            else:
                start = {
                    job.name: float(
                        rng.integers(0, self._offset_candidates(job).size)
                    )
                    * self.offset_step
                    % job.ideal_iteration_time
                    for job in self.jobs
                }
            candidate = self._coordinate_descent(start)
            if best is None or candidate.contention < best.contention:
                best = candidate
            if best.is_interleaved:
                break
        assert best is not None
        return best

    def iteration_times_if_scheduled(self, schedule: Schedule) -> dict[str, float]:
        """Predicted mean iteration times under the schedule.

        With zero contention every job runs at its ideal iteration time;
        residual contention stretches the communication phases of the jobs
        proportionally to their share of the over-capacity demand.  (The
        experiments verify this prediction against the fluid simulator.)
        """
        result: dict[str, float] = {}
        total = np.zeros(self._bins)
        shifted = {}
        for job in self.jobs:
            shift_bins = int(round(schedule.offset_of(job.name) / self.time_resolution))
            profile = np.roll(self._profiles[job.name], shift_bins)
            shifted[job.name] = profile
            total += profile
        over = total > self.capacity_gbps + 1e-12
        scale = np.ones(self._bins)
        scale[over] = self.capacity_gbps / total[over]
        for job in self.jobs:
            profile = shifted[job.name]
            delivered = float((profile * scale).sum() * self.time_resolution)
            offered = float(profile.sum() * self.time_resolution)
            if delivered <= 0:
                raise RuntimeError(f"job {job.name} gets no bandwidth under schedule")
            # Communication stretches by offered/delivered on average.
            stretch = offered / delivered
            result[job.name] = job.ideal_comm_time * stretch + job.compute_time
        return result

    # -- internals ------------------------------------------------------------

    def _demand_profile(self, job: JobSpec) -> np.ndarray:
        """Offset-0 demand (Gbps) of the job over the hyper-period bins."""
        profile = np.zeros(self._bins)
        period = job.ideal_iteration_time
        comm = job.ideal_comm_time
        start = 0.0
        while start < self.hyper_period - 1e-12:
            lo = int(round(start / self.time_resolution))
            hi = int(round((start + comm) / self.time_resolution))
            for b in range(lo, hi):
                profile[b % self._bins] = job.demand_gbps
            start += period
        return profile

    def _offset_candidates(self, job: JobSpec) -> np.ndarray:
        period = job.ideal_iteration_time
        count = max(1, int(round(period / self.offset_step)))
        return np.arange(count) * self.offset_step

    def _exhaustive(self) -> Schedule:
        names = [job.name for job in self.jobs]
        candidate_lists = [np.array([0.0])] + [
            self._offset_candidates(job) for job in self.jobs[1:]
        ]
        best_offsets = {name: 0.0 for name in names}
        best_value = self.contention(best_offsets)
        for combo in itertools.product(*candidate_lists):
            offsets = dict(zip(names, (float(c) for c in combo)))
            value = self.contention(offsets)
            if value < best_value - 1e-12:
                best_value = value
                best_offsets = offsets
                if best_value <= 1e-9:
                    break
        return Schedule(
            offsets=best_offsets,
            contention=best_value,
            hyper_period=self.hyper_period,
            capacity_gbps=self.capacity_gbps,
        )

    def _coordinate_descent(self, start: dict[str, float]) -> Schedule:
        offsets = dict(start)
        value = self.contention(offsets)
        improved = True
        sweep_guard = 0
        while improved and sweep_guard < 50:
            improved = False
            sweep_guard += 1
            for job in self.jobs:
                best_offset = offsets[job.name]
                best_value = value
                for candidate in self._offset_candidates(job):
                    offsets[job.name] = float(candidate)
                    candidate_value = self.contention(offsets)
                    if candidate_value < best_value - 1e-12:
                        best_value = candidate_value
                        best_offset = float(candidate)
                offsets[job.name] = best_offset
                if best_value < value - 1e-12:
                    value = best_value
                    improved = True
            if value <= 1e-9:
                break
        return Schedule(
            offsets=offsets,
            contention=value,
            hyper_period=self.hyper_period,
            capacity_gbps=self.capacity_gbps,
        )

"""Array-backed flow state shared by the vectorized fluid simulators.

# repro-lint: hot-path-module
(The marker scopes the PRF002 per-flow-loop lint rule to this module:
state here must be updated with whole-array numpy passes, not per-flow
Python iteration.)

``FlowArrays`` is one struct-of-arrays over the job set: demands,
nominal transfer sizes, live bytes counters, rates, and scheduling
phase, all ``float64``/``int8`` contiguous arrays indexed by a stable
flow index (job insertion order).  Both ``FluidSimulator`` and
``NetworkFluidSimulator`` mutate one instance in place per run instead
of walking per-flow runtime objects, and the allocation fast paths hand
slices of it straight to :func:`repro.fluid.allocation.water_fill_array`
/ :func:`repro.fluid.network.weighted_max_min_array`.

The ``rank`` array caches each flow's unique position in the sorted
order of job names.  The scalar reference implementations iterate
``sorted(ids)`` when accumulating floats; carrying the precomputed rank
lets the vectorized twins replay that exact order with integer argsorts
instead of per-call string sorts (see docs/PERFORMANCE.md, "Vectorized
core & scale benchmarks", for the bit-identity contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.units import bps_from_gbps
from repro.workloads.job import JobSpec

__all__ = ["PHASE_WAITING", "PHASE_COMM", "PHASE_COMPUTE", "PHASE_DONE",
           "FlowArrays", "link_index_matrix"]

#: Phase codes for the int8 phase array (mirror flowsim.Phase semantics).
PHASE_WAITING = np.int8(0)
PHASE_COMM = np.int8(1)
PHASE_COMPUTE = np.int8(2)
PHASE_DONE = np.int8(3)


@dataclass
class FlowArrays:
    """Struct-of-arrays flow state for one fluid run.

    Static per-flow data (names, demands, totals, rank) is built once
    from the job specs; mutable state (phase, remaining/sent bytes,
    deadlines, rates, iteration index) is reset by :meth:`reset` and
    updated in place by the simulators.
    """

    names: tuple[str, ...]
    specs: tuple[JobSpec, ...]
    index: dict[str, int]
    demand_bps: np.ndarray
    total_bits: np.ndarray
    start_offset: np.ndarray
    rank: np.ndarray
    # Mutable per-run state.
    phase: np.ndarray = field(init=False)
    remaining_bits: np.ndarray = field(init=False)
    sent_bits: np.ndarray = field(init=False)
    deadline: np.ndarray = field(init=False)
    comm_start: np.ndarray = field(init=False)
    comm_end: np.ndarray = field(init=False)
    iteration_index: np.ndarray = field(init=False)
    rates: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.reset()

    @classmethod
    def from_specs(cls, specs: Sequence[JobSpec]) -> "FlowArrays":
        names = tuple(spec.name for spec in specs)
        order = sorted(range(len(names)), key=names.__getitem__)
        rank = np.empty(len(names), dtype=np.int64)
        rank[order] = np.arange(len(names))
        return cls(
            names=names,
            specs=tuple(specs),
            index={name: i for i, name in enumerate(names)},
            demand_bps=np.array(
                [bps_from_gbps(spec.demand_gbps) for spec in specs]
            ),
            total_bits=np.array([float(spec.comm_bits) for spec in specs]),
            start_offset=np.array(
                [float(spec.start_offset) for spec in specs]
            ),
            rank=rank,
        )

    def __len__(self) -> int:
        return len(self.names)

    def reset(self) -> None:
        n = len(self.names)
        self.phase = np.full(n, PHASE_WAITING, dtype=np.int8)
        self.remaining_bits = np.zeros(n)
        self.sent_bits = np.zeros(n)
        self.deadline = self.start_offset.astype(np.float64, copy=True)
        self.comm_start = np.full(n, np.nan)
        self.comm_end = np.full(n, np.nan)
        self.iteration_index = np.zeros(n, dtype=np.int64)
        self.rates = np.zeros(n)


def link_index_matrix(
    links: Sequence[str],
    flow_links: Mapping[str, Iterable[str]],
    names: Sequence[str],
) -> np.ndarray:
    """Per-flow link indices as an ``(n, K)`` int matrix padded with -1.

    Row order follows ``names`` (flow candidate order); link indices
    point into ``links`` (the capacities mapping's iteration order);
    ``K`` is the longest path.  Fabric link sets are sparse — a flow
    crosses a handful of a fat tree's thousands of links — so this stays
    tiny where a dense links x flows membership matrix would not.
    Unknown link names raise ``KeyError`` exactly like the scalar
    ``weighted_max_min`` residual lookup would.
    """
    link_index = {link: i for i, link in enumerate(links)}
    paths = [tuple(flow_links.get(name, ())) for name in names]
    width = max((len(path) for path in paths), default=0)
    matrix = np.full((len(names), width), -1, dtype=np.intp)
    for row, path in enumerate(paths):
        for k, link in enumerate(path):
            matrix[row, k] = link_index[link]
    return matrix

"""Event-driven flow-level ("fluid") simulator of periodic jobs on a link.

This is the paper's evaluation substrate at flow granularity: each job
alternates between a communication phase (its per-iteration collective,
elastic up to its demand rate) and a computation phase (a timed gap, with
the §4 Gaussian noise model).  The bottleneck's capacity is divided among
the jobs currently communicating by an
:class:`~repro.fluid.allocation.AllocationPolicy` — fair share for TCP,
``F(bytes_ratio)``-weighted for MLTCP, SRPT for pFabric, etc.

Rates are piecewise-constant between events; an event is a phase completion,
a job start, the expiry of a re-evaluation quantum (MLTCP weights drift
as ``bytes_ratio`` grows, so allocations are refreshed at least every
``quantum`` seconds), or a fault transition.  The simulator records every
iteration and every rate segment, which is exactly the data the paper's
figures plot.

Fault injection: pass ``faults=FaultSchedule(...)`` to replay link flaps,
bandwidth degradations, stragglers and job restarts inside the fluid model
(mapping documented in :mod:`repro.faults.fluid` and docs/FAULTS.md).  A
restarted job discards its in-flight iteration and re-enters with
``sent_bits`` zeroed — the fluid analogue of MLTCP resetting ``bytes_sent``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..core.tolerances import close, is_zero
from ..core.units import bps_from_gbps, gbps_from_bps
from ..workloads.job import JobSpec
from .allocation import (
    AllocationPolicy,
    FairShare,
    FlowView,
    MLTCPWeighted,
    allocation_excess,
    water_fill_array,
)
from .arrays import PHASE_COMM, PHASE_COMPUTE, PHASE_DONE, PHASE_WAITING, FlowArrays

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.schedule import FaultSchedule
    from ..guards.core import GuardRail

# repro-lint: hot-path-module
# (PRF002: flow state lives in FlowArrays and must be advanced with
# whole-array numpy passes; per-flow Python loops over view/runtime
# sequences are flagged in this module.)

#: Relative tolerance for the inline allocation-capacity guard; mirrors
#: repro.guards.monitors.ALLOCATION_REL_TOL (kept literal here so this
#: module never imports the guards package — guards imports allocation).
_ALLOCATION_REL_TOL = 1e-6

__all__ = [
    "Phase",
    "IterationResult",
    "RateSegment",
    "FluidResult",
    "FluidSimulator",
    "run_fluid",
]

#: Bits below which a communication phase counts as finished.
_EPS_BITS = 1e-6
#: Seconds below which an event is "now".
_EPS_TIME = 1e-12
#: Flow count at which the array engine takes over from the scalar one.
#: numpy's fixed per-op cost dominates small populations — the measured
#: crossover is ~32 flows (docs/PERFORMANCE.md, "Vectorized core & scale
#: benchmarks") — and both engines are bit-identical, so the dispatch
#: changes wall-clock only, never a result.
_VECTORIZED_MIN_FLOWS = 32


class Phase(enum.Enum):
    """Lifecycle of a periodic job inside the simulator."""

    WAITING = "waiting"
    COMM = "comm"
    COMPUTE = "compute"
    DONE = "done"


@dataclass(frozen=True)
class IterationResult:
    """One completed training iteration of one job."""

    job: str
    index: int
    comm_start: float
    comm_end: float
    iteration_end: float

    @property
    def comm_duration(self) -> float:
        """Wall-clock length of the communication phase."""
        return self.comm_end - self.comm_start

    @property
    def duration(self) -> float:
        """Iteration time: start of this comm phase to start of the next."""
        return self.iteration_end - self.comm_start


@dataclass(frozen=True)
class RateSegment:
    """Constant bottleneck allocation over ``[start, end)``."""

    start: float
    end: float
    rates_bps: dict[str, float]


@dataclass
class _JobRuntime:
    """Per-job state of the scalar (small-population) engine."""

    spec: JobSpec
    phase: Phase = Phase.WAITING
    remaining_bits: float = 0.0
    sent_bits: float = 0.0
    iteration_index: int = 0
    comm_start: float = math.nan
    comm_end: float = math.nan
    phase_deadline: float = 0.0  # start_offset or compute end
    #: Lazily built policy-facing view; progress fields are synced in place
    #: on every ``flow_view()`` call instead of reconstructing (and
    #: re-validating) a fresh FlowView per allocation event.
    view: Optional[FlowView] = None

    def flow_view(self) -> FlowView:
        """Snapshot of this job's flow for the allocation policy."""
        view = self.view
        if view is None:
            self.view = view = FlowView(
                flow_id=self.spec.name,
                demand_bps=self.spec.demand_bps,
                remaining_bits=self.remaining_bits,
                sent_bits=self.sent_bits,
                total_bits=self.spec.comm_bits,
            )
        else:
            view.remaining_bits = self.remaining_bits
            view.sent_bits = self.sent_bits
        return view


@dataclass
class FluidResult:
    """Everything a fluid run produced."""

    jobs: tuple[JobSpec, ...]
    capacity_gbps: float
    policy_name: str
    iterations: list[IterationResult] = field(default_factory=list)
    segments: list[RateSegment] = field(default_factory=list)
    end_time: float = 0.0
    #: Human-readable fault transitions applied during the run (empty when
    #: no schedule was installed); feeds telemetry's degradations section.
    fault_log: list[str] = field(default_factory=list)

    def iterations_of(self, job: str) -> list[IterationResult]:
        """Completed iterations of one job, in order."""
        return [it for it in self.iterations if it.job == job]

    def iteration_times(self, job: str) -> np.ndarray:
        """Durations (s) of the job's completed iterations."""
        return np.array([it.duration for it in self.iterations_of(job)])

    def all_iteration_times(self) -> np.ndarray:
        """Durations of every completed iteration of every job."""
        return np.array([it.duration for it in self.iterations])

    def mean_iteration_time(self, job: str, skip: int = 0) -> float:
        """Mean iteration duration, optionally skipping warm-up iterations."""
        times = self.iteration_times(job)[skip:]
        if len(times) == 0:
            raise ValueError(f"no completed iterations for job {job!r} after skip={skip}")
        return float(times.mean())

    def mean_iteration_by_round(self, max_rounds: Optional[int] = None) -> np.ndarray:
        """Average duration of the i-th iteration across jobs (Figure 3 series)."""
        per_job = [self.iteration_times(job.name) for job in self.jobs]
        rounds = min(len(t) for t in per_job)
        if max_rounds is not None:
            rounds = min(rounds, max_rounds)
        if rounds == 0:
            return np.array([])
        # One 2-D reduction instead of a per-round Python comprehension.
        # Transposing to C-contiguous (rounds, jobs) makes each row mean the
        # same 1-D pairwise summation numpy used on the old per-round lists,
        # so the series is bit-identical (docs/PERFORMANCE.md).
        stacked = np.ascontiguousarray(np.stack([t[:rounds] for t in per_job]).T)
        return stacked.mean(axis=1)

    def rate_timeline(
        self, job: str, dt: float = 0.01
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(times, rate_gbps)`` sampled every ``dt`` — the Figure 4/6 view."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt!r}")
        samples = int(self.end_time / dt)
        times = np.arange(samples) * dt
        rates = np.zeros(samples)
        for segment in self.segments:
            rate = gbps_from_bps(segment.rates_bps.get(job, 0.0))
            if is_zero(rate):
                continue
            lo = int(np.ceil(segment.start / dt))
            hi = min(samples, int(np.ceil(segment.end / dt)))
            rates[lo:hi] = rate
        return times, rates

    def comm_starts(self, job: str) -> np.ndarray:
        """Start times of the job's communication phases."""
        return np.array([it.comm_start for it in self.iterations_of(job)])


class FluidSimulator:
    """Runs a job mix on one bottleneck under a given allocation policy."""

    def __init__(
        self,
        jobs: Sequence[JobSpec],
        capacity_gbps: float,
        policy: Optional[AllocationPolicy] = None,
        seed: Optional[int] = 0,
        quantum: float = 0.02,
        faults: Optional["FaultSchedule"] = None,
        guards: Optional["GuardRail"] = None,
    ) -> None:
        if not jobs:
            raise ValueError("need at least one job")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"job names must be unique, got {names}")
        if capacity_gbps <= 0:
            raise ValueError(f"capacity_gbps must be positive, got {capacity_gbps!r}")
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        self.jobs = tuple(jobs)
        self.capacity_bps = bps_from_gbps(capacity_gbps)
        self.capacity_gbps = capacity_gbps
        self.policy = policy if policy is not None else FairShare()
        self.quantum = quantum
        #: Optional guardrail; when set, every allocation is checked against
        #: the capacity/non-negativity contract and a livelocked run reports
        #: ``fluid-stall`` before raising (docs/ROBUSTNESS.md).
        self.guards = guards
        self._rng = np.random.default_rng(seed) if seed is not None else None
        #: Struct-of-arrays flow state (see repro.fluid.arrays); reset per run.
        self._arrays = FlowArrays.from_specs(self.jobs)
        #: Lazily built policy-facing views for the FlowView-compat path,
        #: one slot per job, progress synced in place between events.
        self._views: list[Optional[FlowView]] = [None] * len(self.jobs)
        if faults is not None:
            from ..faults.fluid import FluidFaultState

            self.faults: Optional[FluidFaultState] = FluidFaultState(faults, names)
        else:
            self.faults = None

    def run(
        self,
        end_time: Optional[float] = None,
        max_iterations: Optional[int] = None,
        record_segments: bool = True,
    ) -> FluidResult:
        """Simulate until ``end_time`` or every job finished ``max_iterations``.

        At least one stopping criterion is required.  Populations below
        ``_VECTORIZED_MIN_FLOWS`` run on the scalar per-runtime engine,
        larger ones on the array engine; the two are bit-identical, so the
        dispatch is invisible in every output.
        """
        if end_time is None and max_iterations is None:
            raise ValueError("provide end_time and/or max_iterations")
        if end_time is not None and end_time <= 0:
            raise ValueError(f"end_time must be positive, got {end_time!r}")
        if max_iterations is not None and max_iterations < 1:
            raise ValueError(f"max_iterations must be positive, got {max_iterations!r}")
        if len(self.jobs) < _VECTORIZED_MIN_FLOWS:
            return self._run_scalar(end_time, max_iterations, record_segments)

        fa = self._arrays
        fa.reset()
        result = FluidResult(
            jobs=self.jobs,
            capacity_gbps=self.capacity_gbps,
            policy_name=self.policy.name,
        )
        now = 0.0
        # Generous guard: a few events per quantum per job.
        horizon = end_time if end_time is not None else self._horizon(max_iterations)
        if self.faults is not None:
            # Faults stall progress (a downed link delivers nothing) and add
            # transitions; extend the envelope past the last one.
            horizon += self.faults.last_transition
        max_steps = int(50 * len(self.jobs) * max(1.0, horizon / self.quantum))

        last_capacity_factor = 1.0
        # Hot-loop hoists (docs/PERFORMANCE.md): bound methods, invariants
        # and the struct-of-arrays columns looked up once instead of per
        # event.
        faults = self.faults
        full_capacity = self.capacity_bps
        policy = self.policy
        allocate = policy.allocate
        policy_cache_key = policy.cache_key
        guards = self.guards
        policy_name = policy.name
        segments = result.segments
        names = fa.names
        phase = fa.phase
        remaining = fa.remaining_bits
        sent = fa.sent_bits
        rates_arr = fa.rates
        demand_bps = fa.demand_bps
        total_bits = fa.total_bits
        rank = fa.rank
        # Array fast path: for the exact policy classes whose weights are a
        # closed-form vector over flow progress (FairShare's unit weights,
        # MLTCPWeighted's F(bytes_ratio)), demands/weights feed
        # water_fill_array directly — no FlowView dicts on the hot path.
        # Anything else (SRPT, PDQ, PIAS, subclasses, custom policies) goes
        # through the FlowView-compat path with semantics unchanged.
        fast: Optional[str] = None
        slope = intercept = 0.0
        granularity: Optional[float] = None
        mltcp_function = None
        if type(policy) is FairShare:
            fast = "fair"
        elif type(policy) is MLTCPWeighted:
            fast = "mltcp"
            granularity = policy.ratio_granularity
            if policy._linear is not None:
                slope, intercept = policy._linear
            else:
                mltcp_function = policy.function
        # Allocation reuse: while the policy's cache token is unchanged the
        # previous rate vector is returned verbatim (see
        # AllocationPolicy.cache_key).  Token-less policies recompute every
        # event, exactly as before.  The fast path mirrors the scalar
        # policies' tokens bit-for-bit: same capacity + same active index
        # set (+ same bytes_ratio buckets for a granular MLTCPWeighted)
        # if and only if the scalar tuple key would have compared equal.
        last_key: Optional[object] = None
        last_rates: dict[str, float] = {}
        last_alloc = np.zeros(0)
        for _step in range(max_steps):
            if faults is not None:
                self._apply_restarts(now)
            finished = self._sweep(now, result, max_iterations)
            if finished:
                break
            if end_time is not None and now >= end_time - _EPS_TIME:
                break

            capacity = full_capacity
            if faults is not None:
                factor = faults.capacity_factor(now)
                if not close(factor, last_capacity_factor):
                    faults.record(now, f"capacity factor -> {factor:g}")
                    last_capacity_factor = factor
                capacity *= factor
            active_idx = np.nonzero(phase == PHASE_COMM)[0]
            rates: dict[str, float] = {}
            alloc: Optional[np.ndarray] = None
            rates_arr.fill(0.0)
            if active_idx.size and capacity > 0:
                if fast is not None:
                    key: Optional[object]
                    ratio = None
                    if fast == "fair":
                        # FairShare's scalar token is (capacity, active ids +
                        # demands); ids and demands are static per index, so
                        # the index set is an equivalent token.
                        key = (capacity, active_idx.tobytes())
                    else:
                        quotient = sent[active_idx] / total_bits[active_idx]
                        ratio = np.where(quotient < 1.0, quotient, 1.0)
                        if granularity is not None:
                            key = (
                                capacity,
                                active_idx.tobytes(),
                                # int() truncates toward zero; so does astype
                                # on these non-negative quotients.
                                (ratio / granularity).astype(np.int64).tobytes(),
                            )
                        else:
                            key = None
                    if key is not None and key == last_key:
                        alloc = last_alloc
                    else:
                        if fast == "fair":
                            weights = np.ones(active_idx.size)
                        elif mltcp_function is None:
                            weights = slope * ratio + intercept
                        else:
                            weights = np.array(
                                [mltcp_function(r) for r in ratio.tolist()]
                            )
                        alloc = water_fill_array(
                            demand_bps[active_idx],
                            weights,
                            capacity,
                            rank=rank[active_idx],
                        )
                        last_key = key
                        last_alloc = alloc
                        if guards is not None and alloc.size:
                            # Fresh allocations only: a cache-reused vector
                            # was already checked when it was computed.
                            self._check_allocation(
                                guards,
                                self._rates_map(names, active_idx, alloc),
                                capacity,
                                now,
                                policy_name,
                            )
                    rates_arr[active_idx] = alloc
                else:
                    views = self._sync_views(active_idx)
                    key = policy_cache_key(views, capacity)
                    if key is not None and key == last_key:
                        rates = last_rates
                    else:
                        rates = allocate(views, capacity)
                        last_key = key
                        last_rates = rates
                        if guards is not None and rates:
                            # Fresh allocations only: a cache-reused vector
                            # was already checked when it was computed.
                            self._check_allocation(
                                guards, rates, capacity, now, policy_name
                            )
                    index = fa.index
                    for fid, rate in rates.items():
                        rates_arr[index[fid]] = rate
            has_rates = alloc is not None or bool(rates)
            dt = self._next_event_dt(now, end_time)
            if dt <= 0:
                dt = _EPS_TIME
            if record_segments and has_rates:
                seg_rates = (
                    self._rates_map(names, active_idx, alloc)
                    if alloc is not None
                    else dict(rates)
                )
                segments.append(
                    RateSegment(start=now, end=now + dt, rates_bps=seg_rates)
                )
            if has_rates:
                # Whole-array twin of the old per-flow delivery loop.
                # Inactive flows carry a literal-zero rate, so their
                # subtract/clamp is the exact identity the scalar loop
                # skipped; the comparisons reproduce the scalar clamps
                # sign-exactly (docs/PERFORMANCE.md, bit-identity contract).
                delivered = rates_arr * dt
                shrunk = remaining - delivered
                remaining[:] = np.where(shrunk > 0.0, shrunk, 0.0)
                grown = sent + delivered
                sent[:] = np.where(grown < total_bits, grown, total_bits)
            now += dt
        else:
            if guards is not None:
                guards.violation(
                    "fluid-stall",
                    policy_name,
                    now,
                    f"exceeded {max_steps} steps without finishing; "
                    "zero-rate livelock?",
                )
            raise RuntimeError(
                f"fluid simulation exceeded {max_steps} steps without finishing; "
                "check for a zero-rate livelock"
            )

        result.end_time = now
        if self.faults is not None:
            result.fault_log = self.faults.descriptions()
        return result

    def _run_scalar(
        self,
        end_time: Optional[float],
        max_iterations: Optional[int],
        record_segments: bool,
    ) -> FluidResult:
        """Scalar engine for small populations (see ``run``)."""
        runtimes = [
            _JobRuntime(spec=job, phase_deadline=job.start_offset) for job in self.jobs
        ]
        result = FluidResult(
            jobs=self.jobs,
            capacity_gbps=self.capacity_gbps,
            policy_name=self.policy.name,
        )
        now = 0.0
        # Generous guard: a few events per quantum per job.
        horizon = end_time if end_time is not None else self._horizon(max_iterations)
        if self.faults is not None:
            # Faults stall progress (a downed link delivers nothing) and add
            # transitions; extend the envelope past the last one.
            horizon += self.faults.last_transition
        max_steps = int(50 * len(self.jobs) * max(1.0, horizon / self.quantum))

        last_capacity_factor = 1.0
        # Hot-loop hoists (docs/PERFORMANCE.md): bound methods and invariants
        # looked up once instead of per event.
        faults = self.faults
        full_capacity = self.capacity_bps
        allocate = self.policy.allocate
        policy_cache_key = self.policy.cache_key
        guards = self.guards
        policy_name = self.policy.name
        segments = result.segments
        # Allocation reuse: while the policy's cache token is unchanged the
        # previous rate vector is returned verbatim (see
        # AllocationPolicy.cache_key).  Token-less policies recompute every
        # event, exactly as before.
        last_key: Optional[object] = None
        last_rates: dict[str, float] = {}
        for _step in range(max_steps):
            if faults is not None:
                self._apply_restarts_scalar(runtimes, now)
            active, finished = self._sweep_scalar(runtimes, now, result, max_iterations)
            if finished:
                break
            if end_time is not None and now >= end_time - _EPS_TIME:
                break

            capacity = full_capacity
            if faults is not None:
                factor = faults.capacity_factor(now)
                if not close(factor, last_capacity_factor):
                    faults.record(now, f"capacity factor -> {factor:g}")
                    last_capacity_factor = factor
                capacity *= factor
            if active and capacity > 0:
                views = [rt.flow_view() for rt in active]
                key = policy_cache_key(views, capacity)
                if key is not None and key == last_key:
                    rates = last_rates
                else:
                    rates = allocate(views, capacity)
                    last_key = key
                    last_rates = rates
                    if guards is not None and rates:
                        # Fresh allocations only: a cache-reused vector was
                        # already checked when it was computed.
                        self._check_allocation(
                            guards, rates, capacity, now, policy_name
                        )
            else:
                rates = {}
            dt = self._next_event_dt_scalar(runtimes, rates, now, end_time)
            if dt <= 0:
                dt = _EPS_TIME
            if record_segments and rates:
                segments.append(
                    RateSegment(start=now, end=now + dt, rates_bps=dict(rates))
                )
            rates_get = rates.get
            for rt in active:
                rate = rates_get(rt.spec.name, 0.0)
                # Identity check, not a numeric tolerance: a literal zero rate
                # delivers nothing, so skipping the writes is bit-identical.
                if rate == 0.0:  # repro-lint: disable=FLT001
                    continue
                delivered = rate * dt
                remaining = rt.remaining_bits - delivered
                rt.remaining_bits = remaining if remaining > 0.0 else 0.0
                total = rt.spec.comm_bits
                sent = rt.sent_bits + delivered
                rt.sent_bits = sent if sent < total else total
            now += dt
        else:
            if guards is not None:
                guards.violation(
                    "fluid-stall",
                    policy_name,
                    now,
                    f"exceeded {max_steps} steps without finishing; "
                    "zero-rate livelock?",
                )
            raise RuntimeError(
                f"fluid simulation exceeded {max_steps} steps without finishing; "
                "check for a zero-rate livelock"
            )

        result.end_time = now
        if self.faults is not None:
            result.fault_log = self.faults.descriptions()
        return result

    # -- internals --------------------------------------------------------

    @staticmethod
    def _check_allocation(
        guards: "GuardRail",
        rates: dict[str, float],
        capacity: float,
        now: float,
        policy_name: str,
    ) -> None:
        """Enforce the ``AllocationPolicy.allocate`` contract at runtime."""
        excess = allocation_excess(rates, capacity)
        if excess > _ALLOCATION_REL_TOL * capacity:
            guards.violation(
                "allocation-capacity",
                policy_name,
                now,
                f"allocated {capacity + excess:.6g} bps exceeds capacity "
                f"{capacity:.6g} bps by {excess:.6g} bps",
            )
        for flow_id in sorted(rates):
            rate = rates[flow_id]
            if rate < 0.0:
                guards.violation(
                    "allocation-negative",
                    str(flow_id),
                    now,
                    f"negative allocated rate {rate!r} bps from {policy_name}",
                )

    def _horizon(self, max_iterations: Optional[int]) -> float:
        assert max_iterations is not None
        longest = max(job.ideal_iteration_time for job in self.jobs)
        # Contention can stretch iterations; triple is a generous envelope.
        return 3.0 * longest * max_iterations + max(j.start_offset for j in self.jobs)

    def _sweep(
        self,
        now: float,
        result: FluidResult,
        max_iterations: Optional[int],
    ) -> bool:
        """Apply due phase transitions and report the stopping criterion.

        Due transitions are found with whole-array masks computed from the
        pre-sweep state (one transition per flow per sweep, exactly like the
        scalar ``elif`` chain), then dispatched per flow in ascending index
        order — the order the scalar runtime walk used, which the RNG draw
        sequence (compute jitter, volume jitter) depends on.  Returns
        whether every job has met the stopping criterion.
        """
        fa = self._arrays
        phase = fa.phase
        deadline = fa.deadline
        wait_due = (phase == PHASE_WAITING) & (now >= deadline - _EPS_TIME)
        comm_done = (phase == PHASE_COMM) & (fa.remaining_bits <= _EPS_BITS)
        compute_due = (phase == PHASE_COMPUTE) & (now >= deadline - _EPS_TIME)
        due = wait_due | comm_done | compute_due
        if due.any():
            iterations = result.iterations
            comm_start = fa.comm_start
            comm_end = fa.comm_end
            iter_index = fa.iteration_index
            specs = fa.specs
            names = fa.names
            faults = self.faults
            rng = self._rng
            for i in np.nonzero(due)[0].tolist():
                if wait_due[i]:
                    self._start_comm(i, now)
                elif comm_done[i]:
                    comm_end[i] = now
                    compute = specs[i].sample_compute_time(rng)
                    if faults is not None:
                        compute *= faults.compute_scale(names[i], now)
                    phase[i] = PHASE_COMPUTE
                    deadline[i] = now + compute
                else:
                    iterations.append(
                        IterationResult(
                            job=names[i],
                            index=int(iter_index[i]),
                            comm_start=float(comm_start[i]),
                            comm_end=float(comm_end[i]),
                            iteration_end=now,
                        )
                    )
                    iter_index[i] += 1
                    limit = specs[i].iteration_limit
                    if limit is not None and iter_index[i] >= limit:
                        phase[i] = PHASE_DONE  # training finished: departs
                    else:
                        self._start_comm(i, now)
        done = phase == PHASE_DONE
        if max_iterations is None:
            return bool(done.all())
        return bool((done | (fa.iteration_index >= max_iterations)).all())

    def _apply_restarts(self, now: float) -> None:
        """Kill-and-restart every job whose restart strike time has come.

        The in-flight iteration is discarded (never recorded), the job's
        ``sent_bits`` zeroes — which resets its MLTCP ``bytes_ratio`` and
        therefore its allocation weight, the fluid analogue of the packet
        sender's ``bytes_sent`` reset — and the job waits out
        ``restart_delay`` before starting a fresh communication phase.
        """
        assert self.faults is not None
        fa = self._arrays
        for event in self.faults.due_restarts(now):
            i = fa.index[event.job]
            if fa.phase[i] == PHASE_DONE:
                self.faults.record(now, f"job_restart on {event.job}: already done, no-op")
                continue
            fa.phase[i] = PHASE_WAITING
            fa.deadline[i] = event.time + event.restart_delay
            fa.remaining_bits[i] = 0.0
            fa.sent_bits[i] = 0.0
            fa.comm_start[i] = math.nan
            fa.comm_end[i] = math.nan
            self.faults.record(now, event.describe())

    def _start_comm(self, i: int, now: float) -> None:
        fa = self._arrays
        fa.phase[i] = PHASE_COMM
        fa.remaining_bits[i] = fa.specs[i].sample_comm_bits(self._rng)
        fa.sent_bits[i] = 0.0
        fa.comm_start[i] = now
        fa.comm_end[i] = math.nan

    def _sync_views(self, active_idx: np.ndarray) -> list[FlowView]:
        """Build/sync policy-facing views of the active flows from the arrays.

        Compat path only (policies without an array fast path); one view per
        job is built lazily and its two progress fields synced in place, the
        same contract ``_JobRuntime.flow_view`` provided.
        """
        fa = self._arrays
        views_all = self._views
        specs = fa.specs
        remaining = fa.remaining_bits
        sent = fa.sent_bits
        views: list[FlowView] = []
        append = views.append
        for i in active_idx.tolist():
            view = views_all[i]
            if view is None:
                spec = specs[i]
                views_all[i] = view = FlowView(
                    flow_id=spec.name,
                    demand_bps=spec.demand_bps,
                    remaining_bits=float(remaining[i]),
                    sent_bits=float(sent[i]),
                    total_bits=spec.comm_bits,
                )
            else:
                view.remaining_bits = float(remaining[i])
                view.sent_bits = float(sent[i])
            append(view)
        return views

    @staticmethod
    def _rates_map(
        names: Sequence[str], active_idx: np.ndarray, alloc: np.ndarray
    ) -> dict[str, float]:
        """Rate dict (python floats) for guards, segments and telemetry."""
        return {
            names[i]: rate
            for i, rate in zip(active_idx.tolist(), alloc.tolist())
        }

    def _next_event_dt(self, now: float, end_time: Optional[float]) -> float:
        """Time to the next event: phase deadline, drain, quantum, or fault.

        One whole-array pass over the flow candidates replaces the per-flow
        running-minimum walk; a minimum is order-independent, so the result
        is unchanged.
        """
        fa = self._arrays
        phase = fa.phase
        candidates = np.full(len(fa.names), math.inf)
        timed = (phase != PHASE_DONE) & (phase != PHASE_COMM)
        np.subtract(fa.deadline, now, out=candidates, where=timed)
        flowing = (phase == PHASE_COMM) & (fa.rates > 0.0)
        np.divide(fa.remaining_bits, fa.rates, out=candidates, where=flowing)
        candidates[candidates <= _EPS_TIME] = math.inf
        best = math.inf
        if self.quantum > _EPS_TIME:
            best = self.quantum
        if end_time is not None:
            candidate = end_time - now
            if _EPS_TIME < candidate < best:
                best = candidate
        if self.faults is not None:
            transition = self.faults.next_transition_after(now)
            if transition is not None:
                candidate = transition - now
                if _EPS_TIME < candidate < best:
                    best = candidate
        flow_best = float(candidates.min())
        if flow_best < best:
            best = flow_best
        return best if not math.isinf(best) else _EPS_TIME

    # -- scalar (small-population) engine ----------------------------------
    #
    # The per-runtime twins of the array internals above.  They are the
    # original scalar implementation, kept verbatim as the fast path for
    # populations under _VECTORIZED_MIN_FLOWS, where numpy's per-op cost
    # exceeds the interpreter's per-flow cost.  Every per-flow loop here is
    # the documented scalar-reference exception to PRF002.

    def _sweep_scalar(
        self,
        runtimes: list[_JobRuntime],
        now: float,
        result: FluidResult,
        max_iterations: Optional[int],
    ) -> tuple[list[_JobRuntime], bool]:
        """Apply due phase transitions in one pass over the runtimes.

        Returns ``(active, finished)``: the jobs now in their communication
        phase and whether every job has met the stopping criterion.  The
        transition order — and therefore the RNG sampling order, which
        seeds depend on — is ascending runtime index, exactly the order the
        array engine's dispatch loop replays.
        """
        active: list[_JobRuntime] = []
        finished = True
        for rt in runtimes:  # repro-lint: disable=PRF002
            phase = rt.phase
            if phase is Phase.WAITING:
                if now >= rt.phase_deadline - _EPS_TIME:
                    self._start_comm_scalar(rt, now)
                    phase = Phase.COMM
            elif phase is Phase.COMM and rt.remaining_bits <= _EPS_BITS:
                rt.comm_end = now
                compute = rt.spec.sample_compute_time(self._rng)
                if self.faults is not None:
                    compute *= self.faults.compute_scale(rt.spec.name, now)
                rt.phase = phase = Phase.COMPUTE
                rt.phase_deadline = now + compute
            elif phase is Phase.COMPUTE and now >= rt.phase_deadline - _EPS_TIME:
                result.iterations.append(
                    IterationResult(
                        job=rt.spec.name,
                        index=rt.iteration_index,
                        comm_start=rt.comm_start,
                        comm_end=rt.comm_end,
                        iteration_end=now,
                    )
                )
                rt.iteration_index += 1
                limit = rt.spec.iteration_limit
                if limit is not None and rt.iteration_index >= limit:
                    rt.phase = phase = Phase.DONE  # training finished: departs
                else:
                    self._start_comm_scalar(rt, now)
                    phase = Phase.COMM
            if phase is Phase.COMM:
                active.append(rt)
            if finished and phase is not Phase.DONE:
                if max_iterations is None or rt.iteration_index < max_iterations:
                    finished = False
        return active, finished

    def _apply_restarts_scalar(self, runtimes: list[_JobRuntime], now: float) -> None:
        """Scalar twin of ``_apply_restarts`` over runtime objects."""
        assert self.faults is not None
        for event in self.faults.due_restarts(now):
            rt = next(r for r in runtimes if r.spec.name == event.job)
            if rt.phase is Phase.DONE:
                self.faults.record(now, f"job_restart on {event.job}: already done, no-op")
                continue
            rt.phase = Phase.WAITING
            rt.phase_deadline = event.time + event.restart_delay
            rt.remaining_bits = 0.0
            rt.sent_bits = 0.0
            rt.comm_start = math.nan
            rt.comm_end = math.nan
            self.faults.record(now, event.describe())

    def _start_comm_scalar(self, rt: _JobRuntime, now: float) -> None:
        rt.phase = Phase.COMM
        rt.remaining_bits = rt.spec.sample_comm_bits(self._rng)
        rt.sent_bits = 0.0
        rt.comm_start = now
        rt.comm_end = math.nan

    def _next_event_dt_scalar(
        self,
        runtimes: list[_JobRuntime],
        rates: dict[str, float],
        now: float,
        end_time: Optional[float],
    ) -> float:
        # Running minimum over the positive candidates — same result as the
        # array engine's whole-array pass (a minimum is order-independent).
        best = math.inf
        candidate = self.quantum
        if candidate > _EPS_TIME:
            best = candidate
        if end_time is not None:
            candidate = end_time - now
            if _EPS_TIME < candidate < best:
                best = candidate
        if self.faults is not None:
            transition = self.faults.next_transition_after(now)
            if transition is not None:
                candidate = transition - now
                if _EPS_TIME < candidate < best:
                    best = candidate
        rates_get = rates.get
        for rt in runtimes:  # repro-lint: disable=PRF002
            phase = rt.phase
            if phase is Phase.COMM:
                rate = rates_get(rt.spec.name, 0.0)
                if rate > 0:
                    candidate = rt.remaining_bits / rate
                    if _EPS_TIME < candidate < best:
                        best = candidate
            elif phase is not Phase.DONE:
                candidate = rt.phase_deadline - now
                if _EPS_TIME < candidate < best:
                    best = candidate
        return best if not math.isinf(best) else _EPS_TIME


def run_fluid(
    jobs: Sequence[JobSpec],
    capacity_gbps: float,
    policy: Optional[AllocationPolicy] = None,
    end_time: Optional[float] = None,
    max_iterations: Optional[int] = None,
    seed: Optional[int] = 0,
    quantum: float = 0.02,
    record_segments: bool = True,
    faults: Optional["FaultSchedule"] = None,
    guards: Optional["GuardRail"] = None,
) -> FluidResult:
    """One-call convenience wrapper around :class:`FluidSimulator`."""
    simulator = FluidSimulator(
        jobs,
        capacity_gbps,
        policy=policy,
        seed=seed,
        quantum=quantum,
        faults=faults,
        guards=guards,
    )
    return simulator.run(
        end_time=end_time,
        max_iterations=max_iterations,
        record_segments=record_segments,
    )

"""Event-driven flow-level ("fluid") simulator of periodic jobs on a link.

This is the paper's evaluation substrate at flow granularity: each job
alternates between a communication phase (its per-iteration collective,
elastic up to its demand rate) and a computation phase (a timed gap, with
the §4 Gaussian noise model).  The bottleneck's capacity is divided among
the jobs currently communicating by an
:class:`~repro.fluid.allocation.AllocationPolicy` — fair share for TCP,
``F(bytes_ratio)``-weighted for MLTCP, SRPT for pFabric, etc.

Rates are piecewise-constant between events; an event is a phase completion,
a job start, the expiry of a re-evaluation quantum (MLTCP weights drift
as ``bytes_ratio`` grows, so allocations are refreshed at least every
``quantum`` seconds), or a fault transition.  The simulator records every
iteration and every rate segment, which is exactly the data the paper's
figures plot.

Fault injection: pass ``faults=FaultSchedule(...)`` to replay link flaps,
bandwidth degradations, stragglers and job restarts inside the fluid model
(mapping documented in :mod:`repro.faults.fluid` and docs/FAULTS.md).  A
restarted job discards its in-flight iteration and re-enters with
``sent_bits`` zeroed — the fluid analogue of MLTCP resetting ``bytes_sent``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..core.tolerances import close, is_zero
from ..core.units import bps_from_gbps, gbps_from_bps
from ..workloads.job import JobSpec
from .allocation import AllocationPolicy, FairShare, FlowView, allocation_excess

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.schedule import FaultSchedule
    from ..guards.core import GuardRail

#: Relative tolerance for the inline allocation-capacity guard; mirrors
#: repro.guards.monitors.ALLOCATION_REL_TOL (kept literal here so this
#: module never imports the guards package — guards imports allocation).
_ALLOCATION_REL_TOL = 1e-6

__all__ = [
    "Phase",
    "IterationResult",
    "RateSegment",
    "FluidResult",
    "FluidSimulator",
    "run_fluid",
]

#: Bits below which a communication phase counts as finished.
_EPS_BITS = 1e-6
#: Seconds below which an event is "now".
_EPS_TIME = 1e-12


class Phase(enum.Enum):
    """Lifecycle of a periodic job inside the simulator."""

    WAITING = "waiting"
    COMM = "comm"
    COMPUTE = "compute"
    DONE = "done"


@dataclass(frozen=True)
class IterationResult:
    """One completed training iteration of one job."""

    job: str
    index: int
    comm_start: float
    comm_end: float
    iteration_end: float

    @property
    def comm_duration(self) -> float:
        """Wall-clock length of the communication phase."""
        return self.comm_end - self.comm_start

    @property
    def duration(self) -> float:
        """Iteration time: start of this comm phase to start of the next."""
        return self.iteration_end - self.comm_start


@dataclass(frozen=True)
class RateSegment:
    """Constant bottleneck allocation over ``[start, end)``."""

    start: float
    end: float
    rates_bps: dict[str, float]


@dataclass
class _JobRuntime:
    spec: JobSpec
    phase: Phase = Phase.WAITING
    remaining_bits: float = 0.0
    sent_bits: float = 0.0
    iteration_index: int = 0
    comm_start: float = math.nan
    comm_end: float = math.nan
    phase_deadline: float = 0.0  # start_offset or compute end
    #: Lazily built policy-facing view; progress fields are synced in place
    #: on every ``flow_view()`` call instead of reconstructing (and
    #: re-validating) a fresh FlowView per allocation event.
    view: Optional[FlowView] = None

    def flow_view(self) -> FlowView:
        """Snapshot of this job's flow for the allocation policy."""
        view = self.view
        if view is None:
            self.view = view = FlowView(
                flow_id=self.spec.name,
                demand_bps=self.spec.demand_bps,
                remaining_bits=self.remaining_bits,
                sent_bits=self.sent_bits,
                total_bits=self.spec.comm_bits,
            )
        else:
            view.remaining_bits = self.remaining_bits
            view.sent_bits = self.sent_bits
        return view


@dataclass
class FluidResult:
    """Everything a fluid run produced."""

    jobs: tuple[JobSpec, ...]
    capacity_gbps: float
    policy_name: str
    iterations: list[IterationResult] = field(default_factory=list)
    segments: list[RateSegment] = field(default_factory=list)
    end_time: float = 0.0
    #: Human-readable fault transitions applied during the run (empty when
    #: no schedule was installed); feeds telemetry's degradations section.
    fault_log: list[str] = field(default_factory=list)

    def iterations_of(self, job: str) -> list[IterationResult]:
        """Completed iterations of one job, in order."""
        return [it for it in self.iterations if it.job == job]

    def iteration_times(self, job: str) -> np.ndarray:
        """Durations (s) of the job's completed iterations."""
        return np.array([it.duration for it in self.iterations_of(job)])

    def all_iteration_times(self) -> np.ndarray:
        """Durations of every completed iteration of every job."""
        return np.array([it.duration for it in self.iterations])

    def mean_iteration_time(self, job: str, skip: int = 0) -> float:
        """Mean iteration duration, optionally skipping warm-up iterations."""
        times = self.iteration_times(job)[skip:]
        if len(times) == 0:
            raise ValueError(f"no completed iterations for job {job!r} after skip={skip}")
        return float(times.mean())

    def mean_iteration_by_round(self, max_rounds: Optional[int] = None) -> np.ndarray:
        """Average duration of the i-th iteration across jobs (Figure 3 series)."""
        per_job = [self.iteration_times(job.name) for job in self.jobs]
        rounds = min(len(t) for t in per_job)
        if max_rounds is not None:
            rounds = min(rounds, max_rounds)
        if rounds == 0:
            return np.array([])
        return np.array(
            [float(np.mean([t[i] for t in per_job])) for i in range(rounds)]
        )

    def rate_timeline(
        self, job: str, dt: float = 0.01
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(times, rate_gbps)`` sampled every ``dt`` — the Figure 4/6 view."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt!r}")
        samples = int(self.end_time / dt)
        times = np.arange(samples) * dt
        rates = np.zeros(samples)
        for segment in self.segments:
            rate = gbps_from_bps(segment.rates_bps.get(job, 0.0))
            if is_zero(rate):
                continue
            lo = int(np.ceil(segment.start / dt))
            hi = min(samples, int(np.ceil(segment.end / dt)))
            rates[lo:hi] = rate
        return times, rates

    def comm_starts(self, job: str) -> np.ndarray:
        """Start times of the job's communication phases."""
        return np.array([it.comm_start for it in self.iterations_of(job)])


class FluidSimulator:
    """Runs a job mix on one bottleneck under a given allocation policy."""

    def __init__(
        self,
        jobs: Sequence[JobSpec],
        capacity_gbps: float,
        policy: Optional[AllocationPolicy] = None,
        seed: Optional[int] = 0,
        quantum: float = 0.02,
        faults: Optional["FaultSchedule"] = None,
        guards: Optional["GuardRail"] = None,
    ) -> None:
        if not jobs:
            raise ValueError("need at least one job")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"job names must be unique, got {names}")
        if capacity_gbps <= 0:
            raise ValueError(f"capacity_gbps must be positive, got {capacity_gbps!r}")
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        self.jobs = tuple(jobs)
        self.capacity_bps = bps_from_gbps(capacity_gbps)
        self.capacity_gbps = capacity_gbps
        self.policy = policy if policy is not None else FairShare()
        self.quantum = quantum
        #: Optional guardrail; when set, every allocation is checked against
        #: the capacity/non-negativity contract and a livelocked run reports
        #: ``fluid-stall`` before raising (docs/ROBUSTNESS.md).
        self.guards = guards
        self._rng = np.random.default_rng(seed) if seed is not None else None
        if faults is not None:
            from ..faults.fluid import FluidFaultState

            self.faults: Optional[FluidFaultState] = FluidFaultState(faults, names)
        else:
            self.faults = None

    def run(
        self,
        end_time: Optional[float] = None,
        max_iterations: Optional[int] = None,
        record_segments: bool = True,
    ) -> FluidResult:
        """Simulate until ``end_time`` or every job finished ``max_iterations``.

        At least one stopping criterion is required.
        """
        if end_time is None and max_iterations is None:
            raise ValueError("provide end_time and/or max_iterations")
        if end_time is not None and end_time <= 0:
            raise ValueError(f"end_time must be positive, got {end_time!r}")
        if max_iterations is not None and max_iterations < 1:
            raise ValueError(f"max_iterations must be positive, got {max_iterations!r}")

        runtimes = [
            _JobRuntime(spec=job, phase_deadline=job.start_offset) for job in self.jobs
        ]
        result = FluidResult(
            jobs=self.jobs,
            capacity_gbps=self.capacity_gbps,
            policy_name=self.policy.name,
        )
        now = 0.0
        # Generous guard: a few events per quantum per job.
        horizon = end_time if end_time is not None else self._horizon(max_iterations)
        if self.faults is not None:
            # Faults stall progress (a downed link delivers nothing) and add
            # transitions; extend the envelope past the last one.
            horizon += self.faults.last_transition
        max_steps = int(50 * len(self.jobs) * max(1.0, horizon / self.quantum))

        last_capacity_factor = 1.0
        # Hot-loop hoists (docs/PERFORMANCE.md): bound methods and invariants
        # looked up once instead of per event.
        faults = self.faults
        full_capacity = self.capacity_bps
        allocate = self.policy.allocate
        policy_cache_key = self.policy.cache_key
        guards = self.guards
        policy_name = self.policy.name
        segments = result.segments
        # Allocation reuse: while the policy's cache token is unchanged the
        # previous rate vector is returned verbatim (see
        # AllocationPolicy.cache_key).  Token-less policies recompute every
        # event, exactly as before.
        last_key: Optional[object] = None
        last_rates: dict[str, float] = {}
        for _step in range(max_steps):
            if faults is not None:
                self._apply_restarts(runtimes, now)
            active, finished = self._sweep(runtimes, now, result, max_iterations)
            if finished:
                break
            if end_time is not None and now >= end_time - _EPS_TIME:
                break

            capacity = full_capacity
            if faults is not None:
                factor = faults.capacity_factor(now)
                if not close(factor, last_capacity_factor):
                    faults.record(now, f"capacity factor -> {factor:g}")
                    last_capacity_factor = factor
                capacity *= factor
            if active and capacity > 0:
                views = [rt.flow_view() for rt in active]
                key = policy_cache_key(views, capacity)
                if key is not None and key == last_key:
                    rates = last_rates
                else:
                    rates = allocate(views, capacity)
                    last_key = key
                    last_rates = rates
                    if guards is not None and rates:
                        # Fresh allocations only: a cache-reused vector was
                        # already checked when it was computed.
                        self._check_allocation(
                            guards, rates, capacity, now, policy_name
                        )
            else:
                rates = {}
            dt = self._next_event_dt(runtimes, rates, now, end_time)
            if dt <= 0:
                dt = _EPS_TIME
            if record_segments and rates:
                segments.append(
                    RateSegment(start=now, end=now + dt, rates_bps=dict(rates))
                )
            rates_get = rates.get
            for rt in active:
                rate = rates_get(rt.spec.name, 0.0)
                # Identity check, not a numeric tolerance: a literal zero rate
                # delivers nothing, so skipping the writes is bit-identical.
                if rate == 0.0:  # repro-lint: disable=FLT001
                    continue
                delivered = rate * dt
                remaining = rt.remaining_bits - delivered
                rt.remaining_bits = remaining if remaining > 0.0 else 0.0
                total = rt.spec.comm_bits
                sent = rt.sent_bits + delivered
                rt.sent_bits = sent if sent < total else total
            now += dt
        else:
            if guards is not None:
                guards.violation(
                    "fluid-stall",
                    policy_name,
                    now,
                    f"exceeded {max_steps} steps without finishing; "
                    "zero-rate livelock?",
                )
            raise RuntimeError(
                f"fluid simulation exceeded {max_steps} steps without finishing; "
                "check for a zero-rate livelock"
            )

        result.end_time = now
        if self.faults is not None:
            result.fault_log = self.faults.descriptions()
        return result

    # -- internals --------------------------------------------------------

    @staticmethod
    def _check_allocation(
        guards: "GuardRail",
        rates: dict[str, float],
        capacity: float,
        now: float,
        policy_name: str,
    ) -> None:
        """Enforce the ``AllocationPolicy.allocate`` contract at runtime."""
        excess = allocation_excess(rates, capacity)
        if excess > _ALLOCATION_REL_TOL * capacity:
            guards.violation(
                "allocation-capacity",
                policy_name,
                now,
                f"allocated {capacity + excess:.6g} bps exceeds capacity "
                f"{capacity:.6g} bps by {excess:.6g} bps",
            )
        for flow_id in sorted(rates):
            rate = rates[flow_id]
            if rate < 0.0:
                guards.violation(
                    "allocation-negative",
                    str(flow_id),
                    now,
                    f"negative allocated rate {rate!r} bps from {policy_name}",
                )

    def _horizon(self, max_iterations: Optional[int]) -> float:
        assert max_iterations is not None
        longest = max(job.ideal_iteration_time for job in self.jobs)
        # Contention can stretch iterations; triple is a generous envelope.
        return 3.0 * longest * max_iterations + max(j.start_offset for j in self.jobs)

    def _sweep(
        self,
        runtimes: list[_JobRuntime],
        now: float,
        result: FluidResult,
        max_iterations: Optional[int],
    ) -> tuple[list[_JobRuntime], bool]:
        """Apply due phase transitions in one pass over the runtimes.

        Returns ``(active, finished)``: the jobs now in their communication
        phase and whether every job has met the stopping criterion.  Folding
        the transition scan, the active-set rebuild and the finished check
        into a single pass saves two full runtime traversals per event
        (docs/PERFORMANCE.md); transition semantics — including the RNG
        sampling order, which seeds depend on — are unchanged.
        """
        active: list[_JobRuntime] = []
        finished = True
        for rt in runtimes:
            phase = rt.phase
            if phase is Phase.WAITING:
                if now >= rt.phase_deadline - _EPS_TIME:
                    self._start_comm(rt, now)
                    phase = Phase.COMM
            elif phase is Phase.COMM and rt.remaining_bits <= _EPS_BITS:
                rt.comm_end = now
                compute = rt.spec.sample_compute_time(self._rng)
                if self.faults is not None:
                    compute *= self.faults.compute_scale(rt.spec.name, now)
                rt.phase = phase = Phase.COMPUTE
                rt.phase_deadline = now + compute
            elif phase is Phase.COMPUTE and now >= rt.phase_deadline - _EPS_TIME:
                result.iterations.append(
                    IterationResult(
                        job=rt.spec.name,
                        index=rt.iteration_index,
                        comm_start=rt.comm_start,
                        comm_end=rt.comm_end,
                        iteration_end=now,
                    )
                )
                rt.iteration_index += 1
                limit = rt.spec.iteration_limit
                if limit is not None and rt.iteration_index >= limit:
                    rt.phase = phase = Phase.DONE  # training finished: departs
                else:
                    self._start_comm(rt, now)
                    phase = Phase.COMM
            if phase is Phase.COMM:
                active.append(rt)
            if finished and phase is not Phase.DONE:
                if max_iterations is None or rt.iteration_index < max_iterations:
                    finished = False
        return active, finished

    def _apply_restarts(self, runtimes: list[_JobRuntime], now: float) -> None:
        """Kill-and-restart every job whose restart strike time has come.

        The in-flight iteration is discarded (never recorded), the job's
        ``sent_bits`` zeroes — which resets its MLTCP ``bytes_ratio`` and
        therefore its allocation weight, the fluid analogue of the packet
        sender's ``bytes_sent`` reset — and the job waits out
        ``restart_delay`` before starting a fresh communication phase.
        """
        assert self.faults is not None
        for event in self.faults.due_restarts(now):
            rt = next(r for r in runtimes if r.spec.name == event.job)
            if rt.phase is Phase.DONE:
                self.faults.record(now, f"job_restart on {event.job}: already done, no-op")
                continue
            rt.phase = Phase.WAITING
            rt.phase_deadline = event.time + event.restart_delay
            rt.remaining_bits = 0.0
            rt.sent_bits = 0.0
            rt.comm_start = math.nan
            rt.comm_end = math.nan
            self.faults.record(now, event.describe())

    def _start_comm(self, rt: _JobRuntime, now: float) -> None:
        rt.phase = Phase.COMM
        rt.remaining_bits = rt.spec.sample_comm_bits(self._rng)
        rt.sent_bits = 0.0
        rt.comm_start = now
        rt.comm_end = math.nan

    def _next_event_dt(
        self,
        runtimes: list[_JobRuntime],
        rates: dict[str, float],
        now: float,
        end_time: Optional[float],
    ) -> float:
        # Running minimum over the positive candidates — same result as the
        # old build-a-list-then-min, without materializing the list per event.
        best = math.inf
        candidate = self.quantum
        if candidate > _EPS_TIME:
            best = candidate
        if end_time is not None:
            candidate = end_time - now
            if _EPS_TIME < candidate < best:
                best = candidate
        if self.faults is not None:
            transition = self.faults.next_transition_after(now)
            if transition is not None:
                candidate = transition - now
                if _EPS_TIME < candidate < best:
                    best = candidate
        rates_get = rates.get
        for rt in runtimes:
            phase = rt.phase
            if phase is Phase.COMM:
                rate = rates_get(rt.spec.name, 0.0)
                if rate > 0:
                    candidate = rt.remaining_bits / rate
                    if _EPS_TIME < candidate < best:
                        best = candidate
            elif phase is not Phase.DONE:
                candidate = rt.phase_deadline - now
                if _EPS_TIME < candidate < best:
                    best = candidate
        return best if not math.isinf(best) else _EPS_TIME


def run_fluid(
    jobs: Sequence[JobSpec],
    capacity_gbps: float,
    policy: Optional[AllocationPolicy] = None,
    end_time: Optional[float] = None,
    max_iterations: Optional[int] = None,
    seed: Optional[int] = 0,
    quantum: float = 0.02,
    record_segments: bool = True,
    faults: Optional["FaultSchedule"] = None,
    guards: Optional["GuardRail"] = None,
) -> FluidResult:
    """One-call convenience wrapper around :class:`FluidSimulator`."""
    simulator = FluidSimulator(
        jobs,
        capacity_gbps,
        policy=policy,
        seed=seed,
        quantum=quantum,
        faults=faults,
        guards=guards,
    )
    return simulator.run(
        end_time=end_time,
        max_iterations=max_iterations,
        record_segments=record_segments,
    )

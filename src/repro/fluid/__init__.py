"""Flow-level (fluid) simulator and bottleneck allocation policies."""

from .allocation import (
    AllocationPolicy,
    FairShare,
    FlowView,
    MLTCPWeighted,
    PDQ,
    PIAS,
    SRPT,
    water_fill,
    water_fill_array,
    water_fill_batch,
)
from .arrays import FlowArrays, link_index_matrix
from .batch import BatchedFluidExperiment, run_fluid_batch
from .fabric import FluidFabric, fabric_capacities, place_on_fabric
from .network import (
    NetworkFluidResult,
    NetworkFluidSimulator,
    PlacedJob,
    run_network_fluid,
    weighted_max_min,
    weighted_max_min_array,
)
from .flowsim import (
    FluidResult,
    FluidSimulator,
    IterationResult,
    Phase,
    RateSegment,
    run_fluid,
)

__all__ = [
    "AllocationPolicy",
    "FairShare",
    "MLTCPWeighted",
    "SRPT",
    "PDQ",
    "PIAS",
    "FlowView",
    "water_fill",
    "water_fill_array",
    "water_fill_batch",
    "FlowArrays",
    "link_index_matrix",
    "BatchedFluidExperiment",
    "run_fluid_batch",
    "FluidSimulator",
    "FluidResult",
    "IterationResult",
    "RateSegment",
    "Phase",
    "run_fluid",
    "PlacedJob",
    "NetworkFluidSimulator",
    "NetworkFluidResult",
    "run_network_fluid",
    "weighted_max_min",
    "weighted_max_min_array",
    "FluidFabric",
    "fabric_capacities",
    "place_on_fabric",
]

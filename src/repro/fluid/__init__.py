"""Flow-level (fluid) simulator and bottleneck allocation policies."""

from .allocation import (
    AllocationPolicy,
    FairShare,
    FlowView,
    MLTCPWeighted,
    PDQ,
    PIAS,
    SRPT,
    water_fill,
)
from .fabric import FluidFabric, fabric_capacities, place_on_fabric
from .network import (
    NetworkFluidResult,
    NetworkFluidSimulator,
    PlacedJob,
    run_network_fluid,
    weighted_max_min,
)
from .flowsim import (
    FluidResult,
    FluidSimulator,
    IterationResult,
    Phase,
    RateSegment,
    run_fluid,
)

__all__ = [
    "AllocationPolicy",
    "FairShare",
    "MLTCPWeighted",
    "SRPT",
    "PDQ",
    "PIAS",
    "FlowView",
    "water_fill",
    "FluidSimulator",
    "FluidResult",
    "IterationResult",
    "RateSegment",
    "Phase",
    "run_fluid",
    "PlacedJob",
    "NetworkFluidSimulator",
    "NetworkFluidResult",
    "run_network_fluid",
    "weighted_max_min",
    "FluidFabric",
    "fabric_capacities",
    "place_on_fabric",
]

"""Fluid-side realization of a multi-rack fabric.

The packet simulator builds a :class:`~repro.workloads.placement.FabricSpec`
into switches and links (:func:`repro.simulator.topology.build_fat_tree`);
the fluid simulator only needs the *capacity map* of those links and the
link set each placed flow crosses.  Both come verbatim from the spec, so a
fluid run and a packet run of the same placement see identical bottlenecks:
same link names, same Gbps, same ECMP spine choices.

Typical use::

    spec = FabricSpec(n_racks=4, hosts_per_rack=4, n_spines=2,
                      oversubscription=2.0)
    placements = place_jobs(jobs, spec, policy="spread")
    fabric = FluidFabric.from_spec(spec)
    result = run_network_fluid(fabric.place(placements),
                               fabric.capacities_gbps, mltcp=True)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..faults.fluid import ECN_STORM_CAPACITY_FACTOR
from ..faults.routing import FabricRoutingState
from ..faults.schedule import FABRIC_KINDS, FaultEvent, FaultSchedule
from ..workloads.placement import FabricSpec, JobPlacement
from .network import PlacedJob

__all__ = [
    "FluidFabric",
    "FluidFabricFaults",
    "fabric_capacities",
    "place_on_fabric",
]


def fabric_capacities(spec: FabricSpec) -> dict[str, float]:
    """Per-link capacities (Gbps) of the spec's fabric, keyed ``"a->b"``."""
    return spec.capacities_gbps()


def place_on_fabric(
    spec: FabricSpec, placements: Sequence[JobPlacement]
) -> tuple[PlacedJob, ...]:
    """Resolve host-level placements into fluid :class:`PlacedJob` paths."""
    return tuple(
        PlacedJob(
            job=placement.job,
            links=placement.links(spec),
            src=placement.src,
            dst=placement.dst,
        )
        for placement in placements
    )


@dataclass(frozen=True)
class FluidFabric:
    """A :class:`FabricSpec` resolved for the fluid simulator."""

    spec: FabricSpec

    @classmethod
    def from_spec(cls, spec: FabricSpec) -> "FluidFabric":
        """Build the fluid fabric for ``spec`` (mirrors ``build_fat_tree``)."""
        return cls(spec=spec)

    @property
    def capacities_gbps(self) -> dict[str, float]:
        """The capacity map ``run_network_fluid`` consumes."""
        return fabric_capacities(self.spec)

    def place(self, placements: Sequence[JobPlacement]) -> tuple[PlacedJob, ...]:
        """Resolve placements into :class:`PlacedJob` instances on this fabric."""
        return place_on_fabric(self.spec, placements)


#: Classic link kinds that scale a single directed link's fluid capacity.
_CAPACITY_KINDS = ("link_down", "bandwidth", "loss_burst", "ecn_storm")

_EPS_TIME = 1e-12


class FluidFabricFaults:
    """Fabric-fault replay for :class:`repro.fluid.network.NetworkFluidSimulator`.

    The fluid analogue of the packet injector's fabric path: one shared
    :class:`~repro.faults.routing.FabricRoutingState` answers "which links
    does this flow cross *now*?", so a spine failure reroutes in-flight
    fluid flows onto exactly the links the packet substrate picks (same
    CRC32+avalanche rule over the surviving spines), and a partitioned
    pair stalls at rate 0 — the fluid rendering of a blackhole.

    Classic directional link kinds (``link_down``/``bandwidth``/
    ``loss_burst``/``ecn_storm``) compose too: they scale the named link's
    capacity multiplicatively, exactly as the single-bottleneck
    :class:`~repro.faults.fluid.FluidFaultState` does.  Job kinds are
    rejected — the network fluid model has no restart machinery; replay
    those on the packet substrate or the single-bottleneck fluid model.

    Transitions at equal times apply in the packet engine's order (FIFO in
    arming order: per strike-sorted event, strike then reversion), keeping
    the two substrates' fault state bit-identical at every instant.
    """

    def __init__(self, spec: FabricSpec, schedule: FaultSchedule) -> None:
        schedule.validate(fabric=spec)
        for event in schedule:
            if event.kind in ("straggler", "job_restart"):
                raise ValueError(
                    f"fault {event.describe()} targets a job; the network "
                    "fluid model has no job fault machinery — replay it on "
                    "the packet substrate or the single-bottleneck fluid "
                    "model"
                )
            if event.kind in _CAPACITY_KINDS and event.link is None:
                raise ValueError(
                    f"fault {event.describe()} must name its link: a fabric "
                    "has no default bottleneck"
                )
        self.spec = spec
        self.schedule = schedule
        self.routing = FabricRoutingState(spec)
        entries: list[tuple[float, int, str, FaultEvent]] = []
        seq = 0
        for event in schedule.sorted_events():
            entries.append((event.time, seq, "strike", event))
            seq += 1
            if event.duration > 0:
                entries.append((event.end_time, seq, "revert", event))
                seq += 1
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        self._transitions = entries
        self._applied = 0
        self._capacity_events = [
            e for e in schedule.sorted_events() if e.kind in _CAPACITY_KINDS
        ]
        #: Applied transitions, mirroring the packet injector's log:
        #: ``(sim_time, description)`` pairs for the degradations section.
        self.log: list[tuple[float, str]] = []

    def advance_to(self, now: float, eps: float = _EPS_TIME) -> bool:
        """Apply every transition due at or before ``now``; True if any."""
        changed = False
        while self._applied < len(self._transitions):
            time, _seq, phase, event = self._transitions[self._applied]
            if time > now + eps:
                break
            if phase == "strike":
                self.record(time, event.describe())
                if event.kind in FABRIC_KINDS:
                    self.routing.apply(event)
            else:
                self.record(time, f"{event.kind} on {event.target} reverted")
                if event.kind in FABRIC_KINDS:
                    self.routing.revert(event)
            self._applied += 1
            changed = True
        return changed

    def capacity_factors(self, now: float) -> dict[str, float]:
        """Per-link multiplicative capacity factor; links at 1.0 omitted.

        Links severed by the routing state (spine/uplink/partition faults)
        carry factor 0; active classic capacity kinds compose onto their
        directed link multiplicatively, matching
        :meth:`repro.faults.fluid.FluidFaultState.capacity_factor`.
        """
        factors: dict[str, float] = {}
        for link in self.routing.down_links():
            factors[link] = 0.0
        for event in self._capacity_events:
            if not event.time <= now < event.end_time:
                continue
            link = event.link
            assert link is not None
            if event.kind == "link_down":
                factors[link] = 0.0
                continue
            if event.kind == "bandwidth":
                scale = event.factor
            elif event.kind == "loss_burst":
                scale = 1.0 - event.loss
            else:  # ecn_storm
                scale = ECN_STORM_CAPACITY_FACTOR
            factors[link] = factors.get(link, 1.0) * scale
        return factors

    def links_for(self, placement: PlacedJob) -> Optional[tuple[str, ...]]:
        """The links ``placement`` crosses under the current fault state.

        ``None`` means no surviving path (the pair is partitioned): the
        flow stalls until a reversion restores connectivity.  Placements
        without ``src``/``dst`` metadata cannot be rerouted and keep their
        static link set.
        """
        if placement.src is None or placement.dst is None:
            return placement.links
        return self.routing.path_links(placement.src, placement.dst)

    def next_transition_after(
        self, now: float, eps: float = _EPS_TIME
    ) -> Optional[float]:
        """The next time the fault state changes, or None when drained."""
        for time, _seq, _phase, _event in self._transitions[self._applied:]:
            if time > now + eps:
                return time
        return None

    # -- log (mirrors repro.faults.packet.InjectionLog) --------------------

    def record(self, time: float, description: str) -> None:
        """Append one applied transition to the log."""
        self.log.append((time, description))

    def descriptions(self) -> list[str]:
        """The log as human-readable lines, in application order."""
        return [f"t={time:g}s: {text}" for time, text in self.log]

    def context_for(self, time: float) -> Optional[str]:
        """The most recent applied transition at or before ``time``."""
        latest: Optional[str] = None
        for applied_at, text in self.log:
            if applied_at > time:
                break
            latest = f"t={applied_at:g}s: {text}"
        return latest

"""Fluid-side realization of a multi-rack fabric.

The packet simulator builds a :class:`~repro.workloads.placement.FabricSpec`
into switches and links (:func:`repro.simulator.topology.build_fat_tree`);
the fluid simulator only needs the *capacity map* of those links and the
link set each placed flow crosses.  Both come verbatim from the spec, so a
fluid run and a packet run of the same placement see identical bottlenecks:
same link names, same Gbps, same ECMP spine choices.

Typical use::

    spec = FabricSpec(n_racks=4, hosts_per_rack=4, n_spines=2,
                      oversubscription=2.0)
    placements = place_jobs(jobs, spec, policy="spread")
    fabric = FluidFabric.from_spec(spec)
    result = run_network_fluid(fabric.place(placements),
                               fabric.capacities_gbps, mltcp=True)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..workloads.placement import FabricSpec, JobPlacement
from .network import PlacedJob

__all__ = ["FluidFabric", "fabric_capacities", "place_on_fabric"]


def fabric_capacities(spec: FabricSpec) -> dict[str, float]:
    """Per-link capacities (Gbps) of the spec's fabric, keyed ``"a->b"``."""
    return spec.capacities_gbps()


def place_on_fabric(
    spec: FabricSpec, placements: Sequence[JobPlacement]
) -> tuple[PlacedJob, ...]:
    """Resolve host-level placements into fluid :class:`PlacedJob` paths."""
    return tuple(
        PlacedJob(
            job=placement.job,
            links=placement.links(spec),
            src=placement.src,
            dst=placement.dst,
        )
        for placement in placements
    )


@dataclass(frozen=True)
class FluidFabric:
    """A :class:`FabricSpec` resolved for the fluid simulator."""

    spec: FabricSpec

    @classmethod
    def from_spec(cls, spec: FabricSpec) -> "FluidFabric":
        """Build the fluid fabric for ``spec`` (mirrors ``build_fat_tree``)."""
        return cls(spec=spec)

    @property
    def capacities_gbps(self) -> dict[str, float]:
        """The capacity map ``run_network_fluid`` consumes."""
        return fabric_capacities(self.spec)

    def place(self, placements: Sequence[JobPlacement]) -> tuple[PlacedJob, ...]:
        """Resolve placements into :class:`PlacedJob` instances on this fabric."""
        return place_on_fabric(self.spec, placements)

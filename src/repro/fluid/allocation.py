"""Bottleneck bandwidth-allocation policies for the fluid simulator.

A policy maps the set of flows currently in their communication phase to a
rate vector on the bottleneck.  Four families reproduce the paper's
comparison points:

* :class:`FairShare` — weighted max-min (water-filling) with unit weights;
  the steady-state behaviour of N synchronized TCP-Reno flows.
* :class:`MLTCPWeighted` — water-filling with per-flow weight
  ``F(bytes_ratio)``.  Under AIMD with synchronized multiplicative decrease,
  a flow whose additive-increase step is scaled by ``F`` claims a bandwidth
  share proportional to ``F``; this is the flow-level abstraction of Eq. 1.
* :class:`SRPT` — strict priority by least remaining bytes, the fluid model
  of pFabric's switch priorities.  :class:`PDQ` preempts all but the
  ``max_senders`` shortest flows, the fluid model of PDQ's sender pausing.
* :class:`PIAS` — multi-level feedback by bytes *sent* (information-agnostic
  LAS approximation): flows demote through priority levels as they send;
  levels are served in strict priority, fairly within a level.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Mapping, Optional, Sequence

import numpy as np

from ..core.aggressiveness import (
    AggressivenessFunction,
    LinearAggressiveness,
    default_aggressiveness,
)

# repro-lint: hot-path-module
# (PRF002: per-flow Python loops over FlowView sequences are flagged in
# this module; the vectorized array entry points below are the hot path.)

__all__ = [
    "FlowView",
    "AllocationPolicy",
    "FairShare",
    "MLTCPWeighted",
    "SRPT",
    "PDQ",
    "PIAS",
    "water_fill",
    "water_fill_array",
    "water_fill_batch",
    "allocation_excess",
    "allocation_excess_array",
]


def allocation_excess(rates: Mapping[str, float], capacity_bps: float) -> float:
    """How far a rate vector oversubscribes the bottleneck, in bps.

    Positive means the policy violated its ``allocate`` contract ("Sum must
    not exceed ``capacity_bps``"); zero or negative is a valid allocation.
    Summation iterates flows in sorted order so the float total is
    independent of dict insertion order (repro-lint DET004).
    """
    total = 0.0
    for flow_id in sorted(rates):
        total += rates[flow_id]
    return total - capacity_bps


class FlowView:
    """What a policy may observe about one active flow.

    ``flow_id`` identifies the job; ``demand_bps`` caps the rate the flow can
    drive; ``remaining_bits``/``sent_bits``/``total_bits`` describe progress
    through the current iteration's communication phase.

    Performance note (docs/PERFORMANCE.md): this used to be a frozen
    dataclass that the fluid simulator rebuilt — and re-validated — for
    every active flow at every allocation refresh.  It is now a mutable
    ``__slots__`` class so the simulator can build one view per job and
    sync the two progress fields in place between events.  Policies must
    not retain views across ``allocate`` calls.
    """

    __slots__ = ("flow_id", "demand_bps", "remaining_bits", "sent_bits", "total_bits")

    def __init__(
        self,
        flow_id: str,
        demand_bps: float,
        remaining_bits: float,
        sent_bits: float,
        total_bits: float,
    ) -> None:
        if demand_bps <= 0:
            raise ValueError(f"{flow_id}: demand_bps must be positive")
        if total_bits <= 0:
            raise ValueError(f"{flow_id}: total_bits must be positive")
        if remaining_bits < 0 or sent_bits < 0:
            raise ValueError(f"{flow_id}: progress must be non-negative")
        self.flow_id = flow_id
        self.demand_bps = demand_bps
        self.remaining_bits = remaining_bits
        self.sent_bits = sent_bits
        self.total_bits = total_bits

    @property
    def bytes_ratio(self) -> float:
        """Algorithm 1's ``bytes_ratio`` for this flow."""
        return min(1.0, self.sent_bits / self.total_bits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowView(flow_id={self.flow_id!r}, demand_bps={self.demand_bps!r}, "
            f"remaining_bits={self.remaining_bits!r}, sent_bits={self.sent_bits!r}, "
            f"total_bits={self.total_bits!r})"
        )


class AllocationPolicy(ABC):
    """Maps active flows to bottleneck rates.  Stateless between calls."""

    name: str = "policy"

    @abstractmethod
    def allocate(
        self, flows: Sequence[FlowView], capacity_bps: float
    ) -> dict[str, float]:
        """Rates (bps) per flow id.  Sum must not exceed ``capacity_bps``."""

    def cache_key(
        self, flows: Sequence[FlowView], capacity_bps: float
    ) -> Optional[Hashable]:
        """Token identifying everything this policy's allocation depends on.

        When a policy can summarize its inputs in a small hashable value —
        e.g. :class:`FairShare`, whose rates depend only on who is active,
        their demand caps and the capacity — the fluid simulator reuses the
        previous rate vector for as long as the token is unchanged instead
        of re-running water-filling every event.  ``None`` (the default)
        disables reuse; policies whose output varies continuously with flow
        progress must keep it that way unless they quantize (see
        :class:`MLTCPWeighted`'s ``ratio_granularity``).
        """
        return None

    def _check_capacity(self, capacity_bps: float) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"capacity_bps must be positive, got {capacity_bps!r}")


def water_fill(
    demands: Mapping[str, float], weights: Mapping[str, float], capacity: float
) -> dict[str, float]:
    """Weighted max-min allocation with per-flow caps.

    Flows receive capacity in proportion to their weights; a flow whose
    proportional share exceeds its demand is capped and the surplus is
    refilled among the rest.  Runs in O(n^2) worst case, fine for the job
    counts here.
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity!r}")
    for fid, weight in weights.items():
        if weight < 0:
            raise ValueError(f"{fid}: weight must be non-negative, got {weight!r}")
    rates: dict[str, float] = {}
    # Single up-front sort; capped flows are filtered out preserving order,
    # so every per-round accumulation below visits flows in exactly the
    # order the per-round ``sorted()`` of earlier revisions produced —
    # float summation order must not depend on PYTHONHASHSEED (repro-lint
    # DET004) and must not change as this code gets faster.
    unsaturated = sorted(demands)
    saturated: set[str] = set()
    remaining = capacity
    while unsaturated and remaining > 1e-12:
        total_weight = 0.0
        for fid in unsaturated:
            total_weight += weights[fid]
        if total_weight <= 0:
            # All remaining weights are zero: split the leftover evenly so no
            # flow fully starves (MLTCP "allocates non-zero bandwidth to all
            # competing flows", §5).
            equal = remaining / len(unsaturated)
            newly_capped = [
                fid for fid in unsaturated if demands[fid] <= equal + 1e-12
            ]
            if not newly_capped:
                for fid in unsaturated:
                    rates[fid] = rates.get(fid, 0.0) + equal
                return rates
            for fid in newly_capped:
                rates[fid] = demands[fid]
            # Recompute simply: restart with capped flows removed.  The
            # refill sums what rounds before this one granted (``saturated``
            # holds exactly the flows capped before this round), iterating
            # ``demands`` in insertion order as the original did.
            spent = 0.0
            for fid in demands:
                if fid in saturated:
                    spent += rates.get(fid, 0.0)
            remaining = capacity - spent
            saturated.update(newly_capped)
            unsaturated = [fid for fid in unsaturated if fid not in saturated]
            continue
        shares = [remaining * weights[fid] / total_weight for fid in unsaturated]
        capped = [
            fid
            for fid, share in zip(unsaturated, shares)
            if weights[fid] > 0 and share >= demands[fid] - 1e-12
        ]
        if capped:
            for fid in capped:
                rates[fid] = demands[fid]
                remaining -= demands[fid]
            saturated.update(capped)
            unsaturated = [fid for fid in unsaturated if fid not in saturated]
            continue
        for fid, share in zip(unsaturated, shares):
            rates[fid] = share
        return {fid: max(0.0, rate) for fid, rate in rates.items()}
    for fid in unsaturated:
        rates.setdefault(fid, 0.0)
    return {fid: max(0.0, rate) for fid, rate in rates.items()}


def water_fill_array(
    demands: np.ndarray,
    weights: np.ndarray,
    capacity: float,
    ids: Optional[Sequence[str]] = None,
    rank: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Vectorized twin of :func:`water_fill` on contiguous arrays.

    The flow axis is in *candidate* order — the insertion order of the
    scalar reference's ``demands`` mapping — and ``rank``, when given,
    carries each flow's unique sort position among the flow ids so the
    scalar's single up-front ``sorted(demands)`` pass can be replayed
    without re-sorting strings per call (``rank=None`` means the axis is
    already sorted).  The returned rates align with the input axis.
    Every float the scalar version computes is reproduced bit-for-bit
    (docs/PERFORMANCE.md, "Vectorized core & scale benchmarks"):

    * per-round weight totals accumulate strictly left-to-right over the
      unsaturated flows in sorted order via ``np.add.accumulate``
      (``np.sum`` would pairwise-sum, a different rounding sequence);
    * the zero-weight refill branch replays the scalar's ``spent`` loop
      over the mapping's insertion order — the array axis — where a
      skipped flow contributes a literal ``+0.0``, an exact identity on
      a non-negative running total;
    * ``max``/``min`` clamps become sign-exact ``np.where`` selections.

    ``water_fill`` remains the property-test oracle
    (tests/test_vectorized_allocation.py).
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity!r}")
    demands = np.ascontiguousarray(demands, dtype=np.float64)
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    if demands.shape != weights.shape or demands.ndim != 1:
        raise ValueError(
            f"demands/weights must be matching 1-D arrays, got "
            f"{demands.shape} and {weights.shape}"
        )
    negative = weights < 0.0
    if negative.any():
        first = int(np.argmax(negative))
        fid = ids[first] if ids is not None else f"flow[{first}]"
        raise ValueError(
            f"{fid}: weight must be non-negative, got {weights[first]!r}"
        )
    n = demands.shape[0]
    if rank is None:
        order = np.arange(n, dtype=np.intp)
    else:
        order = np.argsort(rank, kind="stable")
    rates = np.zeros(n)
    unsat = np.ones(n, dtype=bool)
    was_saturated = np.zeros(n, dtype=bool)
    remaining = capacity
    while True:
        # Unsaturated flows in sorted-id order, exactly the scalar's
        # order-preserving filter of its up-front ``sorted(demands)``.
        idx = order[unsat[order]]
        if idx.size == 0 or not remaining > 1e-12:
            break
        w_u = weights[idx]
        # Strictly sequential left-to-right sum: bit-identical to the
        # scalar reference's running ``total_weight`` accumulation.
        total = float(np.add.accumulate(w_u)[-1])
        d_u = demands[idx]
        if total <= 0.0:
            equal = remaining / idx.size
            newly = d_u <= equal + 1e-12
            if not newly.any():
                rates[idx] = rates[idx] + equal
                return np.where(rates > 0.0, rates, 0.0)
            cap_idx = idx[newly]
            rates[cap_idx] = demands[cap_idx]
            # Refill: re-sum what rounds before this one granted.  The
            # scalar iterates the whole demands mapping in insertion
            # order (the array axis), skipping unsaturated flows; the
            # skip is a ``+0.0`` add on a non-negative total, so the
            # masked full-axis accumulation is exact.
            if n:
                spent = float(
                    np.add.accumulate(np.where(was_saturated, rates, 0.0))[-1]
                )
            else:  # pragma: no cover - n == 0 never reaches this branch
                spent = 0.0
            remaining = capacity - spent
            was_saturated[cap_idx] = True
            unsat[cap_idx] = False
            continue
        shares = (remaining * w_u) / total
        capped = (w_u > 0.0) & (shares >= d_u - 1e-12)
        if capped.any():
            cap_idx = idx[capped]
            d_cap = demands[cap_idx]
            rates[cap_idx] = d_cap
            # Sequential ``remaining -= demand`` chain, in round order.
            seq = np.empty(d_cap.size + 1)
            seq[0] = remaining
            np.negative(d_cap, out=seq[1:])
            remaining = float(np.add.accumulate(seq)[-1])
            was_saturated[cap_idx] = True
            unsat[cap_idx] = False
            continue
        rates[idx] = shares
        return np.where(rates > 0.0, rates, 0.0)
    return np.where(rates > 0.0, rates, 0.0)


def water_fill_batch(
    demands: np.ndarray,
    weights: np.ndarray,
    capacity: float,
    active: np.ndarray,
    rank: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Water-fill ``S`` independent scenarios stacked on a leading seed axis.

    ``demands`` is ``(n,)`` (flow caps are seed-invariant), ``weights``
    and ``active`` are ``(S, n)``; the flow axis is in candidate order
    with ``rank`` carrying sort positions exactly as for
    :func:`water_fill_array`.  Lane ``s`` of the result is bit-identical
    to ``water_fill_array(demands[active[s]], weights[s, active[s]],
    capacity, rank=rank[active[s]])`` scattered back over ``n`` flows
    (inactive lanes are 0): inactive flows are skipped, not zero-padded,
    in every float accumulation the scalar reference performs — a
    skipped flow adds a literal ``+0.0``, an exact identity.

    Zero-weight rounds (unreachable for the strictly positive FairShare/
    MLTCP weights the batched engine produces) fall back to the per-seed
    array path for the affected seeds.
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity!r}")
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    demands = np.ascontiguousarray(demands, dtype=np.float64)
    n_seeds, n = weights.shape
    if demands.shape != (n,) or active.shape != (n_seeds, n):
        raise ValueError(
            f"shape mismatch: weights {weights.shape}, demands "
            f"{demands.shape}, active {active.shape}"
        )
    if bool((weights[active] < 0.0).any()):
        raise ValueError("weights must be non-negative")
    # Work internally in sorted-id column order so every axis-1
    # accumulation visits flows exactly as the scalar's sorted loop does;
    # scatter back to the caller's candidate order at the end.
    if rank is None:
        cols = np.arange(n, dtype=np.intp)
    else:
        cols = np.argsort(rank, kind="stable")
    d_sorted = demands[cols]
    w_sorted = np.ascontiguousarray(weights[:, cols])
    rates = np.zeros((n_seeds, n))
    unsat = np.ascontiguousarray(active[:, cols])
    remaining = np.full(n_seeds, float(capacity))
    live = np.ones(n_seeds, dtype=bool)
    fallback_rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    d_row = d_sorted[None, :]
    while True:
        live &= unsat.any(axis=1) & (remaining > 1e-12)
        if not live.any():
            break
        masked_w = np.where(unsat, w_sorted, 0.0)
        totals = np.add.accumulate(masked_w, axis=1)[:, -1]
        degenerate = live & (totals <= 0.0)
        if degenerate.any():
            # Zero-weight refill rounds: replay those seeds individually
            # through the (bit-identical) single-scenario path.
            for s in np.nonzero(degenerate)[0]:
                lanes = np.nonzero(active[s])[0]
                sub_rank = rank[lanes] if rank is not None else None
                fallback_rows[int(s)] = (
                    lanes,
                    water_fill_array(
                        demands[lanes], weights[s, lanes], capacity,
                        rank=sub_rank,
                    ),
                )
                live[s] = False
            if not live.any():
                break
        with np.errstate(divide="ignore", invalid="ignore"):
            shares = (remaining[:, None] * w_sorted) / totals[:, None]
        capped = unsat & (w_sorted > 0.0) & (shares >= d_row - 1e-12)
        capped[~live] = False
        has_capped = capped.any(axis=1)
        finishing = live & ~has_capped
        if finishing.any():
            take = unsat & finishing[:, None]
            rates[take] = shares[take]
            live &= ~finishing
        if has_capped.any():
            rates = np.where(capped, d_row, rates)
            # Per-seed sequential ``remaining -= demand`` chain.
            seq = np.concatenate(
                [remaining[:, None], np.where(capped, -d_row, 0.0)], axis=1
            )
            new_remaining = np.add.accumulate(seq, axis=1)[:, -1]
            remaining = np.where(has_capped & live, new_remaining, remaining)
            unsat &= ~capped
    out = np.zeros((n_seeds, n))
    out[:, cols] = np.where(rates > 0.0, rates, 0.0)
    for s, (lanes, row) in fallback_rows.items():
        out[s] = 0.0
        out[s, lanes] = row
    return out


def allocation_excess_array(sorted_rates: np.ndarray, capacity_bps: float) -> float:
    """:func:`allocation_excess` on a rate array already in sorted-id order.

    Sums sequentially (``np.add.accumulate``) so the total matches the
    scalar loop bit-for-bit.
    """
    if sorted_rates.size == 0:
        return 0.0 - capacity_bps
    return float(np.add.accumulate(sorted_rates)[-1]) - capacity_bps


class FairShare(AllocationPolicy):
    """Equal-weight max-min share: N competing TCP flows in steady state."""

    name = "tcp-fair"

    def allocate(
        self, flows: Sequence[FlowView], capacity_bps: float
    ) -> dict[str, float]:
        """Equal-weight water-filling (see :class:`AllocationPolicy`)."""
        self._check_capacity(capacity_bps)
        if not flows:
            return {}
        demands = {f.flow_id: f.demand_bps for f in flows}
        weights = {f.flow_id: 1.0 for f in flows}
        return water_fill(demands, weights, capacity_bps)

    def cache_key(
        self, flows: Sequence[FlowView], capacity_bps: float
    ) -> Optional[Hashable]:
        """Unit weights: rates depend only on the active set, caps, capacity."""
        return (capacity_bps, tuple((f.flow_id, f.demand_bps) for f in flows))


class MLTCPWeighted(AllocationPolicy):
    """Shares proportional to ``F(bytes_ratio)`` — the fluid model of Eq. 1.

    Rationale: with additive increase scaled by ``F_i`` and synchronized
    multiplicative decrease, flow i's average window grows at ``F_i`` per RTT
    and halves on each shared loss event, so windows (hence rates) settle in
    proportion to ``F_i``.  The packet-level simulator validates this
    abstraction directly (see tests/test_integration_packet_vs_fluid.py).
    """

    name = "mltcp"

    def __init__(
        self,
        function: AggressivenessFunction | None = None,
        ratio_granularity: Optional[float] = None,
    ) -> None:
        self.function = function if function is not None else default_aggressiveness()
        if ratio_granularity is not None and ratio_granularity <= 0:
            raise ValueError(
                f"ratio_granularity must be positive, got {ratio_granularity!r}"
            )
        #: Opt-in approximation knob: when set, ``cache_key`` buckets each
        #: flow's ``bytes_ratio`` at this granularity so the fluid simulator
        #: reuses the previous allocation until some flow crosses a bucket
        #: boundary.  ``None`` (the default) recomputes every event and is
        #: bit-identical to the pre-optimization behaviour.
        self.ratio_granularity = ratio_granularity
        # Fast path for the paper's deployed linear F (Eq. 2): evaluating
        # ``slope * ratio + intercept`` inline is the same arithmetic as the
        # AggressivenessFunction call chain (clamp is a no-op on the already
        # clamped bytes_ratio, a positive-intercept/non-negative-slope line
        # can't go negative), so the result is bit-identical — it just skips
        # three Python calls per flow per allocation.
        if type(self.function) is LinearAggressiveness:
            self._linear: Optional[tuple[float, float]] = (
                self.function.slope,
                self.function.intercept,
            )
        else:
            self._linear = None

    def allocate(
        self, flows: Sequence[FlowView], capacity_bps: float
    ) -> dict[str, float]:
        """F(bytes_ratio)-weighted water-filling (paper Eq. 1, fluid form)."""
        self._check_capacity(capacity_bps)
        if not flows:
            return {}
        demands = {f.flow_id: f.demand_bps for f in flows}
        linear = self._linear
        if linear is not None:
            slope, intercept = linear
            weights: dict[str, float] = {}
            for f in flows:  # repro-lint: disable=PRF002
                ratio = f.sent_bits / f.total_bits
                if ratio > 1.0:
                    ratio = 1.0
                weights[f.flow_id] = slope * ratio + intercept
        else:
            weights = {f.flow_id: self.function(f.bytes_ratio) for f in flows}
        return water_fill(demands, weights, capacity_bps)

    def cache_key(
        self, flows: Sequence[FlowView], capacity_bps: float
    ) -> Optional[Hashable]:
        """Bucketed-progress token when ``ratio_granularity`` is set."""
        granularity = self.ratio_granularity
        if granularity is None:
            return None
        return (
            capacity_bps,
            tuple(
                (f.flow_id, f.demand_bps, int(f.bytes_ratio / granularity))
                for f in flows
            ),
        )


class SRPT(AllocationPolicy):
    """Priority by least remaining bytes (pFabric's fluid model).

    Flows whose remaining byte counts are within ``tie_fraction`` of the
    largest flow size present are treated as equal priority and share
    fairly: at packet granularity, pFabric interleaves the packets of
    equal-priority flows rather than strictly serializing them, so
    identical jobs that start together split the link instead of being
    served one after another.
    """

    name = "srpt"

    def __init__(self, tie_fraction: float = 0.05) -> None:
        if not 0.0 <= tie_fraction < 1.0:
            raise ValueError(f"tie_fraction must be in [0, 1), got {tie_fraction!r}")
        self.tie_fraction = tie_fraction

    def allocate(
        self, flows: Sequence[FlowView], capacity_bps: float
    ) -> dict[str, float]:
        """Least-remaining-first with tie groups sharing fairly."""
        self._check_capacity(capacity_bps)
        if not flows:
            return {}
        tolerance = self.tie_fraction * max(f.total_bits for f in flows)
        ordered = sorted(flows, key=lambda f: (f.remaining_bits, f.flow_id))
        rates: dict[str, float] = {}
        remaining_capacity = capacity_bps
        group: list[FlowView] = []
        for flow in ordered:  # repro-lint: disable=PRF002
            if group and flow.remaining_bits - group[0].remaining_bits > tolerance:
                remaining_capacity -= self._serve_group(group, remaining_capacity, rates)
                group = []
            group.append(flow)
        if group:
            self._serve_group(group, remaining_capacity, rates)
        return rates

    @staticmethod
    def _serve_group(
        group: list[FlowView], capacity: float, rates: dict[str, float]
    ) -> float:
        """Fair-share ``capacity`` within one priority group; returns usage."""
        if capacity <= 1e-12:
            for flow in group:  # repro-lint: disable=PRF002
                rates[flow.flow_id] = 0.0
            return 0.0
        demands = {f.flow_id: f.demand_bps for f in group}
        weights = {f.flow_id: 1.0 for f in group}
        group_rates = water_fill(demands, weights, capacity)
        rates.update(group_rates)
        return sum(group_rates.values())


class PDQ(AllocationPolicy):
    """SRPT with explicit sender preemption: only the ``max_senders``
    shortest flows transmit at once; the rest are paused (rate 0).

    PDQ's switches grant rates to the most critical flows and pause others;
    with size-based criticality and no deadlines this reduces to bounded-
    fan-in SRPT.
    """

    name = "pdq"

    def __init__(self, max_senders: int = 2) -> None:
        if max_senders < 1:
            raise ValueError(f"max_senders must be positive, got {max_senders!r}")
        self.max_senders = max_senders

    def allocate(
        self, flows: Sequence[FlowView], capacity_bps: float
    ) -> dict[str, float]:
        """Serve only the ``max_senders`` shortest flows; pause the rest."""
        self._check_capacity(capacity_bps)
        rates = {f.flow_id: 0.0 for f in flows}
        remaining_capacity = capacity_bps
        ordered = sorted(flows, key=lambda f: (f.remaining_bits, f.flow_id))
        for flow in ordered[: self.max_senders]:  # repro-lint: disable=PRF002
            rate = min(flow.demand_bps, remaining_capacity)
            rates[flow.flow_id] = rate
            remaining_capacity -= rate
        return rates


class PIAS(AllocationPolicy):
    """Multi-level feedback by bytes sent (information-agnostic SRPT proxy).

    Flows start in the highest-priority level and demote as their sent-byte
    count crosses each threshold.  Levels are served in strict priority;
    flows within a level share fairly.  Default thresholds are placed at
    12.5% / 25% / 50% of a "typical" flow so that long DNN collectives sink
    to the lowest level mid-iteration — the head-of-line dynamic the paper
    attributes to conventional schedulers.
    """

    name = "pias"

    def __init__(self, thresholds_bits: Sequence[float] | None = None) -> None:
        if thresholds_bits is None:
            # Relative thresholds are resolved per call against the largest
            # total flow size present, keeping the policy size-agnostic.
            self._relative = (0.125, 0.25, 0.5)
            self.thresholds_bits: tuple[float, ...] | None = None
        else:
            ordered = tuple(sorted(float(t) for t in thresholds_bits))
            if any(t <= 0 for t in ordered):
                raise ValueError("PIAS thresholds must be positive")
            self.thresholds_bits = ordered
            self._relative = ()

    def _resolve_thresholds(self, flows: Sequence[FlowView]) -> tuple[float, ...]:
        if self.thresholds_bits is not None:
            return self.thresholds_bits
        largest = max(f.total_bits for f in flows)
        return tuple(r * largest for r in self._relative)

    def allocate(
        self, flows: Sequence[FlowView], capacity_bps: float
    ) -> dict[str, float]:
        """Strict priority across levels; fair share within a level."""
        self._check_capacity(capacity_bps)
        if not flows:
            return {}
        thresholds = self._resolve_thresholds(flows)
        levels: dict[int, list[FlowView]] = {}
        for flow in flows:  # repro-lint: disable=PRF002
            level = sum(1 for t in thresholds if flow.sent_bits >= t)
            levels.setdefault(level, []).append(flow)
        rates: dict[str, float] = {f.flow_id: 0.0 for f in flows}
        remaining_capacity = capacity_bps
        for level in sorted(levels):
            if remaining_capacity <= 1e-12:
                break
            group = levels[level]
            demands = {f.flow_id: f.demand_bps for f in group}
            weights = {f.flow_id: 1.0 for f in group}
            group_rates = water_fill(demands, weights, remaining_capacity)
            for fid, rate in group_rates.items():
                rates[fid] = rate
            remaining_capacity -= sum(group_rates.values())
        return rates

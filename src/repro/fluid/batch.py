"""Batched Monte-Carlo fluid runs: N seeds as one extra array axis.

# repro-lint: hot-path-module

Convergence statistics (``repro.harness.sweep``) repeat the same
scenario under different noise realizations.  The scalar route pays one
full :class:`~repro.fluid.flowsim.FluidSimulator` event loop — or one
worker process — per seed.  This module stacks the seeds on the leading
axis of the struct-of-arrays state instead and advances all of them in
lockstep: one ``(S, n)`` vectorized sweep/allocate/deliver pass per
step, with each seed moving by its *own* ``dt`` and freezing (``dt = 0``,
an exact no-op on its state) once it meets the stopping criterion.

Each lane reproduces its solo run bit-for-bit: the per-seed RNGs are
private, per-seed transitions are dispatched in the same ascending flow
order the scalar sweep used, and the stacked water-fill
(:func:`repro.fluid.allocation.water_fill_batch`) is bit-identical per
lane to the scalar reference (docs/PERFORMANCE.md, "Vectorized core &
scale benchmarks" — including when the batched axis applies).

Scope: the batched path covers the Monte-Carlo workhorse configuration —
``FairShare`` or linear ``MLTCPWeighted`` weights, one bottleneck,
``max_iterations`` stopping, no faults/guards/segments.  Anything
outside that raises ``ValueError`` up front; callers fall back to
per-seed :func:`~repro.fluid.flowsim.run_fluid`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.units import bps_from_gbps
from ..workloads.job import JobSpec
from .allocation import AllocationPolicy, FairShare, MLTCPWeighted, water_fill_batch
from .arrays import PHASE_COMM, PHASE_COMPUTE, PHASE_DONE, PHASE_WAITING, FlowArrays
from .flowsim import _EPS_BITS, _EPS_TIME, FluidResult, IterationResult, run_fluid

__all__ = ["run_fluid_batch", "BatchedFluidExperiment", "BATCH_METRICS"]


def _linear_coefficients(policy: AllocationPolicy) -> Optional[tuple[float, float]]:
    """``(slope, intercept)`` when the policy is batchable, else ``None``.

    FairShare is the degenerate line ``0 * ratio + 1``; a linear
    MLTCPWeighted without the ``ratio_granularity`` cache knob exposes its
    coefficients.  Everything else (nonlinear F, granular caching, SRPT,
    PDQ, PIAS, subclasses) is out of scope for the batched axis.
    """
    if type(policy) is FairShare:
        return (0.0, 1.0)
    if (
        type(policy) is MLTCPWeighted
        and policy._linear is not None
        and policy.ratio_granularity is None
    ):
        return policy._linear
    return None


def run_fluid_batch(
    jobs: Sequence[JobSpec],
    capacity_gbps: float,
    seeds: Sequence[Optional[int]],
    policy: Optional[AllocationPolicy] = None,
    max_iterations: Optional[int] = None,
    quantum: float = 0.02,
) -> list[FluidResult]:
    """Run one scenario under ``len(seeds)`` noise draws in one array pass.

    Returns one :class:`FluidResult` per seed, in seed order, each
    bit-identical to ``run_fluid(jobs, capacity_gbps, policy=policy,
    max_iterations=max_iterations, seed=seed, quantum=quantum,
    record_segments=False)`` — same iterations, same end time, no rate
    segments (the batched axis trades the per-event segment log for
    throughput; run a solo seed when you need Figure-4-style timelines).
    """
    if not jobs:
        raise ValueError("need at least one job")
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        raise ValueError(f"job names must be unique, got {names}")
    if capacity_gbps <= 0:
        raise ValueError(f"capacity_gbps must be positive, got {capacity_gbps!r}")
    if quantum <= 0:
        raise ValueError(f"quantum must be positive, got {quantum!r}")
    if max_iterations is None or max_iterations < 1:
        raise ValueError(
            f"max_iterations must be a positive integer, got {max_iterations!r}"
        )
    seeds = list(seeds)
    if not seeds:
        raise ValueError("seeds must contain at least one seed")
    policy = policy if policy is not None else FairShare()
    linear = _linear_coefficients(policy)
    if linear is None:
        raise ValueError(
            f"policy {type(policy).__name__!r} has no batched fast path; "
            "use FairShare or a linear MLTCPWeighted without "
            "ratio_granularity, or fall back to per-seed run_fluid"
        )
    slope, intercept = linear

    fa = FlowArrays.from_specs(jobs)
    n = len(fa)
    n_seeds = len(seeds)
    demand_bps = fa.demand_bps
    total_bits = fa.total_bits
    rank = fa.rank
    specs = fa.specs
    flow_names = fa.names
    # Same conversion the scalar simulator uses, so capacities match
    # bit-for-bit.
    capacity_bps = bps_from_gbps(capacity_gbps)

    rngs = [
        np.random.default_rng(seed) if seed is not None else None for seed in seeds
    ]
    results = [
        FluidResult(
            jobs=tuple(jobs), capacity_gbps=capacity_gbps, policy_name=policy.name
        )
        for _ in seeds
    ]

    # (S, n) state stack: lane s is seed s's solo FlowArrays state.
    phase = np.full((n_seeds, n), PHASE_WAITING, dtype=np.int8)
    remaining = np.zeros((n_seeds, n))
    sent = np.zeros((n_seeds, n))
    deadline = np.tile(fa.start_offset, (n_seeds, 1))
    comm_start = np.full((n_seeds, n), np.nan)
    comm_end = np.full((n_seeds, n), np.nan)
    iter_index = np.zeros((n_seeds, n), dtype=np.int64)
    rates = np.zeros((n_seeds, n))
    now = np.zeros(n_seeds)
    steps = np.zeros(n_seeds, dtype=np.int64)
    alive = np.ones(n_seeds, dtype=bool)

    # Same step envelope as the scalar simulator (per seed).
    longest = max(job.ideal_iteration_time for job in jobs)
    horizon = 3.0 * longest * max_iterations + max(j.start_offset for j in jobs)
    max_steps = int(50 * n * max(1.0, horizon / quantum))

    while True:
        # -- sweep: due transitions from the pre-sweep state, one per flow --
        lanes = alive[:, None]
        wait_due = lanes & (phase == PHASE_WAITING) & (now[:, None] >= deadline - _EPS_TIME)
        comm_done = lanes & (phase == PHASE_COMM) & (remaining <= _EPS_BITS)
        compute_due = lanes & (phase == PHASE_COMPUTE) & (now[:, None] >= deadline - _EPS_TIME)
        due = wait_due | comm_done | compute_due
        if due.any():
            # Row-major nonzero: within each seed, flows dispatch in the
            # ascending index order its solo sweep used, so each lane's
            # private RNG draw sequence is preserved.
            for s, i in zip(*(a.tolist() for a in np.nonzero(due))):
                if wait_due[s, i]:
                    _start_comm(
                        specs, rngs[s], phase, remaining, sent, comm_start,
                        comm_end, s, i, now[s],
                    )
                elif comm_done[s, i]:
                    comm_end[s, i] = now[s]
                    phase[s, i] = PHASE_COMPUTE
                    deadline[s, i] = now[s] + specs[i].sample_compute_time(rngs[s])
                else:
                    results[s].iterations.append(
                        IterationResult(
                            job=flow_names[i],
                            index=int(iter_index[s, i]),
                            comm_start=float(comm_start[s, i]),
                            comm_end=float(comm_end[s, i]),
                            iteration_end=float(now[s]),
                        )
                    )
                    iter_index[s, i] += 1
                    limit = specs[i].iteration_limit
                    if limit is not None and iter_index[s, i] >= limit:
                        phase[s, i] = PHASE_DONE  # training finished: departs
                    else:
                        _start_comm(
                            specs, rngs[s], phase, remaining, sent, comm_start,
                            comm_end, s, i, now[s],
                        )
        # -- stopping criterion per lane; finished lanes freeze at dt = 0 --
        finished = ((phase == PHASE_DONE) | (iter_index >= max_iterations)).all(axis=1)
        for s in np.nonzero(alive & finished)[0].tolist():
            results[s].end_time = float(now[s])
        alive &= ~finished
        if not alive.any():
            break
        if bool((steps[alive] >= max_steps).any()):
            # A live lane has executed the scalar loop's full step budget
            # without meeting the stopping criterion — exactly when its
            # solo run would have raised.
            raise RuntimeError(
                f"fluid simulation exceeded {max_steps} steps without "
                "finishing; check for a zero-rate livelock"
            )

        # -- allocation: one stacked water-fill over every live lane --
        active = (phase == PHASE_COMM) & alive[:, None]
        quotient = np.divide(
            sent, total_bits[None, :], out=np.zeros_like(sent), where=active
        )
        ratio = np.where(quotient < 1.0, quotient, 1.0)
        weights = slope * ratio + intercept
        rates = water_fill_batch(demand_bps, weights, capacity_bps, active, rank=rank)

        # -- per-lane dt: quantum, phase deadlines, drain times --
        candidates = np.full((n_seeds, n), math.inf)
        timed = (phase != PHASE_DONE) & (phase != PHASE_COMM)
        np.subtract(deadline, now[:, None], out=candidates, where=timed)
        flowing = active & (rates > 0.0)
        np.divide(remaining, rates, out=candidates, where=flowing)
        candidates[candidates <= _EPS_TIME] = math.inf
        best = candidates.min(axis=1)
        if quantum > _EPS_TIME:
            best = np.where(quantum < best, quantum, best)
        dt = np.where(np.isinf(best), _EPS_TIME, best)
        dt = np.where(alive, dt, 0.0)

        # -- delivery: whole-stack twin of the scalar clamp chain --
        delivered = rates * dt[:, None]
        shrunk = remaining - delivered
        remaining = np.where(shrunk > 0.0, shrunk, 0.0)
        grown = sent + delivered
        sent = np.where(grown < total_bits[None, :], grown, total_bits[None, :])
        now = now + dt
        steps[alive] += 1
    return results


def _start_comm(
    specs: tuple[JobSpec, ...],
    rng: Optional[np.random.Generator],
    phase: np.ndarray,
    remaining: np.ndarray,
    sent: np.ndarray,
    comm_start: np.ndarray,
    comm_end: np.ndarray,
    s: int,
    i: int,
    now_s: float,
) -> None:
    """Lane-local twin of ``FluidSimulator._start_comm``."""
    phase[s, i] = PHASE_COMM
    remaining[s, i] = specs[i].sample_comm_bits(rng)
    sent[s, i] = 0.0
    comm_start[s, i] = now_s
    comm_end[s, i] = math.nan


def _mean_iteration_time(result: FluidResult) -> float:
    return float(result.all_iteration_times().mean())


def _end_time(result: FluidResult) -> float:
    return result.end_time


#: Named scalar metrics a batched experiment can fold a run down to.
#: (String-keyed so the experiment dataclass stays picklable for the
#: process-pool fallback path.)
BATCH_METRICS: dict[str, Callable[[FluidResult], float]] = {
    "mean_iteration_time": _mean_iteration_time,
    "end_time": _end_time,
}


@dataclass(frozen=True)
class BatchedFluidExperiment:
    """A seed-parameterized fluid experiment with a vectorized batch path.

    Callable as ``experiment(seed) -> float`` (the contract
    :func:`repro.harness.sweep.repeat_with_seeds` expects, picklable for
    its worker pool), and additionally exposing
    ``run_batch(seeds) -> list[float]`` so ``repeat_with_seeds(...,
    batch=True)`` / ``run_batched_seeds`` can fold all seeds through
    :func:`run_fluid_batch` in one vectorized pass.  Both paths produce
    bit-identical metric values.
    """

    jobs: tuple[JobSpec, ...]
    capacity_gbps: float
    policy: Optional[AllocationPolicy] = None
    max_iterations: int = 10
    quantum: float = 0.02
    metric: str = "mean_iteration_time"

    def __post_init__(self) -> None:
        if self.metric not in BATCH_METRICS:
            raise ValueError(
                f"unknown metric {self.metric!r}; "
                f"choose one of {sorted(BATCH_METRICS)}"
            )

    def __call__(self, seed: Optional[int]) -> float:
        result = run_fluid(
            list(self.jobs),
            self.capacity_gbps,
            policy=self.policy,
            max_iterations=self.max_iterations,
            seed=seed,
            quantum=self.quantum,
            record_segments=False,
        )
        return BATCH_METRICS[self.metric](result)

    def run_batch(self, seeds: Sequence[Optional[int]]) -> list[float]:
        """All seeds in one vectorized pass; values match ``self(seed)``."""
        metric = BATCH_METRICS[self.metric]
        return [
            metric(result)
            for result in run_fluid_batch(
                list(self.jobs),
                self.capacity_gbps,
                seeds,
                policy=self.policy,
                max_iterations=self.max_iterations,
                quantum=self.quantum,
            )
        ]

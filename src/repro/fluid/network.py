"""Multi-bottleneck fluid simulator: jobs on paths over a capacitated graph.

The single-bottleneck :class:`~repro.fluid.flowsim.FluidSimulator` models the
paper's dumbbell; real clusters have many potentially-congested links
(leaf uplinks, spine ports).  Here each job's flow crosses a *set of links*
and rates are assigned by weighted max-min fairness across the whole
network (progressive filling): repeatedly find the most-constrained link,
fix the rates of the flows crossing it in proportion to their weights, and
continue with residual capacities.  Demand caps are virtual per-flow links,
so the same machinery handles them.

With unit weights this is classic max-min TCP sharing; with
``F(bytes_ratio)`` weights it is network-wide MLTCP — each congested link
independently develops the sliding effect, which is the paper's
distributed-scalability argument ("easily deployable and scalable").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..core.aggressiveness import (
    AggressivenessFunction,
    LinearAggressiveness,
    default_aggressiveness,
)
from ..core.units import bps_from_gbps
from ..workloads.job import JobSpec
from .arrays import (
    PHASE_COMM,
    PHASE_COMPUTE,
    PHASE_DONE,
    PHASE_WAITING,
    FlowArrays,
    link_index_matrix,
)
from .flowsim import _VECTORIZED_MIN_FLOWS, IterationResult

# repro-lint: hot-path-module
# (Scopes the PRF002 per-flow-loop rule here: flow state advances via
# whole-array numpy passes; the remaining Python loops are the gated
# fault/guard sections and per-index transition dispatch.)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..guards.core import GuardRail
    from .fabric import FluidFabricFaults

__all__ = ["PlacedJob", "NetworkFluidResult", "NetworkFluidSimulator", "run_network_fluid"]

_EPS_BITS = 1e-6
_EPS_TIME = 1e-12
_EPS_CAP = 1e-9


@dataclass(frozen=True)
class PlacedJob:
    """A periodic job plus the set of links its flow traverses.

    ``src``/``dst`` optionally carry the fabric placement the link set was
    derived from (host names on a
    :class:`~repro.workloads.placement.FabricSpec`); they are pure
    metadata — rate allocation depends only on ``links`` — so existing
    callers that build link sets by hand are unaffected.
    """

    job: JobSpec
    links: tuple[str, ...]
    src: Optional[str] = None
    dst: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError(f"{self.job.name}: need at least one link")
        if len(set(self.links)) != len(self.links):
            raise ValueError(f"{self.job.name}: duplicate links in path")
        if self.src is not None and self.src == self.dst:
            raise ValueError(f"{self.job.name}: src and dst must differ")


@dataclass
class NetworkFluidResult:
    """Iterations per job from one multi-bottleneck run."""

    placements: tuple[PlacedJob, ...]
    capacities_gbps: dict[str, float]
    policy_name: str
    iterations: list[IterationResult] = field(default_factory=list)
    end_time: float = 0.0
    #: Applied fault transitions when the run had fabric faults attached
    #: (human-readable lines, mirroring ``FluidResult.fault_log``).
    fault_log: list[str] = field(default_factory=list)
    #: Measured bits per link, recorded only by faulted runs (reroutes move
    #: traffic off a flow's nominal path, so the static accounting below
    #: would charge bits to severed links).  Empty for fault-free runs.
    delivered_bits_by_link: dict[str, float] = field(default_factory=dict)

    def iterations_of(self, job: str) -> list[IterationResult]:
        """Completed iterations of one job, in order."""
        return [it for it in self.iterations if it.job == job]

    def iteration_times(self, job: str) -> np.ndarray:
        """Durations (s) of the job's completed iterations."""
        return np.array([it.duration for it in self.iterations_of(job)])

    def mean_iteration_by_round(self, jobs: Optional[Sequence[str]] = None) -> np.ndarray:
        """Average duration of the i-th iteration across the given jobs."""
        names = (
            list(jobs)
            if jobs is not None
            else [p.job.name for p in self.placements]
        )
        per_job = [self.iteration_times(name) for name in names]
        rounds = min(len(t) for t in per_job)
        if rounds == 0:
            return np.array([])
        # One 2-D reduction instead of a per-round Python list build; the
        # transpose is materialized C-contiguous so each row mean is the
        # same 1-D pairwise reduction ``np.mean`` ran per round before.
        stacked = np.ascontiguousarray(
            np.stack([t[:rounds] for t in per_job]).T
        )
        return stacked.mean(axis=1)

    def link_utilization(self) -> dict[str, float]:
        """Mean utilization of every link over the run.

        Fluid flows deliver exactly their nominal per-iteration volume, so
        the bits a link carried are ``comm_bits x completed iterations``
        summed over the flows crossing it, divided by ``capacity x
        end_time``.  Keys are sorted link names, mirroring the packet
        side's :meth:`repro.simulator.topology.Network.link_utilization`.
        (With ``volume_jitter_fraction > 0`` this uses nominal volumes —
        a mean-level approximation.)  Faulted runs record the bits each
        link actually carried (reroutes shift traffic off nominal paths),
        so those use the measured accounting instead.
        """
        bits_by_link = {link: 0.0 for link in sorted(self.capacities_gbps)}
        if self.delivered_bits_by_link:
            for link, bits in self.delivered_bits_by_link.items():
                bits_by_link[link] = bits
        else:
            for placement in self.placements:
                bits = placement.job.comm_bits * len(
                    self.iterations_of(placement.job.name)
                )
                for link in placement.links:
                    bits_by_link[link] += bits
        if self.end_time <= 0:
            return {link: 0.0 for link in bits_by_link}
        return {
            link: bits / (bps_from_gbps(self.capacities_gbps[link]) * self.end_time)
            for link, bits in bits_by_link.items()
        }


@dataclass
class _FlowRuntime:
    """Per-flow state of the scalar (small-population) engine."""

    placement: PlacedJob
    phase: str = "waiting"  # waiting | comm | compute | done
    remaining_bits: float = 0.0
    sent_bits: float = 0.0
    iteration_index: int = 0
    comm_start: float = math.nan
    comm_end: float = math.nan
    phase_deadline: float = 0.0

    @property
    def spec(self) -> JobSpec:
        """The underlying job specification."""
        return self.placement.job

    @property
    def bytes_ratio(self) -> float:
        """Algorithm 1's bytes_ratio for the current communication phase."""
        return min(1.0, self.sent_bits / self.spec.comm_bits)


def weighted_max_min(
    flows: dict[str, tuple[float, float, tuple[str, ...]]],
    capacities_bps: dict[str, float],
) -> dict[str, float]:
    """Network-wide weighted max-min rates.

    ``flows`` maps flow id to ``(weight, demand_bps, links)``.  Demand caps
    become virtual per-flow links.  Progressive filling: the link with the
    smallest capacity-per-unit-weight saturates first and fixes its flows.
    """
    residual = dict(capacities_bps)
    members: dict[str, set[str]] = {link: set() for link in residual}
    # Zero-weight flows keep a vanishing (but non-zero) share, so no flow
    # fully starves — the §5 non-starvation property.
    effective_weight: dict[str, float] = {}
    for fid, (weight, demand, links) in flows.items():
        if weight < 0:
            raise ValueError(f"{fid}: weight must be non-negative, got {weight!r}")
        if demand <= 0:
            raise ValueError(f"{fid}: demand must be positive, got {demand!r}")
        effective_weight[fid] = max(weight, 1e-9)
        virtual = f"__demand__{fid}"
        residual[virtual] = demand
        members[virtual] = {fid}
        for link in links:
            if link not in residual:
                raise KeyError(f"{fid}: unknown link {link!r}")
            members[link].add(fid)

    # Per-link member lists sorted once up front instead of re-sorted every
    # progressive-filling round; the per-round filter below preserves that
    # order, so the float sums accumulate in exactly the order the old
    # per-round ``sorted()`` produced (PYTHONHASHSEED-independent, DET004).
    ordered_members = {link: sorted(ids) for link, ids in members.items()}

    rates: dict[str, float] = {}
    unfixed = set(flows)

    while unfixed:
        best_link: Optional[str] = None
        best_share = math.inf
        for link, ordered in ordered_members.items():
            total_weight = 0.0
            any_active = False
            for fid in ordered:
                if fid in unfixed:
                    total_weight += effective_weight[fid]
                    any_active = True
            if not any_active:
                continue
            share = residual[link] / total_weight
            if share < best_share:
                best_share = share
                best_link = link
        if best_link is None:
            break
        for fid in ordered_members[best_link]:
            if fid not in unfixed:
                continue
            rate = max(0.0, best_share * effective_weight[fid])
            rates[fid] = rate
            for link in flows[fid][2]:
                residual[link] = max(0.0, residual[link] - rate)
            residual[f"__demand__{fid}"] = 0.0
            unfixed.discard(fid)
    for fid in flows:
        rates.setdefault(fid, 0.0)
    return rates


def weighted_max_min_array(
    weights: np.ndarray,
    demands: np.ndarray,
    flow_links: np.ndarray,
    capacities: np.ndarray,
    rank: np.ndarray,
) -> np.ndarray:
    """Vectorized twin of :func:`weighted_max_min` on contiguous arrays.

    The flow axis is in *candidate* order — the insertion order of the
    scalar reference's ``flows`` mapping (active runtimes in placement
    order) — and ``rank`` carries each flow's unique sort position among
    the flow ids, so per-link accumulations can replay the scalar's
    ``sorted(ids)`` iteration without re-sorting strings per call.
    ``flow_links`` is ``(n, K)`` integer, each row the flow's link
    indices into ``capacities`` padded with ``-1`` (duplicate links per
    flow are a precondition violation, as in :class:`PlacedJob`); demand
    caps are handled as the scalar does, as virtual single-member links
    appended after the real ones.  Fabric link sets are sparse (a flow
    crosses a handful of a fat tree's thousands of links), so membership
    is materialized as ragged per-link member lists padded to the
    maximum degree, never as a dense links x flows matrix.

    Bit-identity contract (docs/PERFORMANCE.md): every selection and
    every float the scalar progressive-filling loop produces is
    reproduced exactly —

    * per-link weight totals accumulate strictly left-to-right over
      members in sorted-id order (``np.add.accumulate``); padding and
      already-fixed members contribute a literal ``+0.0``, an exact
      identity on a non-negative running total, and totals are only
      *recomputed* for links whose unfixed member set changed — links
      whose set did not change would re-sum to the exact same float, so
      their cached shares stand;
    * a virtual link's share ``demand / effective_weight`` never changes
      until its flow fixes, so virtual candidates are pre-sorted once
      (stable, so ties keep candidate order) and consumed by a cursor;
    * the chained ``max(0.0, residual - rate)`` updates are replayed via
      a per-link prefix accumulation: clamping at any step forces every
      later step to 0, so the chain equals 0 when any prefix dips below
      zero and the exact sequential sum otherwise;
    * real links win share ties against virtual links, and earlier links
      win ties against later ones, exactly like the scalar's strict
      ``<`` scan over reals-then-virtuals (links with active members
      enter the scan in capacities order).
    """
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    demands = np.ascontiguousarray(demands, dtype=np.float64)
    capacities = np.ascontiguousarray(capacities, dtype=np.float64)
    n = weights.shape[0]
    if flow_links.ndim != 2 or flow_links.shape[0] != n:
        raise ValueError(
            f"flow_links must be (flows, K) = ({n}, K), got {flow_links.shape}"
        )
    bad = weights < 0.0
    if bad.any():
        first = int(np.argmax(bad))
        raise ValueError(
            f"flow[{first}]: weight must be non-negative, got {weights[first]!r}"
        )
    bad = demands <= 0.0
    if bad.any():
        first = int(np.argmax(bad))
        raise ValueError(
            f"flow[{first}]: demand must be positive, got {demands[first]!r}"
        )
    rates = np.zeros(n)
    if n == 0:
        return rates
    eff = np.where(weights > 1e-9, weights, 1e-9)

    order = np.argsort(rank, kind="stable")  # sorted-id positions -> flow idx
    inv_order = np.empty(n, dtype=np.intp)
    inv_order[order] = np.arange(n)
    w_sorted = eff[order]

    # Ragged per-link member lists: group the (link, member) incidence
    # pairs by link with a stable sort, so each link's segment lists its
    # member positions in ascending sorted-id order — exactly the order
    # the scalar's up-front per-link ``sorted(ids)`` produced.  ``padded``
    # points row r's members into the sorted axis, with the sentinel ``n``
    # resolving to weight 0.0 / unfixed False through the extended arrays.
    n_flows_axis = flow_links.shape[1]
    flat_links = flow_links[order].ravel()
    flat_pos = np.repeat(np.arange(n, dtype=np.intp), n_flows_axis)
    valid = flat_links >= 0
    flat_links = flat_links[valid]
    flat_pos = flat_pos[valid]
    perm = np.argsort(flat_links, kind="stable")
    seg_link = flat_links[perm]
    seg_pos = flat_pos[perm]
    uniq_links, seg_start = np.unique(seg_link, return_index=True)
    n_links = int(uniq_links.size)
    fixed = np.zeros(n, dtype=bool)
    unfixed_ext = np.ones(n + 1, dtype=bool)
    unfixed_ext[n] = False
    if n_links:
        degree = np.diff(np.append(seg_start, seg_link.size))
        counts = degree.copy()
        max_degree = int(degree.max())
        padded = np.full((n_links, max_degree), n, dtype=np.intp)
        padded[
            np.repeat(np.arange(n_links, dtype=np.intp), degree),
            np.arange(seg_link.size) - np.repeat(seg_start, degree),
        ] = seg_pos
        w_ext = np.append(w_sorted, 0.0)
        member_w = w_ext[padded]
        residual = capacities[uniq_links]
        totals = np.add.accumulate(member_w, axis=1)[:, -1]
        lshare = residual / totals  # every listed link has >= 1 member
        link_row = np.full(capacities.shape[0], -1, dtype=np.intp)
        link_row[uniq_links] = np.arange(n_links)
    else:
        lshare = np.empty(0)

    # Virtual-link shares are invariant for the whole call: the virtual
    # residual stays at the demand until the flow fixes, and its total is
    # always the flow's own effective weight.
    vshare = demands / eff
    vorder = np.argsort(vshare, kind="stable")
    vptr = 0
    n_fixed = 0

    while n_fixed < n:
        if n_links:
            li = int(np.argmin(lshare))
            lmin = float(lshare[li])
        else:
            li = -1
            lmin = math.inf
        while vptr < n and fixed[vorder[vptr]]:
            vptr += 1
        vmin = float(vshare[vorder[vptr]]) if vptr < n else math.inf
        if not (lmin < math.inf or vmin < math.inf):  # pragma: no cover
            break  # mirrors the scalar's (unreachable) best_link=None exit
        if lmin <= vmin:
            share = lmin
            members = padded[li]
            memb_pos = members[unfixed_ext[members]]
            flow_idx = order[memb_pos]
            fixed_rates = share * w_sorted[memb_pos]
            fixed_rates = np.where(fixed_rates > 0.0, fixed_rates, 0.0)
        else:
            fi = int(vorder[vptr])
            share = vmin
            rate = share * float(eff[fi])
            if not rate > 0.0:
                rate = 0.0
            flow_idx = np.array([fi], dtype=np.intp)
            memb_pos = inv_order[flow_idx]
            fixed_rates = np.array([rate])
        rates[flow_idx] = fixed_rates
        fixed[flow_idx] = True
        unfixed_ext[memb_pos] = False
        n_round = int(flow_idx.size)
        n_fixed += n_round

        if n_links:
            round_links = flow_links[flow_idx].ravel()
            link_valid = round_links >= 0
            rows = link_row[round_links[link_valid]]
            col = np.repeat(
                np.arange(n_round, dtype=np.intp), flow_links.shape[1]
            )[link_valid]
            aff = np.unique(rows)
            if aff.size:
                # Chained max(0, residual - rate) per link, members in fix
                # order: 0 if any prefix goes negative, else the exact
                # sequential sum (rates are non-negative, so once clamped
                # a residual stays clamped); skipped columns add +0.0.
                deltas = np.zeros((aff.size, n_round))
                deltas[np.searchsorted(aff, rows), col] = -fixed_rates[col]
                seq = np.concatenate(
                    [residual[aff][:, None], deltas], axis=1
                )
                prefix = np.add.accumulate(seq, axis=1)
                clamped = prefix[:, 1:].min(axis=1) < 0.0
                residual[aff] = np.where(clamped, 0.0, prefix[:, -1])
                counts[aff] -= np.bincount(
                    np.searchsorted(aff, rows), minlength=aff.size
                )
                # Fresh per-link totals over the surviving members, in the
                # same sorted order the scalar re-sums every round.
                aff_counts = counts[aff]
                sub = padded[aff]
                vals = np.where(unfixed_ext[sub], member_w[aff], 0.0)
                new_totals = np.add.accumulate(vals, axis=1)[:, -1]
                safe = np.where(aff_counts > 0, new_totals, 1.0)
                lshare[aff] = np.where(
                    aff_counts > 0, residual[aff] / safe, math.inf
                )
    return rates


class NetworkFluidSimulator:
    """Event-driven fluid simulation over a capacitated link set."""

    def __init__(
        self,
        placements: Sequence[PlacedJob],
        capacities_gbps: dict[str, float],
        mltcp_function: Optional[AggressivenessFunction] = None,
        fair_share: bool = False,
        seed: Optional[int] = 0,
        quantum: float = 0.02,
        fabric_faults: Optional["FluidFabricFaults"] = None,
        guards: Optional["GuardRail"] = None,
    ) -> None:
        if not placements:
            raise ValueError("need at least one placed job")
        names = [p.job.name for p in placements]
        if len(set(names)) != len(names):
            raise ValueError(f"job names must be unique, got {names}")
        for placement in placements:
            for link in placement.links:
                if link not in capacities_gbps:
                    raise ValueError(
                        f"{placement.job.name}: no capacity for link {link!r}"
                    )
        if any(c <= 0 for c in capacities_gbps.values()):
            raise ValueError("link capacities must be positive")
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        self.placements = tuple(placements)
        self.capacities_gbps = dict(capacities_gbps)
        self.fair_share = fair_share
        self.function = (
            mltcp_function if mltcp_function is not None else default_aggressiveness()
        )
        self.quantum = quantum
        self._rng = np.random.default_rng(seed) if seed is not None else None
        # Array-backed flow state (one struct-of-arrays, reset per run)
        # plus the static link-membership matrix for the nominal paths.
        self._arrays = FlowArrays.from_specs([p.job for p in placements])
        self._links = tuple(self.capacities_gbps)
        self._capacities_arr = np.array(
            [bps_from_gbps(self.capacities_gbps[link]) for link in self._links]
        )
        self._flow_links_idx = link_index_matrix(
            self._links,
            {p.job.name: p.links for p in placements},
            self._arrays.names,
        )
        #: Optional fabric-fault replay (:class:`~repro.fluid.fabric.
        #: FluidFabricFaults`).  ``None`` keeps the fault-free path
        #: bit-identical to the pre-fault code.
        self.fabric_faults = fabric_faults
        #: Optional guardrail: when set with faults, route-liveness and
        #: down-link allocation checks run every step.
        self.guards = guards

    def run(self, max_iterations: int) -> NetworkFluidResult:
        """Simulate until every job completed ``max_iterations`` cycles.

        Populations below ``_VECTORIZED_MIN_FLOWS`` run on the scalar
        per-runtime engine, larger ones on the array engine; the two are
        bit-identical, so the dispatch is invisible in every output.
        """
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be positive, got {max_iterations!r}")
        if len(self.placements) < _VECTORIZED_MIN_FLOWS:
            return self._run_scalar(max_iterations)
        fa = self._arrays
        fa.reset()
        n = len(fa)
        phase = fa.phase
        remaining = fa.remaining_bits
        sent = fa.sent_bits
        deadline = fa.deadline
        comm_start = fa.comm_start
        comm_end = fa.comm_end
        iter_index = fa.iteration_index
        rates_arr = fa.rates
        total_bits = fa.total_bits
        demand_bps = fa.demand_bps
        result = NetworkFluidResult(
            placements=self.placements,
            capacities_gbps=self.capacities_gbps,
            policy_name="tcp-fair" if self.fair_share else "mltcp",
        )
        capacities_bps = {
            k: bps_from_gbps(v) for k, v in self.capacities_gbps.items()
        }
        now = 0.0
        longest = max(p.job.ideal_iteration_time for p in self.placements)
        max_steps = int(
            100 * len(self.placements) * max(1.0, 5 * longest * max_iterations / self.quantum)
        )

        # Same inline fast path as MLTCPWeighted.allocate: the paper's linear
        # F evaluated as ``slope * ratio + intercept`` directly is the exact
        # arithmetic of the AggressivenessFunction call chain (bit-identical),
        # minus three Python calls per flow per round — here one vectorized
        # pass over the whole active set per timestep.
        linear: Optional[tuple[float, float]] = None
        if not self.fair_share and type(self.function) is LinearAggressiveness:
            linear = (self.function.slope, self.function.intercept)

        # Fabric-fault state: all of it is gated on ``fabric_faults`` being
        # attached, so a fault-free run takes exactly the pre-fault path.
        faults = self.fabric_faults
        guards = self.guards
        effective_capacities = capacities_bps
        capacities_arr = self._capacities_arr
        flow_links_idx = self._flow_links_idx
        has_path = np.ones(n, dtype=bool)
        flow_links: dict[str, Optional[tuple[str, ...]]] = {}
        bits_by_link: dict[str, float] = {}
        routing_generation = -1
        last_factors: dict[str, float] = {}

        for _step in range(max_steps):
            if faults is not None:
                faults.advance_to(now)
                if faults.routing.generation != routing_generation:
                    routing_generation = faults.routing.generation
                    # Reroute every flow over the surviving spines; an
                    # in-flight flow keeps sent/remaining bits, so a reroute
                    # moves the tail of the transfer, not the whole volume.
                    flow_links = {
                        p.job.name: faults.links_for(p) for p in self.placements
                    }
                    # Partitioned flows (no surviving path) stall until a
                    # reversion restores connectivity — the fluid rendering
                    # of a blackhole — so they leave the allocatable set.
                    has_path = np.array(
                        [flow_links[name] is not None for name in fa.names]
                    )
                    flow_links_idx = link_index_matrix(
                        self._links,
                        {
                            name: flow_links[name] or ()
                            for name in fa.names
                        },
                        fa.names,
                    )
                factors = faults.capacity_factors(now)
                if factors != last_factors:
                    last_factors = factors
                    if factors:
                        effective_capacities = {
                            link: cap * factors.get(link, 1.0)
                            for link, cap in capacities_bps.items()
                        }
                        capacities_arr = np.array(
                            [effective_capacities[link] for link in self._links]
                        )
                    else:
                        effective_capacities = capacities_bps
                        capacities_arr = self._capacities_arr

            # Phase transitions: masks are computed from pre-sweep state, so
            # like the scalar elif chain each flow takes at most one
            # transition per step; the dispatch loop visits due flows in
            # ascending index (= runtimes) order, preserving RNG draw order.
            wait_due = (phase == PHASE_WAITING) & (now >= deadline - _EPS_TIME)
            comm_done = (phase == PHASE_COMM) & (remaining <= _EPS_BITS)
            compute_due = (phase == PHASE_COMPUTE) & (
                now >= deadline - _EPS_TIME
            )
            due = wait_due | comm_done | compute_due
            if due.any():
                for raw in np.nonzero(due)[0]:
                    i = int(raw)
                    if wait_due[i]:
                        self._start_comm(fa, i, now)
                    elif comm_done[i]:
                        comm_end[i] = now
                        phase[i] = PHASE_COMPUTE
                        deadline[i] = now + fa.specs[i].sample_compute_time(
                            self._rng
                        )
                    else:
                        result.iterations.append(
                            IterationResult(
                                job=fa.names[i],
                                index=int(iter_index[i]),
                                comm_start=float(comm_start[i]),
                                comm_end=float(comm_end[i]),
                                iteration_end=now,
                            )
                        )
                        iter_index[i] += 1
                        if iter_index[i] >= max_iterations:
                            phase[i] = PHASE_DONE
                        else:
                            self._start_comm(fa, i, now)
            if bool((iter_index >= max_iterations).all()):
                break
            active = phase == PHASE_COMM
            allocatable = active if faults is None else active & has_path
            a_idx = np.nonzero(allocatable)[0]
            rates_arr.fill(0.0)
            weights: Optional[np.ndarray] = None
            if a_idx.size:
                if self.fair_share:
                    weights = np.ones(a_idx.size)
                elif linear is not None:
                    slope, intercept = linear
                    ratio = sent[a_idx] / total_bits[a_idx]
                    ratio = np.where(ratio > 1.0, 1.0, ratio)
                    weights = slope * ratio + intercept
                else:
                    bytes_ratio = np.where(
                        sent[a_idx] < total_bits[a_idx],
                        sent[a_idx] / total_bits[a_idx],
                        1.0,
                    )
                    weights = np.array(
                        [self.function(float(r)) for r in bytes_ratio]
                    )
                rates_arr[a_idx] = weighted_max_min_array(
                    weights,
                    demand_bps[a_idx],
                    flow_links_idx[a_idx],
                    capacities_arr,
                    fa.rank[a_idx],
                )
            if faults is not None and guards is not None:
                flow_specs: dict[str, tuple[float, float, tuple[str, ...]]] = {}
                rates_map: dict[str, float] = {}
                for j, raw in enumerate(a_idx):
                    i = int(raw)
                    name = fa.names[i]
                    links = flow_links[name]
                    assert links is not None and weights is not None
                    flow_specs[name] = (
                        float(weights[j]), float(demand_bps[i]), links
                    )
                    rates_map[name] = float(rates_arr[i])
                self._check_fabric_guards(
                    guards, flow_specs, rates_map, effective_capacities,
                    last_factors, now,
                )
            dt = self._next_dt_array(fa, active, now)
            if faults is not None:
                upcoming = faults.next_transition_after(now)
                if upcoming is not None and upcoming - now > _EPS_TIME:
                    dt = min(dt, upcoming - now)
            delivered = rates_arr * dt
            if faults is not None:
                # Measured per-link accounting stays a Python loop: the
                # scalar sums each link's dict slot in active-flow order
                # and float addition is order-sensitive.
                for raw in np.nonzero(active)[0]:
                    i = int(raw)
                    bits = float(delivered[i])
                    if bits > 0.0:
                        links = flow_links[fa.names[i]]
                        assert links is not None
                        for link in links:
                            bits_by_link[link] = (
                                bits_by_link.get(link, 0.0) + bits
                            )
            # Whole-array delivered update.  The scalar only touches active
            # flows, but inactive flows have rate 0, and ``x - 0.0`` /
            # ``x + 0.0`` are exact identities on non-negative state, as are
            # the sign-exact ``np.where`` renderings of max/min clamps.
            shrunk = remaining - delivered
            remaining[:] = np.where(shrunk > 0.0, shrunk, 0.0)
            grown = sent + delivered
            sent[:] = np.where(grown < total_bits, grown, total_bits)
            now += dt
        else:
            raise RuntimeError("network fluid simulation exceeded its step budget")
        result.end_time = now
        if faults is not None:
            result.fault_log = faults.descriptions()
            result.delivered_bits_by_link = bits_by_link
        return result

    def _run_scalar(self, max_iterations: int) -> NetworkFluidResult:
        """Scalar engine for small populations (see ``run``)."""
        runtimes = [_FlowRuntime(placement=p) for p in self.placements]
        for rt in runtimes:  # repro-lint: disable=PRF002
            rt.phase_deadline = rt.spec.start_offset
        result = NetworkFluidResult(
            placements=self.placements,
            capacities_gbps=self.capacities_gbps,
            policy_name="tcp-fair" if self.fair_share else "mltcp",
        )
        capacities_bps = {
            k: bps_from_gbps(v) for k, v in self.capacities_gbps.items()
        }
        now = 0.0
        longest = max(p.job.ideal_iteration_time for p in self.placements)
        max_steps = int(
            100 * len(self.placements) * max(1.0, 5 * longest * max_iterations / self.quantum)
        )

        # Same inline fast path as MLTCPWeighted.allocate: the paper's linear
        # F evaluated as ``slope * ratio + intercept`` directly is the exact
        # arithmetic of the AggressivenessFunction call chain (bit-identical),
        # minus three Python calls per flow per round.
        linear: Optional[tuple[float, float]] = None
        if not self.fair_share and type(self.function) is LinearAggressiveness:
            linear = (self.function.slope, self.function.intercept)

        def flow_weight(rt: _FlowRuntime) -> float:
            if self.fair_share:
                return 1.0
            if linear is not None:
                slope, intercept = linear
                ratio = rt.sent_bits / rt.spec.comm_bits
                if ratio > 1.0:
                    ratio = 1.0
                return slope * ratio + intercept
            return self.function(rt.bytes_ratio)

        # Fabric-fault state: all of it is gated on ``fabric_faults`` being
        # attached, so a fault-free run takes exactly the pre-fault path.
        faults = self.fabric_faults
        guards = self.guards
        effective_capacities = capacities_bps
        flow_links: dict[str, Optional[tuple[str, ...]]] = {}
        bits_by_link: dict[str, float] = {}
        routing_generation = -1
        last_factors: dict[str, float] = {}

        for _step in range(max_steps):
            if faults is not None:
                faults.advance_to(now)
                if faults.routing.generation != routing_generation:
                    routing_generation = faults.routing.generation
                    # Reroute every flow over the surviving spines; an
                    # in-flight flow keeps sent/remaining bits, so a reroute
                    # moves the tail of the transfer, not the whole volume.
                    flow_links = {
                        p.job.name: faults.links_for(p) for p in self.placements
                    }
                factors = faults.capacity_factors(now)
                if factors != last_factors:
                    last_factors = factors
                    effective_capacities = (
                        {
                            link: cap * factors.get(link, 1.0)
                            for link, cap in capacities_bps.items()
                        }
                        if factors
                        else capacities_bps
                    )
            self._transitions(runtimes, now, result, max_iterations)
            if all(rt.iteration_index >= max_iterations for rt in runtimes):
                break
            active = [rt for rt in runtimes if rt.phase == "comm"]
            if faults is None:
                flow_specs = {
                    rt.spec.name: (
                        flow_weight(rt),
                        rt.spec.demand_bps,
                        rt.placement.links,
                    )
                    for rt in active
                }
            else:
                flow_specs = {}
                for rt in active:
                    links = flow_links[rt.spec.name]
                    if links is None:
                        # No surviving path (partitioned): the flow stalls
                        # until a reversion restores connectivity — the
                        # fluid rendering of a blackhole.
                        continue
                    flow_specs[rt.spec.name] = (
                        flow_weight(rt),
                        rt.spec.demand_bps,
                        links,
                    )
            rates = (
                weighted_max_min(flow_specs, effective_capacities)
                if flow_specs
                else {}
            )
            if faults is not None and guards is not None:
                self._check_fabric_guards(
                    guards, flow_specs, rates, effective_capacities,
                    last_factors, now,
                )
            dt = self._next_dt(runtimes, rates, now)
            if faults is not None:
                upcoming = faults.next_transition_after(now)
                if upcoming is not None and upcoming - now > _EPS_TIME:
                    dt = min(dt, upcoming - now)
            for rt in active:
                delivered = rates.get(rt.spec.name, 0.0) * dt
                if faults is not None and delivered > 0.0:
                    links = flow_links[rt.spec.name]
                    assert links is not None
                    for link in links:
                        bits_by_link[link] = (
                            bits_by_link.get(link, 0.0) + delivered
                        )
                rt.remaining_bits = max(0.0, rt.remaining_bits - delivered)
                rt.sent_bits = min(rt.spec.comm_bits, rt.sent_bits + delivered)
            now += dt
        else:
            raise RuntimeError("network fluid simulation exceeded its step budget")
        result.end_time = now
        if faults is not None:
            result.fault_log = faults.descriptions()
            result.delivered_bits_by_link = bits_by_link
        return result

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _check_fabric_guards(
        guards: "GuardRail",
        flow_specs: dict[str, tuple[float, float, tuple[str, ...]]],
        rates: dict[str, float],
        capacities_bps: dict[str, float],
        factors: dict[str, float],
        now: float,
    ) -> None:
        """Fluid renditions of the fabric-fault guards.

        ``route-liveness``: no allocated flow's *current* path may cross a
        severed (factor-0) link — tripping means the reroute cache went
        stale.  ``reroute-conservation``: on every fault-affected link the
        allocated rates must still fit the degraded capacity.  Both only
        scan the (small) set of affected links, so armed-guard overhead
        scales with fault blast radius, not fabric size.
        """
        if not factors:
            return
        for fid in sorted(flow_specs):
            _weight, _demand, links = flow_specs[fid]
            # Identity check: severed links get a literal 0.0 factor.
            if any(
                factors.get(link, 1.0) == 0.0 for link in links  # repro-lint: disable=FLT001
            ):
                guards.violation(
                    "route-liveness",
                    fid,
                    now,
                    "flow is allocated across a severed link; the "
                    "surviving-spine reroute missed it",
                )
        for link in sorted(factors):
            capacity = capacities_bps.get(link)
            if capacity is None:
                continue
            total = 0.0
            for fid in sorted(flow_specs):
                if link in flow_specs[fid][2]:
                    total += rates.get(fid, 0.0)
            if total > capacity + 1e-6 * max(capacity, 1.0):
                guards.violation(
                    "reroute-conservation",
                    link,
                    now,
                    f"allocated {total:.6g} bps exceeds the degraded "
                    f"capacity {capacity:.6g} bps",
                )

    @staticmethod
    def _start_comm(fa: FlowArrays, i: int, now: float) -> None:
        fa.phase[i] = PHASE_COMM
        fa.remaining_bits[i] = fa.total_bits[i]
        fa.sent_bits[i] = 0.0
        fa.comm_start[i] = now
        fa.comm_end[i] = math.nan

    def _next_dt_array(
        self, fa: FlowArrays, active: np.ndarray, now: float
    ) -> float:
        """Vectorized next-event horizon; a minimum is order-independent."""
        candidates = np.full(len(fa), math.inf)
        timed = (fa.phase == PHASE_WAITING) | (fa.phase == PHASE_COMPUTE)
        candidates[timed] = fa.deadline[timed] - now
        flowing = active & (fa.rates > 0.0)
        candidates[flowing] = fa.remaining_bits[flowing] / fa.rates[flowing]
        candidates[candidates <= _EPS_TIME] = math.inf
        best = float(candidates.min()) if len(fa) else math.inf
        if _EPS_TIME < self.quantum < best:
            best = self.quantum
        return best if best < math.inf else _EPS_TIME

    # -- scalar (small-population) engine ------------------------------------
    #
    # Per-runtime twins of the array internals: the original scalar
    # implementation, kept verbatim as the fast path for populations under
    # _VECTORIZED_MIN_FLOWS, where numpy's per-op cost exceeds the
    # interpreter's per-flow cost.  Every per-flow loop here is the
    # documented scalar-reference exception to PRF002.

    def _transitions(
        self,
        runtimes: list[_FlowRuntime],
        now: float,
        result: NetworkFluidResult,
        max_iterations: int,
    ) -> None:
        for rt in runtimes:  # repro-lint: disable=PRF002
            if rt.phase == "waiting" and now >= rt.phase_deadline - _EPS_TIME:
                self._start_comm_scalar(rt, now)
            elif rt.phase == "comm" and rt.remaining_bits <= _EPS_BITS:
                rt.comm_end = now
                rt.phase = "compute"
                rt.phase_deadline = now + rt.spec.sample_compute_time(self._rng)
            elif rt.phase == "compute" and now >= rt.phase_deadline - _EPS_TIME:
                result.iterations.append(
                    IterationResult(
                        job=rt.spec.name,
                        index=rt.iteration_index,
                        comm_start=rt.comm_start,
                        comm_end=rt.comm_end,
                        iteration_end=now,
                    )
                )
                rt.iteration_index += 1
                if rt.iteration_index >= max_iterations:
                    rt.phase = "done"
                else:
                    self._start_comm_scalar(rt, now)

    def _start_comm_scalar(self, rt: _FlowRuntime, now: float) -> None:
        rt.phase = "comm"
        rt.remaining_bits = float(rt.spec.comm_bits)
        rt.sent_bits = 0.0
        rt.comm_start = now
        rt.comm_end = math.nan

    def _next_dt(
        self, runtimes: list[_FlowRuntime], rates: dict[str, float], now: float
    ) -> float:
        candidates = [self.quantum]
        for rt in runtimes:  # repro-lint: disable=PRF002
            if rt.phase == "comm":
                rate = rates.get(rt.spec.name, 0.0)
                if rate > 0:
                    candidates.append(rt.remaining_bits / rate)
            elif rt.phase in ("compute", "waiting"):
                candidates.append(rt.phase_deadline - now)
        positive = [c for c in candidates if c > _EPS_TIME]
        return min(positive) if positive else _EPS_TIME


def run_network_fluid(
    placements: Sequence[PlacedJob],
    capacities_gbps: dict[str, float],
    mltcp: bool = True,
    mltcp_function: Optional[AggressivenessFunction] = None,
    max_iterations: int = 40,
    seed: Optional[int] = 0,
    quantum: float = 0.02,
    fabric_faults: Optional["FluidFabricFaults"] = None,
    guards: Optional["GuardRail"] = None,
) -> NetworkFluidResult:
    """One-call convenience wrapper around :class:`NetworkFluidSimulator`."""
    simulator = NetworkFluidSimulator(
        placements,
        capacities_gbps,
        mltcp_function=mltcp_function,
        fair_share=not mltcp,
        seed=seed,
        quantum=quantum,
        fabric_faults=fabric_faults,
        guards=guards,
    )
    return simulator.run(max_iterations=max_iterations)

"""Multi-bottleneck fluid simulator: jobs on paths over a capacitated graph.

The single-bottleneck :class:`~repro.fluid.flowsim.FluidSimulator` models the
paper's dumbbell; real clusters have many potentially-congested links
(leaf uplinks, spine ports).  Here each job's flow crosses a *set of links*
and rates are assigned by weighted max-min fairness across the whole
network (progressive filling): repeatedly find the most-constrained link,
fix the rates of the flows crossing it in proportion to their weights, and
continue with residual capacities.  Demand caps are virtual per-flow links,
so the same machinery handles them.

With unit weights this is classic max-min TCP sharing; with
``F(bytes_ratio)`` weights it is network-wide MLTCP — each congested link
independently develops the sliding effect, which is the paper's
distributed-scalability argument ("easily deployable and scalable").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..core.aggressiveness import (
    AggressivenessFunction,
    LinearAggressiveness,
    default_aggressiveness,
)
from ..core.units import bps_from_gbps
from ..workloads.job import JobSpec
from .flowsim import IterationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..guards.core import GuardRail
    from .fabric import FluidFabricFaults

__all__ = ["PlacedJob", "NetworkFluidResult", "NetworkFluidSimulator", "run_network_fluid"]

_EPS_BITS = 1e-6
_EPS_TIME = 1e-12
_EPS_CAP = 1e-9


@dataclass(frozen=True)
class PlacedJob:
    """A periodic job plus the set of links its flow traverses.

    ``src``/``dst`` optionally carry the fabric placement the link set was
    derived from (host names on a
    :class:`~repro.workloads.placement.FabricSpec`); they are pure
    metadata — rate allocation depends only on ``links`` — so existing
    callers that build link sets by hand are unaffected.
    """

    job: JobSpec
    links: tuple[str, ...]
    src: Optional[str] = None
    dst: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError(f"{self.job.name}: need at least one link")
        if len(set(self.links)) != len(self.links):
            raise ValueError(f"{self.job.name}: duplicate links in path")
        if self.src is not None and self.src == self.dst:
            raise ValueError(f"{self.job.name}: src and dst must differ")


@dataclass
class NetworkFluidResult:
    """Iterations per job from one multi-bottleneck run."""

    placements: tuple[PlacedJob, ...]
    capacities_gbps: dict[str, float]
    policy_name: str
    iterations: list[IterationResult] = field(default_factory=list)
    end_time: float = 0.0
    #: Applied fault transitions when the run had fabric faults attached
    #: (human-readable lines, mirroring ``FluidResult.fault_log``).
    fault_log: list[str] = field(default_factory=list)
    #: Measured bits per link, recorded only by faulted runs (reroutes move
    #: traffic off a flow's nominal path, so the static accounting below
    #: would charge bits to severed links).  Empty for fault-free runs.
    delivered_bits_by_link: dict[str, float] = field(default_factory=dict)

    def iterations_of(self, job: str) -> list[IterationResult]:
        """Completed iterations of one job, in order."""
        return [it for it in self.iterations if it.job == job]

    def iteration_times(self, job: str) -> np.ndarray:
        """Durations (s) of the job's completed iterations."""
        return np.array([it.duration for it in self.iterations_of(job)])

    def mean_iteration_by_round(self, jobs: Optional[Sequence[str]] = None) -> np.ndarray:
        """Average duration of the i-th iteration across the given jobs."""
        names = (
            list(jobs)
            if jobs is not None
            else [p.job.name for p in self.placements]
        )
        per_job = [self.iteration_times(name) for name in names]
        rounds = min(len(t) for t in per_job)
        if rounds == 0:
            return np.array([])
        return np.array(
            [float(np.mean([t[i] for t in per_job])) for i in range(rounds)]
        )

    def link_utilization(self) -> dict[str, float]:
        """Mean utilization of every link over the run.

        Fluid flows deliver exactly their nominal per-iteration volume, so
        the bits a link carried are ``comm_bits x completed iterations``
        summed over the flows crossing it, divided by ``capacity x
        end_time``.  Keys are sorted link names, mirroring the packet
        side's :meth:`repro.simulator.topology.Network.link_utilization`.
        (With ``volume_jitter_fraction > 0`` this uses nominal volumes —
        a mean-level approximation.)  Faulted runs record the bits each
        link actually carried (reroutes shift traffic off nominal paths),
        so those use the measured accounting instead.
        """
        bits_by_link = {link: 0.0 for link in sorted(self.capacities_gbps)}
        if self.delivered_bits_by_link:
            for link, bits in self.delivered_bits_by_link.items():
                bits_by_link[link] = bits
        else:
            for placement in self.placements:
                bits = placement.job.comm_bits * len(
                    self.iterations_of(placement.job.name)
                )
                for link in placement.links:
                    bits_by_link[link] += bits
        if self.end_time <= 0:
            return {link: 0.0 for link in bits_by_link}
        return {
            link: bits / (bps_from_gbps(self.capacities_gbps[link]) * self.end_time)
            for link, bits in bits_by_link.items()
        }


@dataclass
class _FlowRuntime:
    placement: PlacedJob
    phase: str = "waiting"  # waiting | comm | compute | done
    remaining_bits: float = 0.0
    sent_bits: float = 0.0
    iteration_index: int = 0
    comm_start: float = math.nan
    comm_end: float = math.nan
    phase_deadline: float = 0.0

    @property
    def spec(self) -> JobSpec:
        """The underlying job specification."""
        return self.placement.job

    @property
    def bytes_ratio(self) -> float:
        """Algorithm 1's bytes_ratio for the current communication phase."""
        return min(1.0, self.sent_bits / self.spec.comm_bits)


def weighted_max_min(
    flows: dict[str, tuple[float, float, tuple[str, ...]]],
    capacities_bps: dict[str, float],
) -> dict[str, float]:
    """Network-wide weighted max-min rates.

    ``flows`` maps flow id to ``(weight, demand_bps, links)``.  Demand caps
    become virtual per-flow links.  Progressive filling: the link with the
    smallest capacity-per-unit-weight saturates first and fixes its flows.
    """
    residual = dict(capacities_bps)
    members: dict[str, set[str]] = {link: set() for link in residual}
    # Zero-weight flows keep a vanishing (but non-zero) share, so no flow
    # fully starves — the §5 non-starvation property.
    effective_weight: dict[str, float] = {}
    for fid, (weight, demand, links) in flows.items():
        if weight < 0:
            raise ValueError(f"{fid}: weight must be non-negative, got {weight!r}")
        if demand <= 0:
            raise ValueError(f"{fid}: demand must be positive, got {demand!r}")
        effective_weight[fid] = max(weight, 1e-9)
        virtual = f"__demand__{fid}"
        residual[virtual] = demand
        members[virtual] = {fid}
        for link in links:
            if link not in residual:
                raise KeyError(f"{fid}: unknown link {link!r}")
            members[link].add(fid)

    # Per-link member lists sorted once up front instead of re-sorted every
    # progressive-filling round; the per-round filter below preserves that
    # order, so the float sums accumulate in exactly the order the old
    # per-round ``sorted()`` produced (PYTHONHASHSEED-independent, DET004).
    ordered_members = {link: sorted(ids) for link, ids in members.items()}

    rates: dict[str, float] = {}
    unfixed = set(flows)

    while unfixed:
        best_link: Optional[str] = None
        best_share = math.inf
        for link, ordered in ordered_members.items():
            total_weight = 0.0
            any_active = False
            for fid in ordered:
                if fid in unfixed:
                    total_weight += effective_weight[fid]
                    any_active = True
            if not any_active:
                continue
            share = residual[link] / total_weight
            if share < best_share:
                best_share = share
                best_link = link
        if best_link is None:
            break
        for fid in ordered_members[best_link]:
            if fid not in unfixed:
                continue
            rate = max(0.0, best_share * effective_weight[fid])
            rates[fid] = rate
            for link in flows[fid][2]:
                residual[link] = max(0.0, residual[link] - rate)
            residual[f"__demand__{fid}"] = 0.0
            unfixed.discard(fid)
    for fid in flows:
        rates.setdefault(fid, 0.0)
    return rates


class NetworkFluidSimulator:
    """Event-driven fluid simulation over a capacitated link set."""

    def __init__(
        self,
        placements: Sequence[PlacedJob],
        capacities_gbps: dict[str, float],
        mltcp_function: Optional[AggressivenessFunction] = None,
        fair_share: bool = False,
        seed: Optional[int] = 0,
        quantum: float = 0.02,
        fabric_faults: Optional["FluidFabricFaults"] = None,
        guards: Optional["GuardRail"] = None,
    ) -> None:
        if not placements:
            raise ValueError("need at least one placed job")
        names = [p.job.name for p in placements]
        if len(set(names)) != len(names):
            raise ValueError(f"job names must be unique, got {names}")
        for placement in placements:
            for link in placement.links:
                if link not in capacities_gbps:
                    raise ValueError(
                        f"{placement.job.name}: no capacity for link {link!r}"
                    )
        if any(c <= 0 for c in capacities_gbps.values()):
            raise ValueError("link capacities must be positive")
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        self.placements = tuple(placements)
        self.capacities_gbps = dict(capacities_gbps)
        self.fair_share = fair_share
        self.function = (
            mltcp_function if mltcp_function is not None else default_aggressiveness()
        )
        self.quantum = quantum
        self._rng = np.random.default_rng(seed) if seed is not None else None
        #: Optional fabric-fault replay (:class:`~repro.fluid.fabric.
        #: FluidFabricFaults`).  ``None`` keeps the fault-free path
        #: bit-identical to the pre-fault code.
        self.fabric_faults = fabric_faults
        #: Optional guardrail: when set with faults, route-liveness and
        #: down-link allocation checks run every step.
        self.guards = guards

    def run(self, max_iterations: int) -> NetworkFluidResult:
        """Simulate until every job completed ``max_iterations`` cycles."""
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be positive, got {max_iterations!r}")
        runtimes = [_FlowRuntime(placement=p) for p in self.placements]
        for rt in runtimes:
            rt.phase_deadline = rt.spec.start_offset
        result = NetworkFluidResult(
            placements=self.placements,
            capacities_gbps=self.capacities_gbps,
            policy_name="tcp-fair" if self.fair_share else "mltcp",
        )
        capacities_bps = {
            k: bps_from_gbps(v) for k, v in self.capacities_gbps.items()
        }
        now = 0.0
        longest = max(p.job.ideal_iteration_time for p in self.placements)
        max_steps = int(
            100 * len(self.placements) * max(1.0, 5 * longest * max_iterations / self.quantum)
        )

        # Same inline fast path as MLTCPWeighted.allocate: the paper's linear
        # F evaluated as ``slope * ratio + intercept`` directly is the exact
        # arithmetic of the AggressivenessFunction call chain (bit-identical),
        # minus three Python calls per flow per round.
        linear: Optional[tuple[float, float]] = None
        if not self.fair_share and type(self.function) is LinearAggressiveness:
            linear = (self.function.slope, self.function.intercept)

        def flow_weight(rt: _FlowRuntime) -> float:
            if self.fair_share:
                return 1.0
            if linear is not None:
                slope, intercept = linear
                ratio = rt.sent_bits / rt.spec.comm_bits
                if ratio > 1.0:
                    ratio = 1.0
                return slope * ratio + intercept
            return self.function(rt.bytes_ratio)

        # Fabric-fault state: all of it is gated on ``fabric_faults`` being
        # attached, so a fault-free run takes exactly the pre-fault path.
        faults = self.fabric_faults
        guards = self.guards
        effective_capacities = capacities_bps
        flow_links: dict[str, Optional[tuple[str, ...]]] = {}
        bits_by_link: dict[str, float] = {}
        routing_generation = -1
        last_factors: dict[str, float] = {}

        for _step in range(max_steps):
            if faults is not None:
                faults.advance_to(now)
                if faults.routing.generation != routing_generation:
                    routing_generation = faults.routing.generation
                    # Reroute every flow over the surviving spines; an
                    # in-flight flow keeps sent/remaining bits, so a reroute
                    # moves the tail of the transfer, not the whole volume.
                    flow_links = {
                        p.job.name: faults.links_for(p) for p in self.placements
                    }
                factors = faults.capacity_factors(now)
                if factors != last_factors:
                    last_factors = factors
                    effective_capacities = (
                        {
                            link: cap * factors.get(link, 1.0)
                            for link, cap in capacities_bps.items()
                        }
                        if factors
                        else capacities_bps
                    )
            self._transitions(runtimes, now, result, max_iterations)
            if all(rt.iteration_index >= max_iterations for rt in runtimes):
                break
            active = [rt for rt in runtimes if rt.phase == "comm"]
            if faults is None:
                flow_specs = {
                    rt.spec.name: (
                        flow_weight(rt),
                        rt.spec.demand_bps,
                        rt.placement.links,
                    )
                    for rt in active
                }
            else:
                flow_specs = {}
                for rt in active:
                    links = flow_links[rt.spec.name]
                    if links is None:
                        # No surviving path (partitioned): the flow stalls
                        # until a reversion restores connectivity — the
                        # fluid rendering of a blackhole.
                        continue
                    flow_specs[rt.spec.name] = (
                        flow_weight(rt),
                        rt.spec.demand_bps,
                        links,
                    )
            rates = (
                weighted_max_min(flow_specs, effective_capacities)
                if flow_specs
                else {}
            )
            if faults is not None and guards is not None:
                self._check_fabric_guards(
                    guards, flow_specs, rates, effective_capacities,
                    last_factors, now,
                )
            dt = self._next_dt(runtimes, rates, now)
            if faults is not None:
                upcoming = faults.next_transition_after(now)
                if upcoming is not None and upcoming - now > _EPS_TIME:
                    dt = min(dt, upcoming - now)
            for rt in active:
                delivered = rates.get(rt.spec.name, 0.0) * dt
                if faults is not None and delivered > 0.0:
                    links = flow_links[rt.spec.name]
                    assert links is not None
                    for link in links:
                        bits_by_link[link] = (
                            bits_by_link.get(link, 0.0) + delivered
                        )
                rt.remaining_bits = max(0.0, rt.remaining_bits - delivered)
                rt.sent_bits = min(rt.spec.comm_bits, rt.sent_bits + delivered)
            now += dt
        else:
            raise RuntimeError("network fluid simulation exceeded its step budget")
        result.end_time = now
        if faults is not None:
            result.fault_log = faults.descriptions()
            result.delivered_bits_by_link = bits_by_link
        return result

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _check_fabric_guards(
        guards: "GuardRail",
        flow_specs: dict[str, tuple[float, float, tuple[str, ...]]],
        rates: dict[str, float],
        capacities_bps: dict[str, float],
        factors: dict[str, float],
        now: float,
    ) -> None:
        """Fluid renditions of the fabric-fault guards.

        ``route-liveness``: no allocated flow's *current* path may cross a
        severed (factor-0) link — tripping means the reroute cache went
        stale.  ``reroute-conservation``: on every fault-affected link the
        allocated rates must still fit the degraded capacity.  Both only
        scan the (small) set of affected links, so armed-guard overhead
        scales with fault blast radius, not fabric size.
        """
        if not factors:
            return
        for fid in sorted(flow_specs):
            _weight, _demand, links = flow_specs[fid]
            # Identity check: severed links get a literal 0.0 factor.
            if any(
                factors.get(link, 1.0) == 0.0 for link in links  # repro-lint: disable=FLT001
            ):
                guards.violation(
                    "route-liveness",
                    fid,
                    now,
                    "flow is allocated across a severed link; the "
                    "surviving-spine reroute missed it",
                )
        for link in sorted(factors):
            capacity = capacities_bps.get(link)
            if capacity is None:
                continue
            total = 0.0
            for fid in sorted(flow_specs):
                if link in flow_specs[fid][2]:
                    total += rates.get(fid, 0.0)
            if total > capacity + 1e-6 * max(capacity, 1.0):
                guards.violation(
                    "reroute-conservation",
                    link,
                    now,
                    f"allocated {total:.6g} bps exceeds the degraded "
                    f"capacity {capacity:.6g} bps",
                )

    def _transitions(
        self,
        runtimes: list[_FlowRuntime],
        now: float,
        result: NetworkFluidResult,
        max_iterations: int,
    ) -> None:
        for rt in runtimes:
            if rt.phase == "waiting" and now >= rt.phase_deadline - _EPS_TIME:
                self._start_comm(rt, now)
            elif rt.phase == "comm" and rt.remaining_bits <= _EPS_BITS:
                rt.comm_end = now
                rt.phase = "compute"
                rt.phase_deadline = now + rt.spec.sample_compute_time(self._rng)
            elif rt.phase == "compute" and now >= rt.phase_deadline - _EPS_TIME:
                result.iterations.append(
                    IterationResult(
                        job=rt.spec.name,
                        index=rt.iteration_index,
                        comm_start=rt.comm_start,
                        comm_end=rt.comm_end,
                        iteration_end=now,
                    )
                )
                rt.iteration_index += 1
                if rt.iteration_index >= max_iterations:
                    rt.phase = "done"
                else:
                    self._start_comm(rt, now)

    def _start_comm(self, rt: _FlowRuntime, now: float) -> None:
        rt.phase = "comm"
        rt.remaining_bits = float(rt.spec.comm_bits)
        rt.sent_bits = 0.0
        rt.comm_start = now
        rt.comm_end = math.nan

    def _next_dt(
        self, runtimes: list[_FlowRuntime], rates: dict[str, float], now: float
    ) -> float:
        candidates = [self.quantum]
        for rt in runtimes:
            if rt.phase == "comm":
                rate = rates.get(rt.spec.name, 0.0)
                if rate > 0:
                    candidates.append(rt.remaining_bits / rate)
            elif rt.phase in ("compute", "waiting"):
                candidates.append(rt.phase_deadline - now)
        positive = [c for c in candidates if c > _EPS_TIME]
        return min(positive) if positive else _EPS_TIME


def run_network_fluid(
    placements: Sequence[PlacedJob],
    capacities_gbps: dict[str, float],
    mltcp: bool = True,
    mltcp_function: Optional[AggressivenessFunction] = None,
    max_iterations: int = 40,
    seed: Optional[int] = 0,
    quantum: float = 0.02,
    fabric_faults: Optional["FluidFabricFaults"] = None,
    guards: Optional["GuardRail"] = None,
) -> NetworkFluidResult:
    """One-call convenience wrapper around :class:`NetworkFluidSimulator`."""
    simulator = NetworkFluidSimulator(
        placements,
        capacities_gbps,
        mltcp_function=mltcp_function,
        fair_share=not mltcp,
        seed=seed,
        quantum=quantum,
        fabric_faults=fabric_faults,
        guards=guards,
    )
    return simulator.run(max_iterations=max_iterations)

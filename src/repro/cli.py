"""Command-line interface: regenerate any paper figure from the terminal.

Usage::

    python -m repro list
    python -m repro run fig2
    python -m repro run fig4 --fast
    python -m repro run all --fast

Each figure runner prints the same rows/series its benchmark emits.  The
``--fast`` flag shrinks iteration counts for a quick smoke run (shapes
still hold, numbers are noisier).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

import numpy as np

from .harness.experiments import (
    fairness_competition_share,
    fairness_loss_response,
    fig1_traffic_patterns,
    fig2_schedules,
    fig3_aggressiveness,
    fig4_six_jobs,
    fig5_loss_function,
    fig6_packet_two_jobs,
    noise_error_bound,
)
from .harness.report import render_table, sparkline

__all__ = ["main", "FIGURES"]


def _fig1(fast: bool) -> str:
    traces = fig1_traffic_patterns(duration=3.0 if fast else 5.0)
    lines = ["Figure 1 — per-job offered load (Gbps)"]
    for name, (_times, demand) in traces.items():
        lines.append(f"  {name}: {sparkline(demand, width=70)}")
    return "\n".join(lines)


def _fig2(fast: bool) -> str:
    result = fig2_schedules(iterations=30 if fast else 60)
    names = ["J1", "J2", "J3", "J4"]
    return render_table(
        ["schedule"] + names,
        [
            ["optimal"] + [result.optimal_times[n] for n in names],
            ["srpt (early)"] + [result.srpt_times[n] for n in names],
            ["mltcp (converged)"] + [result.mltcp_times[n] for n in names],
        ],
        title=(
            "Figure 2 — iteration times (s); MLTCP gap vs optimal "
            f"{100 * result.mltcp_gap_vs_optimal:.2f}%, converged at "
            f"iteration {result.mltcp_converged_at}"
        ),
    )


def _fig3(fast: bool) -> str:
    series = fig3_aggressiveness(iterations=25 if fast else 40)
    lines = ["Figure 3 — mean iteration time per round (s)"]
    for key, values in series.items():
        lines.append(
            f"  {key}: {sparkline(values, width=60)}  final "
            f"{values[-5:].mean():.3f}"
        )
    return "\n".join(lines)


def _fig4(fast: bool) -> str:
    result = fig4_six_jobs(iterations=120 if fast else 400)
    return render_table(
        ["percentile", "Reno (s)", "MLTCP (s)"],
        [
            [f"p{q}", float(np.percentile(result.reno_times, q)),
             float(np.percentile(result.mltcp_times, q))]
            for q in (50, 90, 99)
        ],
        title=(
            "Figure 4 — six-job iteration-time CDF; tail speedup "
            f"{result.tail_speedup_p99:.2f}x (paper: 1.59x)"
        ),
    )


def _fig5(fast: bool) -> str:
    curves = fig5_loss_function(samples=121 if fast else 361)
    idx = int(np.argmin(curves["loss"]))
    lines = [
        "Figure 5(c) — interleaving loss over one period",
        f"  Loss:  {sparkline(curves['loss'], width=70)}",
        f"  Shift: {sparkline(curves['shift'], width=70)}",
        f"  minimum at delta = {curves['delta'][idx]:.3f} s (T/2 = "
        f"{curves['delta'][-1] / 2:.3f} s)",
    ]
    return "\n".join(lines)


def _fig6(fast: bool) -> str:
    result = fig6_packet_two_jobs(iterations=25 if fast else 40)
    lines = ["Figure 6 — packet-level two-job sliding (iteration times, ms)"]
    for name, times in result.iteration_times.items():
        lines.append(f"  {name}: {sparkline(times * 1000, width=60)}")
    lines.append(
        f"  ideal {1000 * result.ideal_iteration_time:.1f} ms, converged at "
        f"iteration {result.converged_at}, final "
        f"{1000 * result.final_mean:.1f} ms"
    )
    return "\n".join(lines)


def _noise(fast: bool) -> str:
    rows = noise_error_bound(
        sigmas=(0.002, 0.01) if fast else (0.001, 0.002, 0.005, 0.01, 0.02),
        iterations=1500 if fast else 4000,
    )
    return render_table(
        ["sigma", "measured std", "2*sigma*(1+I/S) bound"],
        [[r["sigma"], r["measured_std"], r["theory_bound"]] for r in rows],
        title="§4 — approximation error under noise",
    )


def _fairness(fast: bool) -> str:
    share = fairness_competition_share(
        loss_probs=(0.0,),
        horizon=0.5 if fast else 2.0,
        seeds=(1,) if fast else (1, 2, 3),
    )
    mathis = fairness_loss_response(
        loss_probs=(0.001, 0.004) if fast else (0.0005, 0.001, 0.002, 0.004),
        transfer_bytes=8_000_000 if fast else 20_000_000,
    )
    return "\n\n".join(
        [
            render_table(
                ["loss", "MLTCP Mbps", "Reno Mbps", "share"],
                [
                    [r["loss_prob"], r["mltcp_mbps"], r["reno_mbps"], r["share_ratio"]]
                    for r in share
                ],
                title="§5 — competition share (saturated MLTCP vs Reno)",
            ),
            render_table(
                ["loss", "Reno Mbps", "Mathis model"],
                [
                    [r["loss_prob"], r["reno_mbps"], r["mathis_prediction_mbps"]]
                    for r in mathis
                ],
                title="§5 — Reno vs the 1/sqrt(p) law",
            ),
        ]
    )


FIGURES: dict[str, tuple[str, Callable[[bool], str]]] = {
    "fig1": ("traffic patterns of the four jobs", _fig1),
    "fig2": ("centralized vs SRPT vs MLTCP", _fig2),
    "fig3": ("aggressiveness functions F1-F6", _fig3),
    "fig4": ("six jobs: Reno vs MLTCP CDF", _fig4),
    "fig5": ("the interleaving loss function", _fig5),
    "fig6": ("packet-level two-job sliding", _fig6),
    "noise": ("§4 approximation-error bound", _noise),
    "fairness": ("§5 fairness vs legacy TCP", _fairness),
}


def _compat_command(scenario_path: str, capacity_gbps: float) -> int:
    """Check a saved scenario (JSON) against the §4 compatibility precondition."""
    from .schedulers.compatibility import best_compatibility
    from .workloads.traceio import load_scenario

    jobs = [j.with_jitter(0.0) for j in load_scenario(scenario_path)]
    score, schedule = best_compatibility(jobs, capacity_gbps)
    print(
        render_table(
            ["job", "ideal iteration (s)", "optimized offset (s)"],
            [
                [j.name, j.ideal_iteration_time, schedule.offset_of(j.name)]
                for j in jobs
            ],
            title=f"{scenario_path} on a {capacity_gbps:g} Gbps bottleneck",
        )
    )
    if score >= 1.0 - 1e-9:
        verdict = (
            "interleaved schedule exists - the paper's convergence "
            "guarantee applies"
        )
    else:
        verdict = (
            "no zero-contention interleave: MLTCP converges to the "
            "least-contended configuration instead"
        )
    print(f"\nbest compatibility score: {score:.4f} ({verdict})")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from the MLTCP paper (HotNets '24).",
    )
    subparsers = parser.add_subparsers(dest="command")
    subparsers.add_parser("list", help="list available figures")
    run = subparsers.add_parser("run", help="run one figure (or 'all')")
    run.add_argument("figure", choices=[*FIGURES, "all"])
    run.add_argument(
        "--fast", action="store_true", help="smaller iteration counts"
    )
    compat = subparsers.add_parser(
        "compat",
        help="check a saved scenario (JSON) for the §4 compatibility "
        "precondition",
    )
    compat.add_argument("scenario", help="path to a scenario saved with "
                        "repro.workloads.save_scenario")
    compat.add_argument("--capacity", type=float, default=50.0,
                        help="bottleneck capacity in Gbps (default 50)")
    args = parser.parse_args(argv)

    if args.command == "list" or args.command is None:
        for name, (description, _fn) in FIGURES.items():
            print(f"  {name:9} {description}")
        return 0

    if args.command == "compat":
        return _compat_command(args.scenario, args.capacity)

    targets = list(FIGURES) if args.figure == "all" else [args.figure]
    for name in targets:
        _description, fn = FIGURES[name]
        print(fn(args.fast))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

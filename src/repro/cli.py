"""Command-line interface: regenerate any paper figure from the terminal.

Usage::

    python -m repro list
    python -m repro run fig2
    python -m repro run fig4 --fast
    python -m repro run all --fast --workers 4
    python -m repro run fig6 --no-cache --report fig6.run.json
    python -m repro validate-report bench_reports/ablation_noise.run.json
    python -m repro bench-compare bench_reports/perf_baseline.json
    python -m repro bench-compare current.json --baseline bench_reports/perf_baseline.json
    python -m repro lint src
    python -m repro lint --list-rules
    python -m repro faults --fast --workers 4
    python -m repro faults --resume --report faults.run.json
    python -m repro faults --schedule my_faults.json --substrate packet
    python -m repro guards my_run.run.json
    python -m repro guards --run --policy raise --substrate both
    python -m repro cross-rack --racks 4 --oversub 2 --substrate both
    python -m repro serve --epochs 20 --rate 0.8 --journal svc.journal
    python -m repro serve --resume --journal svc.journal --report svc.run.json
    python -m repro serve --query svc.journal
    python -m repro docs-check docs

Each figure runner prints the same rows/series its benchmark emits.  The
``--fast`` flag shrinks iteration counts for a quick smoke run (shapes
still hold, numbers are noisier).

Figures execute through the experiment runner
(:mod:`repro.harness.runner`): ``--workers N`` renders independent figures
on a process pool, results are cached under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro``) so an unchanged figure re-prints instantly, and
``--no-cache`` forces recomputation.  ``--report PATH`` writes the JSON
run-report; ``validate-report`` checks such a report against the schema in
``docs/run_report.schema.json`` (see docs/HARNESS.md).

``faults`` sweeps the fault-recovery matrix (every fault class x policy x
substrate, see docs/FAULTS.md) with the runner's resilience features on:
per-point timeouts, retries, crash isolation, and a checkpoint file so
``--resume`` re-runs only the points that failed or never ran.

``bench-compare`` checks a pytest-benchmark report against a committed
performance baseline (docs/PERFORMANCE.md) and fails on regressions beyond
a threshold — the perf-gate behind ``make bench-perf``.

``guards`` is the runtime-guardrail front end (docs/ROBUSTNESS.md): given a
run-report it summarizes the v3 ``guards`` section and fails (exit 1) when
invariant violations were recorded; with ``--run`` it executes a guarded
fault-recovery experiment itself, attaching a
:class:`repro.guards.GuardRail` to both substrates — the smoke target
behind ``make guards-smoke``.

``cross-rack`` compares MLTCP against vanilla congestion control on a
parameterized multi-rack fat tree (racks, spines, oversubscription,
placement policy; docs/TOPOLOGIES.md) in either or both substrates, and
writes per-link utilization into the run-report's ``link_utilization``
section.

``serve`` runs the long-lived scheduling service (docs/SERVICE.md): an
open-loop arrival model admits jobs into the live array-backed fluid
engine under admission control and a watchdog-supervised stepper; with
``--journal`` every completed epoch is committed to a write-ahead journal
so a killed daemon resumes (``--resume``) to bit-identical state, and
``--query`` summarizes a journal without running.

``docs-check`` executes the python code fences of the markdown docs
(the gate behind ``make docs-check``) so documented examples can't rot.

``lint`` runs the repo's AST-based determinism/unit-safety analyzer
(docs/LINTING.md).  All subcommands share one error contract
(:mod:`repro.cliutil`): exit 0 on success, 1 when the checked input has
violations (lint findings, schema violations), 2 when the command could
not run (unreadable file, bad arguments); diagnostics go to stderr.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from .harness.experiments import (
    fairness_competition_share,
    fairness_loss_response,
    fig1_traffic_patterns,
    fig2_schedules,
    fig3_aggressiveness,
    fig4_six_jobs,
    fig5_loss_function,
    fig6_packet_two_jobs,
    noise_error_bound,
)
from .cliutil import EXIT_OK, fail, report_violations
from .harness.cache import ResultCache
from .harness.report import render_table, sparkline
from .harness.runner import ExperimentRunner
from .harness.telemetry import RUN_REPORT_SCHEMA, RunTelemetry, validate_run_report

__all__ = ["main", "FIGURES"]


def _fig1(fast: bool) -> str:
    traces = fig1_traffic_patterns(duration=3.0 if fast else 5.0)
    lines = ["Figure 1 — per-job offered load (Gbps)"]
    for name, (_times, demand) in traces.items():
        lines.append(f"  {name}: {sparkline(demand, width=70)}")
    return "\n".join(lines)


def _fig2(fast: bool) -> str:
    result = fig2_schedules(iterations=30 if fast else 60)
    names = ["J1", "J2", "J3", "J4"]
    return render_table(
        ["schedule"] + names,
        [
            ["optimal"] + [result.optimal_times[n] for n in names],
            ["srpt (early)"] + [result.srpt_times[n] for n in names],
            ["mltcp (converged)"] + [result.mltcp_times[n] for n in names],
        ],
        title=(
            "Figure 2 — iteration times (s); MLTCP gap vs optimal "
            f"{100 * result.mltcp_gap_vs_optimal:.2f}%, converged at "
            f"iteration {result.mltcp_converged_at}"
        ),
    )


def _fig3(fast: bool) -> str:
    series = fig3_aggressiveness(iterations=25 if fast else 40)
    lines = ["Figure 3 — mean iteration time per round (s)"]
    for key, values in series.items():
        lines.append(
            f"  {key}: {sparkline(values, width=60)}  final "
            f"{values[-5:].mean():.3f}"
        )
    return "\n".join(lines)


def _fig4(fast: bool) -> str:
    result = fig4_six_jobs(iterations=120 if fast else 400)
    return render_table(
        ["percentile", "Reno (s)", "MLTCP (s)"],
        [
            [f"p{q}", float(np.percentile(result.reno_times, q)),
             float(np.percentile(result.mltcp_times, q))]
            for q in (50, 90, 99)
        ],
        title=(
            "Figure 4 — six-job iteration-time CDF; tail speedup "
            f"{result.tail_speedup_p99:.2f}x (paper: 1.59x)"
        ),
    )


def _fig5(fast: bool) -> str:
    curves = fig5_loss_function(samples=121 if fast else 361)
    idx = int(np.argmin(curves["loss"]))
    lines = [
        "Figure 5(c) — interleaving loss over one period",
        f"  Loss:  {sparkline(curves['loss'], width=70)}",
        f"  Shift: {sparkline(curves['shift'], width=70)}",
        f"  minimum at delta = {curves['delta'][idx]:.3f} s (T/2 = "
        f"{curves['delta'][-1] / 2:.3f} s)",
    ]
    return "\n".join(lines)


def _fig6(fast: bool) -> str:
    result = fig6_packet_two_jobs(iterations=25 if fast else 40)
    lines = ["Figure 6 — packet-level two-job sliding (iteration times, ms)"]
    for name, times in result.iteration_times.items():
        lines.append(f"  {name}: {sparkline(times * 1000, width=60)}")
    lines.append(
        f"  ideal {1000 * result.ideal_iteration_time:.1f} ms, converged at "
        f"iteration {result.converged_at}, final "
        f"{1000 * result.final_mean:.1f} ms"
    )
    return "\n".join(lines)


def _noise(fast: bool) -> str:
    rows = noise_error_bound(
        sigmas=(0.002, 0.01) if fast else (0.001, 0.002, 0.005, 0.01, 0.02),
        iterations=1500 if fast else 4000,
    )
    return render_table(
        ["sigma", "measured std", "2*sigma*(1+I/S) bound"],
        [[r["sigma"], r["measured_std"], r["theory_bound"]] for r in rows],
        title="§4 — approximation error under noise",
    )


def _fairness(fast: bool) -> str:
    share = fairness_competition_share(
        loss_probs=(0.0,),
        horizon=0.5 if fast else 2.0,
        seeds=(1,) if fast else (1, 2, 3),
    )
    mathis = fairness_loss_response(
        loss_probs=(0.001, 0.004) if fast else (0.0005, 0.001, 0.002, 0.004),
        transfer_bytes=8_000_000 if fast else 20_000_000,
    )
    return "\n\n".join(
        [
            render_table(
                ["loss", "MLTCP Mbps", "Reno Mbps", "share"],
                [
                    [r["loss_prob"], r["mltcp_mbps"], r["reno_mbps"], r["share_ratio"]]
                    for r in share
                ],
                title="§5 — competition share (saturated MLTCP vs Reno)",
            ),
            render_table(
                ["loss", "Reno Mbps", "Mathis model"],
                [
                    [r["loss_prob"], r["reno_mbps"], r["mathis_prediction_mbps"]]
                    for r in mathis
                ],
                title="§5 — Reno vs the 1/sqrt(p) law",
            ),
        ]
    )


FIGURES: dict[str, tuple[str, Callable[[bool], str]]] = {
    "fig1": ("traffic patterns of the four jobs", _fig1),
    "fig2": ("centralized vs SRPT vs MLTCP", _fig2),
    "fig3": ("aggressiveness functions F1-F6", _fig3),
    "fig4": ("six jobs: Reno vs MLTCP CDF", _fig4),
    "fig5": ("the interleaving loss function", _fig5),
    "fig6": ("packet-level two-job sliding", _fig6),
    "noise": ("§4 approximation-error bound", _noise),
    "fairness": ("§5 fairness vs legacy TCP", _fairness),
}


def _render_figure(figure: str, fast: bool) -> str:
    """Render one figure to its report text (a runner point; top-level so
    ``--workers`` can execute figures on pool workers)."""
    _description, fn = FIGURES[figure]
    return fn(fast)


def _run_command(args) -> int:
    """Execute ``repro run`` through the cached/parallel experiment runner."""
    targets = list(FIGURES) if args.figure == "all" else [args.figure]
    runner = ExperimentRunner(
        name="cli.run",
        workers=args.workers,
        cache=None if args.no_cache else ResultCache(),
        telemetry=RunTelemetry("cli.run"),
    )
    outputs = runner.run_points(
        _render_figure, [{"figure": name, "fast": args.fast} for name in targets]
    )
    for text in outputs:
        print(text)
        print()
    if args.report:
        path = runner.telemetry.write(args.report)
        print(f"run-report written to {path}")
    print(runner.telemetry.summary_line())
    return 0


#: Default journal for ``repro faults`` sweeps (``--checkpoint`` overrides).
DEFAULT_FAULTS_CHECKPOINT = "faults.checkpoint.jsonl"


def _faults_command(args) -> int:
    """Execute ``repro faults``: the recovery matrix with resilience on."""
    from .faults.schedule import FAULT_KINDS, FaultSchedule
    from .harness.checkpoint import RunCheckpoint
    from .harness.experiments import fault_recovery
    from .harness.runner import FailedPoint

    schedule_json: Optional[str] = None
    if args.schedule is not None:
        try:
            schedule_json = Path(args.schedule).read_text()
            FaultSchedule.from_json(schedule_json)  # fail fast, actionable
        except (OSError, ValueError) as error:
            return fail(f"cannot use fault schedule {args.schedule}: {error}")

    faults = ["custom"] if schedule_json else args.classes.split(",")
    unknown = [f for f in faults if f != "custom" and f not in FAULT_KINDS]
    if unknown:
        return fail(
            f"unknown fault class(es) {unknown}; valid: {sorted(FAULT_KINDS)}"
        )
    policies = args.policies.split(",")
    substrates = ["fluid", "packet"] if args.substrate == "both" else [args.substrate]

    points = [
        {
            "fault": fault,
            "policy": policy,
            "substrate": substrate,
            "iterations": (40 if args.fast else 80)
            if substrate == "fluid"
            else (30 if args.fast else 60),
            "seed": args.seed,
            **({"schedule_json": schedule_json} if schedule_json else {}),
        }
        for substrate in substrates
        for fault in faults
        for policy in policies
    ]

    checkpoint = RunCheckpoint(args.checkpoint)
    if not args.resume and len(checkpoint):
        checkpoint.clear()  # fresh sweep unless --resume asked to keep it

    runner = ExperimentRunner(
        name="cli.faults",
        workers=args.workers,
        cache=None if args.no_cache else ResultCache(),
        telemetry=RunTelemetry("cli.faults"),
        timeout=args.timeout,
        retries=args.retries,
        isolate_failures=True,
        checkpoint=checkpoint,
    )
    results = runner.run_points(fault_recovery, points)

    rows = []
    failed = 0
    for point, result in zip(points, results):
        if isinstance(result, FailedPoint):
            failed += 1
            rows.append(
                [point["substrate"], point["fault"], point["policy"],
                 "-", "-", f"FAILED ({result.kind})"]
            )
            continue
        # Every injected fault the point replayed goes into the report's
        # degradations section, tagged with the point that saw it.
        for line in result.fault_log:
            runner.telemetry.record_degradation(
                "fault", line, params=point
            )
        rows.append(
            [result.substrate, result.fault, result.policy,
             result.disturbed_rounds,
             f"{result.reconverged_at}/{len(result.series)}",
             "yes" if result.recovered else "NO"]
        )
    print(
        render_table(
            ["substrate", "fault", "policy", "disturbed rounds",
             "reconverged at", "recovered"],
            rows,
            title="Fault recovery — rounds perturbed beyond tolerance "
            "(vs a fault-free control run)",
        )
    )
    if failed:
        print(
            f"\n{failed} point(s) failed; details in the run-report's "
            f"degradations section. Re-run with --resume to retry only those."
        )
    if args.report:
        path = runner.telemetry.write(args.report)
        print(f"run-report written to {path}")
    print(runner.telemetry.summary_line())
    return 0


def _guards_command(args) -> int:
    """Execute ``repro guards``: summarize or produce guardrail telemetry.

    Exit codes follow :mod:`repro.cliutil`: 0 when no invariant violation
    was found, 1 when violations exist (in the report or during ``--run``),
    2 when the input cannot be read.
    """
    import json

    from .harness.report import render_guard_summary

    if args.run:
        return _guards_run_command(args)
    if args.report_file is None:
        return fail("give a run-report to summarize, or --run to produce one")
    try:
        report = json.loads(Path(args.report_file).read_text())
    except (OSError, ValueError) as error:
        return fail(f"cannot read report {args.report_file}: {error}")
    guards = report.get("guards")
    if guards is None:
        print(
            f"{args.report_file}: no guards section "
            f"(schema v{report.get('schema_version', '?')} report predates v3)"
        )
        return EXIT_OK
    print(render_guard_summary(guards))
    violations = guards.get("violations", [])
    if violations:
        return report_violations(
            f"{args.report_file}: {len(violations)} invariant violation(s)",
            [str(v.get("detail", "")) for v in violations],
        )
    return EXIT_OK


def _guards_run_command(args) -> int:
    """Execute ``repro guards --run``: guarded fault-recovery end to end.

    Attaches one :class:`~repro.guards.GuardRail` per substrate to a
    :func:`~repro.harness.experiments.fault_recovery` run, then partitions
    everything the rail caught into the v3 ``guards`` telemetry section:
    fallback-engaged reports (MLTCP degrading to vanilla CC) are
    *degradations* — expected, graceful —, everything else is a genuine
    invariant *violation* and fails the command.
    """
    from .faults.schedule import FAULT_KINDS
    from .guards import GuardRail, GuardViolationError
    from .harness.experiments import fault_recovery
    from .harness.report import render_guard_summary

    if args.fault not in FAULT_KINDS:
        return fail(
            f"unknown fault class {args.fault!r}; valid: {sorted(FAULT_KINDS)}"
        )
    substrates = (
        ["fluid", "packet"] if args.substrate == "both" else [args.substrate]
    )
    telemetry = RunTelemetry("cli.guards")
    rows = []
    hard_failures: list[str] = []
    for substrate in substrates:
        rail = GuardRail(args.policy)
        iterations = (
            args.iterations
            if args.iterations is not None
            else (40 if substrate == "fluid" else 30)
        )
        episodes = 0
        try:
            result = fault_recovery(
                args.fault,
                args.cc,
                substrate,
                iterations=iterations,
                seed=args.seed,
                guards=rail,
            )
        except GuardViolationError as error:
            # The raising violation is already recorded in the rail; the
            # run itself could not finish.
            hard_failures.append(f"{substrate}: {error}")
            recovered = "ABORTED"
        else:
            recovered = "yes" if result.recovered else "NO"
            episodes = len(result.degradation_episodes)
        for violation in rail.violations:
            telemetry.record_guard_event(
                "degradation" if violation.fallback_engaged else "violation",
                violation.render(),
                guard=violation.guard,
                subject=violation.subject,
                time=violation.time,
                params={"substrate": substrate, "fault": args.fault},
            )
        genuine = sum(1 for v in rail.violations if not v.fallback_engaged)
        rows.append([substrate, args.fault, genuine, episodes, recovered])
    print(
        render_table(
            ["substrate", "fault", "violations", "degradations", "recovered"],
            rows,
            title=(
                f"repro guards --run (cc={args.cc}, policy={args.policy}, "
                f"seed={args.seed})"
            ),
        )
    )
    report = telemetry.as_report()
    print(render_guard_summary(report["guards"]))
    if args.report:
        path = telemetry.write(args.report)
        print(f"run-report written to {path}")
    problems = hard_failures + [
        str(e["detail"]) for e in report["guards"]["violations"]
    ]
    if problems:
        return report_violations(
            f"guards run: {len(problems)} invariant violation(s)", problems
        )
    return EXIT_OK


def _validate_report_command(report_path: str, schema_path: Optional[str]) -> int:
    """Validate a JSON run-report.

    Exit codes follow :mod:`repro.cliutil`: 0 when the report conforms,
    1 on schema violations, 2 when the report/schema cannot be read.
    """
    import json

    try:
        report = json.loads(Path(report_path).read_text())
    except (OSError, ValueError) as error:
        return fail(f"cannot read report {report_path}: {error}")
    schema = RUN_REPORT_SCHEMA
    if schema_path is not None:
        try:
            schema = json.loads(Path(schema_path).read_text())
        except (OSError, ValueError) as error:
            return fail(f"cannot read schema {schema_path}: {error}")
    errors = validate_run_report(report, schema)
    if errors:
        return report_violations(
            f"{report_path}: {len(errors)} schema violation(s)", errors
        )
    totals = report.get("totals", {})
    print(
        f"{report_path}: valid run-report "
        f"({totals.get('points', '?')} points, "
        f"{totals.get('cache_hits', '?')} cache hits)"
    )
    return EXIT_OK


#: Default comparison point for ``repro bench-compare``: the pre-optimization
#: seed numbers (bench_reports/perf_seed.json).  ``make bench-perf`` passes
#: ``--baseline bench_reports/perf_baseline.json`` to gate fresh runs against
#: the current optimized tree instead.
DEFAULT_BENCH_BASELINE = "bench_reports/perf_seed.json"


def _bench_compare_command(args) -> int:
    """Execute ``repro bench-compare``: perf gate against a baseline file.

    Exit codes follow :mod:`repro.cliutil`: 0 when every benchmark is within
    the regression threshold, 1 when one regressed (or vanished), 2 when a
    report cannot be read.
    """
    from .harness.perfbench import compare, load_report, write_baseline

    try:
        current = load_report(args.current)
    except (OSError, ValueError, KeyError, TypeError) as error:
        return fail(f"cannot read benchmark report {args.current}: {error}")
    try:
        baseline = load_report(args.baseline)
    except (OSError, ValueError, KeyError, TypeError) as error:
        return fail(f"cannot read baseline {args.baseline}: {error}")
    if args.threshold < 0:
        return fail(f"--threshold must be non-negative, got {args.threshold!r}")

    if args.select:
        import fnmatch

        baseline = {
            name: stat
            for name, stat in baseline.items()
            if fnmatch.fnmatchcase(name, args.select)
        }
        if not baseline:
            return fail(
                f"--select {args.select!r} matches no benchmark in "
                f"{args.baseline}"
            )

    comparison = compare(current, baseline, threshold=args.threshold)
    print(
        render_table(
            ["benchmark", "baseline min (ms)", "current min (ms)", "speedup"],
            [
                [
                    row.name,
                    row.baseline_min * 1e3,
                    row.current_min * 1e3,
                    f"{row.speedup:.2f}x",
                ]
                for row in comparison.rows
            ],
            title=(
                f"bench-compare — {args.current} vs {args.baseline} "
                f"(regression threshold {args.threshold:.0%})"
            ),
        )
    )
    if args.save:
        path = write_baseline(args.save, current, note=args.note)
        print(f"compact baseline written to {path}")
    if not comparison.ok:
        details = [
            f"{row.name}: {row.current_min * 1e3:.3f} ms vs baseline "
            f"{row.baseline_min * 1e3:.3f} ms ({row.speedup:.2f}x)"
            for row in comparison.regressions
        ] + [
            f"{name}: in baseline but missing from the current report"
            for name in comparison.missing
        ]
        return report_violations(
            f"{args.current}: {len(details)} benchmark gate violation(s)", details
        )
    return EXIT_OK


def _compat_command(scenario_path: str, capacity_gbps: float) -> int:
    """Check a saved scenario (JSON) against the §4 compatibility precondition."""
    from .schedulers.compatibility import best_compatibility
    from .workloads.traceio import load_scenario

    jobs = [j.with_jitter(0.0) for j in load_scenario(scenario_path)]
    score, schedule = best_compatibility(jobs, capacity_gbps)
    print(
        render_table(
            ["job", "ideal iteration (s)", "optimized offset (s)"],
            [
                [j.name, j.ideal_iteration_time, schedule.offset_of(j.name)]
                for j in jobs
            ],
            title=f"{scenario_path} on a {capacity_gbps:g} Gbps bottleneck",
        )
    )
    if score >= 1.0 - 1e-9:
        verdict = (
            "interleaved schedule exists - the paper's convergence "
            "guarantee applies"
        )
    else:
        verdict = (
            "no zero-contention interleave: MLTCP converges to the "
            "least-contended configuration instead"
        )
    print(f"\nbest compatibility score: {score:.4f} ({verdict})")
    return 0


def _cross_rack_command(args) -> int:
    """Execute ``repro cross-rack``: MLTCP vs vanilla CC on a fat tree.

    Runs :func:`~repro.harness.experiments.cross_rack_interleaving` for
    each requested substrate through the experiment runner, prints the
    per-link contention analysis and converged iteration times, and
    records every fabric link's utilization (both policies) into the
    run-report's ``link_utilization`` section (docs/TOPOLOGIES.md).
    """
    from .harness.experiments import cross_rack_interleaving
    from .workloads.placement import PLACEMENT_POLICIES

    if args.placement not in PLACEMENT_POLICIES:
        return fail(
            f"unknown placement policy {args.placement!r}; "
            f"valid: {list(PLACEMENT_POLICIES)}"
        )
    substrates = (
        ["fluid", "packet"] if args.substrate == "both" else [args.substrate]
    )
    iterations = args.iterations
    if iterations is None:
        iterations = 20 if args.fast else 40
    points = [
        {
            "substrate": substrate,
            "n_racks": args.racks,
            "hosts_per_rack": args.hosts_per_rack,
            "n_spines": args.spines,
            "oversubscription": args.oversub,
            "placement": args.placement,
            "iterations": iterations,
            "seed": args.seed,
            "ecmp_seed": args.ecmp_seed,
        }
        for substrate in substrates
    ]
    runner = ExperimentRunner(
        name="cli.cross_rack",
        workers=args.workers,
        cache=None if args.no_cache else ResultCache(),
        telemetry=RunTelemetry("cli.cross_rack"),
    )
    try:
        results = runner.run_points(cross_rack_interleaving, points)
    except ValueError as error:
        return fail(str(error))

    for point, result in zip(points, results):
        fabric_links = set(result.spec.fabric_links())
        print(
            render_table(
                ["uplink", "competitors", "mean (Gbps)", "peak", "overloaded"],
                [
                    [
                        c.link,
                        ",".join(c.competitors) if c.competitors else "-",
                        c.mean_load_gbps,
                        c.peak_load_gbps,
                        f"{c.overload_fraction:.0%}",
                    ]
                    for c in result.contention
                    if c.competitors
                ],
                title=(
                    f"cross-rack [{result.substrate}] — "
                    f"{result.spec.n_racks} racks x "
                    f"{result.spec.hosts_per_rack} hosts, "
                    f"{result.spec.n_spines} spines, "
                    f"{result.spec.oversubscription:g}:1 oversubscribed "
                    f"({result.spec.uplink_gbps:g} Gbps/uplink), "
                    f"placement={result.placement_policy}"
                ),
            )
        )
        print(
            f"  {result.cross_rack_flows}/{len(result.placements)} flows "
            f"cross racks; ideal iteration "
            f"{1000 * result.ideal_iteration_time:.1f} ms"
        )
        print(
            f"  final mean iteration: mltcp "
            f"{1000 * result.final_mean('mltcp'):.1f} ms, vanilla "
            f"{1000 * result.final_mean('fair'):.1f} ms "
            f"(speedup {result.speedup:.2f}x)"
        )
        print()
        for policy in ("mltcp", "fair"):
            utilization = result.link_utilization[policy]
            for link in sorted(fabric_links):
                runner.telemetry.record_link_utilization(
                    link,
                    utilization[link],
                    capacity_gbps=result.spec.uplink_gbps,
                    policy=policy,
                    substrate=result.substrate,
                    params=point,
                )
    if args.report:
        path = runner.telemetry.write(args.report)
        print(f"run-report written to {path}")
    print(runner.telemetry.summary_line())
    return EXIT_OK


def _chaos_command(args) -> int:
    """Execute ``repro chaos``: seeded chaos campaigns with recovery SLOs.

    Runs :func:`~repro.harness.experiments.chaos_recovery` through the
    experiment runner, prints a per-fault campaign summary (time to
    reroute, time to re-interleave, goodput lost for MLTCP vs fair
    share), and records everything into the run-report: each scheduled
    fault in ``degradations``, every guard report and MLTCP degradation
    episode (annotated with its coinciding fault window) in ``guards``,
    and the per-fault SLOs in the v4 ``recovery`` section.
    """
    from .harness.experiments import chaos_recovery
    from .workloads.placement import PLACEMENT_POLICIES

    if args.placement not in PLACEMENT_POLICIES:
        return fail(
            f"unknown placement policy {args.placement!r}; "
            f"valid: {list(PLACEMENT_POLICIES)}"
        )
    substrates = (
        ["fluid", "packet"] if args.substrate == "both" else [args.substrate]
    )
    iterations = args.iterations
    if iterations is None:
        iterations = 32 if args.fast else 48
    points = [
        {
            "substrate": substrate,
            "campaigns": args.campaigns,
            "n_racks": args.racks,
            "hosts_per_rack": args.hosts_per_rack,
            "n_spines": args.spines,
            "oversubscription": args.oversub,
            "placement": args.placement,
            "iterations": iterations,
            "seed": args.seed,
            "ecmp_seed": args.ecmp_seed,
            "guard_policy": args.guard_policy,
        }
        for substrate in substrates
    ]
    runner = ExperimentRunner(
        name="cli.chaos",
        workers=args.workers,
        cache=None if args.no_cache else ResultCache(),
        telemetry=RunTelemetry("cli.chaos"),
    )
    try:
        all_results = runner.run_points(chaos_recovery, points)
    except ValueError as error:
        return fail(str(error))

    for point, campaigns in zip(points, all_results):
        rows = []
        reinterleaved = {"mltcp": 0, "fair": 0}
        n_faults = 0
        for result in campaigns:
            # The two policies replay the identical schedule, so their SLO
            # tuples align fault-by-fault.
            for mltcp_slo, fair_slo in zip(
                result.slos["mltcp"], result.slos["fair"]
            ):
                n_faults += 1
                reinterleaved["mltcp"] += int(mltcp_slo.reinterleaved)
                reinterleaved["fair"] += int(fair_slo.reinterleaved)
                rows.append(
                    [
                        result.campaign_index,
                        mltcp_slo.fault,
                        f"{1000 * mltcp_slo.time_to_reroute:.1f}",
                        _format_tti(mltcp_slo.time_to_reinterleave),
                        _format_tti(fair_slo.time_to_reinterleave),
                        f"{mltcp_slo.goodput_lost_bits / 1e6:.0f}",
                        f"{fair_slo.goodput_lost_bits / 1e6:.0f}",
                    ]
                )
            for description in result.fault_descriptions:
                runner.telemetry.record_degradation(
                    "fault", description, params=point
                )
            for policy in ("mltcp", "fair"):
                for slo in result.slos[policy]:
                    runner.telemetry.record_recovery(
                        slo.fault,
                        strike_time=slo.strike_time,
                        recovery_time=slo.recovery_time,
                        time_to_reroute=slo.time_to_reroute,
                        time_to_reinterleave=slo.time_to_reinterleave,
                        goodput_lost_bits=slo.goodput_lost_bits,
                        interleavable=slo.interleavable,
                        policy=policy,
                        substrate=result.substrate,
                        campaign=result.campaign_index,
                        params=point,
                    )
                for violation in result.violations[policy]:
                    context = violation.get("fault_context")
                    runner.telemetry.record_guard_event(
                        "violation",
                        violation["message"]
                        + (f" (during: {context})" if context else ""),
                        guard=violation["guard"],
                        subject=violation["subject"],
                        time=violation["time"],
                        params=point,
                    )
            for episode in result.degradation_episodes:
                context = episode.get("fault_context")
                runner.telemetry.record_guard_event(
                    "degradation",
                    str(episode.get("reason", "degraded to vanilla CC"))
                    + (f" (during: {context})" if context else ""),
                    subject=str(episode.get("flow")),
                    time=float(episode.get("start", 0.0)),
                    params=point,
                )
        print(
            render_table(
                [
                    "campaign",
                    "fault",
                    "reroute (ms)",
                    "mltcp re-interleave",
                    "fair re-interleave",
                    "mltcp lost (Mb)",
                    "fair lost (Mb)",
                ],
                rows,
                title=(
                    f"chaos [{point['substrate']}] — "
                    f"{args.campaigns} campaign(s) on "
                    f"{args.racks} racks x {args.hosts_per_rack} hosts, "
                    f"{args.spines} spines, {args.oversub:g}:1 "
                    f"oversubscribed, seed {args.seed}"
                ),
            )
        )
        print(
            f"  re-interleaved after mltcp {reinterleaved['mltcp']}/{n_faults}"
            f", fair {reinterleaved['fair']}/{n_faults} fault(s)"
        )
        print()
    if args.report:
        path = runner.telemetry.write(args.report)
        print(f"run-report written to {path}")
    print(runner.telemetry.summary_line())
    return EXIT_OK


def _serve_command(args) -> int:
    """Execute ``repro serve``: the long-lived churn daemon (docs/SERVICE.md).

    Admits jobs from a seeded open-loop arrival model into the live
    array-backed fluid engine, under admission control, a watchdog-
    supervised stepper and (optionally) a write-ahead journal.  With
    ``--query`` it summarizes an existing journal instead of running.
    """
    import json as _json

    from .faults.schedule import FaultSchedule
    from .service import ChurnDaemon, ServiceConfig, ServiceCrash, ServiceJournal
    from .service.daemon import query_journal
    from .workloads import ArrivalModel, FlashCrowd
    from .workloads.presets import gpt2_fast_job, gpt2_job

    if args.query:
        try:
            summary = query_journal(args.query)
        except (OSError, KeyError) as error:
            return fail(f"cannot query journal {args.query}: {error}")
        print(_json.dumps(summary, indent=2))
        return EXIT_OK

    horizon = args.horizon
    if horizon is None:
        horizon = args.epochs * args.epoch_s
    flash_crowds = []
    for spec in args.flash or ():
        try:
            at, size = spec.split(":", 1)
            flash_crowds.append(FlashCrowd(time=float(at), size=int(size)))
        except ValueError as error:
            return fail(f"bad --flash {spec!r} (want TIME:SIZE): {error}")
    if args.template == "gpt2":
        templates = (gpt2_job("tpl"),)
    elif args.template == "mix":
        templates = (gpt2_fast_job("tplA"), gpt2_job("tplB"))
    else:
        templates = (gpt2_fast_job("tpl"),)
    schedule = None
    if args.faults:
        try:
            schedule = FaultSchedule.from_json(args.faults)
        except (OSError, ValueError, KeyError) as error:
            return fail(f"cannot load fault schedule {args.faults}: {error}")
    try:
        model = ArrivalModel(
            rate_per_s=args.rate,
            horizon_s=horizon,
            mean_iterations=args.mean_iterations,
            diurnal_amplitude=args.diurnal_amplitude,
            diurnal_period_s=args.diurnal_period,
            flash_crowds=tuple(flash_crowds),
        )
        config = ServiceConfig(
            arrival=model,
            templates=templates,
            capacity_gbps=args.capacity,
            cc=args.cc,
            seed=args.seed,
            epoch_s=args.epoch_s,
            epochs=args.epochs,
            max_running=args.max_running,
            queue_limit=args.queue_limit,
            shed_policy=args.shed_policy,
            snapshot_every=args.snapshot_every,
            churn_limit=args.churn_limit,
            faults=schedule,
        )
    except ValueError as error:
        return fail(str(error))
    telemetry = RunTelemetry("cli.serve")
    # The daemon only ever restores the latest committed epoch, so keep a
    # bounded number of states in RAM; the file retains the full history
    # for --query, which loads without a retain bound.
    journal = (
        ServiceJournal(args.journal, retain=2) if args.journal else None
    )
    try:
        daemon = ChurnDaemon(
            config,
            journal=journal,
            telemetry=telemetry,
            snapshot_path=args.snapshots,
            resume=args.resume,
            crash_at_epoch=args.crash_at_epoch,
        )
        result = daemon.run()
    except ValueError as error:
        return fail(str(error))
    except ServiceCrash as crash:
        return fail(f"service did not survive: {crash}")

    counters = result["counters"]
    print(
        render_table(
            ["admitted", "deferred", "shed", "degraded", "departed",
             "recoveries", "still running", "queue"],
            [[
                counters["admitted"], counters["deferred"], counters["shed"],
                counters["degraded"], counters["departed"],
                counters["recoveries"], len(result["per_job"]["running"]),
                result["queue_depth"],
            ]],
            title=(
                f"serve [{config.cc}] — {result['epochs_run']} epoch(s) x "
                f"{config.epoch_s:g}s, {args.rate:g} arrivals/s, "
                f"{config.shed_policy} shedding, seed {config.seed}"
            ),
        )
    )
    slo = result["slo_attainment"]
    print(
        f"  slo attainment: "
        + (f"{100 * slo:.0f}%" if slo is not None else "n/a")
        + f" of {counters['departed']} departed job(s); "
        f"{result['snapshots']} snapshot(s); "
        f"per-job fingerprint {daemon.per_job_fingerprint()[:16]}"
    )
    if args.report:
        path = telemetry.write(args.report)
        print(f"run-report written to {path}")
    return EXIT_OK


def _format_tti(time_to_reinterleave: Optional[float]) -> str:
    """Render a time-to-reinterleave: milliseconds, or "never"."""
    if time_to_reinterleave is None:
        return "never"
    return f"{1000 * time_to_reinterleave:.1f} ms"


def _positive_int(text: str) -> int:
    """argparse type for ``--workers``: a clean error instead of a traceback."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from the MLTCP paper (HotNets '24).",
    )
    subparsers = parser.add_subparsers(dest="command")
    subparsers.add_parser("list", help="list available figures")
    run = subparsers.add_parser("run", help="run one figure (or 'all')")
    run.add_argument("figure", choices=[*FIGURES, "all"])
    run.add_argument(
        "--fast", action="store_true", help="smaller iteration counts"
    )
    run.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="render independent figures on an N-process pool "
        "(default: sequential)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute even when a cached result exists "
        "(cache dir: $REPRO_CACHE_DIR, default ~/.cache/repro)",
    )
    run.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="also write the JSON run-report (wall time, event counts, "
        "cache hits) to PATH",
    )
    compat = subparsers.add_parser(
        "compat",
        help="check a saved scenario (JSON) for the §4 compatibility "
        "precondition",
    )
    compat.add_argument("scenario", help="path to a scenario saved with "
                        "repro.workloads.save_scenario")
    compat.add_argument("--capacity", type=float, default=50.0,
                        help="bottleneck capacity in Gbps (default 50)")
    faults = subparsers.add_parser(
        "faults",
        help="fault-recovery matrix: inject faults, measure reconvergence "
        "(crash-isolated, checkpointed; see docs/FAULTS.md)",
    )
    faults.add_argument(
        "--classes",
        default=",".join(
            ("link_down", "bandwidth", "loss_burst", "ecn_storm",
             "straggler", "job_restart")
        ),
        metavar="A,B,...",
        help="comma-separated fault classes to sweep (default: all six)",
    )
    faults.add_argument(
        "--policies",
        default="mltcp,reno,dctcp",
        metavar="A,B,...",
        help="comma-separated policies to compare (default: mltcp,reno,dctcp)",
    )
    faults.add_argument(
        "--substrate",
        choices=["fluid", "packet", "both"],
        default="both",
        help="which simulator(s) to replay faults in (default: both)",
    )
    faults.add_argument(
        "--schedule",
        metavar="PATH",
        default=None,
        help="replay a custom FaultSchedule JSON file instead of the "
        "built-in per-class schedules (times are absolute seconds)",
    )
    faults.add_argument(
        "--fast", action="store_true", help="smaller iteration counts"
    )
    faults.add_argument(
        "--seed", type=int, default=5, help="base seed (default 5)"
    )
    faults.add_argument(
        "--workers", type=_positive_int, default=None, metavar="N",
        help="run points on an N-process pool (default: sequential)",
    )
    faults.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-point wall-clock budget in seconds (default: none)",
    )
    faults.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="re-run a failed point up to N times with backoff (default 1)",
    )
    faults.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=DEFAULT_FAULTS_CHECKPOINT,
        help="sweep journal for --resume "
        f"(default: {DEFAULT_FAULTS_CHECKPOINT})",
    )
    faults.add_argument(
        "--resume",
        action="store_true",
        help="skip points already in the checkpoint (re-runs only failed "
        "or missing points); without this flag the checkpoint is reset",
    )
    faults.add_argument(
        "--no-cache", action="store_true",
        help="recompute even when a cached result exists",
    )
    faults.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the JSON run-report (includes the degradations "
        "section: every fault, retry, timeout and crash)",
    )
    lint = subparsers.add_parser(
        "lint",
        help="run the AST-based determinism/unit-safety analyzer "
        "(rule catalog: docs/LINTING.md)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--select", metavar="A,B,...", default=None,
        help="run only these rule codes (comma-separated)",
    )
    lint.add_argument(
        "--ignore", metavar="A,B,...", default=None,
        help="skip these rule codes (comma-separated)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    lint.add_argument(
        "--json", action="store_true", dest="json_output",
        help="emit findings as a JSON array on stdout "
        "(path/line/col/code/message); same exit codes",
    )
    verify = subparsers.add_parser(
        "verify",
        help="bounded model checking of Algorithm 1: prove or refute the "
        "named properties and audit committed certificates "
        "(docs/VERIFICATION.md)",
    )
    verify.add_argument(
        "properties", nargs="*", metavar="PROPERTY",
        help="property names to check (default: the whole catalog; "
        "see --list)",
    )
    verify.add_argument(
        "--backend", default="auto", choices=("auto", "exhaustive", "z3"),
        help="solver backend: 'exhaustive' (hermetic grid search), 'z3' "
        "(requires the [verify] extra), or 'auto' (z3 when available and "
        "applicable, else exhaustive)",
    )
    verify.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-query solver budget; an expired budget yields verdict "
        "'unknown' (default 30)",
    )
    verify.add_argument(
        "--fast", action="store_true",
        help="use each property's reduced smoke-test grid (make "
        "verify-smoke)",
    )
    verify.add_argument(
        "--check", action="store_true",
        help="additionally require a fresh committed artifact for every "
        "selected property",
    )
    verify.add_argument(
        "--write", action="store_true",
        help="(re)write certificate/counterexample artifacts for verdicts "
        "that match expectations",
    )
    verify.add_argument(
        "--write-dir", metavar="DIR", default=None,
        help="read/write artifacts in DIR instead of the committed "
        "src/repro/verify/certificates/",
    )
    verify.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write a JSON run-report with the verification section",
    )
    verify.add_argument(
        "--list", action="store_true", dest="list_properties",
        help="print the property catalog and exit",
    )
    bench_compare = subparsers.add_parser(
        "bench-compare",
        help="compare a pytest-benchmark report against a committed perf "
        "baseline; fails on regressions (docs/PERFORMANCE.md)",
    )
    bench_compare.add_argument(
        "current",
        help="benchmark report to check: raw --benchmark-json output or a "
        "compact baseline file",
    )
    bench_compare.add_argument(
        "--baseline",
        default=DEFAULT_BENCH_BASELINE,
        metavar="PATH",
        help=f"baseline to compare against (default: {DEFAULT_BENCH_BASELINE}, "
        "the pre-optimization seed numbers)",
    )
    bench_compare.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        metavar="FRACTION",
        help="allowed slowdown before the gate fails (default 0.15 = 15%%)",
    )
    bench_compare.add_argument(
        "--select",
        default=None,
        metavar="GLOB",
        help="gate only the baseline benchmarks matching this glob (e.g. "
        "'test_scale_*' for `make bench-scale-smoke`); unmatched baseline "
        "entries are neither compared nor reported missing",
    )
    bench_compare.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="also write the current stats as a compact baseline to PATH "
        "(how bench_reports/perf_baseline.json is refreshed)",
    )
    bench_compare.add_argument(
        "--note",
        default=None,
        help="free-form provenance note embedded in the --save output",
    )
    guards = subparsers.add_parser(
        "guards",
        help="summarize a run-report's guards section, or --run a guarded "
        "fault-recovery experiment (docs/ROBUSTNESS.md)",
    )
    guards.add_argument(
        "report_file", nargs="?", default=None, metavar="REPORT",
        help="run-report (.run.json) whose guards section to summarize",
    )
    guards.add_argument(
        "--run", action="store_true",
        help="run fault_recovery with a guardrail attached instead of "
        "reading a report",
    )
    guards.add_argument(
        "--policy", choices=["record", "raise"], default="record",
        help="guard policy for --run: record violations, or raise at the "
        "first one (default: record)",
    )
    guards.add_argument(
        "--cc", default="mltcp", metavar="POLICY",
        help="congestion-control policy under test (default: mltcp)",
    )
    guards.add_argument(
        "--fault", default="job_restart", metavar="CLASS",
        help="fault class to inject during --run (default: job_restart)",
    )
    guards.add_argument(
        "--substrate", choices=["fluid", "packet", "both"], default="both",
        help="which simulator(s) to guard (default: both)",
    )
    guards.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="training iterations per run (default: 40 fluid / 30 packet)",
    )
    guards.add_argument(
        "--seed", type=int, default=5, help="base seed (default 5)"
    )
    guards.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the JSON run-report (v3 guards section) to PATH",
    )
    cross_rack = subparsers.add_parser(
        "cross-rack",
        help="MLTCP vs vanilla CC on a multi-rack oversubscribed fat tree, "
        "with per-link contention telemetry (docs/TOPOLOGIES.md)",
    )
    cross_rack.add_argument(
        "--racks", type=_positive_int, default=4, metavar="N",
        help="number of racks (default 4)",
    )
    cross_rack.add_argument(
        "--hosts-per-rack", type=_positive_int, default=4, metavar="N",
        help="hosts per rack (default 4)",
    )
    cross_rack.add_argument(
        "--spines", type=_positive_int, default=2, metavar="N",
        help="number of spine switches (default 2)",
    )
    cross_rack.add_argument(
        "--oversub", type=float, default=2.0, metavar="RATIO",
        help="oversubscription ratio: host bandwidth into a rack over its "
        "uplink bandwidth (default 2.0)",
    )
    cross_rack.add_argument(
        "--placement", default="spread", metavar="POLICY",
        help="job placement policy: packed, spread or random "
        "(default: spread)",
    )
    cross_rack.add_argument(
        "--substrate", choices=["fluid", "packet", "both"], default="fluid",
        help="which simulator(s) to run (default: fluid; packet is slower)",
    )
    cross_rack.add_argument(
        "--iterations", type=_positive_int, default=None, metavar="N",
        help="training iterations per job (default: 40, or 20 with --fast)",
    )
    cross_rack.add_argument(
        "--fast", action="store_true", help="smaller iteration counts"
    )
    cross_rack.add_argument(
        "--seed", type=int, default=2, help="base seed (default 2)"
    )
    cross_rack.add_argument(
        "--ecmp-seed", type=int, default=2,
        help="seed of the deterministic ECMP spine choice (default 2)",
    )
    cross_rack.add_argument(
        "--workers", type=_positive_int, default=None, metavar="N",
        help="run substrates on an N-process pool (default: sequential)",
    )
    cross_rack.add_argument(
        "--no-cache", action="store_true",
        help="recompute even when a cached result exists",
    )
    cross_rack.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the JSON run-report (includes the "
        "link_utilization section) to PATH",
    )
    chaos = subparsers.add_parser(
        "chaos",
        help="seeded chaos campaigns on the fabric: failure-aware ECMP "
        "rerouting + recovery SLOs (docs/FAULTS.md)",
    )
    chaos.add_argument(
        "--campaigns", type=_positive_int, default=3, metavar="N",
        help="independently seeded campaigns to run (default 3)",
    )
    chaos.add_argument(
        "--racks", type=_positive_int, default=4, metavar="N",
        help="number of racks (default 4)",
    )
    chaos.add_argument(
        "--hosts-per-rack", type=_positive_int, default=4, metavar="N",
        help="hosts per rack (default 4)",
    )
    chaos.add_argument(
        "--spines", type=_positive_int, default=2, metavar="N",
        help="number of spine switches (default 2)",
    )
    chaos.add_argument(
        "--oversub", type=float, default=2.0, metavar="RATIO",
        help="oversubscription ratio (default 2.0)",
    )
    chaos.add_argument(
        "--placement", default="spread", metavar="POLICY",
        help="job placement policy: packed, spread or random "
        "(default: spread)",
    )
    chaos.add_argument(
        "--substrate", choices=["fluid", "packet", "both"], default="fluid",
        help="which simulator(s) to run (default: fluid; packet is slower)",
    )
    chaos.add_argument(
        "--iterations", type=_positive_int, default=None, metavar="N",
        help="training iterations per job (default: 48, or 32 with --fast)",
    )
    chaos.add_argument(
        "--fast", action="store_true", help="smaller iteration counts"
    )
    chaos.add_argument(
        "--seed", type=int, default=2,
        help="base seed; campaigns derive theirs from it (default 2)",
    )
    chaos.add_argument(
        "--ecmp-seed", type=int, default=2,
        help="seed of the deterministic ECMP spine choice (default 2)",
    )
    chaos.add_argument(
        "--guard-policy", choices=["record", "raise", "off"], default="record",
        help="guardrail policy for the faulted runs (default: record)",
    )
    chaos.add_argument(
        "--workers", type=_positive_int, default=None, metavar="N",
        help="run substrates on an N-process pool (default: sequential)",
    )
    chaos.add_argument(
        "--no-cache", action="store_true",
        help="recompute even when a cached result exists",
    )
    chaos.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the JSON run-report (includes the v4 recovery "
        "section) to PATH",
    )
    serve = subparsers.add_parser(
        "serve",
        help="long-lived churn daemon: open-loop arrivals, admission "
        "control, watchdog-supervised stepping, journaled recovery "
        "(docs/SERVICE.md)",
    )
    serve.add_argument(
        "--epochs", type=_positive_int, default=30, metavar="N",
        help="service epochs to run (default 30)",
    )
    serve.add_argument(
        "--epoch-s", type=float, default=1.0, metavar="SECONDS",
        help="simulated seconds per epoch (default 1.0)",
    )
    serve.add_argument(
        "--horizon", type=float, default=None, metavar="SECONDS",
        help="arrival-process horizon (default: epochs * epoch-s)",
    )
    serve.add_argument(
        "--rate", type=float, default=0.6, metavar="PER_S",
        help="mean Poisson arrival rate in jobs/s (default 0.6)",
    )
    serve.add_argument(
        "--mean-iterations", type=float, default=12.0, metavar="N",
        help="mean geometric job lifetime in iterations (default 12)",
    )
    serve.add_argument(
        "--diurnal-amplitude", type=float, default=0.0, metavar="A",
        help="diurnal rate modulation amplitude in [0, 1) (default 0)",
    )
    serve.add_argument(
        "--diurnal-period", type=float, default=60.0, metavar="SECONDS",
        help="diurnal modulation period (default 60)",
    )
    serve.add_argument(
        "--flash", action="append", metavar="TIME:SIZE",
        help="inject a flash crowd of SIZE fine-tune jobs at TIME "
        "(repeatable)",
    )
    serve.add_argument(
        "--template", choices=["gpt2-fast", "gpt2", "mix"],
        default="gpt2-fast",
        help="job template(s) arrivals are drawn from (default: gpt2-fast)",
    )
    serve.add_argument(
        "--capacity", type=float, default=50.0, metavar="GBPS",
        help="bottleneck capacity in Gbps (default 50)",
    )
    serve.add_argument(
        "--cc", choices=["mltcp", "fair"], default="mltcp",
        help="congestion-control policy for the live engine "
        "(default: mltcp)",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="base seed; the arrival stream derives seed+1 (default 0)",
    )
    serve.add_argument(
        "--max-running", type=_positive_int, default=8, metavar="N",
        help="admission-control concurrency limit (default 8)",
    )
    serve.add_argument(
        "--queue-limit", type=_positive_int, default=16, metavar="N",
        help="bounded pending-queue depth (default 16)",
    )
    serve.add_argument(
        "--shed-policy", choices=["reject", "defer", "degrade"],
        default="defer",
        help="load-shedding policy past the limits (default: defer)",
    )
    serve.add_argument(
        "--snapshot-every", type=_positive_int, default=5, metavar="N",
        help="emit a schema-v6 service snapshot every N epochs (default 5)",
    )
    serve.add_argument(
        "--churn-limit", type=_positive_int, default=4, metavar="N",
        help="per-epoch churn above which the engine clamps to vanilla "
        "CC for a few epochs (default 4)",
    )
    serve.add_argument(
        "--journal", metavar="PATH", default=None,
        help="write-ahead journal path; enables crash recovery and "
        "--resume",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="resume from the journal at --journal instead of starting "
        "fresh",
    )
    serve.add_argument(
        "--crash-at-epoch", type=_positive_int, default=None, metavar="N",
        help="inject one stepper crash mid-epoch N (recovery drill)",
    )
    serve.add_argument(
        "--faults", metavar="PATH", default=None,
        help="JSON fault schedule applied to the bottleneck "
        "(repro faults export format)",
    )
    serve.add_argument(
        "--snapshots", metavar="PATH", default=None,
        help="also append each service snapshot to PATH as JSON lines",
    )
    serve.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the JSON run-report (includes the v6 service "
        "section) to PATH",
    )
    serve.add_argument(
        "--query", metavar="PATH", default=None,
        help="summarize an existing journal at PATH and exit (no run)",
    )
    docs_check = subparsers.add_parser(
        "docs-check",
        help="execute the python code fences in markdown docs so examples "
        "can't rot (the gate behind `make docs-check`)",
    )
    docs_check.add_argument(
        "paths", nargs="*", default=["docs"],
        help="markdown files or directories to check (default: docs)",
    )
    validate = subparsers.add_parser(
        "validate-report",
        help="check a JSON run-report against the run-report schema",
    )
    validate.add_argument("report", help="path to a .run.json run-report")
    validate.add_argument(
        "--schema",
        default=None,
        help="path to a JSON schema file (default: the built-in schema, "
        "mirrored at docs/run_report.schema.json)",
    )
    args = parser.parse_args(argv)

    if args.command == "list" or args.command is None:
        for name, (description, _fn) in FIGURES.items():
            print(f"  {name:9} {description}")
        return 0

    if args.command == "compat":
        return _compat_command(args.scenario, args.capacity)

    if args.command == "lint":
        from .lint import run_lint

        return run_lint(
            args.paths, select=args.select, ignore=args.ignore,
            list_rules=args.list_rules, json_output=args.json_output,
        )

    if args.command == "verify":
        from .verify.cli import run_verify

        return run_verify(
            args.properties,
            backend=args.backend,
            timeout=args.timeout,
            fast=args.fast,
            check=args.check,
            write=args.write,
            write_dir=args.write_dir,
            report=args.report,
            list_properties=args.list_properties,
        )

    if args.command == "bench-compare":
        return _bench_compare_command(args)

    if args.command == "validate-report":
        return _validate_report_command(args.report, args.schema)

    if args.command == "cross-rack":
        return _cross_rack_command(args)

    if args.command == "chaos":
        return _chaos_command(args)

    if args.command == "serve":
        return _serve_command(args)

    if args.command == "docs-check":
        from .docscheck import run_docs_check

        return run_docs_check(args.paths)

    if args.command == "faults":
        return _faults_command(args)

    if args.command == "guards":
        return _guards_command(args)

    return _run_command(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Hot-path performance rules (PRF001).

The fast-path work documented in docs/PERFORMANCE.md got its wins largely
by hoisting per-event allocation out of the simulators' inner loops:
plain tuples on the event heap, pooled packets, flow views mutated in
place.  PRF001 keeps that property from eroding — constructing a
dataclass inside an event handler (``on_*``), a dispatch loop
(``_dispatch``), or an allocation policy (``allocate``) puts a
``__init__`` + ``__eq__``-capable object allocation back on the hottest
call sites in the repo.

Detection is module-local by design: the checker flags calls to classes
*defined in the same file* with a ``@dataclass`` decorator (plus
``dataclasses.replace``, which always builds a fresh instance).  It
cannot see dataclasses imported from elsewhere; that keeps the rule
precise, and the fixture tests honest.  Construction that is genuinely
cold (error paths, once-per-run setup) is suppressed in place with
``# repro-lint: disable=PRF001``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import Finding, LintContext, Rule, dotted_name, terminal_name

__all__ = ["RULES"]

#: Function names that sit on the per-event / per-step hot path.
_HOT_PREFIXES = ("on_",)
_HOT_NAMES = frozenset({"_dispatch", "allocate"})


def _is_hot_function(name: str) -> bool:
    return name.startswith(_HOT_PREFIXES) or name in _HOT_NAMES


def _dataclass_names(tree: ast.Module) -> frozenset[str]:
    """Names of classes in this module carrying a ``@dataclass`` decorator."""
    names = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            if terminal_name(target) == "dataclass":
                names.add(node.name)
                break
    return frozenset(names)


def _is_replace_call(func: ast.expr) -> bool:
    return dotted_name(func) in ("dataclasses.replace", "replace")


def _check_prf001(ctx: LintContext) -> Iterator[Finding]:
    dataclasses_here = _dataclass_names(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_hot_function(node.name):
            continue
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            callee = terminal_name(call.func)
            if callee in dataclasses_here:
                yield Finding(
                    ctx.path, call.lineno, call.col_offset, "PRF001",
                    f"dataclass `{callee}` constructed inside hot-path "
                    f"function `{node.name}`: allocate once outside the "
                    "event loop and mutate in place (see "
                    "docs/PERFORMANCE.md), or suppress if this path is "
                    "cold",
                )
            elif _is_replace_call(call.func):
                yield Finding(
                    ctx.path, call.lineno, call.col_offset, "PRF001",
                    "`dataclasses.replace` inside hot-path function "
                    f"`{node.name}` builds a fresh instance per call: "
                    "mutate a pre-built object instead, or suppress if "
                    "this path is cold",
                )


RULES: tuple[Rule, ...] = (
    Rule(
        code="PRF001",
        name="hot-path-dataclass",
        summary=(
            "event handlers, dispatch loops and allocation policies may "
            "not construct dataclasses"
        ),
        rationale=(
            "`on_*`/`_dispatch`/`allocate` run once per event or per "
            "fluid step; a dataclass construction there undoes the "
            "pooling and in-place mutation the fast paths rely on "
            "(docs/PERFORMANCE.md) and shows up directly in "
            "`make bench-perf`."
        ),
        checker=_check_prf001,
        scopes=("repro/simulator/", "repro/fluid/"),
    ),
)

"""Hot-path performance rules (PRF001, PRF002).

The fast-path work documented in docs/PERFORMANCE.md got its wins largely
by hoisting per-event allocation out of the simulators' inner loops:
plain tuples on the event heap, pooled packets, flow views mutated in
place.  PRF001 keeps that property from eroding — constructing a
dataclass inside an event handler (``on_*``), a dispatch loop
(``_dispatch``), or an allocation policy (``allocate``) puts a
``__init__`` + ``__eq__``-capable object allocation back on the hottest
call sites in the repo.

Detection is module-local by design: the checker flags calls to classes
*defined in the same file* with a ``@dataclass`` decorator (plus
``dataclasses.replace``, which always builds a fresh instance).  It
cannot see dataclasses imported from elsewhere; that keeps the rule
precise, and the fixture tests honest.  Construction that is genuinely
cold (error paths, once-per-run setup) is suppressed in place with
``# repro-lint: disable=PRF001``.

PRF002 guards the vectorized-core contract: inside a module carrying the
``# repro-lint: hot-path-module`` marker, flow state lives in
``FlowArrays`` struct-of-arrays and must be advanced with whole-array
numpy passes — a Python ``for`` loop over a ``FlowView``/``*Runtime``
sequence there reintroduces the O(flows) interpreter work the PR-9
vectorization removed.  Flow-typed sequences are found with a small
per-function dataflow: parameters and variables annotated with a flow
view/runtime type seed the set, which then propagates through
``sorted``/``list``/``tuple``/``reversed`` calls, slices, and
assignments.  The scalar reference implementations and FlowView-compat
policy paths keep their loops on purpose — each carries a
``# repro-lint: disable=PRF002`` at the loop header.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .engine import Finding, LintContext, Rule, dotted_name, terminal_name

__all__ = ["RULES"]

#: Module marker opting a file into the PRF002 per-flow-loop rule.  A
#: plain substring scan (comment or docstring both count): the marker is
#: a declaration about the whole module, not a per-line directive.
_HOT_MODULE_MARKER = "repro-lint: hot-path-module"

#: Type names whose sequences PRF002 considers per-flow state.
_FLOW_TYPE_NAMES = ("FlowView", "_FlowRuntime", "_JobRuntime")

#: Builtins through which flow-typed sequences propagate unchanged.
_SEQUENCE_WRAPPERS = frozenset({"sorted", "list", "tuple", "reversed"})

#: Function names that sit on the per-event / per-step hot path.
_HOT_PREFIXES = ("on_",)
_HOT_NAMES = frozenset({"_dispatch", "allocate"})


def _is_hot_function(name: str) -> bool:
    return name.startswith(_HOT_PREFIXES) or name in _HOT_NAMES


def _dataclass_names(tree: ast.Module) -> frozenset[str]:
    """Names of classes in this module carrying a ``@dataclass`` decorator."""
    names = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            if terminal_name(target) == "dataclass":
                names.add(node.name)
                break
    return frozenset(names)


def _is_replace_call(func: ast.expr) -> bool:
    return dotted_name(func) in ("dataclasses.replace", "replace")


def _check_prf001(ctx: LintContext) -> Iterator[Finding]:
    dataclasses_here = _dataclass_names(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_hot_function(node.name):
            continue
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            callee = terminal_name(call.func)
            if callee in dataclasses_here:
                yield Finding(
                    ctx.path, call.lineno, call.col_offset, "PRF001",
                    f"dataclass `{callee}` constructed inside hot-path "
                    f"function `{node.name}`: allocate once outside the "
                    "event loop and mutate in place (see "
                    "docs/PERFORMANCE.md), or suppress if this path is "
                    "cold",
                )
            elif _is_replace_call(call.func):
                yield Finding(
                    ctx.path, call.lineno, call.col_offset, "PRF001",
                    "`dataclasses.replace` inside hot-path function "
                    f"`{node.name}` builds a fresh instance per call: "
                    "mutate a pre-built object instead, or suppress if "
                    "this path is cold",
                )


def _mentions_flow_type(annotation: ast.expr) -> bool:
    """Whether an annotation names one of the flow view/runtime types."""
    for node in ast.walk(annotation):
        if isinstance(node, (ast.Name, ast.Attribute)):
            if terminal_name(node) in _FLOW_TYPE_NAMES:
                return True
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotations ("Sequence[FlowView]") stay strings in the
            # AST; a substring check is the best available signal.
            if any(name in node.value for name in _FLOW_TYPE_NAMES):
                return True
    return False


#: Mapping type heads whose iteration yields keys rather than elements.
_MAPPING_HEADS = frozenset(
    {"dict", "Dict", "Mapping", "MutableMapping", "defaultdict", "OrderedDict"}
)


def _is_mapping_annotation(annotation: ast.expr) -> bool:
    """Whether the annotation's outermost type is a mapping."""
    head = annotation.value if isinstance(annotation, ast.Subscript) else annotation
    return terminal_name(head) in _MAPPING_HEADS


def _is_flow_sequence_expr(expr: ast.expr, flow_names: set[str]) -> bool:
    """Whether an expression denotes a flow-typed sequence.

    Flow-typed-ness propagates through slicing (``ordered[:k]``) and the
    order-preserving sequence builtins (``sorted(flows)``), and a list
    comprehension whose element is a direct flow-type construction
    (``[FlowView(...) for ...]``) is a seed.
    """
    if isinstance(expr, ast.Name):
        return expr.id in flow_names
    if isinstance(expr, ast.Subscript):
        return _is_flow_sequence_expr(expr.value, flow_names)
    if isinstance(expr, ast.Call):
        if terminal_name(expr.func) in _SEQUENCE_WRAPPERS and expr.args:
            return _is_flow_sequence_expr(expr.args[0], flow_names)
        return False
    if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
        element = expr.elt
        if isinstance(element, ast.Call):
            return terminal_name(element.func) in _FLOW_TYPE_NAMES
    return False


def _flow_typed_names(func: ast.AST) -> set[str]:
    """Names bound to flow-view/runtime sequences inside one function.

    Seeds: parameters and ``x: list[FlowView]``-style annotated targets.
    Propagation: ``a = <flow-typed expression>`` assignments, iterated to
    a fixed point so chains like ``ordered = sorted(flows)`` resolve.
    """
    names: set[str] = set()
    arguments = getattr(func, "args", None)
    if arguments is not None:
        for arg in [*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs]:
            if arg.annotation is not None and _mentions_flow_type(arg.annotation):
                names.add(arg.arg)
    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            target: Optional[str] = None
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                # Mapping annotations don't seed: iterating a
                # ``dict[int, list[FlowView]]`` yields keys, not flows.
                if _mentions_flow_type(node.annotation) and not _is_mapping_annotation(
                    node.annotation
                ):
                    target = node.target.id
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                if isinstance(node.targets[0], ast.Name) and _is_flow_sequence_expr(
                    node.value, names
                ):
                    target = node.targets[0].id
            if target is not None and target not in names:
                names.add(target)
                changed = True
    return names


def _check_prf002(ctx: LintContext) -> Iterator[Finding]:
    if _HOT_MODULE_MARKER not in ctx.source:
        return
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        flow_names = _flow_typed_names(func)
        if not flow_names:
            continue
        for node in ast.walk(func):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if _is_flow_sequence_expr(node.iter, flow_names):
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "PRF002",
                    f"per-flow Python loop over `{ast.unparse(node.iter)}` "
                    "in a hot-path module: advance flow state with "
                    "whole-array numpy passes over FlowArrays "
                    "(docs/PERFORMANCE.md, \"Vectorized core & scale "
                    "benchmarks\"), or suppress if this is the scalar "
                    "reference / FlowView-compat path",
                )


RULES: tuple[Rule, ...] = (
    Rule(
        code="PRF001",
        name="hot-path-dataclass",
        summary=(
            "event handlers, dispatch loops and allocation policies may "
            "not construct dataclasses"
        ),
        rationale=(
            "`on_*`/`_dispatch`/`allocate` run once per event or per "
            "fluid step; a dataclass construction there undoes the "
            "pooling and in-place mutation the fast paths rely on "
            "(docs/PERFORMANCE.md) and shows up directly in "
            "`make bench-perf`."
        ),
        checker=_check_prf001,
        scopes=("repro/simulator/", "repro/fluid/"),
    ),
    Rule(
        code="PRF002",
        name="hot-path-flow-loop",
        summary=(
            "modules marked `repro-lint: hot-path-module` may not walk "
            "FlowView/runtime sequences with Python for loops"
        ),
        rationale=(
            "The vectorized fluid core keeps flow state in FlowArrays "
            "struct-of-arrays and advances it with whole-array numpy "
            "passes; a per-flow Python loop in a marked module "
            "reintroduces O(flows) interpreter work per event and erodes "
            "the 10k-flow-scale speedups gated by "
            "benchmarks/bench_scale_fluid.py (docs/PERFORMANCE.md).  "
            "Scalar reference implementations and FlowView-compat policy "
            "paths suppress in place."
        ),
        checker=_check_prf002,
        scopes=("repro/",),
    ),
)

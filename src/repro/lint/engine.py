"""Core machinery of the ``repro lint`` analyzer.

The engine is deliberately small: a :class:`Rule` couples a stable code
(``DET001``, ``FLT001``, ...) to a checker function that walks a parsed
module and yields :class:`Finding` objects.  Everything repo-specific —
which calls break determinism, which identifier suffixes denote units —
lives in the rule modules (:mod:`repro.lint.determinism`,
:mod:`repro.lint.floats`, :mod:`repro.lint.units`,
:mod:`repro.lint.hygiene`), so adding a rule rarely touches this file
(see docs/LINTING.md, "Adding a rule").

Two cross-statement facilities live here because every rule shares them:

* **Suppressions** — a finding is dropped when the line that produced it
  carries a ``repro-lint`` comment disabling its code (comma-separate
  several codes, or use ``all``), or when any line in the file carries
  the ``-file`` variant.  Directives are parsed from *comment tokens
  only* (via :mod:`tokenize`), so directive-shaped text inside
  docstrings or string literals is inert.  A directive that suppresses
  nothing is itself a finding (``SUP001``), mirroring ruff's
  unused-``noqa`` check.
* **Alias dataflow** — :meth:`LintContext.resolve` expands an
  identifier through the module's imports and simple assignments
  (``from random import shuffle``; ``r = random``), so checkers match
  on canonical dotted names instead of surface spelling.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Callable, Iterable, Iterator, Optional

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "SUPPRESSION_RULE",
    "lint_source",
    "dotted_name",
    "terminal_name",
]

#: Directive syntax, matched inside comment tokens only: the marker
#: ``repro-lint:`` followed by ``disable=CODE1,CODE2`` (line scope),
#: ``disable-file=CODE`` (file scope), or ``disable=all``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+|all)"
)

#: How many alias-chain hops :meth:`LintContext.resolve` follows before
#: giving up — a guard against pathological ``a = b; b = a`` cycles.
_ALIAS_DEPTH = 8


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """``path:line:col: CODE message`` — the one-line report format."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical dotted names they alias.

    Sources of aliasing, in module order:

    * ``import numpy as np`` → ``np: numpy``
    * ``from random import shuffle as sh`` → ``sh: random.shuffle``
      (relative and star imports carry no canonical target and are
      skipped)
    * ``r = random`` / ``gen = np.random`` → the target name maps to the
      RHS Name/Attribute chain; chains resolve transitively at lookup.

    The map is flow-insensitive: a rebind later in the module wins for
    the whole file, which errs toward *more* findings — the right bias
    for a determinism linter.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname is not None:
                    aliases[name.asname] = name.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative import: no absolute canonical name
            for name in node.names:
                if name.name == "*":
                    continue
                bound = name.asname or name.name
                aliases[bound] = f"{node.module}.{name.name}"
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is None:
                continue
            chain = dotted_name(value)
            if chain is None:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id != chain:
                    aliases[target.id] = chain
    return aliases


@dataclass
class LintContext:
    """Everything a checker may consult about the module under analysis."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    _aliases: Optional[dict[str, str]] = field(default=None, repr=False)

    @property
    def posix_path(self) -> str:
        """The path with forward slashes, for scope matching."""
        return str(PurePosixPath(self.path.replace("\\", "/")))

    @property
    def aliases(self) -> dict[str, str]:
        """Local-name → canonical dotted-name map, built lazily once."""
        if self._aliases is None:
            self._aliases = _collect_aliases(self.tree)
        return self._aliases

    def resolve(self, name: Optional[str]) -> Optional[str]:
        """Expand ``name`` through the module's alias map.

        Longest-prefix, transitive: with ``r = random`` the name
        ``r.seed`` resolves to ``random.seed``; with ``from numpy import
        random as nr``, ``nr.normal`` resolves to ``numpy.random.normal``.
        Unknown names come back unchanged, so callers can resolve
        unconditionally before matching.
        """
        if not name:
            return name
        # Each alias is applied at most once: this terminates cycles
        # (``a = b; b = a``) and self-similar bindings (``from datetime
        # import datetime`` maps ``datetime`` to ``datetime.datetime``,
        # which must not re-expand).
        applied: set[str] = set()
        for _ in range(_ALIAS_DEPTH):
            parts = name.split(".")
            for cut in range(len(parts), 0, -1):
                prefix = ".".join(parts[:cut])
                target = self.aliases.get(prefix)
                if target is not None and target != prefix and prefix not in applied:
                    applied.add(prefix)
                    name = ".".join([target, *parts[cut:]])
                    break
            else:
                return name
        return name


Checker = Callable[[LintContext], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """A lint rule: stable code, human summary, scope, and checker.

    ``scopes`` restricts the rule to files whose posix path contains any of
    the given substrings (empty tuple = every file); ``exempt`` then carves
    out allowlisted layers (e.g. the harness may read wall clocks).
    """

    code: str
    name: str
    summary: str
    rationale: str
    checker: Checker
    scopes: tuple[str, ...] = ()
    exempt: tuple[str, ...] = ()

    def applies_to(self, posix_path: str) -> bool:
        """Whether this rule runs on the file at ``posix_path``."""
        if any(marker in posix_path for marker in self.exempt):
            return False
        if not self.scopes:
            return True
        return any(marker in posix_path for marker in self.scopes)


@dataclass
class _Directive:
    """One parsed suppression comment, with per-code usage tracking."""

    line: int
    col: int
    file_wide: bool
    codes: frozenset[str]
    used: set[str] = field(default_factory=set)

    def match(self, finding: Finding) -> bool:
        """Whether this directive silences ``finding``; records usage."""
        if "*" in self.codes:
            self.used.add("*")
            return True
        if finding.code in self.codes:
            self.used.add(finding.code)
            return True
        return False


def _parse_directives(source: str) -> list[_Directive]:
    """Extract suppression directives from the module's comment tokens.

    Tokenizing (rather than regex-scanning raw lines) keeps
    directive-shaped text inside docstrings and string literals from
    registering as real suppressions.
    """
    directives: list[_Directive] = []
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return directives  # ast.parse accepted it; keep what we have
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        kind, spec = match.group(1), match.group(2)
        codes = (
            frozenset({"*"})
            if spec.strip().lower() == "all"
            else frozenset(c.strip().upper() for c in spec.split(",") if c.strip())
        )
        if not codes:
            continue
        directives.append(
            _Directive(
                line=token.start[0],
                col=token.start[1] + match.start(),
                file_wide=(kind == "disable-file"),
                codes=codes,
            )
        )
    return directives


def _suppressed(finding: Finding, directives: list[_Directive]) -> bool:
    """Whether any directive silences ``finding`` (marks all that do)."""
    hit = False
    for directive in directives:
        if directive.file_wide or directive.line == finding.line:
            if directive.match(finding):
                hit = True
    return hit


def _unused_directive_findings(
    path: str, directives: list[_Directive], active_codes: set[str]
) -> Iterator[Finding]:
    """SUP001 findings for directive codes that silenced nothing.

    Only codes whose rule actually ran are flagged: under a narrowed
    ``--select`` a directive for an unselected rule cannot prove itself
    useful, so it gets the benefit of the doubt.
    """
    for directive in directives:
        where = "in this file" if directive.file_wide else "on this line"
        for code in sorted(directive.codes):
            if code in directive.used:
                continue
            if code == "*":
                label = "``disable=all`` matched no finding"
            elif code in active_codes:
                label = f"no {code} finding {where}"
            else:
                continue
            yield Finding(
                path=path,
                line=directive.line,
                col=directive.col,
                code="SUP001",
                message=(
                    f"unused suppression: {label}; remove the stale "
                    f"directive so real regressions are not silenced"
                ),
            )


def _sup001_suppressed(finding: Finding, directives: list[_Directive]) -> bool:
    """Whether a SUP001 staleness report is explicitly opted out.

    Only a literal ``SUP001`` in a directive counts — ``disable=all``
    must not self-excuse its own staleness report, or every stale
    blanket suppression would hide itself.
    """
    hit = False
    for directive in directives:
        if directive.file_wide or directive.line == finding.line:
            if "SUP001" in directive.codes:
                directive.used.add("SUP001")
                hit = True
    return hit


#: SUP001 is implemented by the engine itself (it needs the post-filter
#: usage ledger), so its checker is empty; registering the Rule makes the
#: code selectable, documentable, and itself suppressible like any other.
SUPPRESSION_RULE = Rule(
    code="SUP001",
    name="unused-suppression",
    summary="suppression directive that silences no finding",
    rationale=(
        "A stale ``disable=`` comment outlives the finding it excused and "
        "then silently swallows the next real violation on that line; "
        "flagging it keeps the suppression inventory honest (the same "
        "contract as ruff's unused-``noqa``)."
    ),
    checker=lambda ctx: (),
)


def lint_source(
    source: str, path: str, rules: Iterable[Rule]
) -> list[Finding]:
    """Run every applicable rule over one module's source.

    Raises :class:`SyntaxError` when the source does not parse — callers
    decide whether that is a usage error (CLI) or a test expectation.
    """
    rules = list(rules)
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    ctx = LintContext(path=path, source=source, tree=tree, lines=lines)
    directives = _parse_directives(source)
    findings: list[Finding] = []
    active_codes: set[str] = set()
    sup_active = False
    for rule in rules:
        if not rule.applies_to(ctx.posix_path):
            continue
        active_codes.add(rule.code)
        if rule.code == SUPPRESSION_RULE.code:
            sup_active = True
        for finding in rule.checker(ctx):
            if not _suppressed(finding, directives):
                findings.append(finding)
    if sup_active:
        for finding in _unused_directive_findings(path, directives, active_codes):
            if not _sup001_suppressed(finding, directives):
                findings.append(finding)
    return sorted(findings)


# -- shared AST helpers used by several rule modules ------------------------


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.expr) -> str | None:
    """The last identifier of a Name/Attribute chain (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def walk_names(node: ast.expr) -> Iterator[str]:
    """Every identifier (Name ids and Attribute attrs) inside ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr

"""Core machinery of the ``repro lint`` analyzer.

The engine is deliberately small: a :class:`Rule` couples a stable code
(``DET001``, ``FLT001``, ...) to a checker function that walks a parsed
module and yields :class:`Finding` objects.  Everything repo-specific —
which calls break determinism, which identifier suffixes denote units —
lives in the rule modules (:mod:`repro.lint.determinism`,
:mod:`repro.lint.floats`, :mod:`repro.lint.units`,
:mod:`repro.lint.hygiene`), so adding a rule never touches this file
(see docs/LINTING.md, "Adding a rule").

Suppressions: a finding is dropped when the line that produced it carries
``# repro-lint: disable=CODE`` (comma-separate several codes, or ``all``),
or when any line in the file carries ``# repro-lint: disable-file=CODE``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Callable, Iterable, Iterator

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "lint_source",
    "dotted_name",
    "terminal_name",
]

#: ``# repro-lint: disable=DET001,FLT001`` (line) / ``disable-file=...`` (file).
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+|all)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """``path:line:col: CODE message`` — the one-line report format."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class LintContext:
    """Everything a checker may consult about the module under analysis."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @property
    def posix_path(self) -> str:
        """The path with forward slashes, for scope matching."""
        return str(PurePosixPath(self.path.replace("\\", "/")))


Checker = Callable[[LintContext], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """A lint rule: stable code, human summary, scope, and checker.

    ``scopes`` restricts the rule to files whose posix path contains any of
    the given substrings (empty tuple = every file); ``exempt`` then carves
    out allowlisted layers (e.g. the harness may read wall clocks).
    """

    code: str
    name: str
    summary: str
    rationale: str
    checker: Checker
    scopes: tuple[str, ...] = ()
    exempt: tuple[str, ...] = ()

    def applies_to(self, posix_path: str) -> bool:
        """Whether this rule runs on the file at ``posix_path``."""
        if any(marker in posix_path for marker in self.exempt):
            return False
        if not self.scopes:
            return True
        return any(marker in posix_path for marker in self.scopes)


def _suppressions(lines: list[str]) -> tuple[dict[int, set[str]], set[str]]:
    """Parse suppression comments: per-line codes and file-wide codes.

    ``"all"`` is represented by the sentinel code ``"*"`` in either set.
    """
    per_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        kind, spec = match.group(1), match.group(2)
        codes = (
            {"*"}
            if spec.strip().lower() == "all"
            else {c.strip().upper() for c in spec.split(",") if c.strip()}
        )
        if kind == "disable-file":
            file_wide |= codes
        else:
            per_line.setdefault(lineno, set()).update(codes)
    return per_line, file_wide


def _suppressed(
    finding: Finding, per_line: dict[int, set[str]], file_wide: set[str]
) -> bool:
    if "*" in file_wide or finding.code in file_wide:
        return True
    at_line = per_line.get(finding.line, ())
    return "*" in at_line or finding.code in at_line


def lint_source(
    source: str, path: str, rules: Iterable[Rule]
) -> list[Finding]:
    """Run every applicable rule over one module's source.

    Raises :class:`SyntaxError` when the source does not parse — callers
    decide whether that is a usage error (CLI) or a test expectation.
    """
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    ctx = LintContext(path=path, source=source, tree=tree, lines=lines)
    per_line, file_wide = _suppressions(lines)
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx.posix_path):
            continue
        for finding in rule.checker(ctx):
            if not _suppressed(finding, per_line, file_wide):
                findings.append(finding)
    return sorted(findings)


# -- shared AST helpers used by several rule modules ------------------------


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.expr) -> str | None:
    """The last identifier of a Name/Attribute chain (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def walk_names(node: ast.expr) -> Iterator[str]:
    """Every identifier (Name ids and Attribute attrs) inside ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr

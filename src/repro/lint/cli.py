"""CLI glue for ``repro lint``: path expansion, rule selection, reporting.

Exit codes follow the repo-wide convention in :mod:`repro.cliutil`:
``0`` clean, ``1`` findings, ``2`` usage/IO error (unreadable path,
syntax error, unknown rule code).  ``--json`` swaps the human report for
a machine-readable findings array on stdout (same exit codes), for
editor integrations and CI annotators.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Sequence

from ..cliutil import EXIT_OK, EXIT_VIOLATIONS, fail, report_violations
from .engine import Finding, Rule, lint_source

__all__ = ["lint_paths", "run_lint"]


def _expand(paths: Sequence[str]) -> list[Path]:
    """Files to lint: each path is a ``.py`` file or a directory to walk."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def lint_paths(
    paths: Sequence[str], rules: Optional[Iterable[Rule]] = None
) -> list[Finding]:
    """Lint every Python file under ``paths``; returns all findings.

    Library entry point (tests use it directly).  Raises ``OSError`` for
    unreadable paths and ``SyntaxError`` for unparseable files — the CLI
    wrapper maps both to exit code 2.
    """
    from . import ALL_RULES

    active = tuple(rules) if rules is not None else ALL_RULES
    findings: list[Finding] = []
    for file in _expand(paths):
        source = file.read_text(encoding="utf-8")
        findings.extend(lint_source(source, str(file), active))
    return sorted(findings)


def _select_rules(
    select: Optional[str], ignore: Optional[str]
) -> tuple[Rule, ...]:
    from . import ALL_RULES, rule_by_code

    rules: tuple[Rule, ...] = ALL_RULES
    if select:
        rules = tuple(rule_by_code(code) for code in select.split(","))
    if ignore:
        ignored = {code.strip().upper() for code in ignore.split(",")}
        for code in ignored:
            rule_by_code(code)  # KeyError -> usage error upstream
        rules = tuple(rule for rule in rules if rule.code not in ignored)
    return rules


def findings_as_json(findings: Sequence[Finding]) -> str:
    """The ``--json`` payload: a list of ``{path, line, col, code, message}``."""
    return json.dumps(
        [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "message": f.message,
            }
            for f in findings
        ],
        indent=2,
    )


def run_lint(
    paths: Sequence[str],
    select: Optional[str] = None,
    ignore: Optional[str] = None,
    list_rules: bool = False,
    json_output: bool = False,
) -> int:
    """Execute the ``repro lint`` subcommand; returns a process exit code."""
    from . import ALL_RULES

    if list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name:28} {rule.summary}")
        return EXIT_OK

    try:
        rules = _select_rules(select, ignore)
    except KeyError as error:
        return fail(f"unknown lint rule code: {error.args[0]!r}")

    targets = list(paths) if paths else ["src"]
    try:
        findings = lint_paths(targets, rules)
    except OSError as error:
        return fail(f"cannot read {getattr(error, 'filename', None) or targets}: {error}")
    except SyntaxError as error:
        return fail(f"cannot parse {error.filename}:{error.lineno}: {error.msg}")

    checked = len(_expand(targets))
    if json_output:
        # Machine consumers parse stdout; stderr stays silent and the
        # exit code alone signals clean vs. findings.
        print(findings_as_json(findings))
        return EXIT_VIOLATIONS if findings else EXIT_OK
    if findings:
        return report_violations(
            f"repro lint: {len(findings)} finding(s) in {checked} file(s)",
            (finding.render() for finding in findings),
        )
    print(f"repro lint: {checked} file(s) checked, no findings")
    return EXIT_OK

"""Unit-safety rules (UNT001, UNT002).

A convention checker, not a type system: identifiers carrying a unit
suffix (``_bits``, ``_bytes``, ``_gbps``, ``_s``, ``_us``, ...) may not be
assigned from, or passed as, an expression built on a *different* unit's
identifiers — unless the conversion goes through an explicitly named
converter (``bps_from_gbps(...)``-style, see :mod:`repro.core.units`).
This is the lint answer to the classic silent factor-of-8 (bits/bytes) and
factor-of-1e9 (Gbps/bps) bugs of congestion-control simulators.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from .engine import Finding, LintContext, Rule, terminal_name

__all__ = ["RULES", "unit_of"]

#: Recognised unit tokens, grouped by dimension.  Crossing *any* two
#: distinct tokens — even within a dimension (gbps vs bps) — needs a named
#: converter, because the scale factor is exactly what goes wrong.
_UNIT_TOKENS = (
    "bits", "bytes", "bps", "gbps", "mbps", "kbps",
    "s", "us", "ms", "ns",
)

_SUFFIX_RE = re.compile(
    r"_(" + "|".join(_UNIT_TOKENS) + r")$"
)

#: A call is a sanctioned converter when its name declares both what it
#: returns and what it takes: ``X_from_Y``, ``to_X``, or ``X_to_Y``.
_CONVERTER_RE = re.compile(r"(^|_)(from|to)(_|$)")


def unit_of(identifier: str) -> Optional[str]:
    """The unit token an identifier carries, or ``None``.

    ``capacity_gbps`` -> ``gbps``; ``total_bits`` -> ``bits``;
    ``sorted_list`` -> ``None`` (no recognised suffix).
    """
    match = _SUFFIX_RE.search(identifier)
    return match.group(1) if match else None


def _is_converter_call(node: ast.Call) -> bool:
    fn = terminal_name(node.func)
    if fn is None:
        return False
    if _CONVERTER_RE.search(fn):
        return True
    # A function named with two unit tokens (e.g. `gbit`) converts by
    # declaration even without from/to.
    return sum(1 for token in _UNIT_TOKENS if token in fn.split("_")) >= 2


def _foreign_units(value: ast.expr, target_unit: str) -> list[tuple[str, str]]:
    """``(identifier, unit)`` pairs in ``value`` whose unit != target's.

    Subtrees rooted at converter calls are skipped: the converter's name is
    the explicit acknowledgement the rule asks for.  A converter call
    anywhere in the expression clears the whole site — iterating a
    ``_gbps`` mapping to build a ``_bps`` one with per-value conversion is
    the approved idiom, not a violation.
    """
    if any(
        isinstance(node, ast.Call) and _is_converter_call(node)
        for node in ast.walk(value)
    ):
        return []
    foreign: list[tuple[str, str]] = []

    def visit(node: ast.expr) -> None:
        if isinstance(node, ast.Call) and _is_converter_call(node):
            return
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = terminal_name(node)
            if name is not None:
                unit = unit_of(name)
                if unit is not None and unit != target_unit:
                    foreign.append((name, unit))
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                visit(child)
            elif isinstance(child, ast.comprehension):
                visit(child.iter)
                for test in child.ifs:
                    visit(test)

    visit(value)
    return foreign


def _flag_mismatch(
    ctx: LintContext,
    code: str,
    node: ast.AST,
    target_desc: str,
    target_unit: str,
    value: ast.expr,
) -> Iterator[Finding]:
    for name, unit in _foreign_units(value, target_unit):
        yield Finding(
            ctx.path, node.lineno, node.col_offset, code,
            f"{target_desc} carries unit `{target_unit}` but is computed "
            f"from `{name}` (unit `{unit}`); route the conversion through "
            "a named converter (see repro.core.units, e.g. "
            f"`{target_unit}_from_{unit}`)",
        )
        return  # one finding per site is enough to act on


def _check_unt001(ctx: LintContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        targets: list[ast.expr]
        value: Optional[ast.expr]
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        else:
            continue
        if value is None:
            continue
        for target in targets:
            name = terminal_name(target)
            if name is None:
                continue
            unit = unit_of(name)
            if unit is None:
                continue
            yield from _flag_mismatch(
                ctx, "UNT001", node, f"assignment target `{name}`", unit,
                value,
            )


def _check_unt002(ctx: LintContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            unit = unit_of(keyword.arg)
            if unit is None:
                continue
            yield from _flag_mismatch(
                ctx, "UNT002", keyword.value,
                f"keyword argument `{keyword.arg}`", unit, keyword.value,
            )


RULES: tuple[Rule, ...] = (
    Rule(
        code="UNT001",
        name="unit-suffix-assignment",
        summary="no assigning across mismatched unit suffixes",
        rationale=(
            "`capacity_bps = capacity_gbps * 1e9` is correct today and a "
            "silent factor-of-1e9 bug after the next refactor. A named "
            "converter (`bps_from_gbps`) keeps the scale factor in exactly "
            "one audited place."
        ),
        checker=_check_unt001,
    ),
    Rule(
        code="UNT002",
        name="unit-suffix-kwarg",
        summary="no passing mismatched unit suffixes as keyword arguments",
        rationale=(
            "`run(total_bits=payload_bytes)` type-checks and simulates — "
            "just 8x too fast. The kwarg's suffix is a contract; crossing "
            "it needs a named converter at the call site."
        ),
        checker=_check_unt002,
    ),
)

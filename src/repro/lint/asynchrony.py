"""Asynchrony rules (ASY001).

The service daemon's query surface may grow ``async`` handlers; the one
way to wreck an event loop is to park it on a blocking call.  ASY001
flags synchronous waits (``time.sleep``) and synchronous file I/O
(``open``, ``os.fsync``, ``Path.read_text``/``write_text``/
``read_bytes``/``write_bytes``) directly inside ``async def`` bodies —
every coroutine sharing that loop stalls for the duration.  Use the
loop's executor (``await loop.run_in_executor(...)``), an async sleep, or
move the I/O out of the coroutine.

Calls inside *nested* sync functions (and lambdas) are not flagged: those
run whenever they are called, which may legitimately be from a worker
thread — flagging the definition site would be guessing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import Finding, LintContext, Rule, dotted_name, terminal_name

__all__ = ["RULES"]

#: Blocking calls by resolved dotted name.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "open",
        "io.open",
        "os.fsync",
    }
)

#: Blocking method names (synchronous ``pathlib.Path`` file I/O).  Matched
#: by terminal attribute name since receiver types are not resolvable
#: statically; the names are specific enough not to collide in practice.
_BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


def _scan(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s children without descending into nested scopes."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield child
        yield from _scan(child)


def _check_asy001(ctx: LintContext) -> Iterator[Finding]:
    for func in ast.walk(ctx.tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        for stmt in func.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scope: runs whenever it is called
            for node in (stmt, *_scan(stmt)):
                if not isinstance(node, ast.Call):
                    continue
                surface = dotted_name(node.func)
                resolved = ctx.resolve(surface)
                if resolved in _BLOCKING_CALLS:
                    label = (
                        f"`{surface}()`"
                        if surface == resolved
                        else f"`{surface}()` (resolves to `{resolved}`)"
                    )
                    yield Finding(
                        ctx.path, node.lineno, node.col_offset, "ASY001",
                        f"{label} blocks the event loop inside async "
                        f"`{func.name}`; every coroutine on the loop stalls "
                        "— await an async equivalent or push it through "
                        "`loop.run_in_executor(...)`",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and terminal_name(node.func) in _BLOCKING_METHODS
                ):
                    yield Finding(
                        ctx.path, node.lineno, node.col_offset, "ASY001",
                        f"synchronous file I/O `{terminal_name(node.func)}()` "
                        f"inside async `{func.name}` blocks the event loop; "
                        "do the I/O outside the coroutine or via "
                        "`loop.run_in_executor(...)`",
                    )


RULES: tuple[Rule, ...] = (
    Rule(
        code="ASY001",
        name="blocking-call-in-async",
        summary="no blocking calls (`time.sleep`, sync file I/O) in `async def`",
        rationale=(
            "A coroutine that calls `time.sleep` or does synchronous file "
            "I/O parks the whole event loop, not just itself: every other "
            "coroutine — heartbeats, watchdog checks, snapshot queries — "
            "stalls until it returns. Blocking work belongs in an executor "
            "or outside the async path."
        ),
        checker=_check_asy001,
    ),
)

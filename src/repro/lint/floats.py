"""Float-discipline rule (FLT001).

Simulation state — times, rates, windows — accumulates through float
arithmetic, so exact ``==``/``!=`` comparisons are order-of-operations
landmines.  In the scoped packages (``simulator/``, ``fluid/``, ``tcp/``)
such comparisons must go through the tolerance helpers in
:mod:`repro.core.tolerances`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import Finding, LintContext, Rule, terminal_name

__all__ = ["RULES"]

#: Identifier suffixes that mark a quantity as float-valued in this repo.
_FLOAT_SUFFIXES = (
    "_time", "_s", "_us", "_ms", "_bps", "_gbps", "_mbps", "_rate",
    "_ratio", "_factor", "_fraction", "_scale", "_delay", "_rtt",
    "_bits", "_deadline", "_offset", "_sigma",
)

#: Bare identifiers that are float-valued simulation state wherever they
#: appear in the scoped packages.
_FLOAT_NAMES = frozenset(
    {
        "now", "rtt", "srtt", "cwnd", "ssthresh", "alpha", "rate", "delay",
        "dt", "deadline", "factor", "share", "capacity", "remaining",
        "delta", "quantum", "t",
    }
)


def _looks_float(node: ast.expr) -> bool:
    """Conservative: does this expression smell like a float?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _looks_float(node.left) or _looks_float(node.right)
    if isinstance(node, ast.UnaryOp):
        return _looks_float(node.operand)
    if isinstance(node, ast.Call):
        fn = terminal_name(node.func)
        return fn in ("float", "sum", "mean", "sqrt", "exp", "log")
    name = terminal_name(node)
    if name is None:
        return False
    if name in _FLOAT_NAMES:
        return True
    return name.endswith(_FLOAT_SUFFIXES)


def _check_flt001(ctx: LintContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            # `x == None` style comparisons never reach here (None/str/bool
            # constants are not float-like); require at least one float side.
            if _looks_float(left) or _looks_float(right):
                rendered = f"{ast.unparse(left)} {'==' if isinstance(op, ast.Eq) else '!='} {ast.unparse(right)}"
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "FLT001",
                    f"exact float comparison `{rendered}`: accumulated "
                    "floats differ in the last ulp across evaluation "
                    "orders; use repro.core.tolerances "
                    "(`close`, `is_zero`) or an ordered comparison",
                )


RULES: tuple[Rule, ...] = (
    Rule(
        code="FLT001",
        name="float-equality",
        summary="no `==`/`!=` between float expressions in simulation code",
        rationale=(
            "Event times and rates are sums of many small floats; whether "
            "two such sums compare equal depends on association order, "
            "optimisation level, and platform. The tolerance helpers in "
            "repro.core.tolerances make the intended slack explicit."
        ),
        checker=_check_flt001,
        scopes=("simulator/", "fluid/", "tcp/"),
    ),
)

"""Determinism rules (DET001–DET005).

The simulators promise bit-identical replays given a seed — fault replay,
``--resume`` and the result cache all depend on it.  These rules catch the
ways that promise quietly breaks: process-global RNGs, wall-clock reads,
hash-order-dependent iteration, and mutable default arguments.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Union

from .engine import Finding, LintContext, Rule, dotted_name

__all__ = ["RULES"]

#: Functions of the stdlib ``random`` module that draw from (or reseed) the
#: process-global generator.  ``random.Random(seed)`` is *not* here: a
#: seeded instance is the approved idiom.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "sample", "shuffle", "seed", "getrandbits", "gauss", "normalvariate",
        "lognormvariate", "expovariate", "betavariate", "gammavariate",
        "triangular", "vonmisesvariate", "paretovariate", "weibullvariate",
        "binomialvariate", "randbytes",
    }
)

#: Wall-clock reads, by dotted call name.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "date.today", "datetime.date.today",
    }
)

#: ``np.random.*`` attributes that construct *seeded, local* generators and
#: are therefore fine; every other ``np.random.X(...)`` call touches numpy's
#: legacy global state.
_NUMPY_LOCAL_OK = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
     "MT19937", "SFC64", "BitGenerator", "RandomState"}
)


def _call_label(surface: str, resolved: str) -> str:
    """``surface`` as written, annotated with what it resolves to."""
    if surface == resolved:
        return f"`{surface}()`"
    return f"`{surface}()` (resolves to `{resolved}`)"


def _check_det001(ctx: LintContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        surface = dotted_name(node.func)
        name = ctx.resolve(surface)
        if name is None:
            continue
        if name.startswith("random.") and name.split(".", 1)[1] in _GLOBAL_RANDOM_FNS:
            yield Finding(
                ctx.path, node.lineno, node.col_offset, "DET001",
                f"{_call_label(surface, name)} draws from the process-global "
                "RNG; use a seeded `random.Random(seed)` or "
                "`np.random.default_rng(seed)` instance instead",
            )


def _check_det002(ctx: LintContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        surface = dotted_name(node.func)
        name = ctx.resolve(surface)
        if name in _WALL_CLOCK_CALLS:
            yield Finding(
                ctx.path, node.lineno, node.col_offset, "DET002",
                f"{_call_label(surface, name)} reads the wall clock; "
                "simulation code must use `sim.now`, and timing belongs in "
                "the harness/telemetry layer (repro.harness)",
            )


def _check_det003(ctx: LintContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        surface = dotted_name(node.func)
        name = ctx.resolve(surface)
        if name is None:
            continue
        for prefix in ("np.random.", "numpy.random."):
            if name.startswith(prefix):
                attr = name[len(prefix):].split(".", 1)[0]
                if attr not in _NUMPY_LOCAL_OK:
                    yield Finding(
                        ctx.path, node.lineno, node.col_offset, "DET003",
                        f"{_call_label(surface, name)} uses numpy's legacy "
                        "global RNG state; construct a generator with "
                        "`np.random.default_rng(seed)` and draw from it",
                    )
                break


_SetSource = Union[ast.Set, ast.SetComp]


def _is_set_expr(node: ast.expr, set_vars: set[str]) -> bool:
    """Whether ``node`` is statically recognisable as an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_vars:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_vars) or _is_set_expr(
            node.right, set_vars
        )
    return False


def _annotation_is_set(annotation: ast.expr) -> bool:
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - unparse failures are exotic
        return False
    return text.replace(" ", "").lower().startswith(("set[", "frozenset["))


def _annotation_is_dict_of_sets(annotation: ast.expr) -> bool:
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover
        return False
    squeezed = text.replace(" ", "").lower()
    return squeezed.startswith("dict[") and (
        ",set[" in squeezed or ",frozenset[" in squeezed
    )


class _SetIterationVisitor(ast.NodeVisitor):
    """Per-scope tracking of set-typed locals and iteration over them.

    Handles the repo's real patterns: names bound to set literals/
    comprehensions/``set(...)`` calls, ``x: set[...]`` annotations, dicts
    annotated ``dict[K, set[V]]`` (whose subscripts are sets), and set
    algebra (``a - b``, ``a | b``).  Iterating any of these in a ``for``
    loop, list/dict comprehension or generator expression is flagged;
    ``sorted(...)`` around the set (or building another set) is the fix.
    """

    def __init__(self, ctx: LintContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []
        self._set_vars: list[set[str]] = [set()]
        self._dict_of_set_vars: list[set[str]] = [set()]

    # -- scope management ---------------------------------------------------

    def _enter(self) -> None:
        self._set_vars.append(set())
        self._dict_of_set_vars.append(set())

    def _exit(self) -> None:
        self._set_vars.pop()
        self._dict_of_set_vars.pop()

    @property
    def set_vars(self) -> set[str]:
        return set().union(*self._set_vars)

    @property
    def dict_of_set_vars(self) -> set[str]:
        return set().union(*self._dict_of_set_vars)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter()
        self.generic_visit(node)
        self._exit()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter()
        self.generic_visit(node)
        self._exit()

    # -- binding collection -------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value, self.set_vars):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_vars[-1].add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            if _annotation_is_set(node.annotation):
                self._set_vars[-1].add(node.target.id)
            elif _annotation_is_dict_of_sets(node.annotation):
                self._dict_of_set_vars[-1].add(node.target.id)
        self.generic_visit(node)

    # -- iteration sites ----------------------------------------------------

    def _iter_is_unordered_set(self, iter_node: ast.expr) -> bool:
        if _is_set_expr(iter_node, self.set_vars):
            return True
        # members[key] where members: dict[K, set[V]]
        if isinstance(iter_node, ast.Subscript) and isinstance(
            iter_node.value, ast.Name
        ):
            return iter_node.value.id in self.dict_of_set_vars
        return False

    def _flag(self, iter_node: ast.expr) -> None:
        described = ast.unparse(iter_node)
        self.findings.append(
            Finding(
                self.ctx.path, iter_node.lineno, iter_node.col_offset,
                "DET004",
                f"iteration over unordered set `{described}`: order depends "
                "on PYTHONHASHSEED and leaks into results (e.g. float "
                "summation order); iterate `sorted(...)` instead",
            )
        )

    def visit_For(self, node: ast.For) -> None:
        if self._iter_is_unordered_set(node.iter):
            self._flag(node.iter)
        self.generic_visit(node)

    def _visit_comprehension_container(
        self, node: ast.ListComp | ast.DictComp | ast.GeneratorExp
    ) -> None:
        for comp in node.generators:
            if self._iter_is_unordered_set(comp.iter):
                self._flag(comp.iter)
        self.generic_visit(node)

    # A SetComp over a set stays unordered either way — building one more
    # set from another cannot leak iteration order, so it is exempt.
    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension_container(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension_container(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension_container(node)


def _check_det004(ctx: LintContext) -> Iterable[Finding]:
    visitor = _SetIterationVisitor(ctx)
    visitor.visit(ctx.tree)
    return visitor.findings


def _check_det005(ctx: LintContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            ):
                mutable = True
            if mutable:
                yield Finding(
                    ctx.path, default.lineno, default.col_offset, "DET005",
                    f"mutable default argument in `{node.name}()`: the "
                    "object is shared across calls; default to None and "
                    "construct inside the function",
                )


RULES: tuple[Rule, ...] = (
    Rule(
        code="DET001",
        name="global-random",
        summary="no module-level `random.*` calls",
        rationale=(
            "The process-global RNG is shared mutable state: any import-order "
            "or call-order change reshuffles every downstream draw, and "
            "seeded replay (faults, --resume, the result cache) breaks."
        ),
        checker=_check_det001,
    ),
    Rule(
        code="DET002",
        name="wall-clock",
        summary="no wall-clock reads outside the harness layer",
        rationale=(
            "Simulated time is `sim.now`; a wall-clock read in simulation "
            "code makes results depend on host speed. The harness/telemetry "
            "layer is allowlisted — measuring real runtime is its job — and "
            "so is the verify layer, whose solver backends enforce "
            "wall-clock query budgets, and the service layer, whose "
            "watchdog/backoff machinery measures real timeouts (with "
            "injectable clocks so simulated results stay deterministic)."
        ),
        checker=_check_det002,
        exempt=("harness/", "verify/", "service/"),
    ),
    Rule(
        code="DET003",
        name="numpy-global-random",
        summary="no legacy `np.random.*` global-state calls",
        rationale=(
            "`np.random.seed`/`np.random.normal` etc. mutate one hidden "
            "global stream; `np.random.default_rng(seed)` gives each "
            "component its own reproducible generator."
        ),
        checker=_check_det003,
    ),
    Rule(
        code="DET004",
        name="unordered-set-iteration",
        summary="no iteration over unordered sets in simulation code",
        rationale=(
            "Set iteration order depends on PYTHONHASHSEED. When that order "
            "reaches float summation or event scheduling, two runs of the "
            "same seed diverge in the last ulp — the hardest kind of "
            "nondeterminism to debug. Iterate `sorted(...)`."
        ),
        checker=_check_det004,
        scopes=("simulator/", "fluid/", "tcp/", "schedulers/", "faults/",
                "core/"),
    ),
    Rule(
        code="DET005",
        name="mutable-default",
        summary="no mutable default arguments",
        rationale=(
            "A mutable default is constructed once and shared by every "
            "call; state leaks between invocations (and between test "
            "cases) in order-dependent ways."
        ),
        checker=_check_det005,
    ),
)

"""Model-drift rule (MDL001).

The verification model (:mod:`repro.verify.model`) re-states a handful of
implementation constants — the Eq. 2 slope/intercept, the degradation
clamp, the convergence tolerance — because the z3/exhaustive encoding
cannot import the implementation.  Each mirrored constant carries a
machine-readable marker::

    SLOPE = 1.75  # mdl: mirrors repro.core.aggressiveness.PAPER_SLOPE

MDL001 resolves every marker against the *current* source tree and fails
when the two values diverge, so "prove the model" and "run the code"
can never silently drift apart.  The certificate fingerprint
(:func:`repro.verify.model.model_fingerprint`) catches drift at
``repro verify --check`` time; MDL001 catches it earlier, at lint time,
and points at both ends of the broken mirror.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, Optional

from .engine import Finding, LintContext, Rule

__all__ = ["RULES"]

#: ``# mdl: mirrors <dotted.path>`` on the same line as the assignment.
_MARKER_RE = re.compile(r"#\s*mdl:\s*mirrors\s+([A-Za-z_][\w.]*)")


def _const_value(node: Optional[ast.expr]) -> Optional[float]:
    """The numeric value of a literal expression (handles unary minus)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_value(node.operand)
        return None if inner is None else -inner
    return None


def _assigned_constants(body: list[ast.stmt]) -> dict[str, float]:
    """Name → numeric literal for Assign/AnnAssign statements in ``body``."""
    values: dict[str, float] = {}
    for stmt in body:
        if isinstance(stmt, ast.Assign):
            value = _const_value(stmt.value)
            if value is None:
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    values[target.id] = value
        elif isinstance(stmt, ast.AnnAssign):
            value = _const_value(stmt.value)
            if value is not None and isinstance(stmt.target, ast.Name):
                values[stmt.target.id] = value
    return values


def _source_root(posix_path: str) -> Optional[Path]:
    """The directory containing the ``repro`` package, from a lint path."""
    parts = posix_path.split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            root = "/".join(parts[:index]) or "."
            return Path(root)
    return None


def _lookup(root: Path, dotted: str) -> tuple[Optional[float], Optional[str]]:
    """Resolve ``repro.pkg.module.ATTR`` (or ``...Class.attr``) to a value.

    Returns ``(value, error)``; exactly one side is set.  Tries the
    longest prefix of ``dotted`` that names an importable ``.py`` file,
    then walks the remainder as a module constant or a single class
    attribute (covering dataclass field defaults).
    """
    parts = dotted.split(".")
    if parts[0] != "repro":
        return None, f"marker target {dotted!r} must start with 'repro.'"
    for cut in range(len(parts) - 1, 0, -1):
        module_path = root.joinpath(*parts[:cut]).with_suffix(".py")
        if not module_path.is_file():
            continue
        remainder = parts[cut:]
        try:
            tree = ast.parse(module_path.read_text(), filename=str(module_path))
        except (SyntaxError, OSError) as error:
            return None, f"cannot parse {module_path}: {error}"
        if len(remainder) == 1:
            values = _assigned_constants(tree.body)
            if remainder[0] in values:
                return values[remainder[0]], None
            return None, (
                f"{module_path} defines no numeric constant {remainder[0]!r}"
            )
        if len(remainder) == 2:
            for stmt in tree.body:
                if isinstance(stmt, ast.ClassDef) and stmt.name == remainder[0]:
                    values = _assigned_constants(stmt.body)
                    if remainder[1] in values:
                        return values[remainder[1]], None
                    return None, (
                        f"class {remainder[0]} in {module_path} has no "
                        f"numeric default {remainder[1]!r}"
                    )
            return None, f"{module_path} defines no class {remainder[0]!r}"
        return None, (
            f"marker target {dotted!r} nests deeper than Class.attr"
        )
    return None, f"no module file under {root} matches {dotted!r}"


def _check_mdl001(ctx: LintContext) -> Iterator[Finding]:
    root = _source_root(ctx.posix_path)
    for stmt in ctx.tree.body:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        if stmt.lineno > len(ctx.lines):
            continue
        match = _MARKER_RE.search(ctx.lines[stmt.lineno - 1])
        if match is None:
            continue
        local = _const_value(stmt.value)
        col = match.start()
        dotted = match.group(1)
        if local is None:
            yield Finding(
                ctx.path, stmt.lineno, col, "MDL001",
                f"`mirrors {dotted}` marker on a non-numeric assignment; "
                "mirror markers only apply to literal constants",
            )
            continue
        if root is None:
            yield Finding(
                ctx.path, stmt.lineno, col, "MDL001",
                f"cannot locate the `repro` package root from {ctx.path!r} "
                f"to resolve `mirrors {dotted}`",
            )
            continue
        value, error = _lookup(root, dotted)
        if error is not None:
            yield Finding(
                ctx.path, stmt.lineno, col, "MDL001",
                f"unresolvable mirror marker: {error}",
            )
        elif value != local:
            yield Finding(
                ctx.path, stmt.lineno, col, "MDL001",
                f"model constant drift: this file says {local!r} but "
                f"{dotted} is {value!r}; update both together and "
                "regenerate certificates (`repro verify --write`)",
            )


RULES: tuple[Rule, ...] = (
    Rule(
        code="MDL001",
        name="model-drift",
        summary="verification-model constants must mirror the implementation",
        rationale=(
            "The bounded-model-checking encoding restates implementation "
            "constants it cannot import; a certificate proved against "
            "yesterday's slope is worthless against today's. Every mirrored "
            "constant declares its source with `# mdl: mirrors <path>` and "
            "this rule cross-checks the two values at lint time."
        ),
        checker=_check_mdl001,
        scopes=("verify/",),
    ),
)

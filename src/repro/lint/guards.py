"""Guard-hygiene rules (GRD001).

The guardrail subsystem (docs/ROBUSTNESS.md) only works when failures are
*visible*: an invariant monitor cannot report what an ``except Exception:
pass`` silently ate three layers down.  GRD001 flags exception swallowing —
a bare ``except:`` that never re-raises, or a catch-all handler whose body
does nothing at all — so every broad catch in ``src/repro/`` either
narrows its exception type, handles the error meaningfully, or carries an
explicit ``# repro-lint: disable=GRD001`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import Finding, LintContext, Rule, terminal_name

__all__ = ["RULES"]

#: Catch-all exception names: catching these hides everything, including
#: the guardrail's own :class:`~repro.guards.GuardViolationError`.
_CATCH_ALL = frozenset({"Exception", "BaseException"})


def _contains_raise(body: list[ast.stmt]) -> bool:
    """Whether any statement (at any depth) in ``body`` re-raises."""
    return any(
        isinstance(node, ast.Raise) for stmt in body for node in ast.walk(stmt)
    )


def _is_catch_all(handler_type: ast.expr) -> bool:
    """Whether the handler's type expression names a catch-all class."""
    if isinstance(handler_type, ast.Tuple):
        return any(terminal_name(el) in _CATCH_ALL for el in handler_type.elts)
    return terminal_name(handler_type) in _CATCH_ALL


def _is_swallow_only(body: list[ast.stmt]) -> bool:
    """Whether the handler body discards the error without acting on it.

    ``pass``, a lone docstring/constant expression, and ``continue`` are
    pure swallows.  Anything else — logging, counters, ``return False``,
    fallbacks — is a deliberate handling decision and GRD001 stays out of
    the way.
    """
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


def _check_grd001(ctx: LintContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            # Bare ``except:`` catches KeyboardInterrupt/SystemExit too;
            # only tolerable when the handler provably re-raises.
            if not _contains_raise(node.body):
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "GRD001",
                    "bare `except:` without a re-raise swallows every "
                    "error (including GuardViolationError and "
                    "KeyboardInterrupt); catch a specific exception or "
                    "re-raise",
                )
        elif _is_catch_all(node.type):
            if not _contains_raise(node.body) and _is_swallow_only(node.body):
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "GRD001",
                    "`except Exception:` with an empty body silently "
                    "discards the error; narrow the exception type, handle "
                    "it, or justify with `# repro-lint: disable=GRD001`",
                )


RULES: tuple[Rule, ...] = (
    Rule(
        code="GRD001",
        name="swallowed-exception",
        summary="no silent swallowing of broad exception catches",
        rationale=(
            "The guardrail subsystem relies on failures surfacing: a "
            "catch-all handler that does nothing hides invariant "
            "violations, masks real bugs as flaky behaviour, and can eat "
            "the `raise`-policy GuardViolationError itself."
        ),
        checker=_check_grd001,
    ),
)

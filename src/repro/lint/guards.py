"""Guard-hygiene rules (GRD001, GRD002).

The guardrail subsystem (docs/ROBUSTNESS.md) only works when failures are
*visible*: an invariant monitor cannot report what an ``except Exception:
pass`` silently ate three layers down.  GRD001 flags exception swallowing —
a bare ``except:`` that never re-raises, or a catch-all handler whose body
does nothing at all — so every broad catch in ``src/repro/`` either
narrows its exception type, handles the error meaningfully, or carries an
explicit ``# repro-lint: disable=GRD001`` with a justification.

GRD002 tightens the bar for *fault-handling* code specifically (the
``faults`` package and any function whose name mentions faults, chaos or
rerouting): there, catching an exception — however narrow — without
re-raising or recording the event through a guardrail/telemetry API is a
silent repair in exactly the code whose job is making failures
observable.  Handlers must re-raise, or call one of the recording APIs
(``violation``, ``record_degradation``, ``record_guard_event``,
``record_recovery``, ``record``, ``report_violations``, ``fail``), or
carry a justified ``# repro-lint: disable=GRD002``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .engine import Finding, LintContext, Rule, terminal_name

__all__ = ["RULES"]

#: Catch-all exception names: catching these hides everything, including
#: the guardrail's own :class:`~repro.guards.GuardViolationError`.
_CATCH_ALL = frozenset({"Exception", "BaseException"})


def _contains_raise(body: list[ast.stmt]) -> bool:
    """Whether any statement (at any depth) in ``body`` re-raises."""
    return any(
        isinstance(node, ast.Raise) for stmt in body for node in ast.walk(stmt)
    )


def _is_catch_all(handler_type: ast.expr) -> bool:
    """Whether the handler's type expression names a catch-all class."""
    if isinstance(handler_type, ast.Tuple):
        return any(terminal_name(el) in _CATCH_ALL for el in handler_type.elts)
    return terminal_name(handler_type) in _CATCH_ALL


def _is_swallow_only(body: list[ast.stmt]) -> bool:
    """Whether the handler body discards the error without acting on it.

    ``pass``, a lone docstring/constant expression, and ``continue`` are
    pure swallows.  Anything else — logging, counters, ``return False``,
    fallbacks — is a deliberate handling decision and GRD001 stays out of
    the way.
    """
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


def _check_grd001(ctx: LintContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            # Bare ``except:`` catches KeyboardInterrupt/SystemExit too;
            # only tolerable when the handler provably re-raises.
            if not _contains_raise(node.body):
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "GRD001",
                    "bare `except:` without a re-raise swallows every "
                    "error (including GuardViolationError and "
                    "KeyboardInterrupt); catch a specific exception or "
                    "re-raise",
                )
        elif _is_catch_all(node.type):
            if not _contains_raise(node.body) and _is_swallow_only(node.body):
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "GRD001",
                    "`except Exception:` with an empty body silently "
                    "discards the error; narrow the exception type, handle "
                    "it, or justify with `# repro-lint: disable=GRD001`",
                )


#: APIs whose call counts as "the failure was recorded": the guardrail's
#: reporting entry point, the telemetry recorders, the CLI's ``fail``.
_RECORDING_CALLS = frozenset(
    {
        "violation",
        "record",
        "record_degradation",
        "record_guard_event",
        "record_recovery",
        "report_violations",
        "fail",
    }
)

#: Function names that mark a code path as fault-handling even outside
#: the ``faults`` package.  The lookbehind keeps "default" (de-FAULT)
#: from counting as fault-handling.
_FAULT_NAME = re.compile(r"(?<!de)fault|chaos|reroute", re.IGNORECASE)


def _records_event(body: list[ast.stmt]) -> bool:
    """Whether any statement in ``body`` calls a recording API."""
    return any(
        isinstance(node, ast.Call) and terminal_name(node.func) in _RECORDING_CALLS
        for stmt in body
        for node in ast.walk(stmt)
    )


def _in_faults_package(ctx: LintContext) -> bool:
    return "faults" in ctx.posix_path.split("/")


def _check_grd002(ctx: LintContext) -> Iterator[Finding]:
    whole_file = _in_faults_package(ctx)
    yield from _grd002_walk(ctx, ctx.tree.body, in_scope=whole_file)


def _grd002_walk(
    ctx: LintContext, body: list[ast.stmt], in_scope: bool
) -> Iterator[Finding]:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from _grd002_walk(
                ctx,
                stmt.body,
                in_scope or bool(_FAULT_NAME.search(stmt.name)),
            )
            continue
        if isinstance(stmt, ast.ClassDef):
            yield from _grd002_walk(ctx, stmt.body, in_scope)
            continue
        if in_scope and isinstance(stmt, ast.Try):
            for handler in stmt.handlers:
                if not _contains_raise(handler.body) and not _records_event(
                    handler.body
                ):
                    caught = (
                        ast.unparse(handler.type) if handler.type else "everything"
                    )
                    yield Finding(
                        ctx.path, handler.lineno, handler.col_offset, "GRD002",
                        f"fault-handling code catches {caught} without "
                        "re-raising or recording a guard event; failures in "
                        "fault paths must stay observable — re-raise, call a "
                        "recording API (violation/record_degradation/...), "
                        "or justify with `# repro-lint: disable=GRD002`",
                    )
        for child_body in _stmt_bodies(stmt):
            yield from _grd002_walk(ctx, child_body, in_scope)


def _stmt_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    """Every nested statement list of ``stmt`` (if/for/try/with bodies)."""
    bodies: list[list[ast.stmt]] = []
    for field_name in ("body", "orelse", "finalbody"):
        value = getattr(stmt, field_name, None)
        if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
            bodies.append(value)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    return bodies


RULES: tuple[Rule, ...] = (
    Rule(
        code="GRD001",
        name="swallowed-exception",
        summary="no silent swallowing of broad exception catches",
        rationale=(
            "The guardrail subsystem relies on failures surfacing: a "
            "catch-all handler that does nothing hides invariant "
            "violations, masks real bugs as flaky behaviour, and can eat "
            "the `raise`-policy GuardViolationError itself."
        ),
        checker=_check_grd001,
    ),
    Rule(
        code="GRD002",
        name="unrecorded-fault-handler",
        summary="fault-handling code must record or re-raise caught errors",
        rationale=(
            "Fault-injection and rerouting code exists to make failures "
            "observable; an exception handler there that neither re-raises "
            "nor records through the guardrail/telemetry API silently "
            "repairs exactly the signal chaos campaigns and recovery SLOs "
            "measure."
        ),
        checker=_check_grd002,
        scopes=("src/repro/",),
    ),
)

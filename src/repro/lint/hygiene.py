"""Simulator-hygiene rules (SIM001, SIM002).

The discrete-event engine owns two invariants that no other layer may
touch: simulation time only advances inside the event loop, and a popped
event belongs to the engine — handlers act on it and let go.  Code that
writes ``engine.now`` rewrites history; code that stores popped events on
``self`` resurrects cancelled callbacks and defeats the engine's
cancellation accounting.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import Finding, LintContext, Rule, terminal_name

__all__ = ["RULES"]

#: Call names whose return value is a dequeued event/queue entry.
_POP_CALLS = frozenset({"heappop", "pop", "popleft", "get_nowait"})


def _check_sim001(ctx: LintContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Attribute) and target.attr == "now":
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "SIM001",
                    "assignment to `.now`: simulation time is owned by the "
                    "event loop in repro.simulator.engine; handlers "
                    "schedule future work instead of moving the clock",
                )


def _value_is_pop(node: ast.expr) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            fn = terminal_name(child.func)
            if fn in _POP_CALLS:
                return True
    return False


def _target_is_self_attr(target: ast.expr) -> bool:
    return (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    )


def _check_sim002(ctx: LintContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            if _value_is_pop(node.value) and any(
                _target_is_self_attr(t) for t in node.targets
            ):
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "SIM002",
                    "popped event stored on `self`: dequeued events belong "
                    "to the engine; keep them in locals for the duration "
                    "of the handler",
                )
        elif isinstance(node, ast.Call):
            # self.<list>.append(heappop(...)) — same leak, different spelling.
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr == "append"
                and isinstance(fn.value, ast.Attribute)
                and isinstance(fn.value.value, ast.Name)
                and fn.value.value.id == "self"
                and any(_value_is_pop(arg) for arg in node.args)
            ):
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "SIM002",
                    "popped event appended to a `self` container: dequeued "
                    "events belong to the engine; copy the fields you "
                    "need instead of keeping the event",
                )


RULES: tuple[Rule, ...] = (
    Rule(
        code="SIM001",
        name="clock-mutation",
        summary="event handlers may not mutate `engine.now`",
        rationale=(
            "`now` advances only as the event loop dequeues; any other "
            "write desynchronises scheduled timestamps from the heap "
            "order and corrupts every in-flight timer."
        ),
        checker=_check_sim001,
        exempt=("simulator/engine.py",),
    ),
    Rule(
        code="SIM002",
        name="held-popped-event",
        summary="apps may not hold references to popped events",
        rationale=(
            "A popped event's cancellation flag and payload are dead the "
            "moment its handler returns; holding it aliases engine state "
            "into application objects and resurrects stale callbacks."
        ),
        checker=_check_sim002,
        scopes=("simulator/", "tcp/", "fluid/"),
    ),
)

"""``repro lint`` — AST-based determinism & unit-safety analyzer.

Stdlib-only (the :mod:`ast` module) static analysis enforcing the repo's
two load-bearing invariants: seeded runs replay bit-for-bit, and
quantities keep their units.  See docs/LINTING.md for the rule catalog,
suppression syntax and how to add a rule.

Public API::

    from repro.lint import ALL_RULES, lint_source, lint_paths
    findings = lint_paths(["src"])           # list[Finding]
    findings = lint_source(code, "x.py", ALL_RULES)
"""

from __future__ import annotations

from . import asynchrony, determinism, floats, guards, hygiene, model, perf, units
from .cli import lint_paths, run_lint
from .engine import SUPPRESSION_RULE, Finding, LintContext, Rule, lint_source

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "Rule",
    "lint_source",
    "lint_paths",
    "run_lint",
    "rule_by_code",
]

#: Every rule, in catalog order (the order docs/LINTING.md documents).
ALL_RULES: tuple[Rule, ...] = (
    determinism.RULES
    + floats.RULES
    + units.RULES
    + hygiene.RULES
    + perf.RULES
    + guards.RULES
    + model.RULES
    + asynchrony.RULES
    + (SUPPRESSION_RULE,)
)


def rule_by_code(code: str) -> Rule:
    """Look up one rule by its code (``KeyError`` when unknown)."""
    for rule in ALL_RULES:
        if rule.code == code.upper():
            return rule
    raise KeyError(f"unknown lint rule code: {code!r}")
